#ifndef IPDB_BENCH_BENCH_JSON_H_
#define IPDB_BENCH_BENCH_JSON_H_

// Console reporting plus a machine-readable dump for before/after
// comparisons, shared by every Google-Benchmark binary in bench/. Each
// binary calls IPDB_BENCHMARK_JSON_MAIN(suite, default_path); results
// are merged into that file with one JSON object per line:
//
//   {
//     "schema": "ipdb-bench-v1",
//     "results": [
//       {"suite": "math_bench", "op": "BM_RationalSum/512",
//        "ns_per_op": 68839.2, "iterations": 10240,
//        "counters": {"shannon": 12}},
//       ...
//     ]
//   }
//
// ResultLine is the single place that knows this schema: per-benchmark
// user counters (state.counters, e.g. pqe_bench's artifact_hits) ride
// along in each row instead of being dropped on the floor. Re-running a
// binary replaces only its own suite's lines (matched by the
// `"suite": "<name>"` prefix every result line carries), so several
// binaries can feed one file.
//
// Every binary also understands two flags, parsed before Google
// Benchmark sees the command line:
//   --bench_json_out=PATH   where to merge the result rows
//   --trace-out PATH        enable span tracing for the run and write a
//                           Chrome-trace/Perfetto file (with the final
//                           metrics snapshot embedded under
//                           otherData.metrics) when the run finishes
// Both accept `--flag=value` and `--flag value`.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace ipdb {
namespace bench_json {

// The one place that knows the per-result schema.
inline std::string ResultLine(
    const std::string& suite, const std::string& op, double ns_per_op,
    int64_t iterations,
    const std::vector<std::pair<std::string, double>>& counters) {
  std::ostringstream line;
  line << "{\"suite\": \"" << suite << "\", \"op\": \"" << op
       << "\", \"ns_per_op\": " << ns_per_op
       << ", \"iterations\": " << iterations;
  if (!counters.empty()) {
    line << ", \"counters\": {";
    for (size_t i = 0; i < counters.size(); ++i) {
      line << (i == 0 ? "" : ", ") << '"' << counters[i].first
           << "\": " << counters[i].second;
    }
    line << '}';
  }
  line << '}';
  return line.str();
}

class JsonDumpReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::vector<std::pair<std::string, double>> counters;
      counters.reserve(run.counters.size());
      for (const auto& [name, counter] : run.counters) {
        counters.emplace_back(name, static_cast<double>(counter));
      }
      lines_.push_back(ResultLine(suite_, run.benchmark_name(),
                                  run.GetAdjustedRealTime(), run.iterations,
                                  counters));
    }
  }

  void set_suite(std::string suite) { suite_ = std::move(suite); }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::string suite_;
  std::vector<std::string> lines_;
};

// Rewrites `path`, keeping result lines of other suites and replacing the
// ones belonging to `suite`.
inline void MergeIntoFile(const std::string& path, const std::string& suite,
                          const std::vector<std::string>& fresh) {
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    const std::string any = "{\"suite\": \"";
    const std::string mine = any + suite + "\"";
    while (std::getline(in, line)) {
      size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      std::string body = line.substr(start);
      if (body.compare(0, any.size(), any) != 0) continue;  // header/footer
      if (!body.empty() && body.back() == ',') body.pop_back();
      if (body.compare(0, mine.size(), mine) == 0) continue;
      kept.push_back(body);
    }
  }
  kept.insert(kept.end(), fresh.begin(), fresh.end());
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"ipdb-bench-v1\",\n  \"results\": [\n";
  for (size_t i = 0; i < kept.size(); ++i) {
    out << "    " << kept[i] << (i + 1 < kept.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Removes `--name=value` or `--name value` from argv and returns the
// value ("" when the flag is absent).
inline std::string ExtractFlag(int* argc, char** argv,
                               const std::string& name) {
  const std::string with_equals = name + "=";
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    int consumed = 0;
    if (arg.compare(0, with_equals.size(), with_equals) == 0) {
      value = arg.substr(with_equals.size());
      consumed = 1;
    } else if (arg == name && i + 1 < *argc) {
      value = argv[i + 1];
      consumed = 2;
    } else {
      continue;
    }
    for (int j = i; j + consumed < *argc; ++j) argv[j] = argv[j + consumed];
    *argc -= consumed;
    return value;
  }
  return "";
}

// Drop-in replacement for BENCHMARK_MAIN(): runs all registered
// benchmarks with console output, merges the results into the JSON
// file, and honours --trace-out (span tracing + Chrome-trace export).
inline int RunWithJsonDump(int argc, char** argv, const std::string& suite,
                           const std::string& default_json_path) {
  std::string json_path = ExtractFlag(&argc, argv, "--bench_json_out");
  if (json_path.empty()) json_path = default_json_path;
  const std::string trace_path = ExtractFlag(&argc, argv, "--trace-out");
  if (!trace_path.empty()) obs::SetTracingEnabled(true);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonDumpReporter reporter;
  reporter.set_suite(suite);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  MergeIntoFile(json_path, suite, reporter.lines());
  std::fprintf(stderr, "wrote %zu result(s) for suite '%s' to %s\n",
               reporter.lines().size(), suite.c_str(), json_path.c_str());

  if (!trace_path.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    const int64_t dropped = recorder.dropped_events();
    const std::vector<obs::TraceEvent> events = recorder.Drain();
    const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Snapshot();
    Status written =
        obs::WriteChromeTrace(trace_path, events, &snapshot, dropped);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "wrote %zu span(s) (%lld dropped) and a metrics snapshot "
                 "to %s\n",
                 events.size(), static_cast<long long>(dropped),
                 trace_path.c_str());
  }
  return 0;
}

}  // namespace bench_json
}  // namespace ipdb

#define IPDB_BENCHMARK_JSON_MAIN(suite, default_path)                     \
  int main(int argc, char** argv) {                                       \
    return ipdb::bench_json::RunWithJsonDump(argc, argv, suite,           \
                                             default_path);               \
  }

#endif  // IPDB_BENCH_BENCH_JSON_H_
