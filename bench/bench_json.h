#ifndef IPDB_BENCH_BENCH_JSON_H_
#define IPDB_BENCH_BENCH_JSON_H_

// Console reporting plus a machine-readable dump for before/after
// comparisons. Each Google-Benchmark binary calls RunWithJsonDump with a
// suite name and an output path; results are merged into that file with
// one JSON object per line:
//
//   {
//     "schema": "ipdb-bench-v1",
//     "results": [
//       {"suite": "math_bench", "op": "BM_RationalSum/512",
//        "ns_per_op": 68839.2, "iterations": 10240},
//       ...
//     ]
//   }
//
// Re-running a binary replaces only its own suite's lines (matched by the
// `"suite": "<name>"` prefix every result line carries), so several
// binaries can feed one file.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ipdb {
namespace bench_json {

class JsonDumpReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::ostringstream line;
      line << "{\"suite\": \"" << suite_ << "\", \"op\": \""
           << run.benchmark_name() << "\", \"ns_per_op\": "
           << run.GetAdjustedRealTime() << ", \"iterations\": "
           << run.iterations << "}";
      lines_.push_back(line.str());
    }
  }

  void set_suite(std::string suite) { suite_ = std::move(suite); }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::string suite_;
  std::vector<std::string> lines_;
};

// Rewrites `path`, keeping result lines of other suites and replacing the
// ones belonging to `suite`.
inline void MergeIntoFile(const std::string& path, const std::string& suite,
                          const std::vector<std::string>& fresh) {
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    const std::string any = "{\"suite\": \"";
    const std::string mine = any + suite + "\"";
    while (std::getline(in, line)) {
      size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      std::string body = line.substr(start);
      if (body.compare(0, any.size(), any) != 0) continue;  // header/footer
      if (!body.empty() && body.back() == ',') body.pop_back();
      if (body.compare(0, mine.size(), mine) == 0) continue;
      kept.push_back(body);
    }
  }
  kept.insert(kept.end(), fresh.begin(), fresh.end());
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"ipdb-bench-v1\",\n  \"results\": [\n";
  for (size_t i = 0; i < kept.size(); ++i) {
    out << "    " << kept[i] << (i + 1 < kept.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Drop-in replacement for BENCHMARK_MAIN(): runs all registered
// benchmarks with console output and merges the results into `path`.
inline int RunWithJsonDump(int argc, char** argv, const std::string& suite,
                           const std::string& path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonDumpReporter reporter;
  reporter.set_suite(suite);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  MergeIntoFile(path, suite, reporter.lines());
  std::fprintf(stderr, "wrote %zu result(s) for suite '%s' to %s\n",
               reporter.lines().size(), suite.c_str(), path.c_str());
  return 0;
}

}  // namespace bench_json
}  // namespace ipdb

#define IPDB_BENCHMARK_JSON_MAIN(suite, default_path)                      \
  int main(int argc, char** argv) {                                        \
    std::string path = default_path;                                       \
    for (int i = 1; i < argc; ++i) {                                       \
      std::string arg = argv[i];                                           \
      const std::string prefix = "--bench_json_out=";                      \
      if (arg.compare(0, prefix.size(), prefix) == 0) {                    \
        path = arg.substr(prefix.size());                                  \
        for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];          \
        --argc;                                                            \
        break;                                                             \
      }                                                                    \
    }                                                                      \
    return ipdb::bench_json::RunWithJsonDump(argc, argv, suite, path);     \
  }

#endif  // IPDB_BENCH_BENCH_JSON_H_
