// Theorem 5.9 (BID ⊆ FO(TI)) across block structures: exact verification
// of the Lemma 5.7 construction on finite BID-PDBs of varying shapes,
// plus the countable Proposition D.3 family handled by truncation.

#include <cstdio>
#include <vector>

#include "core/bid_to_ti.h"
#include "core/paper_examples.h"

namespace {

using ipdb::math::Rational;
namespace core = ipdb::core;
namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

void Run(const char* label, const pdb::BidPdb<Rational>& bid) {
  auto built = core::BuildBidToTi(bid);
  if (!built.ok()) {
    std::printf("  %-34s failed: %s\n", label,
                built.status().ToString().c_str());
    return;
  }
  auto tv = core::VerifyBidToTi(bid, built.value());
  int facts = built.value().ti.num_facts();
  std::printf("  %-34s blocks=%-3d facts=%-3d condition size=%-5d "
              "TV=%s\n",
              label, bid.num_blocks(), facts,
              built.value().condition.Size(),
              tv.ok() ? (tv.value() == 0.0 ? "0 (exact)" : "nonzero!")
                      : "error");
}

}  // namespace

int main() {
  std::printf("=== Theorem 5.9: BID as FO-views over TI ===\n\n");

  rel::Schema schema({{"U", 1}});

  Run("Example B.2 (residual 0)", core::ExampleB2());

  Run("two blocks, positive residuals",
      pdb::BidPdb<Rational>::CreateOrDie(
          schema, {{{U(1), Rational::Ratio(1, 3)},
                    {U(2), Rational::Ratio(1, 3)}},
                   {{U(3), Rational::Ratio(1, 4)}}}));

  Run("mixed residuals",
      pdb::BidPdb<Rational>::CreateOrDie(
          schema, {{{U(1), Rational::Ratio(2, 3)},
                    {U(2), Rational::Ratio(1, 3)}},
                   {{U(3), Rational::Ratio(1, 2)}},
                   {{U(4), Rational::Ratio(1, 5)},
                    {U(5), Rational::Ratio(1, 5)}}}));

  {
    rel::Schema multi({{"A", 1}, {"B", 2}});
    rel::Fact a(0, {rel::Value::Int(1)});
    rel::Fact b(1, {rel::Value::Int(1), rel::Value::Int(2)});
    Run("multi-relation block",
        pdb::BidPdb<Rational>::CreateOrDie(
            multi, {{{a, Rational::Ratio(1, 2)},
                     {b, Rational::Ratio(1, 2)}}}));
  }

  // Countable: the Proposition D.3 family via a truncated prefix (each
  // block finite; the tail certificate bounds the ignored mass).
  {
    pdb::CountableBidPdb countable = core::PropositionD3Bid();
    pdb::BidPdb<double> prefix = countable.Truncate(3);
    auto built = core::BuildBidToTi(prefix);
    if (built.ok()) {
      auto tv = core::VerifyBidToTi(prefix, built.value());
      std::printf(
          "  %-34s blocks=%-3d facts=%-3d condition size=%-5d "
          "TV=%.3g\n",
          "Prop. D.3 truncation (double)", prefix.num_blocks(),
          built.value().ti.num_facts(), built.value().condition.Size(),
          tv.ok() ? tv.value() : -1.0);
    }
  }

  std::printf("\nEvery BID-PDB rebuilt as condition + projection over an "
              "augmented TI-PDB.\n");
  return 0;
}
