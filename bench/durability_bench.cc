// Durability macro-benchmarks with a deterministic custom main (no
// Google-Benchmark runner; shares bench_json.h reporting):
//
//   snapshot/write/1e6    encode + crash-safe write of a 10^6-fact
//                         store (counters: mb_per_s, snapshot_bytes)
//   snapshot/restore/1e6  read + decode + full validation back into a
//                         live store (counter: mb_per_s)
//   recover/1e6           Manager::Load of the same instance with a
//                         10^4-record WAL tail: snapshot decode + replay
//                         (counters: recovery_ms, wal_records)
//   wal/append_overhead   UpdateProbability throughput through the
//                         journaled DurableStore vs the bare TiStore
//                         (counter: wal_overhead = durable/plain - 1,
//                         gated <= 0.15 by ci.sh)
//
// Usage: durability_bench [--bench_json_out=PATH] [--facts=N]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "durability/io.h"
#include "durability/manager.h"
#include "durability/snapshot.h"
#include "math/rational.h"
#include "storage/ti_store.h"
#include "util/status.h"

namespace ipdb {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

rel::Fact R(int64_t a, int64_t b) {
  return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
}

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::fprintf(stderr, "durability_bench: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

/// A binary-relation TI of `n` facts with a sprinkling of exact
/// marginals (1 in 1024), the shape the storage gates use.
std::shared_ptr<storage::TiStore> BuildStore(int64_t n) {
  storage::TiStore::Builder builder(rel::Schema({{"R", 2}}));
  builder.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    if (i % 1024 == 0) {
      builder.AddExact(R(i, i + 1),
                       math::Rational::Ratio(i % 997 + 1, 1009));
    } else {
      builder.Add(R(i, i + 1),
                  0.015625 + static_cast<double>(i % 64) / 64.0 * 0.96875);
    }
  }
  auto store = builder.Finish();
  if (!store.ok()) Die("build store", store.status());
  return store.value();
}

struct Row {
  std::string op;
  double ns_per_op;
  int64_t iterations;
  std::vector<std::pair<std::string, double>> counters;
};

int Run(int argc, char** argv) {
  std::string json_path =
      bench_json::ExtractFlag(&argc, argv, "--bench_json_out");
  if (json_path.empty()) json_path = "BENCH_durability.json";
  const std::string facts_flag =
      bench_json::ExtractFlag(&argc, argv, "--facts");
  const int64_t n =
      facts_flag.empty() ? 1000000 : std::strtoll(facts_flag.c_str(),
                                                  nullptr, 10);

  char scratch[] = "/tmp/ipdb_durbench_XXXXXX";
  if (::mkdtemp(scratch) == nullptr) {
    std::fprintf(stderr, "durability_bench: mkdtemp failed\n");
    return 1;
  }
  const std::string dir = scratch;
  std::vector<Row> rows;

  std::shared_ptr<storage::TiStore> store = BuildStore(n);
  durability::Manager manager(dir);

  // --- snapshot write ------------------------------------------------
  {
    double best_ns = 0;
    int64_t bytes = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const int64_t t0 = NowNs();
      Status status = manager.Save("db", *store);
      const int64_t elapsed = NowNs() - t0;
      if (!status.ok()) Die("snapshot write", status);
      if (rep == 0) {
        std::string raw;
        Status read =
            durability::ReadFileToString(manager.SnapshotPath("db"), &raw);
        if (!read.ok()) Die("stat snapshot", read);
        bytes = static_cast<int64_t>(raw.size());
      }
      if (best_ns == 0 || elapsed < best_ns) {
        best_ns = static_cast<double>(elapsed);
      }
    }
    const double mb_per_s =
        static_cast<double>(bytes) / (best_ns / 1e9) / (1024.0 * 1024.0);
    rows.push_back({"snapshot/write/1e6", best_ns, 3,
                    {{"mb_per_s", mb_per_s},
                     {"snapshot_bytes", static_cast<double>(bytes)},
                     {"facts", static_cast<double>(n)}}});
    std::printf("snapshot/write    %8.1f ms  %7.1f MB/s  (%lld bytes)\n",
                best_ns / 1e6, mb_per_s, static_cast<long long>(bytes));
  }

  // --- snapshot restore ----------------------------------------------
  {
    double best_ns = 0;
    int64_t bytes = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const int64_t t0 = NowNs();
      StatusOr<durability::SnapshotResult> read =
          durability::ReadSnapshot(manager.SnapshotPath("db"));
      const int64_t elapsed = NowNs() - t0;
      if (!read.ok()) Die("snapshot restore", read.status());
      if (read.value().store->num_facts() != n) {
        std::fprintf(stderr, "durability_bench: restore lost facts\n");
        return 1;
      }
      if (rep == 0) {
        std::string raw;
        Status stat =
            durability::ReadFileToString(manager.SnapshotPath("db"), &raw);
        if (!stat.ok()) Die("stat snapshot", stat);
        bytes = static_cast<int64_t>(raw.size());
      }
      if (best_ns == 0 || elapsed < best_ns) {
        best_ns = static_cast<double>(elapsed);
      }
    }
    const double mb_per_s =
        static_cast<double>(bytes) / (best_ns / 1e9) / (1024.0 * 1024.0);
    rows.push_back({"snapshot/restore/1e6", best_ns, 3,
                    {{"mb_per_s", mb_per_s},
                     {"facts", static_cast<double>(n)}}});
    std::printf("snapshot/restore  %8.1f ms  %7.1f MB/s\n", best_ns / 1e6,
                mb_per_s);
  }

  // --- recovery: snapshot + WAL tail ----------------------------------
  const int64_t wal_records = std::min<int64_t>(10000, n);
  {
    StatusOr<std::unique_ptr<durability::DurableStore>> created =
        manager.Create("db", store);
    if (!created.ok()) Die("create instance", created.status());
    std::unique_ptr<durability::DurableStore> live =
        std::move(created).value();
    for (int64_t i = 0; i < wal_records; ++i) {
      const int64_t target = (i * 7919) % n;
      Status status = live->UpdateProbability(R(target, target + 1), 0.5);
      if (!status.ok()) Die("journal update", status);
    }
    if (Status status = live->Sync(); !status.ok()) Die("sync", status);
  }
  {
    const int64_t t0 = NowNs();
    StatusOr<std::unique_ptr<durability::DurableStore>> recovered =
        manager.Load("db");
    const double elapsed = static_cast<double>(NowNs() - t0);
    if (!recovered.ok()) Die("recover", recovered.status());
    if (recovered.value()->recovery_stats().applied != wal_records) {
      std::fprintf(stderr, "durability_bench: replay applied %lld != %lld\n",
                   static_cast<long long>(
                       recovered.value()->recovery_stats().applied),
                   static_cast<long long>(wal_records));
      return 1;
    }
    rows.push_back({"recover/1e6", elapsed, 1,
                    {{"recovery_ms", elapsed / 1e6},
                     {"wal_records", static_cast<double>(wal_records)},
                     {"facts", static_cast<double>(n)}}});
    std::printf("recover           %8.1f ms  (%lld facts + %lld WAL "
                "records)\n",
                elapsed / 1e6, static_cast<long long>(n),
                static_cast<long long>(wal_records));
  }

  // --- WAL append overhead on the mutation path -----------------------
  {
    const int64_t updates = std::min<int64_t>(200000, n);
    auto one_pass = [&](int rep, auto&& update) {
      const int64_t t0 = NowNs();
      for (int64_t i = 0; i < updates; ++i) {
        const int64_t target = (i * 6007) % n;
        const double p = 0.25 + static_cast<double>(rep) * 0.125;
        Status status = update(R(target, target + 1), p);
        if (!status.ok()) Die("update", status);
      }
      return static_cast<double>(NowNs() - t0) /
             static_cast<double>(updates);
    };

    // The journaled instance wraps a copy of the store, so both sides do
    // identical storage work per pass. Each rep times a bare pass and a
    // journaled pass back-to-back (same noise epoch) and the gate ratio
    // is the median of the per-rep ratios — best-of-each-side would let
    // one lone fast bare pass inflate the overhead on a busy box, which
    // is exactly what ci.sh gates against.
    StatusOr<std::unique_ptr<durability::DurableStore>> created =
        manager.Create("db", store);
    if (!created.ok()) Die("create instance", created.status());
    std::unique_ptr<durability::DurableStore> live =
        std::move(created).value();
    constexpr int kReps = 5;
    double plain_ns = 0;
    double durable_ns = 0;
    double ratios[kReps];
    for (int rep = 0; rep < kReps; ++rep) {
      const double bare = one_pass(rep, [&](const rel::Fact& f, double p) {
        return store->UpdateProbability(f, p);
      });
      const double journaled =
          one_pass(rep, [&](const rel::Fact& f, double p) {
            return live->UpdateProbability(f, p);
          });
      ratios[rep] = journaled / bare;
      if (plain_ns == 0 || bare < plain_ns) plain_ns = bare;
      if (durable_ns == 0 || journaled < durable_ns) durable_ns = journaled;
    }
    if (Status status = live->Sync(); !status.ok()) Die("sync", status);
    std::sort(ratios, ratios + kReps);
    const double overhead = ratios[kReps / 2] - 1.0;
    rows.push_back({"wal/append_overhead", durable_ns, updates,
                    {{"wal_overhead", overhead},
                     {"plain_ns_per_update", plain_ns},
                     {"durable_ns_per_update", durable_ns}}});
    std::printf("wal overhead      %8.1f ns/update journaled vs %.1f bare, "
                "%+.1f%% (median of paired reps)\n",
                durable_ns, plain_ns, overhead * 100.0);
  }

  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Row& row : rows) {
    lines.push_back(bench_json::ResultLine("durability_bench", row.op,
                                           row.ns_per_op, row.iterations,
                                           row.counters));
  }
  bench_json::MergeIntoFile(json_path, "durability_bench", lines);
  std::printf("wrote %s\n", json_path.c_str());

  for (const char* file : {"/db/snapshot.ipdb", "/db/snapshot.ipdb.tmp",
                           "/db/wal.log"}) {
    ::unlink((dir + file).c_str());
  }
  ::rmdir((dir + "/db").c_str());
  ::rmdir(dir.c_str());
  return 0;
}

}  // namespace
}  // namespace ipdb

int main(int argc, char** argv) { return ipdb::Run(argc, argv); }
