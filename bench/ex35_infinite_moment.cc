// Reproduces Example 3.5: |D_i| = 2^i, P(D_i) = 3·4^{-i}. The first
// moment converges to exactly 3 while the second moment's partial sums
// grow linearly (each term contributes 3) — the Proposition 3.4 witness
// that this PDB is not in FO(TI).

#include <cstdio>

#include "core/paper_examples.h"
#include "core/size_moments.h"

int main() {
  namespace core = ipdb::core;
  ipdb::pdb::CountablePdb ex35 = core::Example35();

  std::printf("=== Example 3.5: E|D| finite, E|D|^2 infinite ===\n\n");
  std::printf("  %-6s %-22s %-22s\n", "N", "partial E|D| (first N)",
              "partial E|D|^2");
  ipdb::Series m1 = ex35.MomentSeries(1);
  ipdb::Series m2 = ex35.MomentSeries(2);
  double s1 = 0.0;
  double s2 = 0.0;
  for (int64_t i = 0; i < 24; ++i) {
    s1 += m1.term(i);
    s2 += m2.term(i);
    if ((i + 1) % 4 == 0) {
      std::printf("  %-6lld %-22.12f %-22.1f\n",
                  static_cast<long long>(i + 1), s1, s2);
    }
  }

  core::FiniteMomentsReport report = core::CheckFiniteMoments(ex35, 3);
  std::printf("\nCertified analysis:\n%s", report.ToString().c_str());
  std::printf("Paper: E|D| = 3 exactly; our enclosure: %s\n",
              report.moments[0].enclosure.ToString().c_str());
  return 0;
}
