// Reproduces Example 3.9: |adom(D_n)| = ceil(log2 n), P(D_n) = c/n².
// All size moments are finite (the necessary condition of Prop. 3.4 does
// not fire), yet for every representation arity r, the Lemma 3.7 balance
// bound with the harmonic series a_n = 1/n is eventually violated —
// certifying that no FO-view over a TI-PDB produces this PDB.

#include <cstdio>

#include "core/balance_bound.h"
#include "core/paper_examples.h"
#include "core/size_moments.h"

int main() {
  namespace core = ipdb::core;
  const double c = 6.0 / (M_PI * M_PI);

  std::printf("=== Example 3.9: finite moments, yet not in FO(TI) ===\n\n");

  // Moments are finite (certified).
  ipdb::pdb::CountablePdb ex39 = core::Example39();
  core::FiniteMomentsReport moments = core::CheckFiniteMoments(ex39, 4);
  std::printf("moments 1..4 all finite: %s\n\n",
              moments.all_finite_certified ? "yes (certified)" : "NO");

  // Balance-bound sweep per candidate arity r.
  for (int r = 1; r <= 3; ++r) {
    int64_t threshold = core::Example39ViolationThreshold(r, c);
    std::printf("r = %d: analytic violation threshold n0 = %lld\n", r,
                static_cast<long long>(threshold));
    int64_t window = 4000;
    core::BalanceReport report = core::SweepBalanceBound(
        [](int64_t n) { return core::Example39Probability(n); },
        [](int64_t n) { return core::Example39AdomSize(n); },
        [](int64_t n) { return 1.0 / static_cast<double>(n); }, r,
        threshold, threshold + window, window / 4, threshold);
    for (const core::BalanceRow& row : report.rows) {
      std::printf("    n=%-12lld P(D_n)=%-12.3e bound=%-12.3e %s\n",
                  static_cast<long long>(row.n), row.prob, row.bound,
                  row.satisfied ? "(dagger) holds" : "(dagger) violated");
    }
    std::printf("    tail of window entirely violated: %s\n\n",
                report.tail_all_violated ? "yes" : "NO");
  }

  std::printf(
      "For every arity r the Lemma 3.7 inequality fails from n0 on;\n"
      "since it must hold infinitely often for PDBs in FO(TI), Example "
      "3.9 is not representable.\n");
  return 0;
}
