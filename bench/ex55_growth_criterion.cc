// Reproduces Example 5.5 and Theorem 5.3: a PDB of *unbounded* instance
// size (|D_i| = i, P(D_i) = 2^{-i²}/x) that satisfies the growth
// criterion with c = 1 and therefore lies in FO(TI). The table shows the
// criterion terms i·P^{1/i} shrinking geometrically; the paper bounds
// their sum by 2/x.

#include <cstdio>

#include "core/growth_criterion.h"
#include "core/paper_examples.h"
#include "core/segment_construction.h"
#include "core/size_moments.h"

int main() {
  namespace core = ipdb::core;

  std::printf("=== Example 5.5 / Theorem 5.3: unbounded size, still in "
              "FO(TI) ===\n\n");

  core::CriterionFamily criterion = core::Example55Criterion();
  ipdb::Series series = core::CriterionSeries(criterion, 1);
  std::printf("  %-4s %-10s %-16s %-16s\n", "i", "|D_i|", "term i*P^(1/i)",
              "partial sum");
  double partial = 0.0;
  for (int64_t i = 0; i < 12; ++i) {
    double term = series.term(i);
    partial += term;
    std::printf("  %-4lld %-10lld %-16.8f %-16.8f\n",
                static_cast<long long>(i + 1),
                static_cast<long long>(criterion.size_at(i)), term,
                partial);
  }

  core::GrowthCriterionResult result =
      core::FindCriterionWitness(criterion, 3);
  std::printf("\n%s\n", result.ToString().c_str());

  // Moments also all finite (consistency with Prop. 3.4).
  ipdb::pdb::CountablePdb ex55 = core::Example55();
  core::FiniteMomentsReport moments = core::CheckFiniteMoments(ex55, 4);
  std::printf("moments 1..4 finite: %s; E|D| enclosure %s\n",
              moments.all_finite_certified ? "yes" : "NO",
              moments.moments[0].enclosure.ToString().c_str());

  // Constructive side: run the Lemma 5.1 construction on a truncation
  // and verify the reconstruction.
  auto prefix = ex55.TruncateAndRenormalize(3);
  if (prefix.ok()) {
    auto built = core::BuildSegmentConstruction(prefix.value(), 1);
    if (built.ok()) {
      auto tv = core::VerifySegmentConstruction(prefix.value(),
                                                built.value());
      std::printf(
          "Lemma 5.1 on the 3-world truncation: %d segment facts, "
          "TV = %.3g\n",
          built.value().ti.num_facts(), tv.ok() ? tv.value() : -1.0);
    }
  }
  return 0;
}
