// Reproduces Example 5.6 / Propositions D.2 and D.3: the Theorem 5.3
// criterion is sufficient but NOT necessary. The TI-PDB with marginals
// p_i = 1/(i²+1) is trivially in FO(TI) (it is TI), yet its criterion
// sum diverges for every c — as does the criterion sum of the
// corresponding two-fact-block BID-PDB.

#include <cstdio>

#include "core/paper_examples.h"

int main() {
  namespace core = ipdb::core;

  std::printf("=== Example 5.6 / Prop. D.2, D.3: the criterion gap ===\n\n");

  // The TI-PDB itself is well-defined (Theorem 2.4).
  ipdb::pdb::CountableTiPdb ti = core::Example56Ti();
  ipdb::SumAnalysis marginals = ti.CheckWellDefined();
  std::printf("TI marginal sum: %s\n\n", marginals.ToString().c_str());

  std::printf("Prop. D.2 reduced criterion lower-bound series "
              "min(1,Z)^c n^{-2c} 2^{n-1}:\n");
  std::printf("  %-4s", "n");
  for (int c = 1; c <= 3; ++c) std::printf(" %-14s", ("c=" + std::to_string(c)).c_str());
  std::printf("\n");
  for (int64_t n = 8; n <= 64; n *= 2) {
    std::printf("  %-4lld", static_cast<long long>(n));
    for (int c = 1; c <= 3; ++c) {
      ipdb::Series series = core::PropositionD2ReducedSeries(c);
      std::printf(" %-14.4e", series.term(n - 1));
    }
    std::printf("\n");
  }
  for (int c = 1; c <= 3; ++c) {
    ipdb::SumAnalysis analysis =
        ipdb::AnalyzeSum(core::PropositionD2ReducedSeries(c));
    std::printf("  c=%d: %s\n", c, analysis.ToString().c_str());
  }

  std::printf("\nProp. D.3 (BID analogue, scaled by 2^{-c}):\n");
  ipdb::pdb::CountableBidPdb bid = core::PropositionD3Bid();
  std::printf("  BID block-mass sum: %s\n",
              bid.CheckWellDefined().ToString().c_str());
  for (int c = 1; c <= 3; ++c) {
    ipdb::SumAnalysis analysis =
        ipdb::AnalyzeSum(core::PropositionD3ReducedSeries(c));
    std::printf("  c=%d: %s\n", c, analysis.ToString().c_str());
  }

  std::printf(
      "\nBoth PDBs are in FO(TI) (trivially / by Theorem 5.9), yet the\n"
      "criterion diverges for every c: the characterization gap of "
      "Section 5 is real.\n");
  return 0;
}
