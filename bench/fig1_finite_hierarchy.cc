// Reproduces Figure 1: the Hasse diagram of *finite* PDB classes.
//
//     PDB_fin = FO(TI_fin)
//       /            |
//   BID_fin     CQ(TI_fin) = UCQ(TI_fin)      (incomparable)
//       |            /
//          TI_fin
//
// Every edge is witnessed computationally:
//  * FO(TI_fin) = PDB_fin       — the world-selector construction, exact;
//  * CQ = UCQ over TI_fin       — Proposition B.4's table construction;
//  * BID_fin ⊄ CQ(TI_fin)       — Example B.2 (two maximal worlds);
//  * CQ(TI_fin) ⊄ BID_fin       — Example B.3 (missing middle world);
//  * TI_fin ⊊ both              — Example B.2 is not TI; B.3's image is
//                                 not TI.

#include <cstdio>

#include "core/finite_completeness.h"
#include "core/idb.h"
#include "core/monotone_to_cq.h"
#include "core/paper_examples.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/classify.h"
#include "logic/parser.h"
#include "pdb/pushforward.h"
#include "pqe/lineage.h"
#include "test_util.h"
#include "util/random.h"

namespace {

using ipdb::math::Rational;
namespace core = ipdb::core;
namespace pdb = ipdb::pdb;
namespace logic = ipdb::logic;

void Edge(const char* claim, const char* witness, bool verified) {
  std::printf("  %-44s %-36s %s\n", claim, witness,
              verified ? "VERIFIED" : "FAILED");
}

}  // namespace

int main() {
  std::printf("=== Figure 1: finite PDB classes with independence "
              "assumptions ===\n\n");

  // (1) FO(TI_fin) = PDB_fin: every random finite PDB is represented
  // exactly by the world-selector construction.
  {
    ipdb::Pcg32 rng(2024);
    ipdb::rel::Schema schema({{"R", 2}});
    bool all_exact = true;
    for (int trial = 0; trial < 25; ++trial) {
      pdb::FinitePdb<Rational> random_pdb =
          ipdb::testing_util::RandomRationalPdb(schema, 5, 2, 0.4, 40,
                                                &rng);
      auto built = core::BuildFiniteCompleteness(random_pdb);
      if (!built.ok()) {
        all_exact = false;
        break;
      }
      auto tv = core::VerifyFiniteCompleteness(random_pdb, built.value());
      all_exact = all_exact && tv.ok() && tv.value() == 0.0;
    }
    Edge("PDB_fin = FO(TI_fin)", "world-selector on 25 random PDBs",
         all_exact);
  }

  // (2) CQ(TI_fin) = UCQ(TI_fin): Proposition B.4 collapses a UCQ view.
  {
    ipdb::rel::Schema in({{"A", 1}, {"B", 1}});
    pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
        in, {{ipdb::rel::Fact(0, {ipdb::rel::Value::Int(1)}),
              Rational::Ratio(1, 2)},
             {ipdb::rel::Fact(1, {ipdb::rel::Value::Int(2)}),
              Rational::Ratio(1, 4)}});
    ipdb::rel::Schema out({{"T", 1}});
    logic::FoView::Definition def;
    def.output_relation = 0;
    def.head_vars = {"x"};
    def.body = logic::ParseFormula("A(x) | B(x)", in).value();
    logic::FoView ucq = logic::FoView::Create(in, out, {def}).value();
    auto built = core::BuildMonotoneToCq(ti, ucq);
    bool ok = built.ok() && logic::IsCqView(built.value().view);
    if (ok) {
      auto tv = core::VerifyMonotoneToCq(ti, ucq, built.value());
      ok = tv.ok() && tv.value() == 0.0;
    }
    Edge("CQ(TI_fin) = UCQ(TI_fin)", "Prop. B.4 table construction", ok);
  }

  // (3) BID_fin not in CQ(TI_fin): Example B.2 has two maximal worlds,
  // contradicting Proposition B.1 for monotone views.
  {
    pdb::FinitePdb<Rational> b2 = core::ExampleB2().Expand();
    bool two_maximal = !core::HasUniqueMaximalWorld(b2);
    bool exclusive = core::CertifyNotMonotoneOverTi(b2);
    Edge("BID_fin !<= CQ(TI_fin)",
         "Ex. B.2: two maximal worlds + exclusivity",
         two_maximal && exclusive);
  }

  // (4) CQ(TI_fin) not in BID_fin: Example B.3's image misses the middle
  // world.
  {
    core::ExampleB3 b3 = core::MakeExampleB3(Rational::Ratio(1, 2),
                                             Rational::Ratio(1, 3));
    auto image = pdb::Pushforward(b3.ti.Expand(), b3.view);
    bool ok = image.ok();
    pdb::FinitePdb<Rational> result;
    if (ok) {
      result = image.value().DropNullWorlds();
      std::vector<ipdb::rel::Fact> facts = result.FactSet();
      ok = result.num_worlds() == 3 && !result.IsTupleIndependent() &&
           facts.size() == 2 &&
           !result.IsBlockIndependentDisjoint({{facts[0], facts[1]}}) &&
           !result.IsBlockIndependentDisjoint({{facts[0]}, {facts[1]}});
    }
    Edge("CQ(TI_fin) !<= BID_fin", "Ex. B.3: worlds {}, {t}, {t,t'}", ok);
  }

  // (5) TI_fin strictly below both: B.2 is BID but not TI; B.3's image
  // is in CQ(TI_fin) but not TI.
  {
    pdb::FinitePdb<Rational> b2 = core::ExampleB2().Expand();
    Edge("TI_fin < BID_fin", "Ex. B.2 is BID, not TI",
         !b2.IsTupleIndependent());
  }

  // (6) Exact d-DNNF witness: the path query over Example B.3's TI-PDB
  // (facts R(a,a): p, R(a,b): p2) is satisfied exactly by the worlds
  // containing R(a,a), so Pr = p. Compile to a verified d-DNNF circuit
  // and evaluate over the rational semiring: the result equals p with
  // no floating-point tolerance anywhere.
  {
    const Rational p = Rational::Ratio(1, 2);
    const Rational p2 = Rational::Ratio(1, 3);
    core::ExampleB3 b3 = core::MakeExampleB3(p, p2);
    pdb::TiPdb<double>::FactList shadow;
    std::vector<Rational> exact_probs;
    for (const auto& [fact, marginal] : b3.ti.facts()) {
      shadow.emplace_back(fact, marginal.ToDouble());
      exact_probs.push_back(marginal);
    }
    pdb::TiPdb<double> ti =
        pdb::TiPdb<double>::CreateOrDie(b3.ti.schema(), std::move(shadow));
    logic::Formula query =
        logic::ParseSentence("exists x y z. R(x, y) & R(y, z)", ti.schema())
            .value();
    ipdb::pqe::Lineage lineage;
    auto root = ipdb::pqe::GroundSentence(ti, query, &lineage);
    bool ok = root.ok();
    if (ok) {
      ipdb::kc::CompileOptions verify;
      verify.verify = true;
      auto compiled = ipdb::kc::CompileLineage(&lineage, root.value(), verify);
      ok = compiled.ok();
      if (ok) {
        auto exact = ipdb::kc::EvaluateCircuit<Rational>(
            compiled->circuit, compiled->root, exact_probs);
        ok = exact.ok() && exact.value() == p;
      }
    }
    Edge("exact circuit witness", "Ex. B.3 path query: Pr = p = 1/2", ok);
  }

  std::printf("\nAll edges of Figure 1 reproduced.\n");
  return 0;
}
