// Reproduces Figure 2 / Theorem 4.1: eliminating an FO-condition from a
// conditional representation Φ(I | φ) via k independent copies plus a
// ⊥-fact. For a sweep of inputs the table reports the chosen k, the
// special-instance mass p₀, P(ψ), the size of the constructed TI-PDB J,
// and the exact total-variation distance between Φ'(J) and Φ(I | φ)
// (always 0: the construction is exact in rational arithmetic).

#include <cstdio>

#include "core/conditional_views.h"
#include "logic/parser.h"
#include "pdb/conditioning.h"

namespace {

using ipdb::math::Rational;
namespace core = ipdb::core;
namespace pdb = ipdb::pdb;
namespace logic = ipdb::logic;
namespace rel = ipdb::rel;

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

void Run(const char* label, const pdb::TiPdb<Rational>& ti,
         const logic::FoView& view, const logic::Formula& phi) {
  auto built = core::EliminateCondition(ti, view, phi);
  if (!built.ok()) {
    std::printf("  %-28s construction failed: %s\n", label,
                built.status().ToString().c_str());
    return;
  }
  auto tv = core::VerifyConditionElimination(built.value());
  std::printf("  %-28s k=%-3d p0=%-8s |facts(J)|=%-4d worlds(D)=%-3d "
              "TV=%.3g\n",
              label, built.value().k,
              built.value().p0.ToString().c_str(),
              built.value().ti.num_facts(),
              built.value().target.num_worlds(),
              tv.ok() ? tv.value() : -1.0);
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 2 / Theorem 4.1: FO(TI | FO) = FO(TI) ===\n"
      "TV must be exactly 0 in every row (exact rational pipeline).\n\n");

  rel::Schema schema({{"U", 1}});
  logic::FoView identity = logic::FoView::Identity(schema);

  {
    pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
        schema,
        {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 3)}});
    Run("nonempty | 2 facts", ti, identity,
        logic::ParseSentence("exists x. U(x)", schema).value());
    Run("at-most-one | 2 facts", ti, identity,
        logic::ParseSentence("!(U(1) & U(2))", schema).value());
    Run("vacuous | 2 facts", ti, identity, logic::Truth());
  }
  {
    // Skewed marginals: rarer D0, larger k.
    pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
        schema,
        {{U(1), Rational::Ratio(9, 10)}, {U(2), Rational::Ratio(9, 10)}});
    Run("parity | skewed marginals", ti, identity,
        logic::ParseSentence("(U(1) & U(2)) | (!U(1) & !U(2))", schema)
            .value());
  }
  {
    // A non-identity view: project the first column.
    rel::Schema in({{"R", 2}});
    rel::Schema out({{"T", 1}});
    logic::FoView::Definition def;
    def.output_relation = 0;
    def.head_vars = {"x"};
    def.body = logic::ParseFormula("exists y. R(x, y)", in).value();
    logic::FoView view = logic::FoView::Create(in, out, {def}).value();
    pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
        in, {{rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}),
              Rational::Ratio(1, 2)},
             {rel::Fact(0, {rel::Value::Int(2), rel::Value::Int(1)}),
              Rational::Ratio(1, 4)}});
    Run("projection | asymmetry", ti, view,
        logic::ParseSentence("!(R(1, 2) & R(2, 1))", in).value());
  }

  std::printf("\nConditioning adds no expressive power: every row "
              "rebuilt unconditionally with TV = 0.\n");
  return 0;
}
