// Reproduces Figure 3 / Lemma 5.1: the segmented-fact construction.
// For a sweep of input PDBs and segment widths c, the table reports the
// number of TI facts (Σ ŝ_i), the marginal mass Σ q_t (finite — the
// Theorem 2.4 condition), and the end-to-end total variation distance of
// the conditioned, viewed reconstruction (0 up to double rounding).
// The bounded-size rows demonstrate Corollary 5.4: with c = max|D|,
// every world is one fact and Σ q < 1.

#include <cstdio>
#include <vector>

#include "core/segment_construction.h"

namespace {

namespace core = ipdb::core;
namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;

rel::Instance World(std::vector<int64_t> values) {
  std::vector<rel::Fact> facts;
  for (int64_t v : values) {
    facts.emplace_back(0, std::vector<rel::Value>{rel::Value::Int(v)});
  }
  return rel::Instance(std::move(facts));
}

void Run(const char* label, const pdb::FinitePdb<double>& input, int c) {
  auto built = core::BuildSegmentConstruction(input, c);
  if (!built.ok()) {
    std::printf("  %-26s c=%d failed: %s\n", label, c,
                built.status().ToString().c_str());
    return;
  }
  auto tv = core::VerifySegmentConstruction(input, built.value());
  std::printf("  %-26s c=%-2d segments=%-3d sum(q)=%-8.4f arity=%-3d "
              "TV=%.3g\n",
              label, c, built.value().ti.num_facts(),
              built.value().marginal_sum,
              built.value().hat_schema.arity(0),
              tv.ok() ? tv.value() : -1.0);
}

}  // namespace

int main() {
  std::printf("=== Figure 3 / Lemma 5.1: the segmented-fact construction "
              "===\n\n");
  rel::Schema schema({{"U", 1}});

  pdb::FinitePdb<double> two = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1}), 0.25}, {World({2}), 0.75}});
  Run("2 singleton worlds", two, 1);

  pdb::FinitePdb<double> mixed = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 0.2},
               {World({1, 2, 3}), 0.3},
               {World({7}), 0.5}});
  Run("sizes 0/1/3", mixed, 1);
  Run("sizes 0/1/3", mixed, 2);
  Run("sizes 0/1/3", mixed, 3);

  pdb::FinitePdb<double> chains = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1, 2, 3, 4}), 0.5}, {World({5, 6}), 0.5}});
  Run("sizes 4/2 (chains)", chains, 1);
  Run("sizes 4/2 (chains)", chains, 2);

  // Corollary 5.4: bounded size, one segment per world.
  auto bounded = core::BuildBoundedSizeConstruction(mixed);
  if (bounded.ok()) {
    std::printf(
        "\nCorollary 5.4 (c = max size = %d): segments=%d, sum(q)=%.4f "
        "< 1\n",
        bounded.value().c, bounded.value().ti.num_facts(),
        bounded.value().marginal_sum);
  }

  std::printf("\nEvery row reconstructs the input distribution through "
              "condition + view with TV ~ 0.\n");
  return 0;
}
