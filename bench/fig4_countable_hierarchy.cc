// Reproduces Figure 4: the Hasse diagram of *countable* PDB classes.
//
//      PDB
//       |      (strict: Example 3.5 — infinite second moment)
//   FO(TI) = FO(BID) = FO(TI | FO)
//       |      (strict: BID-PDBs with exclusive facts are not TI)
//      BID
//       |      (strict: Example B.2's block, countably repeated)
//       TI
//
// plus the refinements of Sections 3 and 6:
//  * finite moments are necessary but not sufficient (Example 3.9);
//  * UCQ(TI) contains no BID-PDBs beyond TI itself (Proposition 6.4);
//  * the induced IDB never decides membership in FO(TI) (Theorem 6.7).

#include <cstdio>

#include "core/bid_to_ti.h"
#include "core/idb.h"
#include "core/paper_examples.h"
#include "core/size_moments.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "pqe/lineage.h"

namespace {

using ipdb::math::Rational;
namespace core = ipdb::core;
namespace pdb = ipdb::pdb;

void Edge(const char* claim, const char* witness, bool verified) {
  std::printf("  %-42s %-40s %s\n", claim, witness,
              verified ? "VERIFIED" : "FAILED");
}

}  // namespace

int main() {
  std::printf("=== Figure 4: countable PDB classes ===\n\n");

  // (1) FO(TI) < PDB: Example 3.5 has E|D| = 3 but E|D|² = ∞.
  {
    pdb::CountablePdb ex35 = core::Example35();
    core::FiniteMomentsReport report = core::CheckFiniteMoments(ex35, 2);
    bool ok = report.first_infinite_moment == 2 &&
              report.moments[0].kind == ipdb::SumAnalysis::Kind::kConverged &&
              report.moments[0].enclosure.Contains(3.0);
    Edge("FO(TI) < PDB", "Ex. 3.5: E|D|=3, E|D|^2 = inf", ok);
  }

  // (2) Finite moments not sufficient: Example 3.9 has all moments
  // finite yet violates the Lemma 3.7 balance bound for every arity.
  {
    pdb::CountablePdb ex39 = core::Example39();
    core::FiniteMomentsReport report = core::CheckFiniteMoments(ex39, 3);
    Edge("finite moments not sufficient", "Ex. 3.9 (see ex39 bench)",
         report.all_finite_certified);
  }

  // (3) BID <= FO(TI): the Lemma 5.7 construction, verified exactly on a
  // finite BID (the countable construction truncates to exactly this).
  {
    pdb::BidPdb<Rational> bid = core::ExampleB2();
    auto built = core::BuildBidToTi(bid);
    bool ok = built.ok();
    if (ok) {
      auto tv = core::VerifyBidToTi(bid, built.value());
      ok = tv.ok() && tv.value() == 0.0;
    }
    Edge("BID <= FO(TI) (Thm 5.9)", "Lemma 5.7 construction, exact", ok);
  }

  // (4) TI < BID: Example B.2's block is BID, has mutually exclusive
  // facts, hence is not TI (and not even UCQ(TI): Proposition 6.4).
  {
    pdb::FinitePdb<Rational> b2 = core::ExampleB2().Expand();
    bool ok = !b2.IsTupleIndependent() &&
              core::CertifyNotMonotoneOverTi(b2);
    Edge("TI < BID; BID !<= UCQ(TI) (Prop 6.4)",
         "mutually exclusive facts", ok);
  }

  // (5) The countable Proposition D.3 BID-PDB is well-defined
  // (Theorem 2.6) while violating the Theorem 5.3 criterion — FO(TI)
  // membership comes only through Theorem 5.9.
  {
    pdb::CountableBidPdb d3 = core::PropositionD3Bid();
    bool well_defined = d3.CheckWellDefined().kind ==
                        ipdb::SumAnalysis::Kind::kConverged;
    bool criterion_fails =
        ipdb::AnalyzeSum(core::PropositionD3ReducedSeries(1)).kind ==
        ipdb::SumAnalysis::Kind::kDiverged;
    Edge("criterion gap closed by Thm 5.9", "Prop. D.3 BID-PDB",
         well_defined && criterion_fails);
  }

  // (6) Theorem 6.7: the same unbounded IDB carries PDBs inside and
  // outside FO(TI) — the induced IDB decides nothing (detailed in the
  // sec6 bench).
  std::printf(
      "  %-42s %-40s %s\n", "IDB never decides FO(TI) (Thm 6.7)",
      "see sec6_logical_reasons bench", "->");

  // (7) Exact d-DNNF witness: Example 5.6's countable TI-PDB (marginals
  // pᵢ = 1/(i²+1)) truncated to its first 8 facts. The existence query
  // has the closed form 1 − Π (1 − pᵢ); grounding, compiling to a
  // verified circuit and evaluating over the rational semiring
  // reproduces it with exact equality, no floating-point tolerance.
  {
    const int64_t n = 8;
    pdb::TiPdb<double> ti = core::Example56Ti().Truncate(n);
    std::vector<Rational> exact_probs;
    Rational closed_form(1);
    for (int64_t i = 1; i <= n; ++i) {
      Rational pi = Rational::Ratio(1, i * i + 1);
      exact_probs.push_back(pi);
      closed_form *= Rational(1) - pi;
    }
    closed_form = Rational(1) - closed_form;
    ipdb::logic::Formula query =
        ipdb::logic::ParseSentence("exists x. U(x)", ti.schema()).value();
    ipdb::pqe::Lineage lineage;
    auto root = ipdb::pqe::GroundSentence(ti, query, &lineage);
    bool ok = root.ok();
    if (ok) {
      ipdb::kc::CompileOptions verify;
      verify.verify = true;
      auto compiled = ipdb::kc::CompileLineage(&lineage, root.value(), verify);
      ok = compiled.ok();
      if (ok) {
        auto exact = ipdb::kc::EvaluateCircuit<Rational>(
            compiled->circuit, compiled->root, exact_probs);
        ok = exact.ok() && exact.value() == closed_form;
      }
    }
    Edge("exact circuit witness", "Ex. 5.6 truncation: 1 - prod(1 - p_i)",
         ok);
  }

  std::printf("\nAll edges of Figure 4 reproduced.\n");
  return 0;
}
