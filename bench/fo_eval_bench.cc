// Microbenchmark: first-order model checking with the infinite-universe
// semantics. Contrasts guard-amenable formulas (quantifiers pinned to
// instance facts — near-linear) with guard-free formulas (full
// domain^rank enumeration), and measures FO-view application — the
// machinery every construction in the paper runs on.

#include <benchmark/benchmark.h>

#include "logic/evaluator.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "logic/view.h"
#include "relational/instance.h"

namespace {

namespace logic = ipdb::logic;
namespace rel = ipdb::rel;

rel::Schema ChainSchema() { return rel::Schema({{"R", 2}}); }

rel::Instance ChainInstance(int n) {
  std::vector<rel::Fact> facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(
        0, std::vector<rel::Value>{rel::Value::Int(i),
                                   rel::Value::Int(i + 1)});
  }
  return rel::Instance(std::move(facts));
}

void BM_SatisfiesGuarded(benchmark::State& state) {
  rel::Schema schema = ChainSchema();
  rel::Instance instance = ChainInstance(static_cast<int>(state.range(0)));
  // ∀x∀y (R(x,y) → ∃z R(y,z) ∨ R(x,y)): guard-amenable everywhere.
  logic::Formula sentence =
      logic::ParseSentence(
          "forall x y. R(x, y) -> (exists z. R(y, z)) | R(x, y)",
          schema)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::Satisfies(instance, schema, sentence));
  }
}
BENCHMARK(BM_SatisfiesGuarded)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SatisfiesUnguarded(benchmark::State& state) {
  rel::Schema schema = ChainSchema();
  rel::Instance instance = ChainInstance(static_cast<int>(state.range(0)));
  // ∀x∀y (x = y ∨ R(x,y) ∨ ¬R(x,y)): the equality disjunct defeats
  // co-guard analysis, forcing domain² iteration.
  logic::Formula sentence =
      logic::ParseSentence("forall x y. x = y | R(x, y) | !R(x, y)",
                           schema)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::Satisfies(instance, schema, sentence));
  }
}
BENCHMARK(BM_SatisfiesUnguarded)->Arg(8)->Arg(16)->Arg(32);

void BM_ViewApplyJoin(benchmark::State& state) {
  rel::Schema in = ChainSchema();
  rel::Schema out({{"T", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "z"};
  def.body =
      logic::ParseFormula("exists y. R(x, y) & R(y, z)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  rel::Instance instance = ChainInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.ApplyOrDie(instance));
  }
}
BENCHMARK(BM_ViewApplyJoin)->Arg(8)->Arg(32)->Arg(128);

void BM_GuardAblation(benchmark::State& state) {
  // Ablation (DESIGN.md): the same guard-amenable sentence evaluated
  // with guard pruning disabled — the domain^rank fallback the paper's
  // construction sentences would otherwise pay. Compare against
  // BM_SatisfiesGuarded at equal Arg.
  rel::Schema schema = ChainSchema();
  rel::Instance instance = ChainInstance(static_cast<int>(state.range(0)));
  logic::Formula sentence =
      logic::ParseSentence(
          "forall x y. R(x, y) -> (exists z. R(y, z)) | R(x, y)",
          schema)
          .value();
  logic::EvalOptions no_guards;
  no_guards.use_guards = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        logic::Evaluate(instance, schema, sentence, {}, no_guards));
  }
}
BENCHMARK(BM_GuardAblation)->Arg(8)->Arg(16)->Arg(32);

void BM_ParseFormula(benchmark::State& state) {
  rel::Schema schema = ChainSchema();
  const std::string text =
      "forall x y. R(x, y) -> (exists z. R(y, z) & z != x) | x = 0";
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::ParseFormula(text, schema));
  }
}
BENCHMARK(BM_ParseFormula);

void BM_CountingQuantifierExpansion(benchmark::State& state) {
  // Exactly(k, …) expands to plain FO with O(k²) inequalities — the
  // price of Claim 5.8-style sentences.
  rel::Schema schema({{"S", 1}});
  logic::Formula body = logic::Atom(0, {logic::Term::Var("v")});
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::Exactly(k, "v", body));
  }
}
BENCHMARK(BM_CountingQuantifierExpansion)->Arg(1)->Arg(3)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
