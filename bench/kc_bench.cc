// Microbenchmark: the knowledge-compilation subsystem (src/kc). Rows
// come in three groups:
//
//  * KcCompile*          — d-DNNF compilation cost by lineage family;
//  * KcSingleShot* vs
//    WmcSingleShot*      — compile+evaluate once against one legacy
//                          Shannon/decomposition solve on the same
//                          lineage (ci.sh gates on these pairs: the
//                          compiled single shot must stay within 2x);
//  * KcEvaluate* /
//    KcGradient          — per-semiring evaluation and backprop on an
//                          already-compiled circuit (the amortized cost
//                          every cache hit pays).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_json.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "math/rational.h"
#include "pqe/lineage.h"
#include "pqe/wmc.h"
#include "util/interval.h"

namespace {

namespace pqe = ipdb::pqe;
namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;
namespace kc = ipdb::kc;

/// The chain path-query lineage (decomposition + light Shannon).
void GroundChain(int n, pqe::Lineage* lineage, pqe::NodeId* root,
                 std::vector<double>* probs) {
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(
        rel::Fact(0, {rel::Value::Int(i), rel::Value::Int(i + 1)}),
        0.3 + 0.4 * ((i * 7) % 10) / 10.0);
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  *root = pqe::GroundSentence(ti, query, lineage).value();
  probs->clear();
  for (const auto& [fact, marginal] : ti.facts()) {
    probs->push_back(marginal);
  }
}

/// The bipartite existence lineage (pure independent-OR decomposition).
void GroundBipartite(int side, pqe::Lineage* lineage, pqe::NodeId* root,
                     std::vector<double>* probs) {
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      facts.emplace_back(
          rel::Fact(0, {rel::Value::Int(i), rel::Value::Int(side + j)}),
          0.5);
    }
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x, y)", ti.schema()).value();
  *root = pqe::GroundSentence(ti, query, lineage).value();
  probs->clear();
  for (const auto& [fact, marginal] : ti.facts()) {
    probs->push_back(marginal);
  }
}

void BM_KcCompileChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pqe::Lineage lineage;
    pqe::NodeId root;
    std::vector<double> probs;
    GroundChain(n, &lineage, &root, &probs);
    auto compiled = kc::CompileLineage(&lineage, root);
    benchmark::DoNotOptimize(compiled.ok());
    state.counters["nodes"] =
        static_cast<double>(compiled->stats.circuit_nodes);
    state.counters["edges"] =
        static_cast<double>(compiled->stats.circuit_edges);
  }
}
BENCHMARK(BM_KcCompileChain)->Arg(8)->Arg(16)->Arg(32);

void BM_KcSingleShotChain(benchmark::State& state) {
  // Compile + one evaluation, from a pre-grounded lineage (the ci.sh
  // parity gate: this must stay within 2x of WmcSingleShotChain).
  int n = static_cast<int>(state.range(0));
  pqe::Lineage lineage;
  pqe::NodeId root;
  std::vector<double> probs;
  GroundChain(n, &lineage, &root, &probs);
  for (auto _ : state) {
    pqe::Lineage working = lineage;  // solvers grow the lineage
    auto compiled = kc::CompileLineage(&working, root);
    benchmark::DoNotOptimize(
        kc::EvaluateCircuit<double>(compiled->circuit, compiled->root, probs)
            .value());
  }
}
BENCHMARK(BM_KcSingleShotChain)->Arg(8)->Arg(16)->Arg(32);

void BM_WmcSingleShotChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  pqe::Lineage lineage;
  pqe::NodeId root;
  std::vector<double> probs;
  GroundChain(n, &lineage, &root, &probs);
  for (auto _ : state) {
    pqe::Lineage working = lineage;
    benchmark::DoNotOptimize(
        pqe::ComputeProbability(&working, root, probs).value());
  }
}
BENCHMARK(BM_WmcSingleShotChain)->Arg(8)->Arg(16)->Arg(32);

void BM_KcSingleShotBipartite(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  pqe::Lineage lineage;
  pqe::NodeId root;
  std::vector<double> probs;
  GroundBipartite(side, &lineage, &root, &probs);
  for (auto _ : state) {
    pqe::Lineage working = lineage;
    auto compiled = kc::CompileLineage(&working, root);
    benchmark::DoNotOptimize(
        kc::EvaluateCircuit<double>(compiled->circuit, compiled->root, probs)
            .value());
  }
}
BENCHMARK(BM_KcSingleShotBipartite)->Arg(4)->Arg(6)->Arg(8);

void BM_WmcSingleShotBipartite(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  pqe::Lineage lineage;
  pqe::NodeId root;
  std::vector<double> probs;
  GroundBipartite(side, &lineage, &root, &probs);
  for (auto _ : state) {
    pqe::Lineage working = lineage;
    benchmark::DoNotOptimize(
        pqe::ComputeProbability(&working, root, probs).value());
  }
}
BENCHMARK(BM_WmcSingleShotBipartite)->Arg(4)->Arg(6)->Arg(8);

/// One compiled chain circuit reused by the evaluation rows.
struct CompiledChain {
  kc::CompiledQuery compiled;
  std::vector<double> probs;
};

CompiledChain MakeCompiledChain(int n) {
  CompiledChain out;
  pqe::Lineage lineage;
  pqe::NodeId root;
  GroundChain(n, &lineage, &root, &out.probs);
  out.compiled = kc::CompileLineage(&lineage, root).value();
  return out;
}

void BM_KcEvaluateDouble(benchmark::State& state) {
  CompiledChain chain = MakeCompiledChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kc::EvaluateCircuit<double>(chain.compiled.circuit,
                                    chain.compiled.root, chain.probs)
            .value());
  }
}
BENCHMARK(BM_KcEvaluateDouble)->Arg(16)->Arg(32);

void BM_KcEvaluateRational(benchmark::State& state) {
  // Exact end-to-end: the same circuit under exact rational marginals.
  CompiledChain chain = MakeCompiledChain(static_cast<int>(state.range(0)));
  std::vector<ipdb::math::Rational> probs;
  for (size_t i = 0; i < chain.probs.size(); ++i) {
    probs.push_back(ipdb::math::Rational::Ratio(
        3 + 4 * static_cast<int64_t>((i * 7) % 10), 10));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kc::EvaluateCircuit<ipdb::math::Rational>(chain.compiled.circuit,
                                                  chain.compiled.root, probs)
            .value());
  }
}
BENCHMARK(BM_KcEvaluateRational)->Arg(16)->Arg(32);

void BM_KcEvaluateInterval(benchmark::State& state) {
  // Certified enclosures from interval-valued marginals.
  CompiledChain chain = MakeCompiledChain(static_cast<int>(state.range(0)));
  std::vector<ipdb::Interval> probs;
  for (double p : chain.probs) {
    probs.push_back(ipdb::Interval(p - 0.01, p + 0.01));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kc::EvaluateCircuit<ipdb::Interval>(chain.compiled.circuit,
                                            chain.compiled.root, probs)
            .value());
  }
}
BENCHMARK(BM_KcEvaluateInterval)->Arg(16)->Arg(32);

void BM_KcGradient(benchmark::State& state) {
  // All tuple sensitivities ∂Pr/∂pᵢ in one forward + one reverse pass.
  CompiledChain chain = MakeCompiledChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kc::EvaluateGradient<double>(chain.compiled.circuit,
                                     chain.compiled.root, chain.probs)
            .value());
  }
}
BENCHMARK(BM_KcGradient)->Arg(16)->Arg(32);

}  // namespace

IPDB_BENCHMARK_JSON_MAIN("kc_bench", "BENCH_pqe.json")
