// Microbenchmark: the lifted safe-plan rung versus the ground-and-compile
// circuit rung on hierarchical queries, as the instance grows from 10²
// to 10⁵ facts. The lifted rows run the governed QueryProbability ladder
// with defaults (so they price exactly what a caller gets); the circuit
// rows disable the lifted rung and clear the artifact cache each
// iteration so every sample pays grounding + d-DNNF compilation.
//
// Each row carries a `facts` counter (actual instance size) and, where
// the circuit oracle is still tractable, a `parity_abs_err` counter —
// |lifted − circuit| computed once in setup — which ci.sh gates at
// ≤ 1e-9 alongside the ≥10× chain-speedup gate at 10⁴ facts.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench_json.h"
#include "kc/cache.h"
#include "logic/parser.h"
#include "pqe/safe_plan.h"
#include "pqe/wmc.h"

namespace {

namespace pqe = ipdb::pqe;
namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;

/// Chain instance for ∃x∃y R(x) ∧ S(x,y): k hub values, each with one
/// R-fact and three S-neighbours — 4 facts per hub, n ≈ 4k total.
pdb::TiPdb<double> ChainTi(int n) {
  rel::Schema schema({{"R", 1}, {"S", 2}});
  pdb::TiPdb<double>::FactList facts;
  const int hubs = n / 4;
  for (int i = 0; i < hubs; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.2 + 0.6 * ((i * 7) % 10) / 10.0);
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(1000000 + j)}),
          0.1 + 0.08 * ((i + j) % 10));
    }
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
}

/// Star instance for ∃x∃y∃z R(x) ∧ S(x,y) ∧ U(x,z): k hub values, each
/// with one R-fact and three S- and U-neighbours — 7 facts per hub.
pdb::TiPdb<double> StarTi(int n) {
  rel::Schema schema({{"R", 1}, {"S", 2}, {"U", 2}});
  pdb::TiPdb<double>::FactList facts;
  const int hubs = n / 7;
  for (int i = 0; i < hubs; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.2 + 0.6 * ((i * 3) % 10) / 10.0);
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(1000000 + j)}),
          0.1 + 0.08 * ((i + j) % 10));
      facts.emplace_back(
          rel::Fact(2, {rel::Value::Int(i), rel::Value::Int(2000000 + j)}),
          0.15 + 0.07 * ((i + 2 * j) % 10));
    }
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
}

const char kChainQuery[] = "exists x y. R(x) & S(x, y)";
const char kStarQuery[] = "exists x y z. R(x) & S(x, y) & U(x, z)";

/// One-off parity probe for a row's setup: lifted answer vs the circuit
/// rung on the same instance. Returns NaN when the caller opts out
/// (instances where a fresh compile is too slow for setup).
double ParityAbsErr(const pdb::TiPdb<double>& ti,
                    const ipdb::logic::Formula& query) {
  auto lifted = pqe::QueryProbability(ti, query, pqe::QueryOptions{});
  pqe::QueryOptions circuit_only;
  circuit_only.lifted = false;
  ipdb::kc::GlobalCompiledQueryCache().Clear();
  auto circuit = pqe::QueryProbability(ti, query, circuit_only);
  ipdb::kc::GlobalCompiledQueryCache().Clear();
  if (!lifted.ok() || !circuit.ok()) return 1.0;  // poison the gate
  return std::fabs(lifted.value().probability - circuit.value().probability);
}

void LiftedRows(benchmark::State& state, const char* text,
                const pdb::TiPdb<double>& ti, int parity_max) {
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence(text, ti.schema()).value();
  // The parity probe runs the circuit rung once; past `parity_max` the
  // grounder (polynomial of higher degree in the active domain than the
  // plan walk) is too slow for a setup step.
  if (static_cast<int>(state.range(0)) <= parity_max) {
    state.counters["parity_abs_err"] = ParityAbsErr(ti, query);
  }
  pqe::QueryOptions options;  // default ladder: lifted rung first
  for (auto _ : state) {
    auto answer = pqe::QueryProbability(ti, query, options);
    benchmark::DoNotOptimize(answer.ok());
    // The row must price the lifted path; a non-lifted answer means the
    // ladder regressed.
    if (!answer.ok() || !answer.value().lifted) {
      state.SkipWithError("lifted rung did not answer");
      return;
    }
  }
  state.counters["facts"] = static_cast<double>(ti.num_facts());
}

void CircuitRows(benchmark::State& state, const char* text,
                 const pdb::TiPdb<double>& ti) {
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence(text, ti.schema()).value();
  pqe::QueryOptions circuit_only;
  circuit_only.lifted = false;
  for (auto _ : state) {
    // A warm artifact cache would skip compilation; each sample pays the
    // full ground + compile + evaluate pipeline the row advertises.
    ipdb::kc::GlobalCompiledQueryCache().Clear();
    auto answer = pqe::QueryProbability(ti, query, circuit_only);
    benchmark::DoNotOptimize(answer.ok());
  }
  state.counters["facts"] = static_cast<double>(ti.num_facts());
}

void BM_LiftedChain(benchmark::State& state) {
  pdb::TiPdb<double> ti = ChainTi(static_cast<int>(state.range(0)));
  LiftedRows(state, kChainQuery, ti, 10000);
}
BENCHMARK(BM_LiftedChain)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CircuitChain(benchmark::State& state) {
  pdb::TiPdb<double> ti = ChainTi(static_cast<int>(state.range(0)));
  CircuitRows(state, kChainQuery, ti);
}
BENCHMARK(BM_CircuitChain)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LiftedStar(benchmark::State& state) {
  pdb::TiPdb<double> ti = StarTi(static_cast<int>(state.range(0)));
  LiftedRows(state, kStarQuery, ti, 1000);
}
BENCHMARK(BM_LiftedStar)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// The 3-variable star query grounds in time cubic in the active domain
// (~1 s/iteration at 10^3 facts, ~20 min at 10^4), so the circuit side
// stops at 10^3; the lifted rows above keep going to 10^5.
void BM_CircuitStar(benchmark::State& state) {
  pdb::TiPdb<double> ti = StarTi(static_cast<int>(state.range(0)));
  CircuitRows(state, kStarQuery, ti);
}
BENCHMARK(BM_CircuitStar)->Arg(100)->Arg(1000);

}  // namespace

IPDB_BENCHMARK_JSON_MAIN("lifted_bench", "BENCH_lifted.json")
