// Microbenchmark: the exact-arithmetic substrate (BigInt / Rational)
// that powers the library's exact distribution-equality verification.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "math/bigint.h"
#include "math/rational.h"

namespace {

using ipdb::math::BigInt;
using ipdb::math::Rational;

BigInt MakeBig(int bits) { return BigInt::TwoToThe(bits) - BigInt(12345); }

void BM_BigIntMultiply(benchmark::State& state) {
  BigInt a = MakeBig(static_cast<int>(state.range(0)));
  BigInt b = MakeBig(static_cast<int>(state.range(0)) - 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BigIntDivide(benchmark::State& state) {
  BigInt a = MakeBig(static_cast<int>(state.range(0)));
  BigInt b = MakeBig(static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a / b);
  }
}
BENCHMARK(BM_BigIntDivide)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BigIntToString(benchmark::State& state) {
  BigInt a = MakeBig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ToString());
  }
}
BENCHMARK(BM_BigIntToString)->Arg(128)->Arg(1024);

void BM_RationalSum(benchmark::State& state) {
  // Σ 1/(i(i+1)) with exact canonicalization each step — the shape of
  // the exact world-probability accumulations in the verifiers.
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rational total;
    for (int i = 1; i <= n; ++i) {
      total += Rational::Ratio(1, static_cast<int64_t>(i) * (i + 1));
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_RationalSum)->Arg(32)->Arg(128)->Arg(512);

void BM_RationalWorldProbability(benchmark::State& state) {
  // Product of n marginals and complements, exact.
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rational product(1);
    for (int i = 1; i <= n; ++i) {
      Rational p = Rational::Ratio(i, 2 * i + 1);
      product *= (i % 2 == 0) ? p : (Rational(1) - p);
    }
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_RationalWorldProbability)->Arg(8)->Arg(32)->Arg(128);

void BM_RationalPow(benchmark::State& state) {
  Rational half = Rational::Ratio(3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(half.Pow(state.range(0)));
  }
}
BENCHMARK(BM_RationalPow)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

IPDB_BENCHMARK_JSON_MAIN("math_bench", "BENCH_math.json")
