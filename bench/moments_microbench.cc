// Microbenchmark: the probabilistic analysis substrate — Poisson-
// binomial size distributions (Proposition 3.2 made quantitative),
// certified moment intervals for truncated infinite TI-PDBs, and series
// analysis with tail certificates.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_json.h"
#include "core/paper_examples.h"
#include "math/rational.h"
#include "prob/pgf.h"
#include "prob/poisson_binomial.h"
#include "util/series.h"

namespace {

namespace prob = ipdb::prob;

std::vector<double> Marginals(int n) {
  std::vector<double> p(n);
  for (int i = 0; i < n; ++i) {
    p[i] = 1.0 / ((i + 1.0) * (i + 1.0) + 1.0);
  }
  return p;
}

void BM_PoissonBinomialPmf(benchmark::State& state) {
  std::vector<double> p = Marginals(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::PoissonBinomialPmf(p));
  }
}
BENCHMARK(BM_PoissonBinomialPmf)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TiMomentInterval(benchmark::State& state) {
  std::vector<double> p = Marginals(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prob::PoissonBinomialMomentInterval(p, 0.01, 4));
  }
}
BENCHMARK(BM_TiMomentInterval)->Arg(64)->Arg(256)->Arg(1024);

void BM_SeriesAnalysisGeometric(benchmark::State& state) {
  ipdb::Series series = ipdb::GeometricSeries(1.0, 0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipdb::AnalyzeSum(series));
  }
}
BENCHMARK(BM_SeriesAnalysisGeometric);

void BM_Example39MomentAnalysis(benchmark::State& state) {
  ipdb::pdb::CountablePdb ex39 = ipdb::core::Example39();
  int k = static_cast<int>(state.range(0));
  ipdb::SumOptions options;
  options.max_terms = 1 << 14;
  options.target_width = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex39.AnalyzeMoment(k, options));
  }
}
BENCHMARK(BM_Example39MomentAnalysis)->Arg(1)->Arg(2)->Arg(4);

void BM_CountableTiSizeMoment(benchmark::State& state) {
  ipdb::pdb::CountableTiPdb ti = ipdb::core::Example56Ti();
  int64_t prefix = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ti.SizeMomentInterval(2, prefix));
  }
}
BENCHMARK(BM_CountableTiSizeMoment)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ExactPoissonBinomialMoment(benchmark::State& state) {
  // Exact (Rational) size-PGF of a truncated TI-PDB and its k-th raw
  // moment — the arbitrary-precision counterpart of BM_TiMomentInterval.
  int n = static_cast<int>(state.range(0));
  std::vector<ipdb::math::Rational> marginals;
  marginals.reserve(n);
  for (int i = 0; i < n; ++i) {
    marginals.push_back(ipdb::math::Rational::Ratio(
        1, static_cast<int64_t>(i + 1) * (i + 1) + 1));
  }
  for (auto _ : state) {
    prob::RationalPolynomial pgf = prob::TiSizePgf(marginals);
    benchmark::DoNotOptimize(prob::RawMomentFromPgf(pgf, 2));
  }
}
BENCHMARK(BM_ExactPoissonBinomialMoment)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

IPDB_BENCHMARK_JSON_MAIN("moments_microbench", "BENCH_math.json")
