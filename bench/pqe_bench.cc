// Microbenchmark: probabilistic query evaluation over TI-PDBs — the
// workload that motivates tuple-independent representations. Measures
// lineage grounding and exact WMC on path/star queries as the fact count
// grows, including the decomposition-friendly and Shannon-heavy regimes.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_json.h"
#include "kc/cache.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "pqe/expected_answers.h"
#include "pqe/lineage.h"
#include "pqe/monte_carlo.h"
#include "pqe/safe_plan.h"
#include "pqe/wmc.h"
#include "util/budget.h"

namespace {

namespace pqe = ipdb::pqe;
namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;

/// A chain TI-PDB: R(0,1), R(1,2), …, R(n-1,n) with varying marginals.
pdb::TiPdb<double> ChainTi(int n) {
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(
        rel::Fact(0, {rel::Value::Int(i), rel::Value::Int(i + 1)}),
        0.3 + 0.4 * ((i * 7) % 10) / 10.0);
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
}

/// A bipartite TI-PDB R(i, j), i in [0,a), j in [a, a+b).
pdb::TiPdb<double> BipartiteTi(int a, int b) {
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) {
      facts.emplace_back(
          rel::Fact(0, {rel::Value::Int(i), rel::Value::Int(a + j)}),
          0.5);
    }
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
}

void BM_GroundPathQuery(benchmark::State& state) {
  pdb::TiPdb<double> ti = ChainTi(static_cast<int>(state.range(0)));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  for (auto _ : state) {
    pqe::Lineage lineage;
    auto root = pqe::GroundSentence(ti, query, &lineage);
    benchmark::DoNotOptimize(root.ok());
    state.counters["nodes"] = lineage.size();
  }
}
BENCHMARK(BM_GroundPathQuery)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_WmcPathQuery(benchmark::State& state) {
  pdb::TiPdb<double> ti = ChainTi(static_cast<int>(state.range(0)));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  for (auto _ : state) {
    auto p = pqe::QueryProbability(ti, query);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_WmcPathQuery)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_WmcBipartiteExists(benchmark::State& state) {
  // Pr(∃x∃y R(x,y)): an independent-OR lineage — pure decomposition.
  int side = static_cast<int>(state.range(0));
  pdb::TiPdb<double> ti = BipartiteTi(side, side);
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x, y)", ti.schema())
          .value();
  // The single-atom existence query is safe, so the default ladder would
  // answer it on the lifted rung; pin this row to the circuit pipeline
  // it is meant to measure (lifted_bench prices the lifted path).
  pqe::QueryOptions circuit_only;
  circuit_only.lifted = false;
  for (auto _ : state) {
    pqe::WmcStats stats;
    auto p = pqe::QueryProbability(ti, query, circuit_only, &stats);
    benchmark::DoNotOptimize(p.ok());
    state.counters["shannon"] =
        static_cast<double>(stats.shannon_expansions);
  }
}
BENCHMARK(BM_WmcBipartiteExists)->Arg(2)->Arg(4)->Arg(6);

void BM_WmcShannonHeavy(benchmark::State& state) {
  // Pr(∀x (∃y R(x,y)) → (∃y R(y,x))): negation + sharing forces Shannon
  // expansions; #P-hard in general, small here.
  int n = static_cast<int>(state.range(0));
  pdb::TiPdb<double> ti = ChainTi(n);
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence(
          "forall x. (exists y. R(x, y)) -> (exists y. R(y, x))",
          ti.schema())
          .value();
  for (auto _ : state) {
    pqe::WmcStats stats;
    auto p = pqe::QueryProbability(ti, query, &stats);
    benchmark::DoNotOptimize(p.ok());
    state.counters["shannon"] =
        static_cast<double>(stats.shannon_expansions);
  }
}
BENCHMARK(BM_WmcShannonHeavy)->Arg(3)->Arg(5)->Arg(7);

void BM_SafePlanVsWmc_SafePlan(benchmark::State& state) {
  // Lifted inference: the hierarchical query ∃x∃y R(x) ∧ S(x,y) on a
  // star-shaped TI evaluated by the Dalvi-Suciu safe plan (polynomial)…
  int n = static_cast<int>(state.range(0));
  rel::Schema schema({{"R", 1}, {"S", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}), 0.4);
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(1000 + j)}),
          0.5);
    }
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x) & S(x, y)", schema)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pqe::SafeQueryProbability(ti, query));
  }
}
BENCHMARK(BM_SafePlanVsWmc_SafePlan)->Arg(4)->Arg(16)->Arg(64);

void BM_SafePlanVsWmc_Wmc(benchmark::State& state) {
  // …versus the generic grounding + WMC pipeline on the same input.
  int n = static_cast<int>(state.range(0));
  rel::Schema schema({{"R", 1}, {"S", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}), 0.4);
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(1000 + j)}),
          0.5);
    }
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x) & S(x, y)", schema)
          .value();
  // This row is the generic-pipeline side of the comparison: keep it on
  // the circuit rung (the default ladder would take the lifted fast
  // path for this hierarchical query and measure the wrong thing).
  pqe::QueryOptions circuit_only;
  circuit_only.lifted = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pqe::QueryProbability(ti, query, circuit_only));
  }
}
BENCHMARK(BM_SafePlanVsWmc_Wmc)->Arg(4)->Arg(16);

void BM_WmcDecompositionAblation(benchmark::State& state) {
  // Ablation (DESIGN.md): the bipartite existence query with independent-
  // component decomposition DISABLED — every gate becomes a chain of
  // Shannon expansions. Compare with BM_WmcBipartiteExists.
  int side = static_cast<int>(state.range(0));
  pdb::TiPdb<double> ti = BipartiteTi(side, side);
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x, y)", ti.schema())
          .value();
  pqe::Lineage lineage;
  auto root = pqe::GroundSentence(ti, query, &lineage);
  std::vector<double> probs;
  for (const auto& [fact, marginal] : ti.facts()) {
    probs.push_back(marginal);
  }
  pqe::WmcOptions no_decompose;
  no_decompose.decompose = false;
  for (auto _ : state) {
    pqe::WmcStats stats;
    benchmark::DoNotOptimize(pqe::ComputeProbability(
        &lineage, root.value(), probs, &stats, no_decompose));
    state.counters["shannon"] =
        static_cast<double>(stats.shannon_expansions);
  }
}
BENCHMARK(BM_WmcDecompositionAblation)->Arg(2)->Arg(4);

void BM_MonteCarloEstimate(benchmark::State& state) {
  // Thread-scaling of the deterministic parallel Monte Carlo estimator:
  // each row reports the same bit-identical estimate, only faster.
  pdb::TiPdb<double> ti = ChainTi(16);
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  ipdb::Pcg32 base(21);
  pdb::SamplingOptions options;
  options.threads = static_cast<int>(state.range(0));
  const int64_t samples = 4000;
  for (auto _ : state) {
    auto estimate =
        pqe::EstimateQueryProbability(ti, query, samples, base, options);
    benchmark::DoNotOptimize(estimate.ok());
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_MonteCarloEstimate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ParallelRankedAnswers(benchmark::State& state) {
  // Exact per-tuple WMC over the candidate grid, fanned out across
  // workers (pqe::RankedAnswers with a thread knob).
  pdb::TiPdb<double> ti = BipartiteTi(6, 6);
  ipdb::logic::Formula query =
      ipdb::logic::ParseFormula("exists y. R(x, y)", ti.schema()).value();
  pdb::SamplingOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto answers = pqe::RankedAnswers(ti, query, {"x"}, options);
    benchmark::DoNotOptimize(answers.ok());
  }
}
BENCHMARK(BM_ParallelRankedAnswers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// The decomposable-suite lineage shared by the compile-once rows: the
/// path query over a chain TI (independent-component decomposition with
/// a little Shannon expansion — the regime knowledge compilation is
/// built for).
void GroundDecomposableSuite(int n, pqe::Lineage* lineage, pqe::NodeId* root,
                             std::vector<double>* probs) {
  pdb::TiPdb<double> ti = ChainTi(n);
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  *root = pqe::GroundSentence(ti, query, lineage).value();
  probs->clear();
  for (const auto& [fact, marginal] : ti.facts()) {
    probs->push_back(marginal);
  }
}

/// Deterministic per-round perturbation of the marginals — the
/// "evaluate-many" workload re-weights the same lineage, it does not
/// change it (what-if / sensitivity queries over one compiled circuit).
void PerturbProbs(int round, std::vector<double>* probs) {
  for (size_t i = 0; i < probs->size(); ++i) {
    double delta = 0.001 * (((round * 31 + static_cast<int>(i) * 17) % 13) - 6);
    (*probs)[i] = std::min(0.99, std::max(0.01, (*probs)[i] + delta));
  }
}

void BM_CompileOnceEvaluate64(benchmark::State& state) {
  // One d-DNNF compilation, then 64 re-evaluations under perturbed
  // marginals — the compile-once / evaluate-many serving pattern.
  int n = static_cast<int>(state.range(0));
  // Grounding is identical for both serving strategies, so it happens
  // once in setup; the timed region is one compilation plus 64
  // evaluations (the lineage is pre-warmed so Shannon restrictions are
  // already interned, as they are after any first solve).
  pqe::Lineage lineage;
  pqe::NodeId root;
  std::vector<double> probs;
  GroundDecomposableSuite(n, &lineage, &root, &probs);
  (void)ipdb::kc::CompileLineage(&lineage, root);
  for (auto _ : state) {
    auto compiled = ipdb::kc::CompileLineage(&lineage, root);
    double checksum = 0.0;
    for (int round = 0; round < 64; ++round) {
      PerturbProbs(round, &probs);
      checksum += ipdb::kc::EvaluateCircuit<double>(compiled->circuit,
                                                    compiled->root, probs)
                      .value();
    }
    benchmark::DoNotOptimize(checksum);
    state.counters["circuit_nodes"] =
        static_cast<double>(compiled->stats.circuit_nodes);
  }
}
BENCHMARK(BM_CompileOnceEvaluate64)->Arg(16)->Arg(32);

void BM_LegacyWmc64(benchmark::State& state) {
  // The same 64 re-weighted queries answered by the legacy solver: a
  // full Shannon/decomposition solve per round.
  int n = static_cast<int>(state.range(0));
  // Same setup as BM_CompileOnceEvaluate64: ground once, pre-warm the
  // lineage, then time the 64 re-weighted solves.
  pqe::Lineage lineage;
  pqe::NodeId root;
  std::vector<double> probs;
  GroundDecomposableSuite(n, &lineage, &root, &probs);
  (void)pqe::ComputeProbability(&lineage, root, probs);
  for (auto _ : state) {
    double checksum = 0.0;
    for (int round = 0; round < 64; ++round) {
      PerturbProbs(round, &probs);
      checksum += pqe::ComputeProbability(&lineage, root, probs).value();
    }
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_LegacyWmc64)->Arg(16)->Arg(32);

void BM_ArtifactCacheHitServing(benchmark::State& state) {
  // End-to-end QueryProbability with a warm artifact cache: ground,
  // fingerprint, evaluate — no compilation after the first call.
  pdb::TiPdb<double> ti = ChainTi(static_cast<int>(state.range(0)));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  (void)pqe::QueryProbability(ti, query);  // warm the cache
  for (auto _ : state) {
    pqe::WmcStats stats;
    benchmark::DoNotOptimize(pqe::QueryProbability(ti, query, &stats));
    state.counters["artifact_hits"] =
        static_cast<double>(stats.artifact_cache_hits);
  }
}
BENCHMARK(BM_ArtifactCacheHitServing)->Arg(16)->Arg(32);

void BM_BudgetedFallback(benchmark::State& state) {
  // The degradation rung end to end: a node cap the path query cannot
  // meet forces every iteration down the certified Monte Carlo fallback
  // (cache miss, compile aborted at the cap, bounded sampling). The row
  // prices "a bounded answer now" against the exact rows above.
  pdb::TiPdb<double> ti = ChainTi(static_cast<int>(state.range(0)));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  // Earlier rows in this binary compile the same lineage; a cached
  // artifact would serve the query budget-free, so drop it. A failed
  // compile inserts nothing, so one clear keeps every iteration on the
  // fallback rung.
  ipdb::kc::GlobalCompiledQueryCache().Clear();
  ipdb::ExecutionBudget budget;
  budget.max_circuit_nodes = 1;
  pqe::QueryOptions options;
  options.budget = &budget;
  options.fallback_samples = 4000;
  for (auto _ : state) {
    auto answer = pqe::QueryProbability(ti, query, options);
    benchmark::DoNotOptimize(answer.ok());
    state.counters["samples"] =
        static_cast<double>(answer->samples);
    state.counters["half_width"] = answer->half_width;
  }
}
BENCHMARK(BM_BudgetedFallback)->Arg(16)->Arg(32);

void BM_LineageRestrict(benchmark::State& state) {
  pdb::TiPdb<double> ti = ChainTi(24);
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y z. R(x, y) & R(y, z)",
                                 ti.schema())
          .value();
  pqe::Lineage lineage;
  auto root = pqe::GroundSentence(ti, query, &lineage);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lineage.Restrict(root.value(), 3, true));
  }
}
BENCHMARK(BM_LineageRestrict);

}  // namespace

IPDB_BENCHMARK_JSON_MAIN("pqe_bench", "BENCH_pqe.json")
