// Microbenchmark: world sampling across representations — finite PDBs,
// TI-PDBs, BID-PDBs, and the certified-tail samplers for countable
// families. Sampling is how Monte Carlo verification of the paper's
// constructions scales.

#include <benchmark/benchmark.h>

#include "core/paper_examples.h"
#include "pdb/bid_pdb.h"
#include "pdb/sampling.h"
#include "pdb/top_k.h"
#include "pdb/ti_pdb.h"
#include "util/random.h"

namespace {

namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;

pdb::TiPdb<double> MakeTi(int n) {
  rel::Schema schema({{"U", 1}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.5 / (i + 1.0));
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
}

void BM_SampleTi(benchmark::State& state) {
  pdb::TiPdb<double> ti = MakeTi(static_cast<int>(state.range(0)));
  ipdb::Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ti.Sample(&rng));
  }
}
BENCHMARK(BM_SampleTi)->Arg(16)->Arg(128)->Arg(1024);

void BM_SampleBid(benchmark::State& state) {
  rel::Schema schema({{"U", 1}});
  std::vector<pdb::BidPdb<double>::Block> blocks;
  for (int b = 0; b < static_cast<int>(state.range(0)); ++b) {
    pdb::BidPdb<double>::Block block;
    for (int j = 0; j < 4; ++j) {
      block.emplace_back(rel::Fact(0, {rel::Value::Int(b * 4 + j)}),
                         0.2);
    }
    blocks.push_back(std::move(block));
  }
  pdb::BidPdb<double> bid =
      pdb::BidPdb<double>::CreateOrDie(schema, std::move(blocks));
  ipdb::Pcg32 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bid.Sample(&rng));
  }
}
BENCHMARK(BM_SampleBid)->Arg(8)->Arg(64)->Arg(256);

void BM_SampleFinitePdb(benchmark::State& state) {
  pdb::TiPdb<double> ti = MakeTi(static_cast<int>(state.range(0)));
  pdb::FinitePdb<double> expanded = ti.Expand();
  ipdb::Pcg32 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdb::SampleWorld(expanded, &rng));
  }
}
BENCHMARK(BM_SampleFinitePdb)->Arg(8)->Arg(12)->Arg(16);

void BM_SampleCountableTi(benchmark::State& state) {
  pdb::CountableTiPdb ti = ipdb::core::Example56Ti();
  ipdb::Pcg32 rng(4);
  double epsilon = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ti.Sample(&rng, epsilon));
  }
}
// The Example 5.6 marginal tail decays like 1/N, so epsilon = 10^-e
// requires flipping ~10^e coins; keep e small.
BENCHMARK(BM_SampleCountableTi)->Arg(2)->Arg(4)->Arg(6);

void BM_TopKWorlds(benchmark::State& state) {
  // Best-first top-k enumeration on a 48-fact TI (2^48 worlds — far
  // beyond expansion).
  rel::Schema schema({{"U", 1}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < 48; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.05 + 0.015 * i);
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  int64_t k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdb::TopKWorlds(ti, k));
  }
}
BENCHMARK(BM_TopKWorlds)->Arg(10)->Arg(100)->Arg(1000);

void BM_EmpiricalAccumulate(benchmark::State& state) {
  pdb::TiPdb<double> ti = MakeTi(8);
  ipdb::Pcg32 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdb::Accumulate(
        [&] { return ti.Sample(&rng); }, state.range(0)));
  }
}
BENCHMARK(BM_EmpiricalAccumulate)->Arg(1000)->Arg(10000);

void BM_ParallelAccumulate(benchmark::State& state) {
  // Thread-scaling of the deterministic sharded accumulator; the result
  // is bit-identical at every thread count, only the wall clock moves.
  // Compare items_per_second across the 1/2/4/8-thread rows.
  pdb::TiPdb<double> ti = MakeTi(64);
  ipdb::Pcg32 base(7);
  pdb::SamplingOptions options;
  options.threads = static_cast<int>(state.range(0));
  const int64_t samples = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdb::Accumulate(
        [&ti](ipdb::Pcg32* rng) { return ti.Sample(rng); }, samples, base,
        options));
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_ParallelAccumulate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ParallelSampleCountableTi(benchmark::State& state) {
  // The countable certified-tail sampler under the same parallel harness
  // (epsilon = 1e-2 keeps the Example 5.6 cutoff small).
  pdb::CountableTiPdb ti = ipdb::core::Example56Ti();
  ipdb::Pcg32 base(11);
  pdb::SamplingOptions options;
  options.threads = static_cast<int>(state.range(0));
  const int64_t samples = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdb::Accumulate(
        [&ti](ipdb::Pcg32* rng) {
          return ti.Sample(rng, 1e-2).value();
        },
        samples, base, options));
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_ParallelSampleCountableTi)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
