// Reproduces Section 6 / Theorem 6.7: there are no purely logical
// reasons for (non-)membership in FO(TI). Over the SAME unbounded
// incomplete database (worlds of every size), the Lemma 6.5 assignment
// lands inside FO(TI) (criterion satisfied with c = 1) while the
// Lemma 6.6 assignment lands outside (E|D| = ∞). For bounded IDBs every
// assignment is inside (Corollary 5.4).

#include <cstdio>

#include "core/idb_assignments.h"
#include "core/size_moments.h"

int main() {
  namespace core = ipdb::core;

  std::printf("=== Section 6: seeking logical reasons (Theorem 6.7) "
              "===\n\n");

  core::CountableIdbFamily idb;
  idb.schema = ipdb::rel::Schema({{"U", 1}});
  idb.size_at = [](int64_t i) { return i; };
  idb.world_at = [](int64_t i) {
    std::vector<ipdb::rel::Fact> facts;
    int64_t base = i * (i - 1) / 2;
    for (int64_t t = 0; t < i; ++t) {
      facts.emplace_back(
          0, std::vector<ipdb::rel::Value>{ipdb::rel::Value::Int(base + t)});
    }
    return ipdb::rel::Instance(std::move(facts));
  };
  idb.description = "unbounded IDB (|D_i| = i)";

  auto lemma65 = core::Lemma65Assignment(idb);
  auto lemma66 =
      core::Lemma66Assignment(idb, core::MakeIncreasingSubsequence(idb));
  if (!lemma65.ok() || !lemma66.ok()) {
    std::printf("assignment construction failed\n");
    return 1;
  }

  std::printf("shared sample space: %s\n\n", idb.description.c_str());
  std::printf("  %-4s %-8s %-18s %-18s\n", "i", "|D_i|",
              "P_65(D_i) (in)", "P_66(D_i) (out)");
  for (int64_t i = 0; i < 10; ++i) {
    std::printf("  %-4lld %-8lld %-18.6e %-18.6e\n",
                static_cast<long long>(i), static_cast<long long>(i),
                lemma65.value().pdb.ProbAt(i), lemma66.value().ProbAt(i));
  }

  ipdb::SumAnalysis criterion =
      core::CheckGrowthCriterion(lemma65.value().criterion, 1);
  std::printf("\nLemma 6.5 assignment: criterion (c=1) %s\n",
              criterion.ToString().c_str());
  std::printf("  => in FO(TI) by Theorem 5.3, regardless of the sample "
              "space's shape.\n");

  ipdb::SumAnalysis moment = lemma66.value().AnalyzeMoment(1);
  std::printf("\nLemma 6.6 assignment: E|D| %s\n", moment.ToString().c_str());
  std::printf("  => NOT in FO(TI) by Proposition 3.4.\n");

  std::printf(
      "\nSame induced IDB, opposite verdicts: membership in FO(TI) is\n"
      "never decided by the sample space alone (unless it is bounded —\n"
      "then Corollary 5.4 puts every assignment inside).\n");
  return 0;
}
