// Closed-loop (and open-arrival) load harness for the embedded query
// service — the gate for the serving PR. Drives a multi-tenant Engine
// with concurrent clients and reports, per load point:
//
//   * p50/p99 client-observed latency and sustained throughput,
//   * shed rate (kUnavailable admissions / offered load),
//   * degraded-admission and fallback-answer rates,
//   * the per-tenant artifact-cache hit breakdown, and
//   * accounting_drift: 0 iff the shared cache's per-tenant accounting
//     still partitions the resident set exactly after the run.
//
// Modes:
//   closed/N — N clients, each issuing the mixed workload synchronously
//              (a client's next request waits for its previous answer);
//              offered load adapts to service capacity, so shed_rate
//              stays ~0 and the row measures latency under concurrency.
//   open/overload — submissions arrive on a fixed schedule faster than
//              service capacity (no waiting), so the admission ladder
//              must shed; the row measures graceful degradation.
//
// Rows merge into BENCH_serve.json (ipdb-bench-v1, suite serve_bench):
//   {"suite": "serve_bench", "op": "closed/16", "ns_per_op": <mean>,
//    "iterations": <completed>, "counters": {"p50_ms": ..,
//    "p99_ms": .., "qps": .., "shed_rate": .., "degraded_rate": ..,
//    "fallback_rate": .., "lifted_rate": .., "cache_hits": ..,
//    "cache_misses": .., "accounting_drift": 0}}
//
// Flags: --bench_json_out=PATH (default BENCH_serve.json),
//        --quick (CI-sized run), --clients_max=N (cap the closed rows).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "kc/cache.h"
#include "pdb/ti_pdb.h"
#include "server/engine.h"
#include "server/tenant.h"
#include "util/status.h"

namespace ipdb {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

/// The served instance: R(x), S(x, y), T(y) with a few hub constants.
pdb::TiPdbD BuildInstance(int hubs) {
  rel::Schema schema({{"R", 1}, {"S", 2}, {"T", 1}});
  pdb::TiPdbD::FactList facts;
  for (int i = 0; i < hubs; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.25 + 0.03 * (i % 9));
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(j)}),
          0.15 + 0.02 * ((i + j) % 11));
    }
  }
  for (int j = 0; j < 3; ++j) {
    facts.emplace_back(rel::Fact(2, {rel::Value::Int(j)}),
                       0.3 + 0.1 * j);
  }
  return pdb::TiPdbD::CreateOrDie(schema, facts);
}

/// The mixed workload: a cheap lifted query, repeated unsafe queries
/// (cache hits after the first compile), and per-constant variants that
/// churn distinct artifacts through the shared cache.
std::vector<std::string> Workload() {
  std::vector<std::string> queries = {
      "exists x y. R(x) & S(x, y)",                     // lifted, exact
      "exists x y. R(x) & S(x, y) & T(y)",              // circuit, cached
      "exists x. R(x) & S(x, 0) & S(x, 1)",             // self-join: circuit
      "exists x y. R(x) & S(x, y) & T(y) & S(x, 2)",    // self-join: circuit
      "exists x y. S(x, y) & T(y)",                     // lifted, exact
  };
  return queries;
}

struct LoadPoint {
  std::string op;
  int64_t offered = 0;    // submissions attempted
  int64_t completed = 0;  // OK results
  int64_t shed = 0;       // kUnavailable at admission
  int64_t errors = 0;     // non-shed failures (should stay 0)
  int64_t degraded = 0;   // admitted on the sample-only rung
  int64_t fallback = 0;   // answers below kExact
  int64_t lifted = 0;     // answers from the safe-plan rung
  std::vector<int64_t> latencies_ns;
  int64_t wall_ns = 1;
};

double PercentileMs(std::vector<int64_t>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(latencies->size() - 1) + 0.5);
  return static_cast<double>((*latencies)[index]) * 1e-6;
}

void Tally(const StatusOr<server::QueryResult>& result, LoadPoint* point,
           std::mutex* mu) {
  std::lock_guard<std::mutex> lock(*mu);
  if (result.ok()) {
    ++point->completed;
    point->latencies_ns.push_back(result.value().total_ns);
    if (result.value().degraded) ++point->degraded;
    if (result.value().answer.quality != pqe::AnswerQuality::kExact) {
      ++point->fallback;
    }
    if (result.value().answer.lifted) ++point->lifted;
  } else if (result.status().code() == StatusCode::kUnavailable) {
    ++point->shed;
  } else {
    ++point->errors;
  }
}

/// closed/N: each client waits for its own previous answer.
LoadPoint RunClosed(server::Engine* engine, int clients, int per_client) {
  LoadPoint point;
  point.op = "closed/" + std::to_string(clients);
  const std::vector<std::string> queries = Workload();
  std::mutex mu;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string tenant = (c % 2 == 0) ? "alpha" : "beta";
      for (int i = 0; i < per_client; ++i) {
        const std::string& query =
            queries[static_cast<size_t>(c + i) % queries.size()];
        StatusOr<server::QueryResult> result =
            engine->Query(tenant, "db", query);
        Tally(result, &point, &mu);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  point.offered = static_cast<int64_t>(clients) * per_client;
  point.wall_ns = std::max<int64_t>(1, ElapsedNs(start));
  return point;
}

/// open/overload: a fixed arrival schedule that outruns capacity — the
/// submitter never waits for completions, so the ladder must shed.
LoadPoint RunOpenOverload(server::Engine* engine, int submissions) {
  LoadPoint point;
  point.op = "open/overload";
  std::mutex mu;
  const Clock::time_point start = Clock::now();
  std::vector<std::shared_ptr<server::PendingQuery>> pendings;
  pendings.reserve(static_cast<size_t>(submissions));
  // The overload tenant's compile rung is capped, so every admitted
  // query Monte Carlos for a while: arrivals outpace service by
  // construction, whatever the host's core count.
  for (int i = 0; i < submissions; ++i) {
    StatusOr<std::shared_ptr<server::PendingQuery>> pending =
        engine->Submit("gamma", "db", "exists x y. R(x) & S(x, y) & T(y)");
    if (pending.ok()) {
      pendings.push_back(pending.value());
    } else {
      Tally(pending.status(), &point, &mu);
    }
  }
  for (const auto& pending : pendings) {
    Tally(pending->Wait(), &point, &mu);
  }
  point.offered = submissions;
  point.wall_ns = std::max<int64_t>(1, ElapsedNs(start));
  return point;
}

std::string RowFor(server::Engine* engine, LoadPoint point) {
  const double completed = static_cast<double>(point.completed);
  const double offered =
      std::max<double>(1.0, static_cast<double>(point.offered));
  const double mean_ns =
      point.latencies_ns.empty()
          ? 0.0
          : [&] {
              double sum = 0.0;
              for (int64_t ns : point.latencies_ns) {
                sum += static_cast<double>(ns);
              }
              return sum / completed;
            }();
  const double p50 = PercentileMs(&point.latencies_ns, 0.50);
  const double p99 = PercentileMs(&point.latencies_ns, 0.99);
  const double qps = completed * 1e9 / static_cast<double>(point.wall_ns);

  server::TenantUsage alpha = engine->Usage("alpha").value();
  server::TenantUsage beta = engine->Usage("beta").value();
  server::TenantUsage gamma = engine->Usage("gamma").value();
  const double cache_hits = static_cast<double>(
      alpha.cache.hits + beta.cache.hits + gamma.cache.hits);
  const double cache_misses = static_cast<double>(
      alpha.cache.misses + beta.cache.misses + gamma.cache.misses);
  const double drift =
      kc::GlobalCompiledQueryCache().CheckAccounting().ok() ? 0.0 : 1.0;

  std::fprintf(stderr,
               "%-14s offered=%6lld completed=%6lld shed=%5lld "
               "p50=%8.3fms p99=%8.3fms qps=%9.1f shed_rate=%.3f\n",
               point.op.c_str(), static_cast<long long>(point.offered),
               static_cast<long long>(point.completed),
               static_cast<long long>(point.shed), p50, p99, qps,
               static_cast<double>(point.shed) / offered);

  return bench_json::ResultLine(
      "serve_bench", point.op, mean_ns, point.completed,
      {{"p50_ms", p50},
       {"p99_ms", p99},
       {"qps", qps},
       {"shed_rate", static_cast<double>(point.shed) / offered},
       {"error_rate", static_cast<double>(point.errors) / offered},
       {"degraded_rate", completed > 0 ? point.degraded / completed : 0.0},
       {"fallback_rate", completed > 0 ? point.fallback / completed : 0.0},
       {"lifted_rate", completed > 0 ? point.lifted / completed : 0.0},
       {"cache_hits", cache_hits},
       {"cache_misses", cache_misses},
       {"accounting_drift", drift}});
}

int Run(int argc, char** argv) {
  std::string json_path =
      bench_json::ExtractFlag(&argc, argv, "--bench_json_out");
  if (json_path.empty()) json_path = "BENCH_serve.json";
  // --quick is presence-only; ExtractFlag would swallow the next
  // argument as its value, so scan for the literal token instead.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  std::string clients_flag =
      bench_json::ExtractFlag(&argc, argv, "--clients_max");
  const int clients_max =
      clients_flag.empty() ? 16 : std::max(1, std::atoi(clients_flag.c_str()));

  kc::GlobalCompiledQueryCache().Clear();
  server::EngineOptions options;
  options.admission.max_queue_depth = 64;
  server::Engine engine(options);
  Status status = engine.RegisterInstance("db", BuildInstance(quick ? 24 : 48));
  if (!status.ok()) {
    std::fprintf(stderr, "register instance: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  // Two well-behaved tenants with budgets and cache quotas (alpha's
  // residency is capped, so eviction fairness runs under load), plus
  // the overload tenant whose queries are deliberately expensive.
  const char* tenants[][2] = {
      {"alpha", "budget_ms=2000 cache_max_entries=8"},
      {"beta", "budget_ms=2000"},
      {"gamma",
       "lifted=false max_circuit_nodes=1 fallback_samples=20000 "
       "degraded_samples=4000 max_in_flight=512"},
  };
  for (const auto& tenant : tenants) {
    status = engine.RegisterTenant(tenant[0], std::string(tenant[1]));
    if (!status.ok()) {
      std::fprintf(stderr, "register tenant %s: %s\n", tenant[0],
                   status.ToString().c_str());
      return 1;
    }
  }

  // Warmup compiles the workload's artifacts once, so the measured rows
  // see the steady-state hit path the service is designed around.
  for (const std::string& query : Workload()) {
    (void)engine.Query("alpha", "db", query);
    (void)engine.Query("beta", "db", query);
  }

  const int per_client = quick ? 40 : 200;
  std::vector<std::string> rows;
  for (int clients : {1, 4, 16}) {
    if (clients > clients_max) break;
    rows.push_back(
        RowFor(&engine, RunClosed(&engine, clients, per_client)));
  }
  rows.push_back(
      RowFor(&engine, RunOpenOverload(&engine, quick ? 400 : 1200)));

  status = engine.Stop();
  if (!status.ok()) {
    std::fprintf(stderr, "stop: %s\n", status.ToString().c_str());
    return 1;
  }
  bench_json::MergeIntoFile(json_path, "serve_bench", rows);
  std::fprintf(stderr, "wrote %zu result(s) for suite 'serve_bench' to %s\n",
               rows.size(), json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ipdb

int main(int argc, char** argv) { return ipdb::Run(argc, argv); }
