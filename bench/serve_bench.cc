// Closed-loop (and open-arrival) load harness for the embedded query
// service — the gate for the serving PR. Drives a multi-tenant Engine
// with concurrent clients and reports, per load point:
//
//   * p50/p99 client-observed latency and sustained throughput,
//   * shed rate (kUnavailable admissions / offered load),
//   * degraded-admission and fallback-answer rates,
//   * the per-tenant artifact-cache hit breakdown, and
//   * accounting_drift: 0 iff the shared cache's per-tenant accounting
//     still partitions the resident set exactly after the run.
//
// Modes:
//   closed/N — N clients, each issuing the mixed workload synchronously
//              (a client's next request waits for its previous answer);
//              offered load adapts to service capacity, so shed_rate
//              stays ~0 and the row measures latency under concurrency.
//   open/overload — submissions arrive on a fixed schedule faster than
//              service capacity (no waiting), so the admission ladder
//              must shed; the row measures graceful degradation.
//
// Rows merge into BENCH_serve.json (ipdb-bench-v1, suite serve_bench):
//   {"suite": "serve_bench", "op": "closed/16", "ns_per_op": <mean>,
//    "iterations": <completed>, "counters": {"p50_ms": ..,
//    "p99_ms": .., "qps": .., "shed_rate": .., "degraded_rate": ..,
//    "fallback_rate": .., "lifted_rate": .., "cache_hits": ..,
//    "cache_misses": .., "accounting_drift": 0, "slo_breaching": ..,
//    "label_drift": 0}}
//
// slo_breaching counts tenants whose STATS burn-rate state reads
// "breaching" right after the row (the overload tenant carries an
// availability SLO, so the open/overload row must flip it); label_drift
// is |aggregate serve.latency_ns count - sum of per-tenant labeled
// counts| and must stay 0.
//
// A final daemon/roundtrip row drives the line protocol over loopback
// (QUERY -> TRACE <id> -> STATS) and reports queries_ok / trace_trees /
// stats_ok, or daemon_skipped=1 in sandboxes without sockets.
//
// Flags: --bench_json_out=PATH (default BENCH_serve.json),
//        --quick (CI-sized run), --clients_max=N (cap the closed rows),
//        --trace-out PATH (span tracing + Chrome-trace export; the CI
//        connectivity gate reassembles per-request span trees from it).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "kc/cache.h"
#include "pdb/ti_pdb.h"
#include "server/daemon.h"
#include "server/engine.h"
#include "server/tenant.h"
#include "util/status.h"

namespace ipdb {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

/// The served instance: R(x), S(x, y), T(y) with a few hub constants.
pdb::TiPdbD BuildInstance(int hubs) {
  rel::Schema schema({{"R", 1}, {"S", 2}, {"T", 1}});
  pdb::TiPdbD::FactList facts;
  for (int i = 0; i < hubs; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.25 + 0.03 * (i % 9));
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(j)}),
          0.15 + 0.02 * ((i + j) % 11));
    }
  }
  for (int j = 0; j < 3; ++j) {
    facts.emplace_back(rel::Fact(2, {rel::Value::Int(j)}),
                       0.3 + 0.1 * j);
  }
  return pdb::TiPdbD::CreateOrDie(schema, facts);
}

/// The mixed workload: a cheap lifted query, repeated unsafe queries
/// (cache hits after the first compile), and per-constant variants that
/// churn distinct artifacts through the shared cache.
std::vector<std::string> Workload() {
  std::vector<std::string> queries = {
      "exists x y. R(x) & S(x, y)",                     // lifted, exact
      "exists x y. R(x) & S(x, y) & T(y)",              // circuit, cached
      "exists x. R(x) & S(x, 0) & S(x, 1)",             // self-join: circuit
      "exists x y. R(x) & S(x, y) & T(y) & S(x, 2)",    // self-join: circuit
      "exists x y. S(x, y) & T(y)",                     // lifted, exact
  };
  return queries;
}

struct LoadPoint {
  std::string op;
  int64_t offered = 0;    // submissions attempted
  int64_t completed = 0;  // OK results
  int64_t shed = 0;       // kUnavailable at admission
  int64_t errors = 0;     // non-shed failures (should stay 0)
  int64_t degraded = 0;   // admitted on the sample-only rung
  int64_t fallback = 0;   // answers below kExact
  int64_t lifted = 0;     // answers from the safe-plan rung
  std::vector<int64_t> latencies_ns;
  int64_t wall_ns = 1;
};

double PercentileMs(std::vector<int64_t>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(latencies->size() - 1) + 0.5);
  return static_cast<double>((*latencies)[index]) * 1e-6;
}

void Tally(const StatusOr<server::QueryResult>& result, LoadPoint* point,
           std::mutex* mu) {
  std::lock_guard<std::mutex> lock(*mu);
  if (result.ok()) {
    ++point->completed;
    point->latencies_ns.push_back(result.value().total_ns);
    if (result.value().degraded) ++point->degraded;
    if (result.value().answer.quality != pqe::AnswerQuality::kExact) {
      ++point->fallback;
    }
    if (result.value().answer.lifted) ++point->lifted;
  } else if (result.status().code() == StatusCode::kUnavailable) {
    ++point->shed;
  } else {
    ++point->errors;
  }
}

/// closed/N: each client waits for its own previous answer.
LoadPoint RunClosed(server::Engine* engine, int clients, int per_client) {
  LoadPoint point;
  point.op = "closed/" + std::to_string(clients);
  const std::vector<std::string> queries = Workload();
  std::mutex mu;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string tenant = (c % 2 == 0) ? "alpha" : "beta";
      for (int i = 0; i < per_client; ++i) {
        const std::string& query =
            queries[static_cast<size_t>(c + i) % queries.size()];
        StatusOr<server::QueryResult> result =
            engine->Query(tenant, "db", query);
        Tally(result, &point, &mu);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  point.offered = static_cast<int64_t>(clients) * per_client;
  point.wall_ns = std::max<int64_t>(1, ElapsedNs(start));
  return point;
}

/// open/overload: a fixed arrival schedule that outruns capacity — the
/// submitter never waits for completions, so the ladder must shed.
LoadPoint RunOpenOverload(server::Engine* engine, int submissions) {
  LoadPoint point;
  point.op = "open/overload";
  std::mutex mu;
  const Clock::time_point start = Clock::now();
  std::vector<std::shared_ptr<server::PendingQuery>> pendings;
  pendings.reserve(static_cast<size_t>(submissions));
  // The overload tenant's compile rung is capped, so every admitted
  // query Monte Carlos for a while: arrivals outpace service by
  // construction, whatever the host's core count.
  for (int i = 0; i < submissions; ++i) {
    StatusOr<std::shared_ptr<server::PendingQuery>> pending =
        engine->Submit("gamma", "db", "exists x y. R(x) & S(x, y) & T(y)");
    if (pending.ok()) {
      pendings.push_back(pending.value());
    } else {
      Tally(pending.status(), &point, &mu);
    }
  }
  for (const auto& pending : pendings) {
    Tally(pending->Wait(), &point, &mu);
  }
  point.offered = submissions;
  point.wall_ns = std::max<int64_t>(1, ElapsedNs(start));
  return point;
}

/// Number of tenants whose STATS burn-rate state currently reads
/// "breaching" (substring scan; the report nests exactly one state per
/// tenant under "slo").
double SloBreachingTenants(const server::Engine& engine) {
  const std::string stats = engine.StatsJson();
  const std::string needle = "\"state\": \"breaching\"";
  double breaching = 0.0;
  for (size_t pos = stats.find(needle); pos != std::string::npos;
       pos = stats.find(needle, pos + needle.size())) {
    breaching += 1.0;
  }
  return breaching;
}

/// |aggregate serve.latency_ns observations - sum over the per-tenant
/// labeled family|. The engine records both adjacently, so any nonzero
/// value means the labeled pipeline lost or double-counted a request.
double LatencyLabelDrift() {
  const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Snapshot();
  int64_t labeled = 0;
  for (const auto& cell : snapshot.histogram_families) {
    if (cell.name == "serve.latency_ns" && cell.label_key == "tenant") {
      labeled += cell.stats.count;
    }
  }
  const obs::HistogramStats* aggregate =
      snapshot.FindHistogram("serve.latency_ns");
  const int64_t total = aggregate == nullptr ? 0 : aggregate->count;
  return static_cast<double>(total > labeled ? total - labeled
                                             : labeled - total);
}

std::string RowFor(server::Engine* engine, LoadPoint point) {
  const double completed = static_cast<double>(point.completed);
  const double offered =
      std::max<double>(1.0, static_cast<double>(point.offered));
  const double mean_ns =
      point.latencies_ns.empty()
          ? 0.0
          : [&] {
              double sum = 0.0;
              for (int64_t ns : point.latencies_ns) {
                sum += static_cast<double>(ns);
              }
              return sum / completed;
            }();
  const double p50 = PercentileMs(&point.latencies_ns, 0.50);
  const double p99 = PercentileMs(&point.latencies_ns, 0.99);
  const double qps = completed * 1e9 / static_cast<double>(point.wall_ns);

  server::TenantUsage alpha = engine->Usage("alpha").value();
  server::TenantUsage beta = engine->Usage("beta").value();
  server::TenantUsage gamma = engine->Usage("gamma").value();
  const double cache_hits = static_cast<double>(
      alpha.cache.hits + beta.cache.hits + gamma.cache.hits);
  const double cache_misses = static_cast<double>(
      alpha.cache.misses + beta.cache.misses + gamma.cache.misses);
  const double drift =
      kc::GlobalCompiledQueryCache().CheckAccounting().ok() ? 0.0 : 1.0;

  std::fprintf(stderr,
               "%-14s offered=%6lld completed=%6lld shed=%5lld "
               "p50=%8.3fms p99=%8.3fms qps=%9.1f shed_rate=%.3f\n",
               point.op.c_str(), static_cast<long long>(point.offered),
               static_cast<long long>(point.completed),
               static_cast<long long>(point.shed), p50, p99, qps,
               static_cast<double>(point.shed) / offered);

  return bench_json::ResultLine(
      "serve_bench", point.op, mean_ns, point.completed,
      {{"p50_ms", p50},
       {"p99_ms", p99},
       {"qps", qps},
       {"shed_rate", static_cast<double>(point.shed) / offered},
       {"error_rate", static_cast<double>(point.errors) / offered},
       {"degraded_rate", completed > 0 ? point.degraded / completed : 0.0},
       {"fallback_rate", completed > 0 ? point.fallback / completed : 0.0},
       {"lifted_rate", completed > 0 ? point.lifted / completed : 0.0},
       {"cache_hits", cache_hits},
       {"cache_misses", cache_misses},
       {"accounting_drift", drift},
       {"slo_breaching", SloBreachingTenants(*engine)},
       {"label_drift", LatencyLabelDrift()}});
}

/// Minimal blocking loopback client for the daemon leg (same framing as
/// the daemon: one request line, one response line).
class LineClient {
 public:
  explicit LineClient(int port) {
    // Clients race the daemon's accept loop at startup: a connect that
    // lands before listen() is serving (or while the backlog drains)
    // fails transiently with ECONNREFUSED/ECONNRESET. Retry with capped
    // exponential backoff instead of failing the whole run.
    constexpr int kMaxAttempts = 8;
    int backoff_us = 1000;  // 1ms, doubling to a 100ms cap
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) return;
      sockaddr_in addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<uint16_t>(port));
      int rc;
      do {
        rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) return;
      const bool transient = errno == ECONNREFUSED || errno == ECONNRESET;
      ::close(fd_);
      fd_ = -1;
      if (!transient || attempt + 1 == kMaxAttempts) return;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min(backoff_us * 2, 100000);
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  std::string RoundTrip(const std::string& request) {
    std::string framed = request + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      sent += static_cast<size_t>(n);
    }
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t newline = buffer_.find('\n');
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// daemon/roundtrip: the line protocol end to end — QUERY returns a
/// trace id, TRACE <id> returns that request's span tree, STATS returns
/// the tenant rollups. Sandboxes without loopback sockets report
/// daemon_skipped=1 instead of failing the run.
std::string RunDaemonLeg(server::Engine* engine, int queries) {
  double skipped = 0.0;
  double queries_ok = 0.0;
  double trace_trees = 0.0;
  double stats_ok = 0.0;
  int64_t wall_ns = 1;

  server::Daemon daemon(engine);
  const Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "daemon leg skipped (no loopback): %s\n",
                 started.ToString().c_str());
    skipped = 1.0;
  } else {
    const Clock::time_point start = Clock::now();
    LineClient client(daemon.port());
    if (!client.ok()) {
      skipped = 1.0;
    } else {
      for (int i = 0; i < queries; ++i) {
        const std::string response =
            client.RoundTrip("QUERY alpha db exists x y. R(x) & S(x, y)");
        if (response.compare(0, 3, "OK ") != 0) continue;
        ++queries_ok;
        // The trace id is the final response field.
        const size_t space = response.find_last_of(' ');
        const std::string tree =
            client.RoundTrip("TRACE " + response.substr(space + 1));
        if (tree.find("ipdb-trace-tree-v1") != std::string::npos &&
            tree.find("serve.request") != std::string::npos) {
          ++trace_trees;
        }
      }
      if (client.RoundTrip("STATS").find("ipdb-stats-v1") !=
          std::string::npos) {
        stats_ok = 1.0;
      }
    }
    wall_ns = std::max<int64_t>(1, ElapsedNs(start));
    daemon.Stop();
  }

  std::fprintf(stderr,
               "daemon/roundtrip queries_ok=%.0f trace_trees=%.0f "
               "stats_ok=%.0f skipped=%.0f\n",
               queries_ok, trace_trees, stats_ok, skipped);
  return bench_json::ResultLine(
      "serve_bench", "daemon/roundtrip",
      queries_ok > 0 ? static_cast<double>(wall_ns) / queries_ok : 0.0,
      static_cast<int64_t>(queries_ok),
      {{"daemon_skipped", skipped},
       {"queries_ok", queries_ok},
       {"trace_trees", trace_trees},
       {"stats_ok", stats_ok}});
}

int Run(int argc, char** argv) {
  std::string json_path =
      bench_json::ExtractFlag(&argc, argv, "--bench_json_out");
  if (json_path.empty()) json_path = "BENCH_serve.json";
  // --quick is presence-only; ExtractFlag would swallow the next
  // argument as its value, so scan for the literal token instead.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  std::string clients_flag =
      bench_json::ExtractFlag(&argc, argv, "--clients_max");
  const int clients_max =
      clients_flag.empty() ? 16 : std::max(1, std::atoi(clients_flag.c_str()));
  const std::string trace_path =
      bench_json::ExtractFlag(&argc, argv, "--trace-out");
  if (!trace_path.empty()) obs::SetTracingEnabled(true);

  kc::GlobalCompiledQueryCache().Clear();
  server::EngineOptions options;
  options.admission.max_queue_depth = 64;
  server::Engine engine(options);
  Status status = engine.RegisterInstance("db", BuildInstance(quick ? 24 : 48));
  if (!status.ok()) {
    std::fprintf(stderr, "register instance: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  // Two well-behaved tenants with budgets and cache quotas (alpha's
  // residency is capped, so eviction fairness runs under load), plus
  // the overload tenant whose queries are deliberately expensive. The
  // SLOs are part of the gate: alpha/beta carry generous objectives
  // that must stay "ok" through the closed rows, while gamma's
  // availability SLO must flip to "breaching" once the open/overload
  // row sheds.
  const char* tenants[][2] = {
      {"alpha",
       "budget_ms=2000 cache_max_entries=8 slo_p99_ms=5000 "
       "slo_availability=0.999"},
      {"beta", "budget_ms=2000 slo_p99_ms=5000 slo_availability=0.999"},
      {"gamma",
       "lifted=false max_circuit_nodes=1 fallback_samples=20000 "
       "degraded_samples=4000 max_in_flight=512 slo_availability=0.95"},
  };
  for (const auto& tenant : tenants) {
    status = engine.RegisterTenant(tenant[0], std::string(tenant[1]));
    if (!status.ok()) {
      std::fprintf(stderr, "register tenant %s: %s\n", tenant[0],
                   status.ToString().c_str());
      return 1;
    }
  }

  // Warmup compiles the workload's artifacts once, so the measured rows
  // see the steady-state hit path the service is designed around.
  for (const std::string& query : Workload()) {
    (void)engine.Query("alpha", "db", query);
    (void)engine.Query("beta", "db", query);
  }

  const int per_client = quick ? 40 : 200;
  std::vector<std::string> rows;
  for (int clients : {1, 4, 16}) {
    if (clients > clients_max) break;
    rows.push_back(
        RowFor(&engine, RunClosed(&engine, clients, per_client)));
  }
  rows.push_back(
      RowFor(&engine, RunOpenOverload(&engine, quick ? 400 : 1200)));
  rows.push_back(RunDaemonLeg(&engine, 20));

  status = engine.Stop();
  if (!status.ok()) {
    std::fprintf(stderr, "stop: %s\n", status.ToString().c_str());
    return 1;
  }
  bench_json::MergeIntoFile(json_path, "serve_bench", rows);
  std::fprintf(stderr, "wrote %zu result(s) for suite 'serve_bench' to %s\n",
               rows.size(), json_path.c_str());

  if (!trace_path.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    const int64_t dropped = recorder.dropped_events();
    const std::vector<obs::TraceEvent> events = recorder.Drain();
    const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Snapshot();
    Status written =
        obs::WriteChromeTrace(trace_path, events, &snapshot, dropped);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "wrote %zu span(s) (%lld dropped) and a metrics snapshot "
                 "to %s\n",
                 events.size(), static_cast<long long>(dropped),
                 trace_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ipdb

int main(int argc, char** argv) { return ipdb::Run(argc, argv); }
