// Microbenchmark for the columnar fact store, with three gated claims
// (ci.sh, Release leg):
//
//  * memory   — a 10M-fact binary-relation TI fits in ≤48 bytes/fact
//               (`bytes_per_fact` counter on BM_ColumnarBuild);
//  * grounding — grounding a 64-way ground disjunction against 10^6
//               facts is ≥5× faster columnar than legacy (the legacy
//               grounder materializes a std::map<Fact, int> over the
//               whole instance per call; the columnar one answers each
//               atom with dictionary probes + one binary search);
//  * re-query — after UpdateProbability, a PreparedQuery re-answer
//               (re-read marginals + circuit re-evaluation) is ≥10×
//               faster than the cold ground + compile + evaluate
//               pipeline on the same store.

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "kc/cache.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "pdb/ti_pdb.h"
#include "pqe/lineage.h"
#include "pqe/prepared.h"
#include "pqe/wmc.h"
#include "storage/ti_store.h"

namespace {

namespace pdb = ipdb::pdb;
namespace pqe = ipdb::pqe;
namespace rel = ipdb::rel;
namespace storage = ipdb::storage;

rel::Schema PairSchema() { return rel::Schema({{"S", 2}}); }

rel::Fact PairFact(int64_t i) {
  return rel::Fact(0, {rel::Value::Int(i % 99991),
                       rel::Value::Int(i / 99991)});
}

double PairProb(int64_t i) { return 0.05 + 0.9 * ((i * 31) % 101) / 101.0; }

/// Columnar build: n binary facts straight through TiStore::Builder.
void BM_ColumnarBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  int64_t bytes = 0;
  for (auto _ : state) {
    storage::TiStore::Builder builder(PairSchema());
    builder.Reserve(n);
    for (int64_t i = 0; i < n; ++i) builder.Add(PairFact(i), PairProb(i));
    auto store = builder.Finish();
    if (!store.ok()) {
      state.SkipWithError("build failed");
      return;
    }
    bytes = store.value()->ApproxBytes();
    benchmark::DoNotOptimize(store.value()->num_facts());
  }
  state.counters["facts"] = static_cast<double>(n);
  state.counters["bytes_per_fact"] =
      static_cast<double>(bytes) / static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColumnarBuild)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

/// Object-per-tuple baseline: the legacy FactList path (which Create
/// still keeps as the compatibility view) at 10^6 facts.
void BM_LegacyViewBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    pdb::TiPdbD::FactList facts;
    facts.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      facts.emplace_back(PairFact(i), PairProb(i));
    }
    pdb::TiPdbD ti = pdb::TiPdbD::CreateOrDie(PairSchema(), std::move(facts));
    benchmark::DoNotOptimize(ti.num_facts());
  }
  state.counters["facts"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyViewBuild)->Arg(1000000)->Unit(benchmark::kMillisecond);

/// The grounding workload: a 64-atom ground disjunction over a 10^6-fact
/// instance. Quantifier-free on purpose — the grounder's per-call
/// overhead (legacy: build fact_index + domain over ALL n facts;
/// columnar: 64 binary searches) is exactly what the two rows differ in.
ipdb::logic::Formula GroundDisjunction(int atoms) {
  std::vector<ipdb::logic::Formula> disjuncts;
  for (int k = 0; k < atoms; ++k) {
    const rel::Fact fact = PairFact(static_cast<int64_t>(k) * 9973);
    disjuncts.push_back(ipdb::logic::Atom(
        0, {ipdb::logic::Term::Const(fact.args()[0]),
            ipdb::logic::Term::Const(fact.args()[1])}));
  }
  return ipdb::logic::Or(std::move(disjuncts));
}

const pdb::TiPdbD& GroundingTi() {
  static const pdb::TiPdbD* ti = [] {
    const int64_t n = 1000000;
    pdb::TiPdbD::FactList facts;
    facts.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      facts.emplace_back(PairFact(i), PairProb(i));
    }
    return new pdb::TiPdbD(
        pdb::TiPdbD::CreateOrDie(PairSchema(), std::move(facts)));
  }();
  return *ti;
}

void BM_GroundLegacy(benchmark::State& state) {
  const pdb::TiPdbD& ti = GroundingTi();
  ipdb::logic::Formula query = GroundDisjunction(64);
  for (auto _ : state) {
    pqe::Lineage lineage;
    auto root = pqe::GroundSentenceLegacy(ti, query, &lineage);
    benchmark::DoNotOptimize(root.ok());
    if (!root.ok()) {
      state.SkipWithError("grounding failed");
      return;
    }
  }
  state.counters["facts"] = static_cast<double>(ti.num_facts());
}
BENCHMARK(BM_GroundLegacy)->Unit(benchmark::kMillisecond);

void BM_GroundColumnar(benchmark::State& state) {
  const pdb::TiPdbD& ti = GroundingTi();
  ipdb::logic::Formula query = GroundDisjunction(64);
  for (auto _ : state) {
    pqe::Lineage lineage;
    auto root = pqe::GroundSentence(*ti.store(), query, &lineage);
    benchmark::DoNotOptimize(root.ok());
    if (!root.ok()) {
      state.SkipWithError("grounding failed");
      return;
    }
  }
  state.counters["facts"] = static_cast<double>(ti.num_facts());
}
BENCHMARK(BM_GroundColumnar)->Unit(benchmark::kMillisecond);

/// Chain store for the re-query rows: n ≈ 2·hubs facts, the classic
/// ∃x∃y R(x) ∧ S(x,y) query, forced down the circuit pipeline.
std::shared_ptr<storage::TiStore> RequeryStore(int hubs) {
  rel::Schema schema({{"R", 1}, {"S", 2}});
  storage::TiStore::Builder builder(schema);
  for (int i = 0; i < hubs; ++i) {
    builder.Add(rel::Fact(0, {rel::Value::Int(i)}), 0.3 + 0.05 * (i % 10));
    builder.Add(
        rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(1000 + (i % 3))}),
        0.2 + 0.04 * (i % 7));
  }
  return builder.Finish().value();
}

void BM_ColdRequery(benchmark::State& state) {
  std::shared_ptr<storage::TiStore> store =
      RequeryStore(static_cast<int>(state.range(0)));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x) & S(x, y)",
                                 store->schema())
          .value();
  pqe::PreparedQuery::Options options;
  options.allow_lifted = false;
  for (auto _ : state) {
    // Cold: every iteration pays ground + compile + evaluate.
    ipdb::kc::GlobalCompiledQueryCache().Clear();
    auto prepared = pqe::PreparedQuery::Prepare(store, query, options);
    benchmark::DoNotOptimize(prepared.ok());
    if (!prepared.ok()) {
      state.SkipWithError("prepare failed");
      return;
    }
  }
  state.counters["facts"] = static_cast<double>(store->num_facts());
}
BENCHMARK(BM_ColdRequery)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_IncrementalRequery(benchmark::State& state) {
  std::shared_ptr<storage::TiStore> store =
      RequeryStore(static_cast<int>(state.range(0)));
  ipdb::logic::Formula query =
      ipdb::logic::ParseSentence("exists x y. R(x) & S(x, y)",
                                 store->schema())
          .value();
  pqe::PreparedQuery::Options options;
  options.allow_lifted = false;
  ipdb::kc::GlobalCompiledQueryCache().Clear();
  auto prepared = pqe::PreparedQuery::Prepare(store, query, options);
  if (!prepared.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  const rel::Fact touched(0, {rel::Value::Int(1)});
  double flip = 0.25;
  for (auto _ : state) {
    // Incremental: a marginal changed, the circuit survives — re-read
    // the probability columns and re-evaluate.
    flip = 0.75 - flip;  // alternate so every update really changes it
    benchmark::DoNotOptimize(store->UpdateProbability(touched, flip).ok());
    auto answer = prepared.value().Query();
    benchmark::DoNotOptimize(answer.ok());
    if (!answer.ok()) {
      state.SkipWithError("query failed");
      return;
    }
  }
  state.counters["facts"] = static_cast<double>(store->num_facts());
  state.counters["incremental_refreshes"] =
      static_cast<double>(prepared.value().incremental_refreshes());
}
BENCHMARK(BM_IncrementalRequery)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace

IPDB_BENCHMARK_JSON_MAIN("storage_bench", "BENCH_storage.json")
