# Benchmark targets, included from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains ONLY the runnable binaries
# (`for b in build/bench/*; do $b; done` runs everything cleanly).

function(ipdb_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} ipdb)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(ipdb_add_gbench name)
  ipdb_add_bench(${name})
  target_link_libraries(${name} benchmark::benchmark)
endfunction()

ipdb_add_bench(fig1_finite_hierarchy)
target_link_libraries(fig1_finite_hierarchy ipdb_test_util)
ipdb_add_bench(fig2_conditional_views)
ipdb_add_bench(fig3_segment_construction)
ipdb_add_bench(fig4_countable_hierarchy)
ipdb_add_bench(ex35_infinite_moment)
ipdb_add_bench(ex39_balance_bound)
ipdb_add_bench(ex55_growth_criterion)
ipdb_add_bench(ex56_criterion_gap)
ipdb_add_bench(sec6_logical_reasons)
ipdb_add_bench(bid_to_ti_bench)

ipdb_add_gbench(pqe_bench)
ipdb_add_gbench(lifted_bench)
ipdb_add_gbench(kc_bench)
ipdb_add_gbench(fo_eval_bench)
ipdb_add_gbench(moments_microbench)
ipdb_add_gbench(sampling_bench)
ipdb_add_gbench(math_bench)
ipdb_add_gbench(storage_bench)
# serve_bench has its own closed-loop main (no Google-Benchmark runner)
# but shares the bench_json.h reporting header, which needs the
# benchmark include path.
ipdb_add_gbench(serve_bench)
# durability_bench likewise runs a deterministic custom main (snapshot
# MB/s, recovery time, WAL append overhead) over bench_json.h.
ipdb_add_gbench(durability_bench)
