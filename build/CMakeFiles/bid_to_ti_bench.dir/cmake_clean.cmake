file(REMOVE_RECURSE
  "CMakeFiles/bid_to_ti_bench.dir/bench/bid_to_ti_bench.cc.o"
  "CMakeFiles/bid_to_ti_bench.dir/bench/bid_to_ti_bench.cc.o.d"
  "bench/bid_to_ti_bench"
  "bench/bid_to_ti_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bid_to_ti_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
