# Empty dependencies file for bid_to_ti_bench.
# This may be replaced when dependencies are built.
