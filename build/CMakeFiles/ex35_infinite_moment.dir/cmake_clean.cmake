file(REMOVE_RECURSE
  "CMakeFiles/ex35_infinite_moment.dir/bench/ex35_infinite_moment.cc.o"
  "CMakeFiles/ex35_infinite_moment.dir/bench/ex35_infinite_moment.cc.o.d"
  "bench/ex35_infinite_moment"
  "bench/ex35_infinite_moment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex35_infinite_moment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
