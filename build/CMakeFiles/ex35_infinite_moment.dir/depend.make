# Empty dependencies file for ex35_infinite_moment.
# This may be replaced when dependencies are built.
