file(REMOVE_RECURSE
  "CMakeFiles/ex39_balance_bound.dir/bench/ex39_balance_bound.cc.o"
  "CMakeFiles/ex39_balance_bound.dir/bench/ex39_balance_bound.cc.o.d"
  "bench/ex39_balance_bound"
  "bench/ex39_balance_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex39_balance_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
