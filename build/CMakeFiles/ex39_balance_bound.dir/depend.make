# Empty dependencies file for ex39_balance_bound.
# This may be replaced when dependencies are built.
