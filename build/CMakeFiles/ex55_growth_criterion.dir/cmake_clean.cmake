file(REMOVE_RECURSE
  "CMakeFiles/ex55_growth_criterion.dir/bench/ex55_growth_criterion.cc.o"
  "CMakeFiles/ex55_growth_criterion.dir/bench/ex55_growth_criterion.cc.o.d"
  "bench/ex55_growth_criterion"
  "bench/ex55_growth_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex55_growth_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
