# Empty dependencies file for ex55_growth_criterion.
# This may be replaced when dependencies are built.
