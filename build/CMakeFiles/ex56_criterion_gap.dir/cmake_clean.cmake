file(REMOVE_RECURSE
  "CMakeFiles/ex56_criterion_gap.dir/bench/ex56_criterion_gap.cc.o"
  "CMakeFiles/ex56_criterion_gap.dir/bench/ex56_criterion_gap.cc.o.d"
  "bench/ex56_criterion_gap"
  "bench/ex56_criterion_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex56_criterion_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
