# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ex56_criterion_gap.
