# Empty dependencies file for ex56_criterion_gap.
# This may be replaced when dependencies are built.
