file(REMOVE_RECURSE
  "CMakeFiles/fig1_finite_hierarchy.dir/bench/fig1_finite_hierarchy.cc.o"
  "CMakeFiles/fig1_finite_hierarchy.dir/bench/fig1_finite_hierarchy.cc.o.d"
  "bench/fig1_finite_hierarchy"
  "bench/fig1_finite_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_finite_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
