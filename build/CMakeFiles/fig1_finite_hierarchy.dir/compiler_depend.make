# Empty compiler generated dependencies file for fig1_finite_hierarchy.
# This may be replaced when dependencies are built.
