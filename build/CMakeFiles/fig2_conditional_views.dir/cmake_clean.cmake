file(REMOVE_RECURSE
  "CMakeFiles/fig2_conditional_views.dir/bench/fig2_conditional_views.cc.o"
  "CMakeFiles/fig2_conditional_views.dir/bench/fig2_conditional_views.cc.o.d"
  "bench/fig2_conditional_views"
  "bench/fig2_conditional_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_conditional_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
