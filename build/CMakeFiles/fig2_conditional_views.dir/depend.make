# Empty dependencies file for fig2_conditional_views.
# This may be replaced when dependencies are built.
