file(REMOVE_RECURSE
  "CMakeFiles/fig3_segment_construction.dir/bench/fig3_segment_construction.cc.o"
  "CMakeFiles/fig3_segment_construction.dir/bench/fig3_segment_construction.cc.o.d"
  "bench/fig3_segment_construction"
  "bench/fig3_segment_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_segment_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
