# Empty compiler generated dependencies file for fig3_segment_construction.
# This may be replaced when dependencies are built.
