file(REMOVE_RECURSE
  "CMakeFiles/fig4_countable_hierarchy.dir/bench/fig4_countable_hierarchy.cc.o"
  "CMakeFiles/fig4_countable_hierarchy.dir/bench/fig4_countable_hierarchy.cc.o.d"
  "bench/fig4_countable_hierarchy"
  "bench/fig4_countable_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_countable_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
