# Empty compiler generated dependencies file for fig4_countable_hierarchy.
# This may be replaced when dependencies are built.
