file(REMOVE_RECURSE
  "CMakeFiles/fo_eval_bench.dir/bench/fo_eval_bench.cc.o"
  "CMakeFiles/fo_eval_bench.dir/bench/fo_eval_bench.cc.o.d"
  "bench/fo_eval_bench"
  "bench/fo_eval_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo_eval_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
