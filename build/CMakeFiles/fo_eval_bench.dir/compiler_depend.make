# Empty compiler generated dependencies file for fo_eval_bench.
# This may be replaced when dependencies are built.
