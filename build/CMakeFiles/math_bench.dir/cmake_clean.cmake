file(REMOVE_RECURSE
  "CMakeFiles/math_bench.dir/bench/math_bench.cc.o"
  "CMakeFiles/math_bench.dir/bench/math_bench.cc.o.d"
  "bench/math_bench"
  "bench/math_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
