# Empty dependencies file for math_bench.
# This may be replaced when dependencies are built.
