file(REMOVE_RECURSE
  "CMakeFiles/moments_microbench.dir/bench/moments_microbench.cc.o"
  "CMakeFiles/moments_microbench.dir/bench/moments_microbench.cc.o.d"
  "bench/moments_microbench"
  "bench/moments_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moments_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
