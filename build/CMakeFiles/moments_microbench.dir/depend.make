# Empty dependencies file for moments_microbench.
# This may be replaced when dependencies are built.
