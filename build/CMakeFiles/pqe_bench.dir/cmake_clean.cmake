file(REMOVE_RECURSE
  "CMakeFiles/pqe_bench.dir/bench/pqe_bench.cc.o"
  "CMakeFiles/pqe_bench.dir/bench/pqe_bench.cc.o.d"
  "bench/pqe_bench"
  "bench/pqe_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqe_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
