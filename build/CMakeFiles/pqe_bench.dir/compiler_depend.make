# Empty compiler generated dependencies file for pqe_bench.
# This may be replaced when dependencies are built.
