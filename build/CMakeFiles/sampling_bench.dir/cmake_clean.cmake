file(REMOVE_RECURSE
  "CMakeFiles/sampling_bench.dir/bench/sampling_bench.cc.o"
  "CMakeFiles/sampling_bench.dir/bench/sampling_bench.cc.o.d"
  "bench/sampling_bench"
  "bench/sampling_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
