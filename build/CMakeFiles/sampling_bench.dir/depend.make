# Empty dependencies file for sampling_bench.
# This may be replaced when dependencies are built.
