file(REMOVE_RECURSE
  "CMakeFiles/sec6_logical_reasons.dir/bench/sec6_logical_reasons.cc.o"
  "CMakeFiles/sec6_logical_reasons.dir/bench/sec6_logical_reasons.cc.o.d"
  "bench/sec6_logical_reasons"
  "bench/sec6_logical_reasons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_logical_reasons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
