# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec6_logical_reasons.
