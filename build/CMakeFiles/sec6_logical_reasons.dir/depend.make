# Empty dependencies file for sec6_logical_reasons.
# This may be replaced when dependencies are built.
