file(REMOVE_RECURSE
  "CMakeFiles/car_accidents.dir/car_accidents.cpp.o"
  "CMakeFiles/car_accidents.dir/car_accidents.cpp.o.d"
  "car_accidents"
  "car_accidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_accidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
