# Empty compiler generated dependencies file for car_accidents.
# This may be replaced when dependencies are built.
