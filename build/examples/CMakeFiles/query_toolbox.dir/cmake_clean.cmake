file(REMOVE_RECURSE
  "CMakeFiles/query_toolbox.dir/query_toolbox.cpp.o"
  "CMakeFiles/query_toolbox.dir/query_toolbox.cpp.o.d"
  "query_toolbox"
  "query_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
