# Empty dependencies file for query_toolbox.
# This may be replaced when dependencies are built.
