file(REMOVE_RECURSE
  "CMakeFiles/representability_report.dir/representability_report.cpp.o"
  "CMakeFiles/representability_report.dir/representability_report.cpp.o.d"
  "representability_report"
  "representability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/representability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
