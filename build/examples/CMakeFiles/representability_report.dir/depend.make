# Empty dependencies file for representability_report.
# This may be replaced when dependencies are built.
