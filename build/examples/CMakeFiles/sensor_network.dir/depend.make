# Empty dependencies file for sensor_network.
# This may be replaced when dependencies are built.
