
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balance_bound.cc" "src/CMakeFiles/ipdb.dir/core/balance_bound.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/balance_bound.cc.o.d"
  "/root/repo/src/core/bid_to_ti.cc" "src/CMakeFiles/ipdb.dir/core/bid_to_ti.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/bid_to_ti.cc.o.d"
  "/root/repo/src/core/conditional_views.cc" "src/CMakeFiles/ipdb.dir/core/conditional_views.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/conditional_views.cc.o.d"
  "/root/repo/src/core/edge_cover.cc" "src/CMakeFiles/ipdb.dir/core/edge_cover.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/edge_cover.cc.o.d"
  "/root/repo/src/core/finite_completeness.cc" "src/CMakeFiles/ipdb.dir/core/finite_completeness.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/finite_completeness.cc.o.d"
  "/root/repo/src/core/growth_criterion.cc" "src/CMakeFiles/ipdb.dir/core/growth_criterion.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/growth_criterion.cc.o.d"
  "/root/repo/src/core/idb.cc" "src/CMakeFiles/ipdb.dir/core/idb.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/idb.cc.o.d"
  "/root/repo/src/core/idb_assignments.cc" "src/CMakeFiles/ipdb.dir/core/idb_assignments.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/idb_assignments.cc.o.d"
  "/root/repo/src/core/monotone_to_cq.cc" "src/CMakeFiles/ipdb.dir/core/monotone_to_cq.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/monotone_to_cq.cc.o.d"
  "/root/repo/src/core/paper_examples.cc" "src/CMakeFiles/ipdb.dir/core/paper_examples.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/paper_examples.cc.o.d"
  "/root/repo/src/core/representability.cc" "src/CMakeFiles/ipdb.dir/core/representability.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/representability.cc.o.d"
  "/root/repo/src/core/segment_construction.cc" "src/CMakeFiles/ipdb.dir/core/segment_construction.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/segment_construction.cc.o.d"
  "/root/repo/src/core/size_moments.cc" "src/CMakeFiles/ipdb.dir/core/size_moments.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/core/size_moments.cc.o.d"
  "/root/repo/src/logic/classify.cc" "src/CMakeFiles/ipdb.dir/logic/classify.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/logic/classify.cc.o.d"
  "/root/repo/src/logic/evaluator.cc" "src/CMakeFiles/ipdb.dir/logic/evaluator.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/logic/evaluator.cc.o.d"
  "/root/repo/src/logic/formula.cc" "src/CMakeFiles/ipdb.dir/logic/formula.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/logic/formula.cc.o.d"
  "/root/repo/src/logic/normalize.cc" "src/CMakeFiles/ipdb.dir/logic/normalize.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/logic/normalize.cc.o.d"
  "/root/repo/src/logic/parser.cc" "src/CMakeFiles/ipdb.dir/logic/parser.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/logic/parser.cc.o.d"
  "/root/repo/src/logic/view.cc" "src/CMakeFiles/ipdb.dir/logic/view.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/logic/view.cc.o.d"
  "/root/repo/src/math/bigint.cc" "src/CMakeFiles/ipdb.dir/math/bigint.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/math/bigint.cc.o.d"
  "/root/repo/src/math/rational.cc" "src/CMakeFiles/ipdb.dir/math/rational.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/math/rational.cc.o.d"
  "/root/repo/src/pdb/bid_pdb.cc" "src/CMakeFiles/ipdb.dir/pdb/bid_pdb.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/bid_pdb.cc.o.d"
  "/root/repo/src/pdb/combinators.cc" "src/CMakeFiles/ipdb.dir/pdb/combinators.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/combinators.cc.o.d"
  "/root/repo/src/pdb/conditioning.cc" "src/CMakeFiles/ipdb.dir/pdb/conditioning.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/conditioning.cc.o.d"
  "/root/repo/src/pdb/countable_pdb.cc" "src/CMakeFiles/ipdb.dir/pdb/countable_pdb.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/countable_pdb.cc.o.d"
  "/root/repo/src/pdb/finite_pdb.cc" "src/CMakeFiles/ipdb.dir/pdb/finite_pdb.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/finite_pdb.cc.o.d"
  "/root/repo/src/pdb/information.cc" "src/CMakeFiles/ipdb.dir/pdb/information.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/information.cc.o.d"
  "/root/repo/src/pdb/metrics.cc" "src/CMakeFiles/ipdb.dir/pdb/metrics.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/metrics.cc.o.d"
  "/root/repo/src/pdb/pushforward.cc" "src/CMakeFiles/ipdb.dir/pdb/pushforward.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/pushforward.cc.o.d"
  "/root/repo/src/pdb/sampling.cc" "src/CMakeFiles/ipdb.dir/pdb/sampling.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/sampling.cc.o.d"
  "/root/repo/src/pdb/ti_pdb.cc" "src/CMakeFiles/ipdb.dir/pdb/ti_pdb.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/ti_pdb.cc.o.d"
  "/root/repo/src/pdb/top_k.cc" "src/CMakeFiles/ipdb.dir/pdb/top_k.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pdb/top_k.cc.o.d"
  "/root/repo/src/pqe/expected_answers.cc" "src/CMakeFiles/ipdb.dir/pqe/expected_answers.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pqe/expected_answers.cc.o.d"
  "/root/repo/src/pqe/lineage.cc" "src/CMakeFiles/ipdb.dir/pqe/lineage.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pqe/lineage.cc.o.d"
  "/root/repo/src/pqe/monte_carlo.cc" "src/CMakeFiles/ipdb.dir/pqe/monte_carlo.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pqe/monte_carlo.cc.o.d"
  "/root/repo/src/pqe/open_world.cc" "src/CMakeFiles/ipdb.dir/pqe/open_world.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pqe/open_world.cc.o.d"
  "/root/repo/src/pqe/safe_plan.cc" "src/CMakeFiles/ipdb.dir/pqe/safe_plan.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pqe/safe_plan.cc.o.d"
  "/root/repo/src/pqe/wmc.cc" "src/CMakeFiles/ipdb.dir/pqe/wmc.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/pqe/wmc.cc.o.d"
  "/root/repo/src/prob/distribution.cc" "src/CMakeFiles/ipdb.dir/prob/distribution.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/prob/distribution.cc.o.d"
  "/root/repo/src/prob/moments.cc" "src/CMakeFiles/ipdb.dir/prob/moments.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/prob/moments.cc.o.d"
  "/root/repo/src/prob/pgf.cc" "src/CMakeFiles/ipdb.dir/prob/pgf.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/prob/pgf.cc.o.d"
  "/root/repo/src/prob/poisson_binomial.cc" "src/CMakeFiles/ipdb.dir/prob/poisson_binomial.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/prob/poisson_binomial.cc.o.d"
  "/root/repo/src/relational/fact.cc" "src/CMakeFiles/ipdb.dir/relational/fact.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/relational/fact.cc.o.d"
  "/root/repo/src/relational/instance.cc" "src/CMakeFiles/ipdb.dir/relational/instance.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/relational/instance.cc.o.d"
  "/root/repo/src/relational/parse.cc" "src/CMakeFiles/ipdb.dir/relational/parse.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/relational/parse.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/ipdb.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/ipdb.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/relational/value.cc.o.d"
  "/root/repo/src/util/interval.cc" "src/CMakeFiles/ipdb.dir/util/interval.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/util/interval.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/ipdb.dir/util/random.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/util/random.cc.o.d"
  "/root/repo/src/util/series.cc" "src/CMakeFiles/ipdb.dir/util/series.cc.o" "gcc" "src/CMakeFiles/ipdb.dir/util/series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
