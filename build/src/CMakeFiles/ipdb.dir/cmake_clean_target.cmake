file(REMOVE_RECURSE
  "libipdb.a"
)
