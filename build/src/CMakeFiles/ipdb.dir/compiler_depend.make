# Empty compiler generated dependencies file for ipdb.
# This may be replaced when dependencies are built.
