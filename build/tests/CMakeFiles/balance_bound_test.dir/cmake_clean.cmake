file(REMOVE_RECURSE
  "CMakeFiles/balance_bound_test.dir/balance_bound_test.cc.o"
  "CMakeFiles/balance_bound_test.dir/balance_bound_test.cc.o.d"
  "balance_bound_test"
  "balance_bound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
