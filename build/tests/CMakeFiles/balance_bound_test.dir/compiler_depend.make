# Empty compiler generated dependencies file for balance_bound_test.
# This may be replaced when dependencies are built.
