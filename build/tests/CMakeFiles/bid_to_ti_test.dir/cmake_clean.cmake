file(REMOVE_RECURSE
  "CMakeFiles/bid_to_ti_test.dir/bid_to_ti_test.cc.o"
  "CMakeFiles/bid_to_ti_test.dir/bid_to_ti_test.cc.o.d"
  "bid_to_ti_test"
  "bid_to_ti_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bid_to_ti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
