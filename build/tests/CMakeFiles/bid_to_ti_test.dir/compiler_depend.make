# Empty compiler generated dependencies file for bid_to_ti_test.
# This may be replaced when dependencies are built.
