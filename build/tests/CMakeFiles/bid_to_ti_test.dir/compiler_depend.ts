# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bid_to_ti_test.
