file(REMOVE_RECURSE
  "CMakeFiles/combinators_test.dir/combinators_test.cc.o"
  "CMakeFiles/combinators_test.dir/combinators_test.cc.o.d"
  "combinators_test"
  "combinators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combinators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
