# Empty compiler generated dependencies file for combinators_test.
# This may be replaced when dependencies are built.
