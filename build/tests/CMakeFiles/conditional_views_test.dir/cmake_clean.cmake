file(REMOVE_RECURSE
  "CMakeFiles/conditional_views_test.dir/conditional_views_test.cc.o"
  "CMakeFiles/conditional_views_test.dir/conditional_views_test.cc.o.d"
  "conditional_views_test"
  "conditional_views_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
