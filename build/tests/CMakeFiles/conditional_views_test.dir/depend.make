# Empty dependencies file for conditional_views_test.
# This may be replaced when dependencies are built.
