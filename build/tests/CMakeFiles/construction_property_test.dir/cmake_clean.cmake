file(REMOVE_RECURSE
  "CMakeFiles/construction_property_test.dir/construction_property_test.cc.o"
  "CMakeFiles/construction_property_test.dir/construction_property_test.cc.o.d"
  "construction_property_test"
  "construction_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construction_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
