# Empty dependencies file for construction_property_test.
# This may be replaced when dependencies are built.
