file(REMOVE_RECURSE
  "CMakeFiles/countable_pdb_test.dir/countable_pdb_test.cc.o"
  "CMakeFiles/countable_pdb_test.dir/countable_pdb_test.cc.o.d"
  "countable_pdb_test"
  "countable_pdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countable_pdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
