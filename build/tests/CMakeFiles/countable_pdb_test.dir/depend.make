# Empty dependencies file for countable_pdb_test.
# This may be replaced when dependencies are built.
