file(REMOVE_RECURSE
  "CMakeFiles/edge_cover_test.dir/edge_cover_test.cc.o"
  "CMakeFiles/edge_cover_test.dir/edge_cover_test.cc.o.d"
  "edge_cover_test"
  "edge_cover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
