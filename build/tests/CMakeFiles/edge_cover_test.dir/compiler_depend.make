# Empty compiler generated dependencies file for edge_cover_test.
# This may be replaced when dependencies are built.
