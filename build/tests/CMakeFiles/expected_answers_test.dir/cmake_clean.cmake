file(REMOVE_RECURSE
  "CMakeFiles/expected_answers_test.dir/expected_answers_test.cc.o"
  "CMakeFiles/expected_answers_test.dir/expected_answers_test.cc.o.d"
  "expected_answers_test"
  "expected_answers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_answers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
