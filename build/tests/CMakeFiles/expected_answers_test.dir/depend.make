# Empty dependencies file for expected_answers_test.
# This may be replaced when dependencies are built.
