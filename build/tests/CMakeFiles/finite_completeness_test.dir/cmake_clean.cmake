file(REMOVE_RECURSE
  "CMakeFiles/finite_completeness_test.dir/finite_completeness_test.cc.o"
  "CMakeFiles/finite_completeness_test.dir/finite_completeness_test.cc.o.d"
  "finite_completeness_test"
  "finite_completeness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
