# Empty compiler generated dependencies file for finite_completeness_test.
# This may be replaced when dependencies are built.
