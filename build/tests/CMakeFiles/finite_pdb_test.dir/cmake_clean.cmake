file(REMOVE_RECURSE
  "CMakeFiles/finite_pdb_test.dir/finite_pdb_test.cc.o"
  "CMakeFiles/finite_pdb_test.dir/finite_pdb_test.cc.o.d"
  "finite_pdb_test"
  "finite_pdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_pdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
