# Empty compiler generated dependencies file for finite_pdb_test.
# This may be replaced when dependencies are built.
