file(REMOVE_RECURSE
  "CMakeFiles/growth_criterion_test.dir/growth_criterion_test.cc.o"
  "CMakeFiles/growth_criterion_test.dir/growth_criterion_test.cc.o.d"
  "growth_criterion_test"
  "growth_criterion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growth_criterion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
