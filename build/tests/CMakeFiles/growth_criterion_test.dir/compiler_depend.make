# Empty compiler generated dependencies file for growth_criterion_test.
# This may be replaced when dependencies are built.
