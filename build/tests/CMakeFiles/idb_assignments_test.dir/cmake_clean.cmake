file(REMOVE_RECURSE
  "CMakeFiles/idb_assignments_test.dir/idb_assignments_test.cc.o"
  "CMakeFiles/idb_assignments_test.dir/idb_assignments_test.cc.o.d"
  "idb_assignments_test"
  "idb_assignments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idb_assignments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
