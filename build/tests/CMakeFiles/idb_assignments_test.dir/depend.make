# Empty dependencies file for idb_assignments_test.
# This may be replaced when dependencies are built.
