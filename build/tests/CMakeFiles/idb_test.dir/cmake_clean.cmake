file(REMOVE_RECURSE
  "CMakeFiles/idb_test.dir/idb_test.cc.o"
  "CMakeFiles/idb_test.dir/idb_test.cc.o.d"
  "idb_test"
  "idb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
