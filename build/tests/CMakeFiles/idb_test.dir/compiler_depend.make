# Empty compiler generated dependencies file for idb_test.
# This may be replaced when dependencies are built.
