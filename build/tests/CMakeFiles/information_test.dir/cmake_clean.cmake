file(REMOVE_RECURSE
  "CMakeFiles/information_test.dir/information_test.cc.o"
  "CMakeFiles/information_test.dir/information_test.cc.o.d"
  "information_test"
  "information_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/information_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
