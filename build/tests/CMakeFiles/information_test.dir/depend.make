# Empty dependencies file for information_test.
# This may be replaced when dependencies are built.
