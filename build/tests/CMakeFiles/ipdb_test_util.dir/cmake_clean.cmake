file(REMOVE_RECURSE
  "CMakeFiles/ipdb_test_util.dir/test_util.cc.o"
  "CMakeFiles/ipdb_test_util.dir/test_util.cc.o.d"
  "libipdb_test_util.a"
  "libipdb_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdb_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
