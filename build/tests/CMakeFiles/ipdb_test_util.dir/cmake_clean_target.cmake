file(REMOVE_RECURSE
  "libipdb_test_util.a"
)
