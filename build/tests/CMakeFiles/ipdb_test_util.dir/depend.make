# Empty dependencies file for ipdb_test_util.
# This may be replaced when dependencies are built.
