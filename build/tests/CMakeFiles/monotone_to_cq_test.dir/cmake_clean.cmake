file(REMOVE_RECURSE
  "CMakeFiles/monotone_to_cq_test.dir/monotone_to_cq_test.cc.o"
  "CMakeFiles/monotone_to_cq_test.dir/monotone_to_cq_test.cc.o.d"
  "monotone_to_cq_test"
  "monotone_to_cq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotone_to_cq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
