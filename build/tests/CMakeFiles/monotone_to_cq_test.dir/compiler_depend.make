# Empty compiler generated dependencies file for monotone_to_cq_test.
# This may be replaced when dependencies are built.
