file(REMOVE_RECURSE
  "CMakeFiles/open_world_test.dir/open_world_test.cc.o"
  "CMakeFiles/open_world_test.dir/open_world_test.cc.o.d"
  "open_world_test"
  "open_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
