# Empty dependencies file for open_world_test.
# This may be replaced when dependencies are built.
