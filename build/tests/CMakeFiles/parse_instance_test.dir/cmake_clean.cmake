file(REMOVE_RECURSE
  "CMakeFiles/parse_instance_test.dir/parse_instance_test.cc.o"
  "CMakeFiles/parse_instance_test.dir/parse_instance_test.cc.o.d"
  "parse_instance_test"
  "parse_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
