# Empty dependencies file for parse_instance_test.
# This may be replaced when dependencies are built.
