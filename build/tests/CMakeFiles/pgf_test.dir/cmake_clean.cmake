file(REMOVE_RECURSE
  "CMakeFiles/pgf_test.dir/pgf_test.cc.o"
  "CMakeFiles/pgf_test.dir/pgf_test.cc.o.d"
  "pgf_test"
  "pgf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
