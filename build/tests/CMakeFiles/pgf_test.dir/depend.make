# Empty dependencies file for pgf_test.
# This may be replaced when dependencies are built.
