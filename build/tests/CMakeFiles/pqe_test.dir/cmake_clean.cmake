file(REMOVE_RECURSE
  "CMakeFiles/pqe_test.dir/pqe_test.cc.o"
  "CMakeFiles/pqe_test.dir/pqe_test.cc.o.d"
  "pqe_test"
  "pqe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
