# Empty compiler generated dependencies file for pqe_test.
# This may be replaced when dependencies are built.
