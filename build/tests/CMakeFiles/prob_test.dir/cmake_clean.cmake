file(REMOVE_RECURSE
  "CMakeFiles/prob_test.dir/prob_test.cc.o"
  "CMakeFiles/prob_test.dir/prob_test.cc.o.d"
  "prob_test"
  "prob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
