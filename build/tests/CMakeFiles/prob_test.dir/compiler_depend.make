# Empty compiler generated dependencies file for prob_test.
# This may be replaced when dependencies are built.
