file(REMOVE_RECURSE
  "CMakeFiles/rational_test.dir/rational_test.cc.o"
  "CMakeFiles/rational_test.dir/rational_test.cc.o.d"
  "rational_test"
  "rational_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
