file(REMOVE_RECURSE
  "CMakeFiles/representability_test.dir/representability_test.cc.o"
  "CMakeFiles/representability_test.dir/representability_test.cc.o.d"
  "representability_test"
  "representability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/representability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
