# Empty dependencies file for representability_test.
# This may be replaced when dependencies are built.
