file(REMOVE_RECURSE
  "CMakeFiles/safe_plan_test.dir/safe_plan_test.cc.o"
  "CMakeFiles/safe_plan_test.dir/safe_plan_test.cc.o.d"
  "safe_plan_test"
  "safe_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
