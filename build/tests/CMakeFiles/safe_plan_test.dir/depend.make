# Empty dependencies file for safe_plan_test.
# This may be replaced when dependencies are built.
