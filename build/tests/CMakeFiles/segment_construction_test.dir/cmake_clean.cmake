file(REMOVE_RECURSE
  "CMakeFiles/segment_construction_test.dir/segment_construction_test.cc.o"
  "CMakeFiles/segment_construction_test.dir/segment_construction_test.cc.o.d"
  "segment_construction_test"
  "segment_construction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_construction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
