# Empty compiler generated dependencies file for segment_construction_test.
# This may be replaced when dependencies are built.
