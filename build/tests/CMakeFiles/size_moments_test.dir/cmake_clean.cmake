file(REMOVE_RECURSE
  "CMakeFiles/size_moments_test.dir/size_moments_test.cc.o"
  "CMakeFiles/size_moments_test.dir/size_moments_test.cc.o.d"
  "size_moments_test"
  "size_moments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
