# Empty dependencies file for size_moments_test.
# This may be replaced when dependencies are built.
