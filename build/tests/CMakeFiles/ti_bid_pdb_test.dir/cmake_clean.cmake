file(REMOVE_RECURSE
  "CMakeFiles/ti_bid_pdb_test.dir/ti_bid_pdb_test.cc.o"
  "CMakeFiles/ti_bid_pdb_test.dir/ti_bid_pdb_test.cc.o.d"
  "ti_bid_pdb_test"
  "ti_bid_pdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ti_bid_pdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
