# Empty compiler generated dependencies file for ti_bid_pdb_test.
# This may be replaced when dependencies are built.
