# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ti_bid_pdb_test.
