#!/usr/bin/env bash
# Tier-1 verification, run three times: plain, with ASan/UBSan
# instrumentation (-DIPDB_SANITIZE="address;undefined"), and as an
# optimized Release build (-O2 -DNDEBUG) so the arithmetic kernels are
# exercised the way benchmarks and users run them.
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== plain build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
ctest --test-dir build --output-on-failure -j"${jobs}" "$@"

echo "=== sanitized build + tests (address;undefined) ==="
cmake -B build-sanitize -S . -DIPDB_SANITIZE="address;undefined" >/dev/null
cmake --build build-sanitize -j"${jobs}"
ctest --test-dir build-sanitize --output-on-failure -j"${jobs}" "$@"

echo "=== release build + tests (-O2 -DNDEBUG) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j"${jobs}"
ctest --test-dir build-release --output-on-failure -j"${jobs}" "$@"

echo "=== ci.sh: all green ==="
