#!/usr/bin/env bash
# Tier-1 verification, run three times: plain, with ASan/UBSan
# instrumentation (-DIPDB_SANITIZE="address;undefined"), and as an
# optimized Release build (-O2 -DNDEBUG) so the arithmetic kernels are
# exercised the way benchmarks and users run them. Every leg includes
# the knowledge-compilation tests (kc_test, kc_property_test); the
# Release leg additionally gates compiled-vs-legacy single-shot parity.
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"

# The kc tests ride along in every ctest invocation below; fail loudly
# if they ever drop out of the registered test list.
require_kc_tests() {
  local build_dir="$1" listing
  listing="$(ctest --test-dir "${build_dir}" -N)"
  for t in kc_test kc_property_test; do
    if ! grep -q "${t}" <<<"${listing}"; then
      echo "ci.sh: ${t} missing from ${build_dir} test list" >&2
      exit 1
    fi
  done
}

echo "=== plain build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
require_kc_tests build
ctest --test-dir build --output-on-failure -j"${jobs}" "$@"

echo "=== sanitized build + tests (address;undefined) ==="
cmake -B build-sanitize -S . -DIPDB_SANITIZE="address;undefined" >/dev/null
cmake --build build-sanitize -j"${jobs}"
require_kc_tests build-sanitize
ctest --test-dir build-sanitize --output-on-failure -j"${jobs}" "$@"

echo "=== release build + tests (-O2 -DNDEBUG) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j"${jobs}"
require_kc_tests build-release
ctest --test-dir build-release --output-on-failure -j"${jobs}" "$@"

echo "=== kc_bench single-shot parity gate (Release) ==="
# One d-DNNF compile + evaluation must stay within 2x of a legacy WMC
# solve on the gated rows. The tiny bipartite side-4 row is reported but
# not gated (the legacy solve there is ~4us, so fixed circuit-
# construction costs dominate the ratio), and side 8 sits near the
# threshold, so the gate reads the chain rows plus bipartite side 6.
parity_json="build-release/BENCH_ci_parity.json"
rm -f "${parity_json}"
./build-release/bench/kc_bench --bench_json_out="${parity_json}" \
  --benchmark_filter='SingleShot' --benchmark_min_time=0.2 >/dev/null
python3 - "${parity_json}" <<'EOF'
import json, sys

rows = {r["op"]: r["ns_per_op"] for r in json.load(open(sys.argv[1]))["results"]}
gated = [("BM_KcSingleShotChain/8", "BM_WmcSingleShotChain/8"),
         ("BM_KcSingleShotChain/16", "BM_WmcSingleShotChain/16"),
         ("BM_KcSingleShotChain/32", "BM_WmcSingleShotChain/32"),
         ("BM_KcSingleShotBipartite/6", "BM_WmcSingleShotBipartite/6")]
failed = False
for kc, wmc in gated:
    ratio = rows[kc] / rows[wmc]
    verdict = "ok" if ratio <= 2.0 else "FAIL (> 2x)"
    print(f"  {kc:34s} {ratio:5.2f}x of legacy   {verdict}")
    failed |= ratio > 2.0
sys.exit(1 if failed else 0)
EOF

echo "=== ci.sh: all green ==="
