#!/usr/bin/env bash
# Tier-1 verification across six build legs: plain, ASan/UBSan
# (-DIPDB_SANITIZE="address;undefined"), fault injection under ASan
# (-DIPDB_FAULT_INJECTION=ON — every registered fault site is armed in
# turn and must unwind as a clean Status), TSan over the concurrency
# tests, an optimized Release build (-O2 -DNDEBUG) so the arithmetic
# kernels are exercised the way benchmarks and users run them, and a
# Release build with -DIPDB_OBSERVABILITY=OFF so the compiled-out macro
# expansions stay buildable. Every leg includes the knowledge-
# compilation tests (kc_test, kc_property_test); the Release legs
# additionally gate compiled-vs-legacy single-shot parity, the lifted
# safe-plan rung (1e-9 parity with the circuit rung plus a >= 10x
# speedup on the chain query at 10^4 facts), the columnar fact store
# (<= 48 bytes/fact at 10^7 facts, >= 5x grounding speedup over the
# legacy object-per-tuple path, incremental re-query >= 10x faster than
# cold), crash-safe durability (the fault leg drives durability_crash
# through injected dur.* failures, a real kill -9, and a torn WAL tail,
# gating bit-identical recovery; the Release leg gates the WAL append
# overhead at <= 15% of a bare mutation), the query service under
# closed-loop load (serve_bench: p99
# latency budget at 16 clients, bounded shed rates, zero cross-tenant
# cache-accounting drift, zero labeled-metric drift, SLO burn-rate
# breaching exactly on the overload row, and the daemon QUERY -> TRACE
# -> STATS round trip), per-request span-tree connectivity on the serve
# trace artifact (>= 95% of QUERYs reassemble into one connected tree
# rooted at serve.request), the observability overhead (instrumented
# within 5% of compiled-out), and the trace exporter (span coverage +
# counter consistency on a real trace artifact).
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"

# The kc tests ride along in every ctest invocation below; fail loudly
# if they ever drop out of the registered test list.
require_kc_tests() {
  local build_dir="$1" listing
  listing="$(ctest --test-dir "${build_dir}" -N)"
  for t in kc_test kc_property_test; do
    if ! grep -q "${t}" <<<"${listing}"; then
      echo "ci.sh: ${t} missing from ${build_dir} test list" >&2
      exit 1
    fi
  done
}

echo "=== plain build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
require_kc_tests build
ctest --test-dir build --output-on-failure -j"${jobs}" "$@"

echo "=== sanitized build + tests (address;undefined) ==="
cmake -B build-sanitize -S . -DIPDB_SANITIZE="address;undefined" >/dev/null
cmake --build build-sanitize -j"${jobs}"
require_kc_tests build-sanitize
ctest --test-dir build-sanitize --output-on-failure -j"${jobs}" "$@"

echo "=== fault-injection build + tests (ASan, IPDB_FAULT_INJECTION=ON) ==="
# Error paths are tested on purpose: with fault points compiled in,
# fault_test arms every registered site in turn and proves each injected
# failure unwinds as a clean Status — no abort, no leak (ASan) — and
# FaultFiringTest.EverySiteUnwindsCleanly fails if even one registered
# site is never reached by the representative workload, so a new
# IPDB_FAULT_POINT cannot land without coverage. The rest of the suite
# rides along to show armed-but-unplanned sites stay inert.
cmake -B build-fault -S . -DIPDB_SANITIZE="address" \
  -DIPDB_FAULT_INJECTION=ON >/dev/null
cmake --build build-fault -j"${jobs}"
require_kc_tests build-fault
ctest --test-dir build-fault --output-on-failure -j"${jobs}" "$@"

echo "=== crash-recovery gate (ASan + fault build, durability_crash) ==="
# Drives the durability_crash helper through injected I/O failures and a
# real process death, gating that recovery reproduces bit-identical
# state: the grounding FINGERPRINT, the exact rational MARGINAL, and the
# FACTS count must match the pre-crash baseline line for line.
crash_bin="./build-fault/tests/durability_crash"
crash_dir="$(mktemp -d)"
trap 'rm -rf "${crash_dir}"' EXIT

crash_state() {  # mode dir -> the comparable state lines
  "${crash_bin}" "$1" "$2" | grep -E '^(FINGERPRINT|MARGINAL|FACTS) '
}
crash_must_fail() {  # site mode dir
  if IPDB_FAULTS="$1" "${crash_bin}" "$2" "$3" >/dev/null 2>&1; then
    echo "ci.sh: ${2} with ${1} armed unexpectedly succeeded" >&2
    exit 1
  fi
}
crash_check() {  # label expected actual
  if [[ "$2" != "$3" ]]; then
    echo "ci.sh: crash-recovery state diverged (${1})" >&2
    diff <(printf '%s\n' "$2") <(printf '%s\n' "$3") >&2 || true
    exit 1
  fi
  echo "  ${1}: recovered state bit-identical"
}

# (a) WAL-append fault: the mutation batch fails up front (log-then-
# apply rolls the buffered record back) and recovery still shows the
# freshly prepared instance.
d="${crash_dir}/append"; mkdir -p "${d}"
seed_state="$(crash_state prepare "${d}")"
crash_must_fail dur.wal.append:1 mutate "${d}"
crash_check "dur.wal.append" "${seed_state}" "$(crash_state recover "${d}")"

# (b) snapshot-write and rename faults: a failed checkpoint must leave
# the journaled state fully recoverable (old snapshot + intact WAL).
d="${crash_dir}/checkpoint"; mkdir -p "${d}"
crash_state prepare "${d}" >/dev/null
mutated_state="$(crash_state mutate "${d}")"
crash_must_fail dur.snapshot.write:1 checkpoint "${d}"
crash_check "dur.snapshot.write" "${mutated_state}" \
  "$(crash_state recover "${d}")"
crash_must_fail dur.rename:1 checkpoint "${d}"
crash_check "dur.rename" "${mutated_state}" "$(crash_state recover "${d}")"

# (c) replay fault: recovery fails loudly once, then succeeds unarmed
# on the very same files.
crash_must_fail dur.wal.replay:1 recover "${d}"
crash_check "dur.wal.replay" "${mutated_state}" \
  "$(crash_state recover "${d}")"

# (d) kill -9 mid-batch: the helper commits batch A, Flush()es it to
# the page cache, prints its state, buffers batch B in user space, and
# raises SIGKILL. Batch A must survive, batch B must vanish — recovery
# equals exactly what the victim printed before dying.
d="${crash_dir}/kill9"; mkdir -p "${d}"
crash_state prepare "${d}" >/dev/null
set +e
kill9_out="$("${crash_bin}" kill9 "${d}")"
kill9_rc=$?
set -e
if [[ ${kill9_rc} -ne 137 ]]; then
  echo "ci.sh: kill9 mode should die by SIGKILL (137), got ${kill9_rc}" >&2
  exit 1
fi
kill9_state="$(grep -E '^(FINGERPRINT|MARGINAL|FACTS) ' <<<"${kill9_out}")"
crash_check "kill -9" "${kill9_state}" "$(crash_state recover "${d}")"

# (e) torn tail: garbage appended to the WAL is truncated on recovery
# (TRUNCATED 1), never fatal, and the committed state is untouched.
d="${crash_dir}/torn"; mkdir -p "${d}"
crash_state prepare "${d}" >/dev/null
mutated_state="$(crash_state mutate "${d}")"
"${crash_bin}" garble "${d}" >/dev/null
torn_out="$("${crash_bin}" recover "${d}")"
if ! grep -q '^TRUNCATED 1$' <<<"${torn_out}"; then
  echo "ci.sh: recovery did not report the torn tail" >&2
  exit 1
fi
crash_check "torn WAL tail" "${mutated_state}" \
  "$(grep -E '^(FINGERPRINT|MARGINAL|FACTS) ' <<<"${torn_out}")"

echo "=== thread-sanitized build + concurrency tests ==="
# TSan over the code that shares state across threads: the pool's
# drain-on-error batches, budget/cancellation polling from workers, the
# sharded Monte Carlo engines, the metrics registry, the lifted rung's
# counter/cancellation traffic (safe_plan_test, lifted_parity_test), the
# columnar store's concurrent readers + dependent-artifact
# registrations (storage_test), and the query service (server_test: the
# 16-thread concurrent-serving parity run, shared PreparedQuery handles
# racing the refresh machinery, admission + shutdown drain).
cmake -B build-tsan -S . -DIPDB_SANITIZE="thread" >/dev/null
cmake --build build-tsan -j"${jobs}" --target \
  parallel_test budget_test obs_test pqe_test fault_test \
  safe_plan_test lifted_parity_test storage_test server_test
ctest --test-dir build-tsan --output-on-failure -j"${jobs}" \
  -R '^(parallel_test|budget_test|obs_test|pqe_test|fault_test|safe_plan_test|lifted_parity_test|storage_test|server_test)$'

echo "=== release build + tests (-O2 -DNDEBUG) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j"${jobs}"
require_kc_tests build-release
ctest --test-dir build-release --output-on-failure -j"${jobs}" "$@"

echo "=== release build + tests, observability compiled out ==="
cmake -B build-obs-off -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" \
  -DIPDB_OBSERVABILITY=OFF >/dev/null
cmake --build build-obs-off -j"${jobs}"
require_kc_tests build-obs-off
ctest --test-dir build-obs-off --output-on-failure -j"${jobs}" "$@"

echo "=== kc_bench single-shot parity gate (Release) ==="
# One d-DNNF compile + evaluation must stay within 2x of a legacy WMC
# solve on the gated rows. The tiny bipartite side-4 row is reported but
# not gated (the legacy solve there is ~4us, so fixed circuit-
# construction costs dominate the ratio), and side 8 sits near the
# threshold, so the gate reads the chain rows plus bipartite side 6.
parity_json="build-release/BENCH_ci_parity.json"
rm -f "${parity_json}"
./build-release/bench/kc_bench --bench_json_out="${parity_json}" \
  --benchmark_filter='SingleShot' --benchmark_min_time=0.2 >/dev/null
python3 - "${parity_json}" <<'EOF'
import json, sys

rows = {r["op"]: r["ns_per_op"] for r in json.load(open(sys.argv[1]))["results"]}
gated = [("BM_KcSingleShotChain/8", "BM_WmcSingleShotChain/8"),
         ("BM_KcSingleShotChain/16", "BM_WmcSingleShotChain/16"),
         ("BM_KcSingleShotChain/32", "BM_WmcSingleShotChain/32"),
         ("BM_KcSingleShotBipartite/6", "BM_WmcSingleShotBipartite/6")]
failed = False
for kc, wmc in gated:
    ratio = rows[kc] / rows[wmc]
    verdict = "ok" if ratio <= 2.0 else "FAIL (> 2x)"
    print(f"  {kc:34s} {ratio:5.2f}x of legacy   {verdict}")
    failed |= ratio > 2.0
sys.exit(1 if failed else 0)
EOF

echo "=== lifted-rung parity + speedup gate (Release) ==="
# The lifted safe-plan rung must (a) agree with the circuit rung to
# 1e-9 on every row that carries a parity counter and (b) beat the
# ground-and-compile pipeline by >= 10x on the chain query at 10^4
# facts. The star rows are reported for the crossover table in
# EXPERIMENTS.md but not gated (same engine, noisier setup).
lifted_json="build-release/BENCH_ci_lifted.json"
rm -f "${lifted_json}"
./build-release/bench/lifted_bench --bench_json_out="${lifted_json}" \
  --benchmark_min_time=0.2 >/dev/null
python3 - "${lifted_json}" <<'EOF'
import json, sys

rows = {r["op"]: r for r in json.load(open(sys.argv[1]))["results"]}
failed = False
for op, row in sorted(rows.items()):
    err = row.get("counters", {}).get("parity_abs_err")
    if err is None:
        continue
    verdict = "ok" if err <= 1e-9 else "FAIL (> 1e-9)"
    print(f"  {op:26s} parity_abs_err={err:.3g}   {verdict}")
    failed |= err > 1e-9
speedup = (rows["BM_CircuitChain/10000"]["ns_per_op"]
           / rows["BM_LiftedChain/10000"]["ns_per_op"])
star = (rows["BM_CircuitStar/1000"]["ns_per_op"]
        / rows["BM_LiftedStar/1000"]["ns_per_op"])
verdict = "ok" if speedup >= 10.0 else "FAIL (< 10x)"
print(f"  chain@10^4 lifted speedup: {speedup:5.1f}x   {verdict}")
print(f"  star@10^3  lifted speedup: {star:5.1f}x   (reported)")
failed |= speedup < 10.0
sys.exit(1 if failed else 0)
EOF

echo "=== columnar storage gates (Release) ==="
# Three claims from the storage layer, measured by storage_bench:
#  * a 10M-fact binary-relation TI fits in <= 48 bytes/fact
#    (dictionary-encoded columns vs ~112 bytes for the object-per-tuple
#    FactList view);
#  * grounding a 64-atom disjunction against 10^6 facts is >= 5x faster
#    columnar (dictionary probes + binary search per atom) than legacy
#    (which materializes a std::map over the whole instance per call);
#  * after UpdateProbability, a PreparedQuery re-answer (re-read the
#    probability column, re-evaluate the cached circuit) is >= 10x
#    faster than the cold ground + compile + evaluate pipeline.
storage_json="build-release/BENCH_storage.json"
rm -f "${storage_json}"
(cd build-release && ./bench/storage_bench \
  --bench_json_out=BENCH_storage.json --benchmark_min_time=0.2 >/dev/null)
python3 - "${storage_json}" <<'EOF'
import json, sys

rows = {r["op"]: r for r in json.load(open(sys.argv[1]))["results"]}
failed = False

bpf = rows["BM_ColumnarBuild/10000000"]["counters"]["bytes_per_fact"]
verdict = "ok" if bpf <= 48.0 else "FAIL (> 48)"
print(f"  bytes/fact at 10^7 facts:      {bpf:6.2f}     {verdict}")
failed |= bpf > 48.0

ground = (rows["BM_GroundLegacy"]["ns_per_op"]
          / rows["BM_GroundColumnar"]["ns_per_op"])
verdict = "ok" if ground >= 5.0 else "FAIL (< 5x)"
print(f"  columnar grounding speedup:    {ground:6.1f}x    {verdict}")
failed |= ground < 5.0

requery = (rows["BM_ColdRequery/200"]["ns_per_op"]
           / rows["BM_IncrementalRequery/200"]["ns_per_op"])
verdict = "ok" if requery >= 10.0 else "FAIL (< 10x)"
print(f"  incremental re-query speedup:  {requery:6.1f}x    {verdict}")
failed |= requery < 10.0

sys.exit(1 if failed else 0)
EOF

echo "=== durability gates (Release, durability_bench) ==="
# The WAL cost envelope at 10^6 facts: journaling a mutation (encode +
# CRC32C + group-commit buffering) must cost <= 15% over the bare
# TiStore mutator. Snapshot write/restore throughput and full recovery
# time (snapshot + 10^4-record WAL replay) are reported alongside.
dur_json="build-release/BENCH_durability.json"
rm -f "${dur_json}"
./build-release/bench/durability_bench --facts=1000000 \
  --bench_json_out="${dur_json}" >/dev/null
python3 - "${dur_json}" <<'EOF'
import json, sys

rows = {r["op"]: r["counters"]
        for r in json.load(open(sys.argv[1]))["results"]}
write = rows["snapshot/write/1e6"]["mb_per_s"]
restore = rows["snapshot/restore/1e6"]["mb_per_s"]
recovery = rows["recover/1e6"]["recovery_ms"]
overhead = rows["wal/append_overhead"]["wal_overhead"]
print(f"  snapshot write {write:6.1f} MB/s, restore {restore:6.1f} MB/s, "
      f"recovery at 10^6 facts {recovery:6.1f} ms")
verdict = "ok" if overhead <= 0.15 else "FAIL (> 15%)"
print(f"  WAL append overhead vs bare mutator: {overhead:+.1%}   {verdict}")
sys.exit(1 if overhead > 0.15 else 0)
EOF

echo "=== query-service load gates (Release, serve_bench) ==="
# The closed-loop harness drives the multi-tenant front door at 1/4/16
# concurrent clients plus an open-arrival overload burst, and gates:
#  * p99 latency at the closed 16-client row stays under 250 ms — the
#    serving budget for the mixed workload on a warm artifact cache;
#  * the closed rows shed (almost) nothing: a closed loop offers at
#    most its client count in flight, far below the admission ceiling;
#  * the overload row sheds SOME but not everything: the ladder
#    degrades gracefully instead of collapsing or silently queueing;
#  * no row reports non-shed errors;
#  * accounting_drift == 0: per-tenant accounting of the shared
#    artifact cache still partitions the resident set exactly;
#  * label_drift == 0: the per-tenant serve.latency_ns family sums
#    exactly to the unlabeled aggregate on every row;
#  * slo_breaching: the burn-rate engine stays quiet through the
#    closed rows and flips the overload tenant's availability SLO to
#    "breaching" under the open-arrival burst;
#  * the daemon leg round-trips QUERY -> TRACE -> STATS over loopback
#    (tolerated as skipped only where sockets are unavailable).
serve_json="build-release/BENCH_serve.json"
serve_trace="build-release/TRACE_serve.json"
rm -f "${serve_json}" "${serve_trace}"
./build-release/bench/serve_bench --quick \
  --bench_json_out="${serve_json}" --trace-out "${serve_trace}" >/dev/null
python3 - "${serve_json}" <<'EOF'
import json, sys

rows = {r["op"]: r["counters"] for r in
        json.load(open(sys.argv[1]))["results"]}
failed = False

def gate(label, ok):
    global failed
    print(f"  {label:58s} {'ok' if ok else 'FAIL'}")
    failed |= not ok

load_rows = ("closed/1", "closed/4", "closed/16", "open/overload")
for op in load_rows + ("daemon/roundtrip",):
    assert op in rows, f"row {op} missing from BENCH_serve.json"

p99 = rows["closed/16"]["p99_ms"]
gate(f"closed/16 p99 = {p99:.1f} ms (budget 250 ms)", p99 <= 250.0)
for op in ("closed/1", "closed/4", "closed/16"):
    shed = rows[op]["shed_rate"]
    gate(f"{op} shed_rate = {shed:.3f} (closed loop, <= 0.01)",
         shed <= 0.01)
overload = rows["open/overload"]["shed_rate"]
gate(f"open/overload shed_rate = {overload:.3f} (in (0, 0.99])",
     0.0 < overload <= 0.99)
for op in load_rows:
    counters = rows[op]
    gate(f"{op} error_rate = {counters['error_rate']:.3f} (== 0)",
         counters["error_rate"] == 0.0)
    gate(f"{op} accounting_drift = {counters['accounting_drift']:.0f}",
         counters["accounting_drift"] == 0.0)
    gate(f"{op} label_drift = {counters['label_drift']:.0f} (== 0)",
         counters["label_drift"] == 0.0)
hits = rows["closed/16"]["cache_hits"]
gate(f"closed/16 artifact-cache hits = {hits:.0f} (> 0)", hits > 0)

for op in ("closed/1", "closed/4", "closed/16"):
    breaching = rows[op]["slo_breaching"]
    gate(f"{op} slo_breaching = {breaching:.0f} (== 0)", breaching == 0.0)
breaching = rows["open/overload"]["slo_breaching"]
gate(f"open/overload slo_breaching = {breaching:.0f} (>= 1)",
     breaching >= 1.0)

daemon = rows["daemon/roundtrip"]
if daemon["daemon_skipped"] == 1.0:
    gate("daemon/roundtrip skipped (no loopback sockets)", True)
else:
    gate(f"daemon queries_ok = {daemon['queries_ok']:.0f} (== 20)",
         daemon["queries_ok"] == 20.0)
    gate(f"daemon trace_trees = {daemon['trace_trees']:.0f} (== 20)",
         daemon["trace_trees"] == 20.0)
    gate(f"daemon stats_ok = {daemon['stats_ok']:.0f} (== 1)",
         daemon["stats_ok"] == 1.0)
sys.exit(1 if failed else 0)
EOF

echo "=== serve trace artifact: per-request span-tree connectivity ==="
# Every QUERY the load harness issued must reassemble into one
# connected span tree rooted at serve.request from the Chrome-trace
# args (trace/span/parent): >= 95% of request traces with exactly one
# root named serve.request and no orphan spans (a span whose parent id
# is absent from its own trace).
python3 - "${serve_trace}" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
by_trace = {}
for event in doc["traceEvents"]:
    args = event.get("args", {})
    trace = args.get("trace", 0)
    if trace:
        by_trace.setdefault(trace, []).append(
            (event["name"], args["span"], args.get("parent", 0)))

total = len(by_trace)
connected = 0
for spans in by_trace.values():
    ids = {span for _, span, _ in spans}
    roots = [(name, span) for name, span, parent in spans if parent == 0]
    ok = (len(roots) == 1 and roots[0][0] == "serve.request"
          and all(parent in ids for _, _, parent in spans if parent != 0))
    connected += ok
frac = connected / max(1, total)
verdict = "ok" if total > 0 and frac >= 0.95 else "FAIL"
print(f"  request traces: {total}, fully connected under serve.request: "
      f"{connected} ({100 * frac:.1f}%, need >= 95%)   {verdict}")
sys.exit(0 if verdict == "ok" else 1)
EOF

echo "=== observability overhead gate (Release vs obs-off) ==="
# The permanently-instrumented serving path must cost within 5% of the
# same code with the macros compiled out. Both runs write into their own
# build dirs so the repo-root BENCH_pqe.json is left alone; min of 5
# repetitions to damp scheduler noise.
overhead_row='BM_WmcPathQuery/32'
for dir in build-release build-obs-off; do
  rm -f "${dir}/BENCH_ci_overhead.json"
  ./"${dir}"/bench/pqe_bench \
    --bench_json_out="${dir}/BENCH_ci_overhead.json" \
    --benchmark_filter="${overhead_row}\$" \
    --benchmark_repetitions=5 --benchmark_min_time=0.1 >/dev/null
done
python3 - "${overhead_row}" <<'EOF'
import json, sys

row = sys.argv[1]
def best(path):
    # Exact-match the op name: with --benchmark_repetitions the JSON also
    # carries _mean/_median/_stddev/_cv aggregate rows, and a prefix match
    # would let min() pick the stddev row.
    rows = [r["ns_per_op"] for r in json.load(open(path))["results"]
            if r["op"] == row]
    assert rows, f"no '{row}' rows in {path}"
    return min(rows)

on = best("build-release/BENCH_ci_overhead.json")
off = best("build-obs-off/BENCH_ci_overhead.json")
ratio = on / off
verdict = "ok" if ratio <= 1.05 else "FAIL (> 5% overhead)"
print(f"  {row}: instrumented {on:.0f} ns vs compiled-out {off:.0f} ns "
      f"= {ratio:5.3f}x   {verdict}")
sys.exit(1 if ratio > 1.05 else 0)
EOF

echo "=== trace artifact: span coverage + counter consistency ==="
# A real --trace-out run must attribute >= 95% of pqe.query wall-clock
# to named child phases, and the embedded metrics snapshot must satisfy
# artifact-cache hits + misses == queries. The trace is left in
# build-release/artifacts/ for upload.
mkdir -p build-release/artifacts
trace_json="build-release/artifacts/pqe_trace.json"
rm -f "${trace_json}"
./build-release/bench/pqe_bench \
  --bench_json_out=build-release/BENCH_ci_trace.json \
  --benchmark_filter='BM_WmcPathQuery/32$' --benchmark_min_time=0.1 \
  --trace-out "${trace_json}" >/dev/null
python3 - "${trace_json}" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
for required in ("pqe.query", "pqe.lifted", "pqe.ground", "pqe.cache_probe",
                 "pqe.evaluate", "kc.compile"):
    assert required in names, f"span {required} missing from trace"

phases = [e for e in events
          if e["name"] in ("pqe.lifted", "pqe.ground", "pqe.cache_probe",
                           "pqe.evaluate")]
total = covered = 0.0
for q in (e for e in events if e["name"] == "pqe.query"):
    total += q["dur"]
    end = q["ts"] + q["dur"]
    covered += sum(p["dur"] for p in phases
                   if p["tid"] == q["tid"] and p["ts"] >= q["ts"]
                   and p["ts"] + p["dur"] <= end
                   and p["args"]["depth"] == q["args"]["depth"] + 1)
coverage = covered / total if total else 0.0
print(f"  phase coverage of pqe.query wall-clock: {coverage:.1%}")
assert coverage >= 0.95, "trace spans cover < 95% of query time"

counters = trace["otherData"]["metrics"]["counters"]
hits = counters["kc.artifact_cache.hits"]
misses = counters["kc.artifact_cache.misses"]
queries = counters["pqe.queries"]
print(f"  kc.artifact_cache: {hits} hits + {misses} misses "
      f"== {queries} queries")
assert hits + misses == queries, "cache probes != queries"
assert trace["otherData"]["droppedEvents"] == 0, "trace dropped events"
print(f"  artifact: {sys.argv[1]} ({len(events)} spans)")
EOF

echo "=== ci.sh: all green ==="
