#!/usr/bin/env bash
# Tier-1 verification, run twice: once plain and once with
# ASan/UBSan instrumentation (-DIPDB_SANITIZE="address;undefined").
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== plain build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
ctest --test-dir build --output-on-failure -j"${jobs}" "$@"

echo "=== sanitized build + tests (address;undefined) ==="
cmake -B build-sanitize -S . -DIPDB_SANITIZE="address;undefined" >/dev/null
cmake --build build-sanitize -j"${jobs}"
ctest --test-dir build-sanitize --output-on-failure -j"${jobs}" "$@"

echo "=== ci.sh: all green ==="
