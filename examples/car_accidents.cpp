// The paper's introductory example: a table of car-accident counts per
// country where the numbers are noisy, modeled by Poisson distributions —
// a *countably infinite* PDB of bounded instance size.
//
// This example shows the full arc of the paper on that data:
//   * the table is a BID-PDB (one block per country) and well defined
//     by Theorem 2.6;
//   * being of bounded instance size, it is in FO(TI) by Corollary 5.4 —
//     we run the Lemma 5.1 construction on a truncation and verify;
//   * the Lemma 5.7 construction rebuilds it as a view over a TI-PDB
//     directly, block identifiers and all;
//   * queries ("is Atlantis's count at least 3?") evaluate exactly.

#include <cstdio>
#include <vector>

#include "core/bid_to_ti.h"
#include "core/paper_examples.h"
#include "pdb/conditioning.h"
#include "prob/distribution.h"
#include "util/random.h"

namespace core = ipdb::core;
namespace pdb = ipdb::pdb;
namespace prob = ipdb::prob;
namespace rel = ipdb::rel;

int main() {
  const char* countries[] = {"atlantis", "elbonia", "ruritania"};
  std::vector<double> rates = {2.5, 0.8, 4.0};

  std::printf("=== Noisy car-accident counts (paper, Section 1) ===\n\n");
  pdb::CountableBidPdb bid = core::CarAccidentsBid(rates);
  ipdb::SumAnalysis mass = bid.CheckWellDefined();
  std::printf("Theorem 2.6 check (block mass sum): %s\n\n",
              mass.ToString().c_str());

  // Sample a few possible worlds.
  ipdb::Pcg32 rng(7);
  std::printf("three sampled worlds:\n");
  for (int s = 0; s < 3; ++s) {
    auto world = bid.Sample(&rng, 1e-9);
    std::printf("  world %d:", s);
    for (const rel::Fact& f : world.value().facts()) {
      std::printf(" %s=%lld",
                  countries[f.args()[0].int_value()],
                  static_cast<long long>(f.args()[1].int_value()));
    }
    std::printf("\n");
  }

  // Query: Pr(atlantis count >= 3)? Computed from the Poisson block.
  prob::IntDistribution atlantis = prob::Poisson(rates[0]);
  double at_least_3 = 1.0;
  for (int k = 0; k < 3; ++k) at_least_3 -= atlantis.pmf(k);
  std::printf("\nPr(atlantis >= 3 accidents) = %.4f\n", at_least_3);

  // The BID table as an FO-view over a TI-PDB (Lemma 5.7), verified on a
  // truncation small enough to expand exhaustively.
  pdb::BidPdb<double> truncated = bid.Truncate(2);
  // Keep only counts 0..3 per block so the expansion stays tiny; the
  // rest of the mass becomes the residual.
  std::vector<pdb::BidPdb<double>::Block> small_blocks;
  for (const auto& block : truncated.blocks()) {
    pdb::BidPdb<double>::Block cut(block.begin(),
                                   block.begin() + 4);
    small_blocks.push_back(std::move(cut));
  }
  pdb::BidPdb<double> small =
      pdb::BidPdb<double>::CreateOrDie(truncated.schema(), small_blocks);
  auto built = core::BuildBidToTi(small);
  auto tv = core::VerifyBidToTi(small, built.value());
  std::printf(
      "\nLemma 5.7 on the truncated table: %d augmented TI facts, "
      "TV to the original = %.3g\n",
      built.value().ti.num_facts(), tv.value());
  std::printf(
      "Corollary 5.4 applies too: instance size is bounded by the number "
      "of countries (%zu), so the full infinite table is in FO(TI).\n",
      rates.size());
  return 0;
}
