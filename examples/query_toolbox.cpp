// A tour of the query-evaluation toolbox on one TI-PDB: exact WMC,
// lifted safe plans, ranked answers, expected answer counts, top-k
// possible worlds, Monte Carlo estimation, and open-world probability
// intervals — the operations a downstream user of tuple-independent
// representations actually runs.

#include <cstdio>

#include "logic/parser.h"
#include "pdb/top_k.h"
#include "pqe/expected_answers.h"
#include "pqe/monte_carlo.h"
#include "pqe/open_world.h"
#include "pqe/safe_plan.h"
#include "pqe/wmc.h"
#include "relational/parse.h"
#include "util/random.h"

namespace logic = ipdb::logic;
namespace pdb = ipdb::pdb;
namespace pqe = ipdb::pqe;
namespace rel = ipdb::rel;

int main() {
  // A small supplier/part catalogue with uncertain rows.
  rel::Schema schema({{"Supplies", 2}, {"Preferred", 1}});
  auto fact = [&](const char* text) {
    return rel::ParseFact(text, schema).value();
  };
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {
                  {fact("Supplies('acme', 'bolts')"), 0.9},
                  {fact("Supplies('acme', 'nuts')"), 0.6},
                  {fact("Supplies('zenith', 'bolts')"), 0.4},
                  {fact("Supplies('zenith', 'gears')"), 0.7},
                  {fact("Preferred('acme')"), 0.8},
                  {fact("Preferred('zenith')"), 0.3},
              });
  std::printf("=== Query toolbox over a TI catalogue ===\n\n%s\n",
              ti.ToString().c_str());

  // 1. Exact boolean PQE (lineage + WMC).
  logic::Formula bolts_from_preferred =
      logic::ParseSentence(
          "exists s. Preferred(s) & Supplies(s, 'bolts')", schema)
          .value();
  pqe::WmcStats wmc_stats;
  double p =
      pqe::QueryProbability(ti, bolts_from_preferred, &wmc_stats).value();
  std::printf("Pr(some preferred supplier has bolts) = %.6f "
              "(WMC: %lld Shannon, %lld decompositions)\n",
              p, static_cast<long long>(wmc_stats.shannon_expansions),
              static_cast<long long>(wmc_stats.decompositions));

  // 2. The same query through the lifted safe plan (it is hierarchical
  //    and self-join-free): identical probability, no grounding.
  pqe::SafePlanStats plan_stats;
  double p_safe =
      pqe::SafeQueryProbability(ti, bolts_from_preferred, &plan_stats)
          .value();
  std::printf("  safe plan agrees: %.6f (%lld projects, %lld joins)\n\n",
              p_safe,
              static_cast<long long>(plan_stats.independent_projects),
              static_cast<long long>(plan_stats.independent_joins));

  // 3. Ranked answers and expected answer count of an open query.
  logic::Formula parts =
      logic::ParseFormula("exists s. Supplies(s, x)", schema).value();
  auto ranked = pqe::RankedAnswers(ti, parts, {"x"}).value();
  std::printf("parts by availability probability:\n");
  for (const auto& answer : ranked) {
    std::printf("  %-8s %.4f\n", answer.tuple[0].ToString().c_str(),
                answer.probability);
  }
  std::printf("expected number of available parts: %.4f\n\n",
              pqe::ExpectedAnswerCount(ti, parts, {"x"}).value());

  // 4. Top-k most probable catalogue states (no 2^n expansion).
  auto top = pdb::TopKWorlds(ti, 3).value();
  std::printf("three most probable worlds:\n");
  for (const auto& [world, probability] : top) {
    std::printf("  %.4f  %s\n", probability,
                world.ToString(schema).c_str());
  }

  // 5. Monte Carlo cross-check of (1).
  ipdb::Pcg32 rng(99);
  auto estimate = pqe::EstimateQueryProbability(ti, bolts_from_preferred,
                                                20000, &rng, 0.99)
                      .value();
  std::printf("\nMonte Carlo: %.4f ± %.4f (99%% Hoeffding)\n",
              estimate.estimate, estimate.half_width);

  // 6. Open-world reading: unknown suppliers may also carry bolts with
  //    completion probability up to λ = 0.2.
  auto interval =
      pqe::OpenQueryProbabilityInterval(
          ti,
          logic::ParseSentence("exists s. Supplies(s, 'bolts')", schema)
              .value(),
          0.2,
          {fact("Supplies('newco', 'bolts')"),
           fact("Supplies('globex', 'bolts')")})
          .value();
  std::printf("open-world Pr(bolts available) in %s (lambda = 0.2)\n",
              interval.ToString().c_str());
  return 0;
}
