// A tour of the query-evaluation toolbox on one TI-PDB: exact WMC,
// lifted safe plans, ranked answers, expected answer counts, top-k
// possible worlds, Monte Carlo estimation, open-world probability
// intervals, and compile-once / evaluate-many circuit serving — the
// operations a downstream user of tuple-independent representations
// actually runs.

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "kc/compile.h"
#include "obs/obs.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "pdb/top_k.h"
#include "pqe/expected_answers.h"
#include "pqe/lineage.h"
#include "pqe/monte_carlo.h"
#include "pqe/open_world.h"
#include "pqe/safe_plan.h"
#include "pqe/wmc.h"
#include "relational/parse.h"
#include "util/random.h"

namespace logic = ipdb::logic;
namespace pdb = ipdb::pdb;
namespace pqe = ipdb::pqe;
namespace rel = ipdb::rel;

int main() {
  // A small supplier/part catalogue with uncertain rows.
  rel::Schema schema({{"Supplies", 2}, {"Preferred", 1}});
  auto fact = [&](const char* text) {
    return rel::ParseFact(text, schema).value();
  };
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {
                  {fact("Supplies('acme', 'bolts')"), 0.9},
                  {fact("Supplies('acme', 'nuts')"), 0.6},
                  {fact("Supplies('zenith', 'bolts')"), 0.4},
                  {fact("Supplies('zenith', 'gears')"), 0.7},
                  {fact("Preferred('acme')"), 0.8},
                  {fact("Preferred('zenith')"), 0.3},
              });
  std::printf("=== Query toolbox over a TI catalogue ===\n\n%s\n",
              ti.ToString().c_str());

  // 1. Exact boolean PQE (lineage + WMC).
  logic::Formula bolts_from_preferred =
      logic::ParseSentence(
          "exists s. Preferred(s) & Supplies(s, 'bolts')", schema)
          .value();
  pqe::WmcStats wmc_stats;
  double p =
      pqe::QueryProbability(ti, bolts_from_preferred, &wmc_stats).value();
  std::printf("Pr(some preferred supplier has bolts) = %.6f "
              "(WMC: %lld Shannon, %lld decompositions)\n",
              p, static_cast<long long>(wmc_stats.shannon_expansions),
              static_cast<long long>(wmc_stats.decompositions));

  // 2. The same query through the lifted safe plan (it is hierarchical
  //    and self-join-free): identical probability, no grounding.
  pqe::SafePlanStats plan_stats;
  double p_safe =
      pqe::SafeQueryProbability(ti, bolts_from_preferred, &plan_stats)
          .value();
  std::printf("  safe plan agrees: %.6f (%lld projects, %lld joins)\n\n",
              p_safe,
              static_cast<long long>(plan_stats.independent_projects),
              static_cast<long long>(plan_stats.independent_joins));

  // 3. Ranked answers and expected answer count of an open query.
  logic::Formula parts =
      logic::ParseFormula("exists s. Supplies(s, x)", schema).value();
  auto ranked = pqe::RankedAnswers(ti, parts, {"x"}).value();
  std::printf("parts by availability probability:\n");
  for (const auto& answer : ranked) {
    std::printf("  %-8s %.4f\n", answer.tuple[0].ToString().c_str(),
                answer.probability);
  }
  std::printf("expected number of available parts: %.4f\n\n",
              pqe::ExpectedAnswerCount(ti, parts, {"x"}).value());

  // 4. Top-k most probable catalogue states (no 2^n expansion).
  auto top = pdb::TopKWorlds(ti, 3).value();
  std::printf("three most probable worlds:\n");
  for (const auto& [world, probability] : top) {
    std::printf("  %.4f  %s\n", probability,
                world.ToString(schema).c_str());
  }

  // 5. Monte Carlo cross-check of (1).
  ipdb::Pcg32 rng(99);
  auto estimate = pqe::EstimateQueryProbability(ti, bolts_from_preferred,
                                                20000, &rng, 0.99)
                      .value();
  std::printf("\nMonte Carlo: %.4f ± %.4f (99%% Hoeffding)\n",
              estimate.estimate, estimate.half_width);

  // 6. Open-world reading: unknown suppliers may also carry bolts with
  //    completion probability up to λ = 0.2.
  auto interval =
      pqe::OpenQueryProbabilityInterval(
          ti,
          logic::ParseSentence("exists s. Supplies(s, 'bolts')", schema)
              .value(),
          0.2,
          {fact("Supplies('newco', 'bolts')"),
           fact("Supplies('globex', 'bolts')")})
          .value();
  std::printf("open-world Pr(bolts available) in %s (lambda = 0.2)\n",
              interval.ToString().c_str());

  // 7. Compile once, evaluate many: the lineage of (1) compiled to a
  //    d-DNNF circuit, then re-evaluated under revised marginals and
  //    differentiated — no re-solve, one linear pass per question.
  pqe::Lineage lineage;
  pqe::NodeId root = pqe::GroundSentence(ti, bolts_from_preferred, &lineage)
                         .value();
  auto compiled = ipdb::kc::CompileLineage(&lineage, root).value();
  std::vector<double> probs;
  for (const auto& [f, marginal] : ti.facts()) probs.push_back(marginal);
  std::printf("\ncompiled circuit: %d nodes (%lld decisions, "
              "%lld decompositions)\n",
              static_cast<int>(compiled.stats.circuit_nodes),
              static_cast<long long>(compiled.stats.decisions),
              static_cast<long long>(compiled.stats.decompositions));
  std::printf("  re-evaluated Pr = %.6f (matches WMC above)\n",
              ipdb::kc::EvaluateCircuit<double>(compiled.circuit,
                                                compiled.root, probs)
                  .value());
  // What-if: zenith's bolts supply becomes certain.
  std::vector<double> revised = probs;
  revised[2] = 1.0;  // Supplies('zenith', 'bolts')
  std::printf("  what-if zenith surely has bolts: Pr = %.6f\n",
              ipdb::kc::EvaluateCircuit<double>(compiled.circuit,
                                                compiled.root, revised)
                  .value());
  // Sensitivity: dPr/dp for every tuple from one backpropagation pass.
  auto gradient = ipdb::kc::EvaluateGradient<double>(compiled.circuit,
                                                     compiled.root, probs)
                      .value();
  std::printf("  answer is most sensitive to:\n");
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (gradient[i] > 0.2) {
      std::printf("    dPr/dp[%s] = %.4f\n",
                  ti.facts()[i].first.ToString(schema).c_str(), gradient[i]);
    }
  }

  // 8. Where does query time go? Turn on span tracing, ask a fresh
  //    query twice — the first call compiles its lineage, the second
  //    hits the compiled-artifact cache — and aggregate the recorded
  //    spans into a phase breakdown.
  ipdb::obs::SetTracingEnabled(true);
  ipdb::obs::TraceRecorder::Global().Drain();  // discard earlier spans
  logic::Formula gears_from_preferred =
      logic::ParseSentence(
          "exists s. Preferred(s) & Supplies(s, 'gears')", schema)
          .value();
  pqe::WmcStats traced_stats;
  double p_gears =
      pqe::QueryProbability(ti, gears_from_preferred, &traced_stats).value();
  pqe::QueryProbability(ti, gears_from_preferred, &traced_stats).value();
  ipdb::obs::SetTracingEnabled(false);

  std::vector<ipdb::obs::TraceEvent> events =
      ipdb::obs::TraceRecorder::Global().Drain();
  std::map<std::string, std::pair<int64_t, int64_t>> phases;  // calls, ns
  int64_t query_ns = 0;
  for (const ipdb::obs::TraceEvent& event : events) {
    auto& [calls, total_ns] = phases[event.name];
    ++calls;
    total_ns += event.duration_ns;
    if (std::string(event.name) == "pqe.query") query_ns += event.duration_ns;
  }
  std::printf("\nPr(some preferred supplier has gears) = %.6f\n", p_gears);
  std::printf("phase breakdown over 2 calls (compile miss, then hit):\n");
  std::printf("  %-16s %5s %12s %7s\n", "span", "calls", "total ns", "share");
  for (const auto& [name, tally] : phases) {
    std::printf("  %-16s %5lld %12lld %6.1f%%\n", name.c_str(),
                static_cast<long long>(tally.first),
                static_cast<long long>(tally.second),
                query_ns > 0 ? 100.0 * static_cast<double>(tally.second) /
                                   static_cast<double>(query_ns)
                             : 0.0);
  }

  // The process-wide metrics registry agrees with the per-call stats:
  // the second call's artifact-cache hit shows up in both.
  ipdb::obs::MetricsSnapshot snapshot = ipdb::obs::GlobalMetrics().Snapshot();
  std::printf("registry: kc.artifact_cache.hits = %lld, misses = %lld "
              "(per-call stats saw %lld hit(s))\n",
              static_cast<long long>(
                  snapshot.CounterValue("kc.artifact_cache.hits")),
              static_cast<long long>(
                  snapshot.CounterValue("kc.artifact_cache.misses")),
              static_cast<long long>(traced_stats.artifact_cache_hits));
  return 0;
}
