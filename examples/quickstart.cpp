// Quickstart: build a tuple-independent PDB, ask queries, apply a view,
// condition on a constraint, and check the paper's headline machinery.
//
//   $ ./quickstart
//
// Walks through:
//   1. defining a schema and a TI-PDB,
//   2. exact probabilistic query evaluation (lineage + WMC),
//   3. FO views and conditioning,
//   4. representing the conditioned view WITHOUT the condition
//      (Theorem 4.1), verified exactly.

#include <cstdio>

#include "core/conditional_views.h"
#include "logic/parser.h"
#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "pdb/ti_pdb.h"
#include "pqe/wmc.h"

using ipdb::math::Rational;
namespace logic = ipdb::logic;
namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;

int main() {
  // 1. A schema with one binary relation, and a TI-PDB of three
  //    independent "friend" facts.
  rel::Schema schema({{"Friend", 2}});
  auto friends = [](const char* a, const char* b) {
    return rel::Fact(0, {rel::Value::Symbol(a), rel::Value::Symbol(b)});
  };
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{friends("ann", "bob"), 0.8},
               {friends("bob", "carl"), 0.5},
               {friends("ann", "carl"), 0.2}});
  std::printf("TI-PDB:\n%s\n", ti.ToString().c_str());

  // 2. Exact query probability: is there a friendship path ann -> carl?
  logic::Formula query =
      logic::ParseSentence(
          "Friend('ann', 'carl') | "
          "(Friend('ann', 'bob') & Friend('bob', 'carl'))",
          schema)
          .value();
  auto p = ipdb::pqe::QueryProbability(ti, query);
  std::printf("Pr(ann reaches carl) = %.4f (exact WMC over the lineage)\n\n",
              p.value());

  // 3. A view computing friend-of-friend pairs, applied through the
  //    distribution (pushforward), conditioned on "bob has a friend".
  rel::Schema out({{"Foaf", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "z"};
  def.body =
      logic::ParseFormula("exists y. Friend(x, y) & Friend(y, z)", schema)
          .value();
  logic::FoView view = logic::FoView::Create(schema, out, {def}).value();

  pdb::FinitePdb<double> expanded = ti.Expand();
  logic::Formula condition =
      logic::ParseSentence("exists x. Friend('bob', x)", schema).value();
  auto conditioned = pdb::Condition(expanded, condition);
  auto image = pdb::Pushforward(conditioned.value(), view);
  std::printf("Foaf distribution given bob has a friend:\n%s\n",
              image.value().ToString().c_str());

  // 4. Theorem 4.1: the conditioned view has an UNCONDITIONAL
  //    representation — build it and verify exactly (rational pipeline).
  pdb::TiPdb<Rational> exact_ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{friends("ann", "bob"), Rational::Ratio(4, 5)},
               {friends("bob", "carl"), Rational::Ratio(1, 2)},
               {friends("ann", "carl"), Rational::Ratio(1, 5)}});
  auto built = ipdb::core::EliminateCondition(exact_ti, view, condition);
  auto tv = ipdb::core::VerifyConditionElimination(built.value());
  std::printf(
      "Theorem 4.1: rebuilt with k = %d copies + a bottom-fact; total "
      "variation to the target = %s (exact).\n",
      built.value().k, tv.value() == 0.0 ? "0" : "nonzero!");
  return 0;
}
