// A representability analyzer: runs the paper's decision toolbox on a
// portfolio of countable PDBs and prints, for each, where it stands:
//
//   necessary condition  — all size moments finite? (Proposition 3.4)
//   sufficient condition — growth criterion for some c? (Theorem 5.3)
//   verdict              — IN / OUT / UNDECIDED-BY-THESE-CRITERIA
//
// The portfolio covers all four paper examples plus a bounded-size PDB,
// displaying the full decision landscape of Sections 3-5.

#include <cstdio>
#include <string>

#include "core/growth_criterion.h"
#include "core/representability.h"
#include "core/paper_examples.h"
#include "core/size_moments.h"

namespace core = ipdb::core;
namespace pdb = ipdb::pdb;

namespace {

// The decision work lives in the library (core/representability.h);
// this example renders the reports side by side with the ground truth.
void Row(const char* name, const core::RepresentabilityReport& report,
         int max_k, const char* truth) {
  std::string moments =
      report.moments.first_infinite_moment > 0
          ? "E|D|^" + std::to_string(report.moments.first_infinite_moment) +
                " = inf"
          : (report.moments.all_finite_certified
                 ? "finite up to k=" + std::to_string(max_k)
                 : "inconclusive");
  std::string criterion =
      report.criterion.witness_c > 0
          ? "holds with c=" + std::to_string(report.criterion.witness_c)
          : (report.criterion.all_diverged ? "diverges/none supplied"
                                           : "inconclusive");
  std::printf("  %-14s %-24s %-26s %-30s %s\n", name, moments.c_str(),
              criterion.c_str(), core::VerdictName(report.verdict), truth);
}

}  // namespace

int main() {
  std::printf("=== Representability report: which countable PDBs are "
              "FO-views over TI-PDBs? ===\n\n");
  std::printf("  %-14s %-24s %-26s %-30s %s\n", "PDB", "size moments",
              "growth criterion", "verdict", "ground truth (paper)");

  {
    pdb::CountablePdb ex35 = core::Example35();
    Row("Example 3.5", core::DecideRepresentability(ex35, nullptr, 2, 0),
        2, "OUT (Prop. 3.4)");
  }
  {
    pdb::CountablePdb ex39 = core::Example39();
    // No criterion certificates are supplied for 3.9 — the criterion in
    // fact fails; its OUT-ness needs Lemma 3.7 (see ex39 bench).
    Row("Example 3.9", core::DecideRepresentability(ex39, nullptr, 4, 0),
        4, "OUT (Lemma 3.7 balance bound)");
  }
  {
    pdb::CountablePdb ex55 = core::Example55();
    core::CriterionFamily criterion = core::Example55Criterion();
    Row("Example 5.5",
        core::DecideRepresentability(ex55, &criterion, 4, 3), 4,
        "IN (Thm 5.3)");
  }
  {
    // Bounded-size PDB: geometric over three fixed worlds of sizes
    // 0/1/2 repeated — bounded size, always IN by Corollary 5.4.
    pdb::CountablePdb::Family family;
    family.schema = ipdb::rel::Schema({{"U", 1}});
    family.size_at = [](int64_t i) { return i % 3; };
    family.world_at = [](int64_t i) {
      std::vector<ipdb::rel::Fact> facts;
      for (int64_t t = 0; t < i % 3; ++t) {
        facts.emplace_back(0, std::vector<ipdb::rel::Value>{
                                  ipdb::rel::Value::Int(i * 4 + t)});
      }
      return ipdb::rel::Instance(std::move(facts));
    };
    family.prob_at = [](int64_t i) {
      return 0.5 * std::pow(0.5, static_cast<double>(i));
    };
    family.prob_tail_upper = [](int64_t N) {
      return std::pow(0.5, static_cast<double>(N));
    };
    family.moment_tails.upper = [](int k, int64_t N) {
      return std::pow(2.0, static_cast<double>(k)) *
             std::pow(0.5, static_cast<double>(N));
    };
    family.description = "bounded size <= 2";
    pdb::CountablePdb bounded =
        pdb::CountablePdb::Create(std::move(family)).value();
    core::CriterionFamily criterion;
    criterion.size_at = [](int64_t i) { return i % 3; };
    criterion.prob_at = [](int64_t i) {
      return 0.5 * std::pow(0.5, static_cast<double>(i));
    };
    criterion.tail_upper = [](int c, int64_t N) {
      (void)c;
      // size <= 2 <= c: term <= 2 P^{c/|D|} <= 2 P for c >= 2.
      return 2.0 * std::pow(0.5, static_cast<double>(N));
    };
    criterion.description = "bounded criterion";
    Row("bounded <= 2",
        core::DecideRepresentability(bounded, &criterion, 4, 3), 4,
        "IN (Cor. 5.4)");
  }

  std::printf(
      "\nThe gap rows are real: Example 3.9 passes the necessary "
      "condition and fails the sufficient one;\nonly the Lemma 3.7 "
      "balance bound (run `ex39_balance_bound`) settles it.\n");
  return 0;
}
