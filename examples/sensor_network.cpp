// A sensor-network scenario (the paper's other motivating domain,
// Section 1 / [19, 48]): readings arrive from unreliable sensors. Each
// sensor either reports one discretized temperature (mutually exclusive
// outcomes — a BID block) or drops out (the residual). Sensor links are
// independently up or down — a TI relation.
//
// The example demonstrates mixing BID and TI data in one schema,
// sampling joint worlds, answering an exact query through lineage WMC
// on the TI part, and conditioning the BID part on an FO constraint.

#include <cstdio>
#include <vector>

#include "logic/parser.h"
#include "pdb/bid_pdb.h"
#include "pdb/conditioning.h"
#include "pdb/ti_pdb.h"
#include "pqe/wmc.h"
#include "util/random.h"

namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;
namespace logic = ipdb::logic;

int main() {
  // Schema: Reading(sensor, temp_bucket), Link(sensor, sensor).
  rel::Schema schema({{"Reading", 2}, {"Link", 2}});
  auto reading = [](int64_t s, int64_t t) {
    return rel::Fact(0, {rel::Value::Int(s), rel::Value::Int(t)});
  };
  auto link = [](int64_t a, int64_t b) {
    return rel::Fact(1, {rel::Value::Int(a), rel::Value::Int(b)});
  };

  // Readings: one block per sensor over buckets {18, 19, 20}; sensor 2
  // is flaky (high residual = frequent dropout).
  pdb::BidPdb<double> readings = pdb::BidPdb<double>::CreateOrDie(
      schema, {{{reading(0, 18), 0.2},
                {reading(0, 19), 0.5},
                {reading(0, 20), 0.3}},
               {{reading(1, 19), 0.6}, {reading(1, 20), 0.4}},
               {{reading(2, 18), 0.3}, {reading(2, 19), 0.2}}});

  // Links: independent.
  pdb::TiPdb<double> links = pdb::TiPdb<double>::CreateOrDie(
      schema, {{link(0, 1), 0.9}, {link(1, 2), 0.7}, {link(0, 2), 0.1}});

  std::printf("=== Sensor network: BID readings + TI links ===\n\n");
  std::printf("readings (block-independent disjoint):\n%s\n",
              readings.ToString().c_str());
  std::printf("links (tuple-independent):\n%s\n",
              links.ToString().c_str());

  // Joint sampling (the two parts are independent probability spaces).
  ipdb::Pcg32 rng(11);
  std::printf("three joint samples:\n");
  for (int s = 0; s < 3; ++s) {
    rel::Instance world = rel::Instance::Union(readings.Sample(&rng),
                                               links.Sample(&rng));
    std::printf("  %s\n", world.ToString(schema).c_str());
  }

  // Exact query on the TI part: does sensor 0 reach sensor 2?
  logic::Formula reach =
      logic::ParseSentence(
          "Link(0, 2) | (Link(0, 1) & Link(1, 2))", schema)
          .value();
  auto p = ipdb::pqe::QueryProbability(links, reach);
  std::printf("\nPr(sensor 0 reaches sensor 2) = %.4f\n", p.value());

  // Condition the readings on an FO constraint: "no sensor reports a
  // bucket below 19" — the conditioned distribution renormalizes and
  // keeps the block structure.
  pdb::FinitePdb<double> expanded = readings.Expand();
  logic::Formula constraint =
      logic::ParseSentence("!(exists s. Reading(s, 18))", schema).value();
  auto conditioned = pdb::Condition(expanded, constraint);
  std::printf(
      "\nafter conditioning on 'no 18-degree readings' (%d worlds "
      "remain):\n",
      conditioned.value().num_worlds());
  rel::Fact probe = reading(0, 19);
  std::printf("  marginal of Reading(0, 19): %.4f -> %.4f\n",
              expanded.Marginal(probe),
              conditioned.value().Marginal(probe));
  return 0;
}
