// A runnable query-service daemon: publishes a demo TI instance, binds
// the line protocol, and serves until SIGINT/SIGTERM, then drains
// gracefully and prints the final metrics snapshot.
//
//   $ ./serve_daemon 7432 &
//   $ printf 'QUERY demo social exists x y. Friend(x, y) & Active(x)\nQUIT\n' \
//       | nc localhost 7432
//   $ kill -INT %1        # drains in-flight queries, flushes metrics
//
//   $ ./serve_daemon --demo
//
// runs the same lifecycle hands-free: ephemeral port, a scripted client
// conversation (PING / QUERY / PQUERY / METRICS / QUIT), then the
// graceful-shutdown path — handy as a smoke run and as executable
// documentation of the protocol.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pdb/ti_pdb.h"
#include "server/daemon.h"
#include "server/engine.h"
#include "util/check.h"

namespace pdb = ipdb::pdb;
namespace rel = ipdb::rel;
namespace server = ipdb::server;

namespace {

// A small social graph: enough structure for lifted, compiled, and
// prepared queries to all have something to do.
pdb::TiPdb<double> DemoInstance() {
  rel::Schema schema({{"Friend", 2}, {"Active", 1}});
  auto friends = [](int a, int b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  auto active = [](int a) { return rel::Fact(1, {rel::Value::Int(a)}); };
  std::vector<std::pair<rel::Fact, double>> facts;
  for (int hub = 0; hub < 4; ++hub) {
    facts.emplace_back(active(hub), 0.6 + 0.08 * hub);
    for (int spoke = 4; spoke < 10; ++spoke) {
      facts.emplace_back(friends(hub, spoke), 0.15 + 0.05 * ((hub + spoke) % 7));
    }
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, facts);
}

// Minimal loopback client for --demo: one connect, line in / line out.
class DemoClient {
 public:
  explicit DemoClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    IPDB_CHECK(fd_ >= 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    IPDB_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0)
        << "connect to demo daemon failed";
  }
  ~DemoClient() { ::close(fd_); }

  std::string RoundTrip(const std::string& request) {
    std::string line = request + "\n";
    IPDB_CHECK(::send(fd_, line.data(), line.size(), 0) ==
               static_cast<ssize_t>(line.size()));
    std::string response;
    char ch;
    while (::recv(fd_, &ch, 1, 0) == 1 && ch != '\n') response.push_back(ch);
    return response;
  }

 private:
  int fd_;
};

int RunDemo(int port) {
  DemoClient client(port);
  const char* script[] = {
      "PING",
      "QUERY demo social exists x y. Friend(x, y) & Active(x)",
      "PQUERY demo social exists x y. Friend(x, y) & Active(x)",
      "PQUERY demo social exists x y. Friend(x, y) & Active(x)",
      "QUERY demo social exists x. Friend(x)",  // arity error -> ERR
      "METRICS",
      "QUIT",
  };
  for (const char* request : script) {
    std::string response = client.RoundTrip(request);
    if (response.size() > 96) response = response.substr(0, 96) + "...";
    std::printf("  > %s\n  < %s\n", request, response.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = argc > 1 && std::strcmp(argv[1], "--demo") == 0;
  int port = (argc > 1 && !demo) ? std::atoi(argv[1]) : (demo ? 0 : 7432);

  server::Engine engine;
  IPDB_CHECK(engine.RegisterInstance("social", DemoInstance()).ok());
  IPDB_CHECK(engine
                 .RegisterTenant("demo",
                                 "budget_ms=2000 max_in_flight=32 "
                                 "cache_max_entries=64")
                 .ok());

  server::DaemonOptions options;
  options.port = port;
  server::Daemon daemon(&engine, options);
  ipdb::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "daemon failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving on localhost:%d (tenant 'demo', instance 'social')\n",
              daemon.port());

  if (demo) {
    RunDemo(daemon.port());
  } else {
    // Block until SIGINT/SIGTERM; the latch keeps the process alive so
    // we can drain instead of dying mid-query.
    server::Daemon::InstallSignalHandler();
    while (!server::Daemon::signal_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("signal received, draining...\n");
  }

  // Graceful shutdown: stop the front door first (no new connections),
  // then the engine (drain in-flight, freeze metrics).
  daemon.Stop();
  IPDB_CHECK(engine.Stop().ok());
  std::string metrics = engine.final_metrics_json();
  std::printf("final metrics snapshot (%zu bytes):\n%.*s%s\n", metrics.size(),
              static_cast<int>(metrics.size() > 256 ? 256 : metrics.size()),
              metrics.c_str(), metrics.size() > 256 ? "..." : "");
  return 0;
}
