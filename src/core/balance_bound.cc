#include "core/balance_bound.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ipdb {
namespace core {

double Lemma37Bound(double a_n, int64_t d_n, int r) {
  IPDB_CHECK_GE(r, 1);
  IPDB_CHECK_GE(d_n, 0);
  if (d_n == 0) return 1.0;
  double dn = static_cast<double>(d_n);
  double base = a_n * std::pow(dn, static_cast<double>(r - 1));
  return dn * std::pow(base, dn / static_cast<double>(r));
}

std::string BalanceReport::ToString() const {
  std::ostringstream os;
  os << "r = " << r << ":\n";
  for (const BalanceRow& row : rows) {
    os << "  n=" << row.n << " P=" << row.prob << " bound=" << row.bound
       << (row.satisfied ? "  (†) holds" : "  (†) VIOLATED") << "\n";
  }
  os << "  last n satisfying (†): " << last_satisfied
     << (tail_all_violated ? "  — tail entirely violated" : "") << "\n";
  return os.str();
}

BalanceReport SweepBalanceBound(const std::function<double(int64_t)>& prob,
                                const std::function<int64_t(int64_t)>& d,
                                const std::function<double(int64_t)>& a,
                                int r, int64_t n_begin, int64_t n_end,
                                int64_t stride, int64_t tail_from) {
  IPDB_CHECK_GE(stride, 1);
  BalanceReport report;
  report.r = r;
  report.tail_all_violated = true;
  for (int64_t n = n_begin; n < n_end; ++n) {
    double p = prob(n);
    double bound = Lemma37Bound(a(n), d(n), r);
    bool satisfied = p < bound;
    if (satisfied) {
      report.last_satisfied = n;
      if (n >= tail_from) report.tail_all_violated = false;
    }
    if ((n - n_begin) % stride == 0) {
      report.rows.push_back({n, p, bound, satisfied});
    }
  }
  return report;
}

int64_t Example39ViolationThreshold(int r, double c) {
  IPDB_CHECK_GE(r, 1);
  IPDB_CHECK_GT(c, 0.0);
  const double needed_log = 3.0 * r * r + r;
  int64_t n = 2;
  while (true) {
    double log_n = std::ceil(std::log2(static_cast<double>(n)));
    bool condition_a = log_n >= needed_log;
    bool condition_b =
        log_n <= std::pow(static_cast<double>(n), 1.0 / static_cast<double>(r));
    bool condition_c = static_cast<double>(n) > 1.0 / c;
    if (condition_a && condition_b && condition_c) return n;
    IPDB_CHECK_LT(n, (int64_t{1} << 62)) << "threshold overflow";
    n *= 2;
  }
}

}  // namespace core
}  // namespace ipdb
