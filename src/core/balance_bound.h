#ifndef IPDB_CORE_BALANCE_BOUND_H_
#define IPDB_CORE_BALANCE_BOUND_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ipdb {
namespace core {

/// Lemma 3.7 — the balancing obstruction for domain-disjoint PDBs.
///
/// For a domain-disjoint D ∈ FO(TI) there is a constant r (the maximum
/// relation arity of a representing TI-PDB) such that for EVERY divergent
/// series Σ a_n there are infinitely many n with
///
///   Pr(D = D_n)  <  d_n (a_n d_n^{r-1})^{d_n / r},      (†)
///
/// where d_n = |adom(D_n)|. Contrapositive use (Example 3.9): if for
/// every r there are only finitely many n satisfying (†) with the
/// harmonic choice a_n = 1/n, the PDB is not in FO(TI).

/// The right-hand side of (†).
double Lemma37Bound(double a_n, int64_t d_n, int r);

/// One row of the Example 3.9 sweep.
struct BalanceRow {
  int64_t n = 0;
  double prob = 0.0;    // Pr(D = D_n)
  double bound = 0.0;   // Lemma37Bound(a_n, d_n, r)
  bool satisfied = false;  // prob < bound, i.e. (†) holds at n
};

/// Result of testing arity r against a window of indices.
struct BalanceReport {
  int r = 0;
  std::vector<BalanceRow> rows;
  /// Largest n in the window where (†) held.
  int64_t last_satisfied = -1;
  /// True iff (†) failed for every n in [tail_from, n_end) — evidence
  /// that only finitely many n satisfy it for this r.
  bool tail_all_violated = false;

  std::string ToString() const;
};

/// Sweeps n in [n_begin, n_end) for a domain-disjoint family with
/// probabilities `prob(n)`, active-domain sizes `d(n)` and divergent
/// series terms `a(n)`; rows are recorded at `stride` spacing,
/// `tail_from` marks where the all-violated check starts.
BalanceReport SweepBalanceBound(const std::function<double(int64_t)>& prob,
                                const std::function<int64_t(int64_t)>& d,
                                const std::function<double(int64_t)>& a,
                                int r, int64_t n_begin, int64_t n_end,
                                int64_t stride, int64_t tail_from);

/// The analytic threshold from Example 3.9: with d_n = ceil(log2 n),
/// P(D_n) = c/n² and a_n = 1/n, the paper shows (†) fails for all n with
/// ceil(log2 n) >= 3r² + r (and the two minor side conditions). Returns
/// that threshold n for a given r: the least n with ceil(log2 n) >=
/// 3r² + r and ceil(log2 n) <= n^{1/r} and n > 1/c.
int64_t Example39ViolationThreshold(int r, double c);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_BALANCE_BOUND_H_
