#include "core/bid_to_ti.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

using logic::And;
using logic::Atom;
using logic::Eq;
using logic::Exists;
using logic::ExistsAll;
using logic::Formula;
using logic::Not;
using logic::Or;
using logic::Term;

/// R'_a(x̄, j) with fresh variable names `prefix0..` and the given block
/// id term in the last position.
Formula AugmentedAtom(rel::RelationId relation, int arity,
                      const std::string& prefix, const Term& block_id,
                      std::vector<std::string>* vars) {
  std::vector<Term> terms;
  for (int p = 0; p < arity; ++p) {
    std::string name = prefix + std::to_string(p);
    vars->push_back(name);
    terms.push_back(Term::Var(name));
  }
  terms.push_back(block_id);
  return Atom(relation, std::move(terms));
}

}  // namespace

template <typename P>
StatusOr<BidToTiConstruction<P>> BuildBidToTi(const pdb::BidPdb<P>& input) {
  using Traits = pdb::ProbTraits<P>;
  BidToTiConstruction<P> built;
  const rel::Schema& in_schema = input.schema();

  // Augmented schema: block id appended in the last position.
  for (int i = 0; i < in_schema.num_relations(); ++i) {
    StatusOr<rel::RelationId> id = built.augmented_schema.AddRelation(
        in_schema.relation_name(i) + "_b", in_schema.arity(i) + 1);
    IPDB_CHECK(id.ok());
    IPDB_CHECK_EQ(id.value(), i);
  }

  // Facts with the Lemma 5.7 marginals.
  typename pdb::TiPdb<P>::FactList facts;
  std::vector<int64_t> zero_residual_blocks;
  for (int64_t b = 0; b < input.num_blocks(); ++b) {
    P residual = input.Residual(b);
    bool residual_zero = Traits::IsZero(residual) &&
                         Traits::ToDouble(residual) <= 0.0;
    if (residual_zero) zero_residual_blocks.push_back(b);
    for (const auto& [fact, p] : input.blocks()[b]) {
      P q = residual_zero ? p / (Traits::One() + p) : p / (residual + p);
      std::vector<rel::Value> args = fact.args();
      args.push_back(rel::Value::Int(b));
      facts.emplace_back(rel::Fact(fact.relation(), std::move(args)), q);
    }
  }
  StatusOr<pdb::TiPdb<P>> ti =
      pdb::TiPdb<P>::Create(built.augmented_schema, std::move(facts));
  if (!ti.ok()) return ti.status();
  built.ti = std::move(ti).value();

  // Condition φ (Claim 5.8).
  std::vector<Formula> conjuncts;
  // "No two distinct facts share a block id": for every ordered pair of
  // relations a <= b, there is no block id carrying a fact of each (with
  // distinct tuples when a == b).
  for (int a = 0; a < in_schema.num_relations(); ++a) {
    for (int b = a; b < in_schema.num_relations(); ++b) {
      std::vector<std::string> vars = {"j"};
      Formula atom_a = AugmentedAtom(a, in_schema.arity(a), "x",
                                     Term::Var("j"), &vars);
      Formula atom_b = AugmentedAtom(b, in_schema.arity(b), "y",
                                     Term::Var("j"), &vars);
      std::vector<Formula> body = {atom_a, atom_b};
      if (a == b) {
        // Same relation: the tuples must differ somewhere.
        std::vector<Formula> differs;
        for (int p = 0; p < in_schema.arity(a); ++p) {
          differs.push_back(Not(Eq(Term::Var("x" + std::to_string(p)),
                                   Term::Var("y" + std::to_string(p)))));
        }
        if (differs.empty()) continue;  // 0-ary: facts are identical
        body.push_back(Or(std::move(differs)));
      }
      conjuncts.push_back(Not(ExistsAll(vars, And(std::move(body)))));
    }
  }
  // "Exactly one fact for every zero-residual block" (at-most-one is
  // already enforced; add at-least-one per hard-coded block id).
  for (int b : zero_residual_blocks) {
    std::vector<Formula> options;
    for (int a = 0; a < in_schema.num_relations(); ++a) {
      std::vector<std::string> vars;
      Formula atom =
          AugmentedAtom(a, in_schema.arity(a), "z", Term::Int(b), &vars);
      options.push_back(ExistsAll(vars, atom));
    }
    conjuncts.push_back(Or(std::move(options)));
  }
  built.condition = And(std::move(conjuncts));

  // View Φ: project the block id out.
  std::vector<logic::FoView::Definition> definitions;
  for (int a = 0; a < in_schema.num_relations(); ++a) {
    logic::FoView::Definition def;
    def.output_relation = a;
    std::vector<Term> terms;
    for (int p = 0; p < in_schema.arity(a); ++p) {
      std::string name = "x" + std::to_string(p);
      def.head_vars.push_back(name);
      terms.push_back(Term::Var(name));
    }
    terms.push_back(Term::Var("j"));
    def.body = Exists("j", Atom(a, std::move(terms)));
    definitions.push_back(std::move(def));
  }
  StatusOr<logic::FoView> view = logic::FoView::Create(
      built.augmented_schema, in_schema, std::move(definitions));
  if (!view.ok()) return view.status();
  built.view = std::move(view).value();
  return built;
}

template <typename P>
StatusOr<double> VerifyBidToTi(const pdb::BidPdb<P>& input,
                               const BidToTiConstruction<P>& built) {
  pdb::FinitePdb<P> expanded = built.ti.Expand();
  StatusOr<pdb::FinitePdb<P>> conditioned =
      pdb::Condition(expanded, built.condition);
  if (!conditioned.ok()) return conditioned.status();
  StatusOr<pdb::FinitePdb<P>> image =
      pdb::Pushforward(conditioned.value(), built.view);
  if (!image.ok()) return image.status();
  pdb::FinitePdb<P> reference = input.Expand();
  return pdb::TotalVariationDistance(reference.DropNullWorlds(),
                                     image.value().DropNullWorlds());
}

namespace {

/// Lazy state of the countable augmented-TI family: cumulative fact
/// counts per block, so fact indices map to (block, offset) pairs.
struct BidFamilyState {
  pdb::CountableBidPdb input;
  double rho;  // residual lower bound for positive-residual blocks
  std::set<int64_t> zero_residual;
  std::vector<int64_t> cumulative = {0};
  // Cache of materialized blocks (indexed like cumulative segments).
  std::vector<pdb::CountableBidPdb::Block> blocks;

  const pdb::CountableBidPdb::Block& BlockOf(int64_t b) {
    while (static_cast<int64_t>(blocks.size()) <= b) {
      blocks.push_back(input.BlockAt(static_cast<int64_t>(blocks.size())));
      cumulative.push_back(cumulative.back() +
                           static_cast<int64_t>(blocks.back().size()));
    }
    return blocks[b];
  }

  /// Maps a fact index to (block, offset). Blocks may be empty; the
  /// cumulative table simply skips them.
  std::pair<int64_t, int64_t> Locate(int64_t k) {
    while (cumulative.back() <= k) {
      BlockOf(static_cast<int64_t>(blocks.size()));
      IPDB_CHECK_LT(blocks.size(), size_t{1} << 40)
          << "fact index beyond all blocks";
    }
    auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), k) - 1;
    int64_t block = it - cumulative.begin();
    return {block, k - *it};
  }

  double MarginalOf(int64_t block, int64_t offset) {
    const pdb::CountableBidPdb::Block& facts = BlockOf(block);
    double p = facts[offset].second;
    if (zero_residual.count(block) != 0) return p / (1.0 + p);
    double mass = 0.0;
    for (const auto& [fact, marginal] : facts) mass += marginal;
    double residual = 1.0 - mass;
    return p / (residual + p);
  }
};

}  // namespace

StatusOr<pdb::CountableTiPdb> BuildBidToTiFamily(
    const pdb::CountableBidPdb& input, double residual_lower_bound,
    const std::vector<int64_t>& zero_residual_blocks) {
  if (!(residual_lower_bound > 0.0 && residual_lower_bound <= 1.0)) {
    return InvalidArgumentError(
        "residual lower bound must lie in (0, 1]");
  }
  auto state = std::make_shared<BidFamilyState>(BidFamilyState{
      input, residual_lower_bound,
      std::set<int64_t>(zero_residual_blocks.begin(),
                        zero_residual_blocks.end()),
      /*cumulative=*/{0},
      /*blocks=*/{}});

  pdb::CountableTiPdb::Family family;
  const rel::Schema& in_schema = input.schema();
  for (int i = 0; i < in_schema.num_relations(); ++i) {
    StatusOr<rel::RelationId> id = family.schema.AddRelation(
        in_schema.relation_name(i) + "_b", in_schema.arity(i) + 1);
    IPDB_CHECK(id.ok());
  }
  family.fact_at = [state](int64_t k) {
    auto [block, offset] = state->Locate(k);
    const rel::Fact& base = state->BlockOf(block)[offset].first;
    std::vector<rel::Value> args = base.args();
    args.push_back(rel::Value::Int(block));
    return rel::Fact(base.relation(), std::move(args));
  };
  family.marginal_at = [state](int64_t k) {
    auto [block, offset] = state->Locate(k);
    return state->MarginalOf(block, offset);
  };
  // q <= p / min(1, rho) in both residual cases, so the marginal tail is
  // the BID block-mass tail scaled by 1/min(1, rho) — exactly the
  // paper's Σ q <= (1/r_{m+1}) Σ p bound.
  Series block_mass = input.BlockMassSeries();
  if (block_mass.tail_upper_bound) {
    double scale = 1.0 / std::min(1.0, residual_lower_bound);
    family.marginal_tail_upper =
        [state, scale, tail = block_mass.tail_upper_bound](int64_t N) {
          auto [block, offset] = state->Locate(std::max<int64_t>(N, 0));
          (void)offset;
          // Remaining facts of the current block plus all later blocks.
          double current = 0.0;
          for (const auto& [fact, marginal] : state->BlockOf(block)) {
            current += marginal;
          }
          return scale * (current + tail(block + 1));
        };
  }
  family.marginal_tail_lower = [](int64_t) { return 0.0; };
  family.description =
      "Lemma 5.7 augmented TI family over " + input.description();
  return pdb::CountableTiPdb::Create(std::move(family));
}

template StatusOr<BidToTiConstruction<double>> BuildBidToTi(
    const pdb::BidPdb<double>&);
template StatusOr<BidToTiConstruction<math::Rational>> BuildBidToTi(
    const pdb::BidPdb<math::Rational>&);
template StatusOr<double> VerifyBidToTi(
    const pdb::BidPdb<double>&, const BidToTiConstruction<double>&);
template StatusOr<double> VerifyBidToTi(
    const pdb::BidPdb<math::Rational>&,
    const BidToTiConstruction<math::Rational>&);

}  // namespace core
}  // namespace ipdb
