#ifndef IPDB_CORE_BID_TO_TI_H_
#define IPDB_CORE_BID_TO_TI_H_

#include "logic/formula.h"
#include "logic/view.h"
#include "pdb/bid_pdb.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Lemma 5.7 / Theorem 5.9 — BID ⊆ FO(TI | FO) ⊆ FO(TI) — as an
/// executable construction.
///
/// Every fact of the BID-PDB is augmented with its block identifier
/// (relations R become R'/(arity+1), block id in the last position).
/// The marginals become
///
///   q = p / (1 + p)      if the block's residual r is 0,
///   q = p / (r + p)      if r > 0,
///
/// the FO condition φ (Claim 5.8) demands at most one fact per block id
/// (exactly one for residual-0 blocks, of which there are finitely many
/// — they are hard-coded), and the view projects the block id away.
/// With P = math::Rational the verification is exact: the marginals stay
/// rational and the conditioned image equals the BID-PDB's distribution
/// identically.
template <typename P>
struct BidToTiConstruction {
  /// Schema with R'/(r+1) per input relation R/r.
  rel::Schema augmented_schema;
  /// The TI-PDB I.
  pdb::TiPdb<P> ti;
  /// φ: block-structure constraint (Claim 5.8).
  logic::Formula condition;
  /// Φ: projects out the block identifier.
  logic::FoView view;
};

/// Runs the construction on a finite BID-PDB.
template <typename P>
StatusOr<BidToTiConstruction<P>> BuildBidToTi(const pdb::BidPdb<P>& input);

/// Expands the TI-PDB, conditions on φ, pushes through Φ, and returns
/// the total variation distance to the input's expansion (exactly zero
/// for P = math::Rational if the construction is correct).
template <typename P>
StatusOr<double> VerifyBidToTi(const pdb::BidPdb<P>& input,
                               const BidToTiConstruction<P>& built);

/// Lemma 5.7 at the countable level: the block-identifier-augmented TI
/// family of a countably infinite BID-PDB.
///
/// The paper sorts blocks by residual and uses r_{m+1} > 0 (the smallest
/// positive residual) to bound the marginals: q <= p / r_{m+1}. Here the
/// caller supplies that data explicitly:
///  * `residual_lower_bound` in (0, 1] — a lower bound on the residual of
///    every block NOT listed in `zero_residual_blocks`;
///  * `zero_residual_blocks` — the (finitely many, by [26, Lemma 4.14])
///    block indices with residual exactly 0.
///
/// The returned family's marginal tail certificate is the BID's
/// block-mass tail scaled by 1/min(1, residual_lower_bound). The
/// marginals equal those of the finite construction on any truncation,
/// so the finite φ and Φ apply to sampled prefixes.
StatusOr<pdb::CountableTiPdb> BuildBidToTiFamily(
    const pdb::CountableBidPdb& input, double residual_lower_bound,
    const std::vector<int64_t>& zero_residual_blocks = {});

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_BID_TO_TI_H_
