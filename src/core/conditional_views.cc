#include "core/conditional_views.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

using logic::And;
using logic::Atom;
using logic::Eq;
using logic::Exists;
using logic::Formula;
using logic::FormulaKind;
using logic::Iff;
using logic::Implies;
using logic::Not;
using logic::Or;
using logic::Term;

/// Rewrites a formula over the input schema τ into one over the copy
/// schema: every atom R(t̄) becomes R'(copy, t̄), where `copy` is a term
/// (the copy identifier) and `shift` maps relation id R ↦ R'.
Formula Relativize(const Formula& formula, const Term& copy) {
  switch (formula.kind()) {
    case FormulaKind::kAtom: {
      std::vector<Term> terms;
      terms.reserve(formula.terms().size() + 1);
      terms.push_back(copy);
      for (const Term& t : formula.terms()) terms.push_back(t);
      // Relation ids are preserved: the copy schema lists R'_i at the
      // same index i as R_i in the input schema.
      return Atom(formula.relation(), std::move(terms));
    }
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquals:
      return formula;
    default: {
      std::vector<Formula> children;
      children.reserve(formula.children().size());
      for (const Formula& child : formula.children()) {
        children.push_back(Relativize(child, copy));
      }
      switch (formula.kind()) {
        case FormulaKind::kNot:
          return Not(children[0]);
        case FormulaKind::kAnd:
          return And(std::move(children));
        case FormulaKind::kOr:
          return Or(std::move(children));
        case FormulaKind::kImplies:
          return Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Iff(children[0], children[1]);
        case FormulaKind::kExists:
          return Exists(formula.quantified_var(), children[0]);
        case FormulaKind::kForall:
          return logic::Forall(formula.quantified_var(), children[0]);
        default:
          IPDB_CHECK(false) << "unhandled kind in Relativize";
          return formula;
      }
    }
  }
}

}  // namespace

logic::Formula CharacterizeViewPreimage(const logic::FoView& view,
                                        const rel::Instance& d0) {
  std::vector<Formula> conjuncts;
  for (const logic::FoView::Definition& def : view.definitions()) {
    // ∀x̄: Φ_i(x̄) ↔ ⋁_j x̄ = ā_ij.
    std::vector<Formula> matches;
    for (const rel::Fact& fact : d0.FactsOf(def.output_relation)) {
      std::vector<Formula> equalities;
      for (size_t p = 0; p < def.head_vars.size(); ++p) {
        equalities.push_back(
            Eq(Term::Var(def.head_vars[p]), Term::Const(fact.args()[p])));
      }
      matches.push_back(And(std::move(equalities)));
    }
    Formula body = Iff(def.body, Or(std::move(matches)));
    conjuncts.push_back(logic::ForallAll(def.head_vars, std::move(body)));
  }
  return And(std::move(conjuncts));
}

template <typename P>
StatusOr<ConditionElimination<P>> EliminateCondition(
    const pdb::TiPdb<P>& input, const logic::FoView& phi_view,
    const logic::Formula& phi) {
  using Traits = pdb::ProbTraits<P>;
  ConditionElimination<P> built;

  // Step 0: materialize D = Φ(I | φ).
  pdb::FinitePdb<P> expanded = input.Expand();
  StatusOr<pdb::FinitePdb<P>> conditioned = pdb::Condition(expanded, phi);
  if (!conditioned.ok()) return conditioned.status();
  StatusOr<pdb::FinitePdb<P>> target =
      pdb::Pushforward(conditioned.value(), phi_view);
  if (!target.ok()) return target.status();
  built.target = std::move(target).value();

  // Step 1: D₀ = the most probable world (any positive one works).
  const auto& worlds = built.target.worlds();
  IPDB_CHECK(!worlds.empty());
  size_t best = 0;
  for (size_t i = 1; i < worlds.size(); ++i) {
    if (Traits::ToDouble(worlds[i].second) >
        Traits::ToDouble(worlds[best].second)) {
      best = i;
    }
  }
  built.d0 = worlds[best].first;
  built.p0 = worlds[best].second;

  const rel::Schema& in_schema = input.schema();
  const rel::Schema& out_schema = phi_view.output_schema();

  // Degenerate case p₀ = 1: D is a single instance; the TI-PDB with
  // exactly D₀'s facts at probability 1 and the identity view works.
  if (Traits::IsOne(built.p0)) {
    typename pdb::TiPdb<P>::FactList facts;
    for (const rel::Fact& f : built.d0.facts()) {
      facts.emplace_back(f, Traits::One());
    }
    StatusOr<pdb::TiPdb<P>> ti =
        pdb::TiPdb<P>::Create(out_schema, std::move(facts));
    if (!ti.ok()) return ti.status();
    built.ti = std::move(ti).value();
    built.j_schema = out_schema;
    built.view = logic::FoView::Identity(out_schema);
    built.k = 0;
    return built;
  }

  // Step 2: φ₀ and ψ = φ ∧ ¬φ₀.
  Formula phi0 = CharacterizeViewPreimage(phi_view, built.d0);
  Formula psi = And(phi, Not(phi0));
  StatusOr<P> p_psi = pdb::EventProbability(expanded, psi);
  if (!p_psi.ok()) return p_psi.status();

  // Step 3: minimal k with (1 - P(ψ))^k < p₀.
  const P one = Traits::One();
  P miss = one - p_psi.value();
  int k = 1;
  P miss_pow = miss;
  while (!(miss_pow < built.p0)) {
    ++k;
    miss_pow *= miss;
    if (k > 64) {
      return FailedPreconditionError(
          "k exceeded 64 — p0 too small or P(psi) too close to 0");
    }
  }
  built.k = k;
  P q = one - miss_pow;                       // P(some copy suitable)
  P q0 = (built.p0 - (one - q)) / q;          // ⊥-fact marginal

  // Step 4: schema of J. Relation ids of the copies match the input ids.
  rel::Schema j_schema;
  for (int i = 0; i < in_schema.num_relations(); ++i) {
    StatusOr<rel::RelationId> id = j_schema.AddRelation(
        in_schema.relation_name(i) + "_c", in_schema.arity(i) + 1);
    IPDB_CHECK(id.ok());
    IPDB_CHECK_EQ(id.value(), i);
  }
  StatusOr<rel::RelationId> le_id = j_schema.AddRelation("LE", 2);
  StatusOr<rel::RelationId> bot_id = j_schema.AddRelation("BOT", 1);
  IPDB_CHECK(le_id.ok());
  IPDB_CHECK(bot_id.ok());
  const rel::RelationId le = le_id.value();
  const rel::RelationId bot = bot_id.value();

  // Facts of J.
  typename pdb::TiPdb<P>::FactList j_facts;
  for (int i = 1; i <= k; ++i) {
    for (int j = i; j <= k; ++j) {
      j_facts.emplace_back(
          rel::Fact(le, {rel::Value::Int(i), rel::Value::Int(j)}),
          Traits::One());
    }
  }
  for (int copy = 1; copy <= k; ++copy) {
    for (const auto& [fact, marginal] : input.facts()) {
      std::vector<rel::Value> args;
      args.push_back(rel::Value::Int(copy));
      for (const rel::Value& v : fact.args()) args.push_back(v);
      j_facts.emplace_back(rel::Fact(fact.relation(), std::move(args)),
                           marginal);
    }
  }
  j_facts.emplace_back(rel::Fact(bot, {rel::Value::Int(0)}), q0);

  StatusOr<pdb::TiPdb<P>> ti =
      pdb::TiPdb<P>::Create(j_schema, std::move(j_facts));
  if (!ti.ok()) return ti.status();
  built.ti = std::move(ti).value();
  built.j_schema = j_schema;

  // Step 5: the view Φ'.
  // Suitable(u) := LE(u, u) ∧ ψ relativized to copy u.
  auto suitable = [&](const std::string& var) {
    return And(Atom(le, {Term::Var(var), Term::Var(var)}),
               Relativize(psi, Term::Var(var)));
  };
  // MinSuitable(u) := Suitable(u) ∧ ∀v (Suitable(v) → LE(u, v)).
  Formula min_suitable =
      And(suitable("u"),
          logic::Forall("v", Implies(suitable("v"),
                                     Atom(le, {Term::Var("u"),
                                               Term::Var("v")}))));
  // BotCase := BOT(0) ∨ ¬∃u Suitable(u).
  Formula bot_case = Or(Atom(bot, {Term::Int(0)}),
                        Not(Exists("u", suitable("u"))));

  std::vector<logic::FoView::Definition> definitions;
  for (const logic::FoView::Definition& def : phi_view.definitions()) {
    logic::FoView::Definition out;
    out.output_relation = def.output_relation;
    out.head_vars = def.head_vars;
    // Hard-coded D₀ branch.
    std::vector<Formula> matches;
    for (const rel::Fact& fact : built.d0.FactsOf(def.output_relation)) {
      std::vector<Formula> equalities;
      for (size_t p = 0; p < def.head_vars.size(); ++p) {
        equalities.push_back(
            Eq(Term::Var(def.head_vars[p]), Term::Const(fact.args()[p])));
      }
      matches.push_back(And(std::move(equalities)));
    }
    Formula d0_branch = And(bot_case, Or(std::move(matches)));
    // Extraction branch: Φ_i applied to the minimal suitable copy.
    Formula extract =
        And(Not(bot_case),
            Exists("u", And(min_suitable,
                            Relativize(def.body, Term::Var("u")))));
    out.body = Or(std::move(d0_branch), std::move(extract));
    definitions.push_back(std::move(out));
  }
  StatusOr<logic::FoView> view =
      logic::FoView::Create(j_schema, out_schema, std::move(definitions));
  if (!view.ok()) return view.status();
  built.view = std::move(view).value();
  return built;
}

template <typename P>
StatusOr<double> VerifyConditionElimination(
    const ConditionElimination<P>& built) {
  pdb::FinitePdb<P> expanded = built.ti.Expand();
  StatusOr<pdb::FinitePdb<P>> image =
      pdb::Pushforward(expanded, built.view);
  if (!image.ok()) return image.status();
  return pdb::TotalVariationDistance(built.target.DropNullWorlds(),
                                     image.value().DropNullWorlds());
}

template StatusOr<ConditionElimination<double>> EliminateCondition(
    const pdb::TiPdb<double>&, const logic::FoView&, const logic::Formula&);
template StatusOr<ConditionElimination<math::Rational>> EliminateCondition(
    const pdb::TiPdb<math::Rational>&, const logic::FoView&,
    const logic::Formula&);
template StatusOr<double> VerifyConditionElimination(
    const ConditionElimination<double>&);
template StatusOr<double> VerifyConditionElimination(
    const ConditionElimination<math::Rational>&);

}  // namespace core
}  // namespace ipdb
