#ifndef IPDB_CORE_CONDITIONAL_VIEWS_H_
#define IPDB_CORE_CONDITIONAL_VIEWS_H_

#include "logic/formula.h"
#include "logic/view.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Theorem 4.1 — FO(TI | FO) = FO(TI) — as an executable construction.
///
/// Input: a TI-PDB I, an FO-view Φ and an FO-sentence φ with
/// Pr(I ⊨ φ) > 0, presenting the conditional representation
/// D = Φ(I | φ). Output: a TI-PDB J and an FO-view Φ' with
/// Φ'(J) = D *unconditionally*.
///
/// Following the paper's proof (Figure 2):
///  1. pick an instance D₀ of D with p₀ := P(D₀) > 0;
///  2. build φ₀ (Claim 4.3) characterizing Φ⁻¹(D₀), and ψ := φ ∧ ¬φ₀;
///  3. choose k with (1 − P_I(ψ))^k < p₀ and lay out k independent
///     copies of I (relations R'(copy, x̄)), plus the linear order R_≤
///     on copy identifiers (probability-1 facts) and a fresh ⊥-fact with
///     marginal q₀ = (p₀ − 1 + q)/q, q = 1 − (1 − P_I(ψ))^k;
///  4. Φ' outputs D₀ when the ⊥-fact is drawn or no copy is suitable,
///     and otherwise applies Φ to the minimal suitable copy.
///
/// With P = math::Rational the output distribution equals the input
/// distribution *exactly*.
template <typename P>
struct ConditionElimination {
  /// Schema of J: R' per input relation (arity+1), "LE"/2, "BOT"/1.
  rel::Schema j_schema;
  /// The unconditional TI-PDB J.
  pdb::TiPdb<P> ti;
  /// The view Φ' with Φ'(J) = Φ(I | φ).
  logic::FoView view;
  /// Number of independent copies used.
  int k = 0;
  /// The special instance D₀ and its probability p₀.
  rel::Instance d0;
  P p0{};
  /// The target distribution D = Φ(I | φ), for verification.
  pdb::FinitePdb<P> target;
};

/// Runs the construction. The TI-PDB must be small enough to expand
/// (the probability computations enumerate worlds). Fails when
/// Pr(I ⊨ φ) = 0.
template <typename P>
StatusOr<ConditionElimination<P>> EliminateCondition(
    const pdb::TiPdb<P>& input, const logic::FoView& phi_view,
    const logic::Formula& phi);

/// Expands J, applies Φ' and returns the total variation distance to the
/// target (exactly zero for P = math::Rational if the construction is
/// correct).
template <typename P>
StatusOr<double> VerifyConditionElimination(
    const ConditionElimination<P>& built);

/// Claim 4.3 helper, exposed for tests: the sentence φ₀ over the input
/// schema with I ⊨ φ₀ iff Φ(I) = D₀.
logic::Formula CharacterizeViewPreimage(const logic::FoView& view,
                                        const rel::Instance& d0);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_CONDITIONAL_VIEWS_H_
