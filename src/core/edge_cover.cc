#include "core/edge_cover.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/check.h"

namespace ipdb {
namespace core {

WeightedHypergraph BuildFactHypergraph(
    const pdb::TiPdb<double>& ti, const std::vector<rel::Value>& targets) {
  std::map<rel::Value, int> index;
  for (size_t i = 0; i < targets.size(); ++i) {
    index[targets[i]] = static_cast<int>(i);
  }
  WeightedHypergraph graph;
  graph.num_vertices = static_cast<int>(targets.size());
  for (const auto& [fact, marginal] : ti.facts()) {
    std::set<int> touched;
    for (const rel::Value& v : fact.args()) {
      auto it = index.find(v);
      if (it != index.end()) touched.insert(it->second);
    }
    if (touched.empty()) continue;  // not in E_n
    graph.edges.emplace_back(touched.begin(), touched.end());
    graph.weights.push_back(marginal);
  }
  return graph;
}

DedupedCover MinimalEdgeCovers(const WeightedHypergraph& graph) {
  DedupedCover result;
  // Merge parallel edges (same restricted vertex set), summing weights —
  // this is the regrouping Σ_{e ∈ s_n^{-1}(f)} q_e in the proof.
  std::map<std::vector<int>, double> merged;
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    merged[graph.edges[i]] += graph.weights[i];
  }
  for (const auto& [edge, weight] : merged) {
    result.deduped_edges.push_back(edge);
    result.deduped_weights.push_back(weight);
  }

  const int n = graph.num_vertices;
  if (n == 0) {
    result.covers.push_back({});
    return result;
  }
  IPDB_CHECK_LE(n, 20) << "minimal edge cover enumeration is exponential";

  // Precompute vertex masks per edge.
  const int num_edges = static_cast<int>(result.deduped_edges.size());
  std::vector<uint32_t> edge_mask(num_edges, 0);
  for (int e = 0; e < num_edges; ++e) {
    for (int v : result.deduped_edges[e]) {
      edge_mask[e] |= (1u << v);
    }
  }
  const uint32_t full = n == 32 ? 0xffffffffu : ((1u << n) - 1);

  // Enumerate subsets of edges via DFS with pruning; keep the covers and
  // then filter to the minimal ones. To keep the search tractable we
  // only ever extend by edges that cover the lowest uncovered vertex
  // (every cover contains, for each vertex, an edge through it — ordering
  // by lowest uncovered vertex enumerates each cover exactly once).
  std::vector<std::vector<int>> covers;
  std::vector<int> chosen;
  struct Dfs {
    const std::vector<uint32_t>& edge_mask;
    uint32_t full;
    std::vector<std::vector<int>>* covers;
    std::vector<int>* chosen;
    void Run(uint32_t covered, int /*unused*/) {
      if (covered == full) {
        covers->push_back(*chosen);
        return;
      }
      // Lowest uncovered vertex.
      uint32_t uncovered = full & ~covered;
      int v = __builtin_ctz(uncovered);
      for (int e = 0; e < static_cast<int>(edge_mask.size()); ++e) {
        if (!(edge_mask[e] & (1u << v))) continue;
        // Avoid duplicates: require e greater than edges already chosen
        // that also cover v? Simpler: skip if e already chosen.
        if (std::find(chosen->begin(), chosen->end(), e) != chosen->end()) {
          continue;
        }
        chosen->push_back(e);
        Run(covered | edge_mask[e], 0);
        chosen->pop_back();
      }
    }
  };
  Dfs dfs{edge_mask, full, &covers, &chosen};
  dfs.Run(0, 0);

  // Canonicalize and deduplicate (different insertion orders can yield
  // the same set).
  std::set<std::vector<int>> unique_covers;
  for (std::vector<int>& cover : covers) {
    std::sort(cover.begin(), cover.end());
    unique_covers.insert(cover);
  }
  // Filter to minimal covers (no cover is a strict subset).
  for (const std::vector<int>& cover : unique_covers) {
    bool minimal = true;
    for (const std::vector<int>& other : unique_covers) {
      if (other.size() < cover.size() &&
          std::includes(cover.begin(), cover.end(), other.begin(),
                        other.end())) {
        minimal = false;
        break;
      }
    }
    // Also require true minimality: removing any single edge breaks the
    // cover (the subset filter above misses minimal-by-removal cases
    // where the smaller set is not itself enumerated; this direct check
    // settles it).
    if (minimal) {
      for (size_t drop = 0; drop < cover.size() && minimal; ++drop) {
        uint32_t covered = 0;
        for (size_t i = 0; i < cover.size(); ++i) {
          if (i != drop) covered |= edge_mask[cover[i]];
        }
        if (covered == full) minimal = false;
      }
    }
    if (minimal) result.covers.push_back(cover);
  }
  return result;
}

double MinimalCoverWeight(const DedupedCover& covers) {
  double total = 0.0;
  for (const std::vector<int>& cover : covers.covers) {
    double product = 1.0;
    for (int e : cover) product *= covers.deduped_weights[e];
    total += product;
  }
  return total;
}

double Lemma36Bound(int64_t v_n, int r, double sum_q) {
  IPDB_CHECK_GE(v_n, 0);
  IPDB_CHECK_GE(r, 1);
  if (v_n == 0) return 1.0;
  double base = static_cast<double>(r) * static_cast<double>(r) *
                std::pow(static_cast<double>(v_n), static_cast<double>(r - 1)) *
                sum_q;
  double bound = static_cast<double>(v_n) *
                 std::pow(base, static_cast<double>(v_n) /
                                    static_cast<double>(r));
  return std::min(bound, 1.0);
}

EdgeCoverReport AnalyzeWorldCover(
    const pdb::TiPdb<double>& ti,
    const std::vector<rel::Value>& view_constants, const rel::Instance& world,
    int max_exact) {
  EdgeCoverReport report;
  // V_n: active domain of the world minus view constants.
  std::vector<rel::Value> targets;
  for (const rel::Value& v : world.ActiveDomain()) {
    if (std::find(view_constants.begin(), view_constants.end(), v) ==
        view_constants.end()) {
      targets.push_back(v);
    }
  }
  report.v_n = static_cast<int64_t>(targets.size());

  WeightedHypergraph graph = BuildFactHypergraph(ti, targets);
  for (double w : graph.weights) report.sum_q += w;

  int r = std::max(1, ti.schema().max_arity());
  report.lemma_bound = Lemma36Bound(report.v_n, r, report.sum_q);

  if (report.v_n <= max_exact) {
    DedupedCover covers = MinimalEdgeCovers(graph);
    report.exact_cover_weight = MinimalCoverWeight(covers);
  }
  return report;
}

}  // namespace core
}  // namespace ipdb
