#ifndef IPDB_CORE_EDGE_COVER_H_
#define IPDB_CORE_EDGE_COVER_H_

#include <cstdint>
#include <vector>

#include "pdb/ti_pdb.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Lemma 3.6 — the edge-cover machinery bounding how likely an FO-view
/// over a TI-PDB can hit a particular world.
///
/// The facts of a TI-PDB form a multi-hypergraph H over its active
/// domain: one hyperedge per fact, containing the elements appearing in
/// it. For the view to output a world D_n, the drawn instance must cover
/// every active-domain element of D_n (that is not a view constant), so
///
///   Pr(Φ(I) = D_n) <= Σ_{minimal edge covers C of V_n} Π_{e∈C} q_e
///                  <= |V_n| (r² |V_n|^{r-1} Σ_{e∈E_n} q_e)^{|V_n|/r}.

/// A multi-hypergraph with weighted edges (marginal probabilities).
struct WeightedHypergraph {
  /// Each edge is a sorted list of distinct vertex ids.
  std::vector<std::vector<int>> edges;
  std::vector<double> weights;
  int num_vertices = 0;
};

/// Builds the hypergraph of a finite TI-PDB restricted to the target
/// vertex set: vertices are the elements of `targets` (in order); edges
/// are the facts containing at least one target element, restricted to
/// target elements (the deduplication happens in the enumeration step).
WeightedHypergraph BuildFactHypergraph(
    const pdb::TiPdb<double>& ti, const std::vector<rel::Value>& targets);

/// All *minimal* edge covers of the full vertex set {0..num_vertices-1},
/// as sorted lists of edge indices, over the deduplicated edge set
/// (parallel edges collapse to the one of maximal weight-sum handled by
/// the caller; here duplicates are merged by vertex set, summing
/// weights — matching the Σ_{e∈s_n^{-1}(f)} q_e regrouping in the proof).
/// Exponential; intended for |V_n| <= ~12.
struct DedupedCover {
  std::vector<std::vector<int>> covers;  // indices into deduped edges
  std::vector<std::vector<int>> deduped_edges;
  std::vector<double> deduped_weights;   // summed weights per vertex set
};
DedupedCover MinimalEdgeCovers(const WeightedHypergraph& graph);

/// The exact middle bound of the proof:
/// Σ_{C minimal cover} Π_{f∈C} (Σ_{e: s(e)=f} q_e).
double MinimalCoverWeight(const DedupedCover& covers);

/// The closed-form Lemma 3.6 bound
/// |V_n| (r² |V_n|^{r-1} Σ_{e∈E_n} q_e)^{|V_n|/r}; returns 1 when it
/// exceeds 1 (probabilities are trivially bounded by 1).
double Lemma36Bound(int64_t v_n, int r, double sum_q);

/// End-to-end report for one target world of a view over a TI-PDB.
struct EdgeCoverReport {
  int64_t v_n = 0;        // |V_n| — target elements not among view consts
  double sum_q = 0.0;     // Σ_{e∈E_n} q_e
  double exact_cover_weight = -1.0;  // middle bound (−1 if skipped: too big)
  double lemma_bound = 1.0;          // closed-form bound
};

/// Computes the Lemma 3.6 data for `world` as a target output of a view
/// with constant set `view_constants` over the TI-PDB `ti`. The exact
/// minimal-cover weight is computed only when |V_n| <= max_exact.
EdgeCoverReport AnalyzeWorldCover(const pdb::TiPdb<double>& ti,
                                  const std::vector<rel::Value>& view_constants,
                                  const rel::Instance& world,
                                  int max_exact = 12);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_EDGE_COVER_H_
