#include "core/finite_completeness.h"

#include <utility>
#include <vector>

#include "pdb/pushforward.h"
#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

using logic::And;
using logic::Atom;
using logic::Eq;
using logic::Formula;
using logic::Not;
using logic::Or;
using logic::Term;

}  // namespace

template <typename P>
StatusOr<FiniteCompleteness<P>> BuildFiniteCompleteness(
    const pdb::FinitePdb<P>& input) {
  using Traits = pdb::ProbTraits<P>;
  pdb::FinitePdb<P> cleaned = input.DropNullWorlds();
  const auto& worlds = cleaned.worlds();
  const int n = static_cast<int>(worlds.size());
  if (n == 0) return InvalidArgumentError("empty input PDB");

  FiniteCompleteness<P> built;
  StatusOr<rel::RelationId> sel_id =
      built.selector_schema.AddRelation("Sel", 1);
  IPDB_CHECK(sel_id.ok());
  const rel::RelationId sel = sel_id.value();

  // Selector marginals q_i = p_i / (1 - p_1 - ... - p_{i-1}).
  typename pdb::TiPdb<P>::FactList facts;
  P remaining = Traits::One();
  for (int i = 0; i + 1 < n; ++i) {
    P q = worlds[i].second / remaining;
    facts.emplace_back(rel::Fact(sel, {rel::Value::Int(i)}), q);
    remaining -= worlds[i].second;
  }
  StatusOr<pdb::TiPdb<P>> ti =
      pdb::TiPdb<P>::Create(built.selector_schema, std::move(facts));
  if (!ti.ok()) return ti.status();
  built.ti = std::move(ti).value();

  // Selected_i sentences.
  auto selected = [&](int i) {
    std::vector<Formula> conjuncts;
    for (int j = 0; j < i; ++j) {
      conjuncts.push_back(Not(Atom(sel, {Term::Int(j)})));
    }
    if (i + 1 < n) {
      conjuncts.push_back(Atom(sel, {Term::Int(i)}));
    }
    return And(std::move(conjuncts));
  };

  // View definitions: hard-coded world contents gated by Selected_i.
  const rel::Schema& out_schema = cleaned.schema();
  std::vector<logic::FoView::Definition> definitions;
  for (int r = 0; r < out_schema.num_relations(); ++r) {
    logic::FoView::Definition def;
    def.output_relation = r;
    for (int p = 0; p < out_schema.arity(r); ++p) {
      def.head_vars.push_back("x" + std::to_string(p));
    }
    std::vector<Formula> branches;
    for (int i = 0; i < n; ++i) {
      std::vector<Formula> matches;
      for (const rel::Fact& fact : worlds[i].first.FactsOf(r)) {
        std::vector<Formula> equalities;
        for (int p = 0; p < out_schema.arity(r); ++p) {
          equalities.push_back(Eq(Term::Var(def.head_vars[p]),
                                  Term::Const(fact.args()[p])));
        }
        matches.push_back(And(std::move(equalities)));
      }
      if (matches.empty()) continue;
      branches.push_back(And(selected(i), Or(std::move(matches))));
    }
    def.body = Or(std::move(branches));
    definitions.push_back(std::move(def));
  }
  StatusOr<logic::FoView> view = logic::FoView::Create(
      built.selector_schema, out_schema, std::move(definitions));
  if (!view.ok()) return view.status();
  built.view = std::move(view).value();
  return built;
}

template <typename P>
StatusOr<double> VerifyFiniteCompleteness(
    const pdb::FinitePdb<P>& input, const FiniteCompleteness<P>& built) {
  pdb::FinitePdb<P> expanded = built.ti.Expand();
  StatusOr<pdb::FinitePdb<P>> image =
      pdb::Pushforward(expanded, built.view);
  if (!image.ok()) return image.status();
  return pdb::TotalVariationDistance(input.DropNullWorlds(),
                                     image.value().DropNullWorlds());
}

template StatusOr<FiniteCompleteness<double>> BuildFiniteCompleteness(
    const pdb::FinitePdb<double>&);
template StatusOr<FiniteCompleteness<math::Rational>>
BuildFiniteCompleteness(const pdb::FinitePdb<math::Rational>&);
template StatusOr<double> VerifyFiniteCompleteness(
    const pdb::FinitePdb<double>&, const FiniteCompleteness<double>&);
template StatusOr<double> VerifyFiniteCompleteness(
    const pdb::FinitePdb<math::Rational>&,
    const FiniteCompleteness<math::Rational>&);

}  // namespace core
}  // namespace ipdb
