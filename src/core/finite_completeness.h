#ifndef IPDB_CORE_FINITE_COMPLETENESS_H_
#define IPDB_CORE_FINITE_COMPLETENESS_H_

#include "logic/view.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// The classical finite completeness theorem ([51], quoted in the
/// paper's introduction): every finite PDB is an FO-view over a finite
/// TI-PDB. This is the result whose *failure* in the countable setting
/// motivates the entire paper; we implement it to reproduce Figure 1's
/// "FO(TI_fin) = PDB_fin" edge.
///
/// Construction (world-selector): for worlds D₁, …, D_n with
/// probabilities p₁, …, p_n, use selector facts Sel(1), …, Sel(n−1) with
///
///   q_i = p_i / (1 − p₁ − … − p_{i−1}),
///
/// independent. The selected world is the least i with Sel(i) drawn (or
/// n if none), which happens with probability exactly p_i. The view
/// hard-codes each world: R(x̄) := ⋁_i (Selected_i ∧ ⋁_{ā∈R(D_i)} x̄=ā),
/// Selected_i := ¬Sel(1) ∧ … ∧ ¬Sel(i−1) ∧ Sel(i).
///
/// With P = math::Rational the q_i stay rational and the representation
/// is exact.
template <typename P>
struct FiniteCompleteness {
  rel::Schema selector_schema;  // {Sel/1}
  pdb::TiPdb<P> ti;
  logic::FoView view;
};

/// Builds the world-selector representation. Fails on an empty PDB.
/// Zero-probability worlds are dropped first.
template <typename P>
StatusOr<FiniteCompleteness<P>> BuildFiniteCompleteness(
    const pdb::FinitePdb<P>& input);

/// Expands the TI-PDB, applies the view and returns the total variation
/// distance to the input (zero for exact P).
template <typename P>
StatusOr<double> VerifyFiniteCompleteness(const pdb::FinitePdb<P>& input,
                                          const FiniteCompleteness<P>& built);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_FINITE_COMPLETENESS_H_
