#include "core/growth_criterion.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ipdb {
namespace core {

Series CriterionSeries(const CriterionFamily& family, int c) {
  IPDB_CHECK_GE(c, 1);
  Series series;
  series.term = [size_at = family.size_at, prob_at = family.prob_at,
                 c](int64_t i) {
    int64_t size = size_at(i);
    if (size <= 0) return 0.0;
    double p = prob_at(i);
    return static_cast<double>(size) *
           std::pow(p, static_cast<double>(c) / static_cast<double>(size));
  };
  if (family.tail_upper) {
    series.tail_upper_bound = [upper = family.tail_upper, c](int64_t N) {
      return upper(c, N);
    };
  }
  if (family.tail_lower) {
    series.tail_lower_bound = [lower = family.tail_lower, c](int64_t N) {
      return lower(c, N);
    };
  }
  std::ostringstream os;
  os << "criterion sum (c=" << c << ") of " << family.description;
  series.description = os.str();
  return series;
}

SumAnalysis CheckGrowthCriterion(const CriterionFamily& family, int c,
                                 const SumOptions& options) {
  return AnalyzeSum(CriterionSeries(family, c), options);
}

std::string GrowthCriterionResult::ToString() const {
  std::ostringstream os;
  if (witness_c > 0) {
    os << "criterion satisfied with c = " << witness_c << " ("
       << witness_analysis.ToString() << "): in FO(TI) by Theorem 5.3";
  } else if (all_diverged) {
    os << "criterion diverges for every tested c (Theorem 5.3 does not "
          "apply)";
  } else {
    os << "no witness found (some analyses inconclusive)";
  }
  return os.str();
}

GrowthCriterionResult FindCriterionWitness(const CriterionFamily& family,
                                           int max_c,
                                           const SumOptions& options) {
  GrowthCriterionResult result;
  for (int c = 1; c <= max_c; ++c) {
    SumAnalysis analysis = CheckGrowthCriterion(family, c, options);
    if (analysis.kind == SumAnalysis::Kind::kConverged) {
      result.witness_c = c;
      result.all_diverged = false;
      result.witness_analysis = std::move(analysis);
      return result;
    }
    if (analysis.kind != SumAnalysis::Kind::kDiverged) {
      result.all_diverged = false;
    }
  }
  return result;
}

Series CeilingCriterionSeries(const CriterionFamily& family, int c) {
  IPDB_CHECK_GE(c, 1);
  Series series;
  series.term = [size_at = family.size_at, prob_at = family.prob_at,
                 c](int64_t i) {
    int64_t size = size_at(i);
    if (size <= 0) return 0.0;
    double segments = std::ceil(static_cast<double>(size) /
                                static_cast<double>(c));
    double p = prob_at(i);
    return segments * std::pow(p, 1.0 / segments);
  };
  std::ostringstream os;
  os << "ceiling criterion sum (c=" << c << ") of " << family.description;
  series.description = os.str();
  return series;
}

}  // namespace core
}  // namespace ipdb
