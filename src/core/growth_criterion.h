#ifndef IPDB_CORE_GROWTH_CRITERION_H_
#define IPDB_CORE_GROWTH_CRITERION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/series.h"

namespace ipdb {
namespace core {

/// Theorem 5.3 — the sufficient growth-rate criterion for membership in
/// FO(TI): if for some c ∈ ℕ₊
///
///     Σ_{D ≠ ∅} |D| · P(D)^{c/|D|}  <  ∞,               (‡)
///
/// then D ∈ FO(TI) (witnessed constructively by the Lemma 5.1 segmented
/// fact construction in core/segment_construction.h).

/// An enumerated world family, given by sizes and probabilities, together
/// with certificates about the transformed tails
/// Σ_{i >= N} size(i) prob(i)^{c/size(i)} (the certificates depend on c,
/// so they are supplied as functions of (c, N)). Worlds of size 0 are
/// skipped by the criterion, matching the D ≠ ∅ restriction.
struct CriterionFamily {
  std::function<int64_t(int64_t)> size_at;
  std::function<double(int64_t)> prob_at;
  /// Upper bound on the criterion tail for parameter c (null = none).
  std::function<double(int c, int64_t N)> tail_upper;
  /// Lower bound; +inf certifies divergence for that c (null = none).
  std::function<double(int c, int64_t N)> tail_lower;
  std::string description;
};

/// The criterion series (‡) for parameter c.
Series CriterionSeries(const CriterionFamily& family, int c);

/// Analyzes (‡) for parameter c.
SumAnalysis CheckGrowthCriterion(const CriterionFamily& family, int c,
                                 const SumOptions& options = {});

/// Searches c = 1..max_c for a certified-convergent criterion sum.
struct GrowthCriterionResult {
  /// 0 = no witness found; otherwise the first witnessing c.
  int witness_c = 0;
  /// True iff the criterion was certified divergent for every tested c.
  bool all_diverged = true;
  SumAnalysis witness_analysis;
  std::string ToString() const;
};
GrowthCriterionResult FindCriterionWitness(const CriterionFamily& family,
                                           int max_c,
                                           const SumOptions& options = {});

/// Lemma D.1's equivalent ceiling form of the criterion:
/// Σ ceil(|D|/c) P(D)^{1/ceil(|D|/c)}. Exposed so tests can verify the
/// lemma's equivalence numerically (same convergence behaviour).
Series CeilingCriterionSeries(const CriterionFamily& family, int c);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_GROWTH_CRITERION_H_
