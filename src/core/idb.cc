#include "core/idb.h"

#include <algorithm>

#include "util/check.h"

namespace ipdb {
namespace core {

template <typename P>
Idb InducedIdb(const pdb::FinitePdb<P>& pdb) {
  Idb idb;
  for (const auto& [instance, probability] : pdb.worlds()) {
    if (!pdb::ProbTraits<P>::IsZero(probability)) {
      idb.push_back(instance);
    }
  }
  std::sort(idb.begin(), idb.end());
  return idb;
}

template <typename P>
Idb TiInducedIdb(const pdb::TiPdb<P>& ti) {
  using Traits = pdb::ProbTraits<P>;
  std::vector<rel::Fact> always;
  std::vector<rel::Fact> sometimes;
  for (const auto& [fact, marginal] : ti.facts()) {
    if (Traits::IsZero(marginal)) continue;
    if (Traits::IsOne(marginal) && Traits::ToDouble(marginal) >= 1.0) {
      always.push_back(fact);
    } else {
      sometimes.push_back(fact);
    }
  }
  IPDB_CHECK_LE(sometimes.size(), 20u) << "IDB enumeration is 2^n";
  Idb idb;
  for (uint64_t mask = 0; mask < (1ULL << sometimes.size()); ++mask) {
    std::vector<rel::Fact> facts = always;
    for (size_t i = 0; i < sometimes.size(); ++i) {
      if ((mask >> i) & 1) facts.push_back(sometimes[i]);
    }
    idb.push_back(rel::Instance(std::move(facts)));
  }
  std::sort(idb.begin(), idb.end());
  idb.erase(std::unique(idb.begin(), idb.end()), idb.end());
  return idb;
}

bool HasTiIdbShape(const Idb& idb) {
  if (idb.empty()) return false;
  // Core = intersection of all instances.
  rel::Instance core = idb.front();
  for (const rel::Instance& instance : idb) {
    core = rel::Instance::Intersection(core, instance);
  }
  // Union of all instances = T_always ∪ T_sometimes.
  rel::Instance top = idb.front();
  for (const rel::Instance& instance : idb) {
    top = rel::Instance::Union(top, instance);
  }
  // The IDB must be exactly { core ∪ T : T ⊆ top \ core }.
  rel::Instance spread = rel::Instance::Difference(top, core);
  if (spread.size() > 20) return false;  // avoid 2^n blowup
  uint64_t expected = 1ULL << spread.size();
  if (idb.size() != expected) return false;
  // Since all 2^n candidate instances are distinct and the IDB is a set
  // of the right cardinality, it suffices to check membership shape.
  for (const rel::Instance& instance : idb) {
    if (!core.IsSubsetOf(instance)) return false;
    if (!instance.IsSubsetOf(top)) return false;
  }
  return true;
}

template <typename P>
std::optional<std::pair<rel::Fact, rel::Fact>> FindMutuallyExclusiveFacts(
    const pdb::FinitePdb<P>& pdb) {
  std::vector<rel::Fact> facts = pdb.FactSet();
  for (size_t i = 0; i < facts.size(); ++i) {
    for (size_t j = i + 1; j < facts.size(); ++j) {
      bool together = false;
      for (const auto& [instance, probability] : pdb.worlds()) {
        if (pdb::ProbTraits<P>::IsZero(probability)) continue;
        if (instance.Contains(facts[i]) && instance.Contains(facts[j])) {
          together = true;
          break;
        }
      }
      if (!together) return std::make_pair(facts[i], facts[j]);
    }
  }
  return std::nullopt;
}

template <typename P>
bool CertifyNotMonotoneOverTi(const pdb::FinitePdb<P>& pdb) {
  return FindMutuallyExclusiveFacts(pdb).has_value();
}

template <typename P>
bool HasUniqueMaximalWorld(const pdb::FinitePdb<P>& pdb) {
  Idb idb = InducedIdb(pdb);
  std::vector<rel::Instance> maximal;
  for (const rel::Instance& candidate : idb) {
    bool dominated = false;
    for (const rel::Instance& other : idb) {
      if (!(other == candidate) && candidate.IsSubsetOf(other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(candidate);
  }
  return maximal.size() == 1;
}

StatusOr<Idb> ApplyViewToIdb(const Idb& idb, const logic::FoView& view) {
  Idb image;
  for (const rel::Instance& instance : idb) {
    StatusOr<rel::Instance> mapped = view.Apply(instance);
    if (!mapped.ok()) return mapped.status();
    image.push_back(std::move(mapped).value());
  }
  std::sort(image.begin(), image.end());
  image.erase(std::unique(image.begin(), image.end()), image.end());
  return image;
}

template Idb InducedIdb(const pdb::FinitePdb<double>&);
template Idb InducedIdb(const pdb::FinitePdb<math::Rational>&);
template Idb TiInducedIdb(const pdb::TiPdb<double>&);
template Idb TiInducedIdb(const pdb::TiPdb<math::Rational>&);
template std::optional<std::pair<rel::Fact, rel::Fact>>
FindMutuallyExclusiveFacts(const pdb::FinitePdb<double>&);
template std::optional<std::pair<rel::Fact, rel::Fact>>
FindMutuallyExclusiveFacts(const pdb::FinitePdb<math::Rational>&);
template bool CertifyNotMonotoneOverTi(const pdb::FinitePdb<double>&);
template bool CertifyNotMonotoneOverTi(
    const pdb::FinitePdb<math::Rational>&);
template bool HasUniqueMaximalWorld(const pdb::FinitePdb<double>&);
template bool HasUniqueMaximalWorld(const pdb::FinitePdb<math::Rational>&);

}  // namespace core
}  // namespace ipdb
