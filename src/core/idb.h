#ifndef IPDB_CORE_IDB_H_
#define IPDB_CORE_IDB_H_

#include <optional>
#include <utility>
#include <vector>

#include "logic/view.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "relational/fact.h"
#include "relational/instance.h"

namespace ipdb {
namespace core {

/// Section 6 — incomplete databases and the purely *logical* side of
/// representability.
///
/// An incomplete database (IDB) is a set of instances; the induced IDB
/// of a PDB is its set of positive-probability worlds. These helpers
/// implement Observation 6.1 (the shape of IDB(TI)), Observation 6.2 /
/// Proposition 6.3 (views commute with IDB), and Proposition 6.4 (the
/// mutually-exclusive-facts obstruction against monotone views of
/// TI-PDBs).

/// A finite (fragment of an) incomplete database.
using Idb = std::vector<rel::Instance>;

/// The induced IDB of a finite PDB: positive-probability worlds, sorted.
template <typename P>
Idb InducedIdb(const pdb::FinitePdb<P>& pdb);

/// Observation 6.1: the IDB induced by a finite TI-PDB is
/// { T_always ∪ T : T ⊆ T_sometimes }. Returns that set explicitly.
template <typename P>
Idb TiInducedIdb(const pdb::TiPdb<P>& ti);

/// Checks Observation 6.1 structurally on a finite IDB: union-closed,
/// intersection-closed, and downward-closed above the common core
/// (⋂ of all instances). These hold exactly for IDBs of finite TI-PDBs.
bool HasTiIdbShape(const Idb& idb);

/// A pair of facts t₁ ≠ t₂, both appearing in some positive world, but
/// never together (mutually exclusive in the sense of Proposition 6.4),
/// if one exists.
template <typename P>
std::optional<std::pair<rel::Fact, rel::Fact>> FindMutuallyExclusiveFacts(
    const pdb::FinitePdb<P>& pdb);

/// Proposition 6.4 as a certificate check: a PDB with mutually exclusive
/// facts is not in V(TI) for any class V of monotone views. Returns true
/// iff such a certificate exists (i.e. the PDB is certified NOT
/// monotone-representable over TI).
template <typename P>
bool CertifyNotMonotoneOverTi(const pdb::FinitePdb<P>& pdb);

/// Proposition B.1's criterion: monotone views of finite TI-PDBs have a
/// unique maximal positive-probability world. Returns false when two
/// maximal worlds exist (the Example B.2 obstruction).
template <typename P>
bool HasUniqueMaximalWorld(const pdb::FinitePdb<P>& pdb);

/// Observation 6.2 / Proposition 6.3 made executable: the image of an
/// IDB under a view. Tests verify the commutation
/// V(IDB(D)) = IDB(V(D)) on random PDBs.
StatusOr<Idb> ApplyViewToIdb(const Idb& idb, const logic::FoView& view);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_IDB_H_
