#include "core/idb_assignments.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

// max_{1 <= s <= k} s^{k-s}: a uniform bound on |D|^{k-|D|} used by the
// Lemma 6.5 moment certificates (for |D| > k the exponent is negative).
double SizePowerEnvelope(int k) {
  double best = 1.0;
  for (int s = 1; s <= std::max(k, 1); ++s) {
    best = std::max(best, std::pow(static_cast<double>(s),
                                   static_cast<double>(k - s)));
  }
  return best;
}

}  // namespace

StatusOr<Lemma65Result> Lemma65Assignment(const CountableIdbFamily& idb,
                                          int64_t normalizer_terms) {
  if (!idb.world_at || !idb.size_at) {
    return InvalidArgumentError("IDB family needs world_at and size_at");
  }
  auto size_at = idb.size_at;
  // x_i = (2^i |D_i|)^{-|D_i|}, or 1 for the empty world.
  auto x_at = [size_at](int64_t i) {
    int64_t s = size_at(i);
    if (s == 0) return 1.0;
    return std::pow(std::pow(2.0, static_cast<double>(i)) *
                        static_cast<double>(s),
                    -static_cast<double>(s));
  };
  // Normalizer x = Σ x_i with the tail bound x_i <= 2^{-i} (valid for
  // non-empty worlds; empty worlds must occur within the scanned prefix —
  // there is at most one since worlds are distinct).
  double partial = 0.0;
  for (int64_t i = 0; i < normalizer_terms; ++i) partial += x_at(i);
  double tail = std::pow(2.0, -static_cast<double>(normalizer_terms - 1));
  Interval normalizer(partial, partial + tail);
  const double x_lo = normalizer.lo();
  const double x_mid = normalizer.midpoint();
  IPDB_CHECK_GT(x_lo, 0.0);

  pdb::CountablePdb::Family family;
  family.schema = idb.schema;
  family.world_at = idb.world_at;
  family.size_at = idb.size_at;
  family.prob_at = [x_at, x_mid](int64_t i) { return x_at(i) / x_mid; };
  family.prob_tail_upper = [x_lo](int64_t N) {
    if (N < 1) return 1.0;
    return std::pow(2.0, -static_cast<double>(N - 1)) / x_lo;
  };
  family.moment_tails.upper = [x_lo](int k, int64_t N) {
    if (N < 1) N = 1;
    return SizePowerEnvelope(k) *
           std::pow(2.0, -static_cast<double>(N - 1)) / x_lo;
  };
  family.moment_tails.lower = [](int, int64_t) { return 0.0; };
  family.description = "Lemma 6.5 assignment over " + idb.description;

  StatusOr<pdb::CountablePdb> pdb_result =
      pdb::CountablePdb::Create(std::move(family));
  if (!pdb_result.ok()) return pdb_result.status();

  // Criterion family (c = 1 witness): term = |D_i| P_i^{1/|D_i|} =
  // 2^{-i} x^{-1/|D_i|} <= 2^{-i} max(1, 1/x).
  CriterionFamily criterion;
  criterion.size_at = idb.size_at;
  criterion.prob_at = [x_at, x_mid](int64_t i) { return x_at(i) / x_mid; };
  const double envelope = std::max(1.0, 1.0 / x_lo);
  criterion.tail_upper = [envelope](int c, int64_t N) {
    // Larger c only shrinks the terms (probabilities are < 1).
    (void)c;
    if (N < 1) N = 1;
    return envelope * std::pow(2.0, -static_cast<double>(N - 1));
  };
  criterion.tail_lower = [](int, int64_t) { return 0.0; };
  criterion.description = "Lemma 6.5 criterion over " + idb.description;

  Lemma65Result result{std::move(pdb_result).value(), std::move(criterion),
                       normalizer};
  return result;
}

std::function<int64_t(int64_t)> MakeIncreasingSubsequence(
    const CountableIdbFamily& idb, int64_t scan_limit) {
  auto cache = std::make_shared<std::vector<int64_t>>();
  auto size_at = idb.size_at;
  return [cache, size_at, scan_limit](int64_t k) -> int64_t {
    while (static_cast<int64_t>(cache->size()) <= k) {
      int64_t start = cache->empty() ? 0 : cache->back() + 1;
      int64_t last_size =
          cache->empty() ? -1 : size_at(cache->back());
      bool found = false;
      for (int64_t i = start; i < start + scan_limit; ++i) {
        if (size_at(i) > last_size) {
          cache->push_back(i);
          found = true;
          break;
        }
      }
      IPDB_CHECK(found)
          << "no size increase within the scan limit — family bounded?";
    }
    return (*cache)[k];
  };
}

StatusOr<pdb::CountablePdb> Lemma66Assignment(
    const CountableIdbFamily& idb,
    const std::function<int64_t(int64_t)>& subsequence_at) {
  if (!idb.world_at || !idb.size_at) {
    return InvalidArgumentError("IDB family needs world_at and size_at");
  }
  // Heavy mass c/(k+1)² on the subsequence (Σ = 1/2 with c = 3/π²) plus
  // a geometric floor 2^{-i}/4 on every index (Σ = 1/2).
  const double c = 3.0 / (M_PI * M_PI);
  auto subseq = subsequence_at;
  // Membership check with positions, via a growing cache of the
  // subsequence (it is strictly increasing in k).
  auto cache = std::make_shared<std::vector<int64_t>>();
  auto heavy_mass = [cache, subseq, c](int64_t i) -> double {
    while (cache->empty() || cache->back() < i) {
      cache->push_back(subseq(static_cast<int64_t>(cache->size())));
    }
    for (size_t k = cache->size(); k-- > 0;) {
      if ((*cache)[k] == i) {
        return c / ((static_cast<double>(k) + 1.0) *
                    (static_cast<double>(k) + 1.0));
      }
      if ((*cache)[k] < i) break;
    }
    return 0.0;
  };

  pdb::CountablePdb::Family family;
  family.schema = idb.schema;
  family.world_at = idb.world_at;
  family.size_at = idb.size_at;
  family.prob_at = [heavy_mass](int64_t i) {
    return heavy_mass(i) + std::pow(2.0, -static_cast<double>(i)) / 4.0;
  };
  family.prob_tail_upper = [cache, subseq, c](int64_t N) {
    // Geometric part: Σ_{i>=N} 2^{-i}/4 = 2^{-N}/2. Heavy part: the
    // subsequence positions with index >= N start at K_N (binary
    // search — this certificate is evaluated once per analyzed term).
    double geometric = std::pow(2.0, -static_cast<double>(N)) / 2.0;
    while (cache->empty() || cache->back() < N) {
      cache->push_back(subseq(static_cast<int64_t>(cache->size())));
    }
    int64_t K = std::lower_bound(cache->begin(), cache->end(), N) -
                cache->begin();
    // Σ_{k>=K} c/(k+1)² <= c/K for K >= 1 (else the full 1/2).
    double heavy = K >= 1 ? c / static_cast<double>(K) : 0.5;
    return geometric + heavy;
  };
  // The expected size diverges: the heavy worlds alone contribute
  // Σ_k |D_{i_k}| c/(k+1)² >= Σ_k c/(k+1) = ∞ (|D_{i_k}| >= k+1 by the
  // strict size increase). Certify with an infinite lower tail.
  family.moment_tails.lower = [](int k, int64_t) {
    (void)k;
    return Interval::kInfinity;
  };
  family.description = "Lemma 6.6 assignment over " + idb.description;
  return pdb::CountablePdb::Create(std::move(family));
}

}  // namespace core
}  // namespace ipdb
