#ifndef IPDB_CORE_IDB_ASSIGNMENTS_H_
#define IPDB_CORE_IDB_ASSIGNMENTS_H_

#include <cstdint>
#include <functional>

#include "core/growth_criterion.h"
#include "pdb/countable_pdb.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Section 6.2 — "no logical reasons": for ANY countable incomplete
/// database there is a probability assignment landing inside FO(TI)
/// (Lemma 6.5) and, when instance sizes are unbounded, another one
/// landing outside (Lemma 6.6). Theorem 6.7 packages both.

/// A countable IDB presented as an enumerated family of distinct worlds.
struct CountableIdbFamily {
  rel::Schema schema;
  std::function<rel::Instance(int64_t)> world_at;
  std::function<int64_t(int64_t)> size_at;
  std::string description;
};

/// Lemma 6.5: probabilities P(D_i) = x_i / x with
/// x_i = (2^i |D_i|)^{-|D_i|} (x_i = 1 when |D_i| = 0). The resulting
/// PDB satisfies the Theorem 5.3 criterion with c = 1 and hence lies in
/// FO(TI). The returned PDB carries certificates for both the
/// probability tail and the criterion tail.
struct Lemma65Result {
  pdb::CountablePdb pdb;
  CriterionFamily criterion;
  /// Certified enclosure of the normalizer x = Σ x_i (∈ (0, 2]).
  Interval normalizer;
};
StatusOr<Lemma65Result> Lemma65Assignment(const CountableIdbFamily& idb,
                                          int64_t normalizer_terms = 4096);

/// Lemma 6.6: for an IDB of unbounded size, pick a subsequence of
/// strictly increasing sizes (so |D_{i_k}| >= k+1) and give it mass
/// (6/π²)/(k+1)² scaled to 1/2; spread the remaining 1/2 geometrically
/// over the other worlds. The expected size then dominates a harmonic
/// series — a certified Proposition 3.4 witness against FO(TI).
///
/// `subsequence_at(k)` must return indices i_k with strictly increasing
/// sizes. (For families with size_at(i) nondecreasing and unbounded this
/// can be generated automatically; see MakeIncreasingSubsequence.)
StatusOr<pdb::CountablePdb> Lemma66Assignment(
    const CountableIdbFamily& idb,
    const std::function<int64_t(int64_t)>& subsequence_at);

/// Builds a strictly-size-increasing subsequence by scanning the family
/// (caches the scan). Aborts after `scan_limit` consecutive
/// non-increasing worlds — the family must genuinely be of unbounded
/// size.
std::function<int64_t(int64_t)> MakeIncreasingSubsequence(
    const CountableIdbFamily& idb, int64_t scan_limit = 1 << 20);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_IDB_ASSIGNMENTS_H_
