#include "core/monotone_to_cq.h"

#include <string>
#include <utility>
#include <vector>

#include "pdb/pushforward.h"
#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

using logic::And;
using logic::Atom;
using logic::Formula;
using logic::Term;

}  // namespace

template <typename P>
StatusOr<MonotoneToCq<P>> BuildMonotoneToCq(const pdb::TiPdb<P>& input,
                                            const logic::FoView& view,
                                            int max_n) {
  using Traits = pdb::ProbTraits<P>;
  if (!(view.input_schema() == input.schema())) {
    return InvalidArgumentError("view input schema differs from the TI's");
  }

  // Split the fact set into always / sometimes facts (Observation 6.1).
  std::vector<rel::Fact> always;
  std::vector<std::pair<rel::Fact, P>> sometimes;
  for (const auto& [fact, marginal] : input.facts()) {
    if (Traits::IsZero(marginal)) continue;
    if (Traits::IsOne(marginal) && Traits::ToDouble(marginal) >= 1.0) {
      always.push_back(fact);
    } else {
      sometimes.emplace_back(fact, marginal);
    }
  }
  const int n = static_cast<int>(sometimes.size());
  if (n > max_n) {
    return FailedPreconditionError(
        "too many uncertain facts for the (n+1)^n table construction");
  }

  MonotoneToCq<P> built;
  StatusOr<rel::RelationId> s_hat_id =
      built.cq_schema.AddRelation("S_hat", 1);
  IPDB_CHECK(s_hat_id.ok());
  const rel::RelationId s_hat = s_hat_id.value();

  const rel::Schema& out_schema = view.output_schema();
  std::vector<rel::RelationId> table_ids;
  for (int i = 0; i < out_schema.num_relations(); ++i) {
    StatusOr<rel::RelationId> id = built.cq_schema.AddRelation(
        "S_" + out_schema.relation_name(i), n + out_schema.arity(i));
    IPDB_CHECK(id.ok());
    table_ids.push_back(id.value());
  }

  // TI facts: Ŝ(0) at probability 1; Ŝ(j) at marginal of t_j (1-based);
  // all table facts at probability 1.
  typename pdb::TiPdb<P>::FactList facts;
  facts.emplace_back(rel::Fact(s_hat, {rel::Value::Int(0)}), Traits::One());
  for (int j = 0; j < n; ++j) {
    facts.emplace_back(rel::Fact(s_hat, {rel::Value::Int(j + 1)}),
                       sometimes[j].second);
  }

  // Enumerate x̄ ∈ {0..n}^n, apply the view to the induced instance and
  // record the outputs in the tables.
  std::vector<int> odometer(n, 0);
  while (true) {
    std::vector<rel::Fact> chosen = always;
    for (int pos = 0; pos < n; ++pos) {
      if (odometer[pos] > 0) {
        chosen.push_back(sometimes[odometer[pos] - 1].first);
      }
    }
    StatusOr<rel::Instance> image =
        view.Apply(rel::Instance(std::move(chosen)));
    if (!image.ok()) return image.status();
    for (const rel::Fact& out_fact : image.value().facts()) {
      std::vector<rel::Value> args;
      for (int pos = 0; pos < n; ++pos) {
        args.push_back(rel::Value::Int(odometer[pos]));
      }
      for (const rel::Value& v : out_fact.args()) args.push_back(v);
      facts.emplace_back(
          rel::Fact(table_ids[out_fact.relation()], std::move(args)),
          Traits::One());
    }
    int pos = 0;
    while (pos < n) {
      if (++odometer[pos] <= n) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == n || n == 0) break;
  }

  StatusOr<pdb::TiPdb<P>> ti =
      pdb::TiPdb<P>::Create(built.cq_schema, std::move(facts));
  if (!ti.ok()) return ti.status();
  built.ti = std::move(ti).value();

  // CQ view: Φ_i(ȳ) = ∃x̄ Ŝ(x₁) ∧ … ∧ Ŝ(x_n) ∧ S_i(x̄, ȳ).
  std::vector<logic::FoView::Definition> definitions;
  for (int i = 0; i < out_schema.num_relations(); ++i) {
    logic::FoView::Definition def;
    def.output_relation = i;
    std::vector<Term> table_terms;
    std::vector<std::string> xs;
    std::vector<Formula> conjuncts;
    for (int pos = 0; pos < n; ++pos) {
      std::string name = "sel" + std::to_string(pos);
      xs.push_back(name);
      table_terms.push_back(Term::Var(name));
      conjuncts.push_back(Atom(s_hat, {Term::Var(name)}));
    }
    for (int p = 0; p < out_schema.arity(i); ++p) {
      std::string name = "y" + std::to_string(p);
      def.head_vars.push_back(name);
      table_terms.push_back(Term::Var(name));
    }
    conjuncts.push_back(Atom(table_ids[i], std::move(table_terms)));
    def.body = logic::ExistsAll(xs, And(std::move(conjuncts)));
    definitions.push_back(std::move(def));
  }
  StatusOr<logic::FoView> cq_view = logic::FoView::Create(
      built.cq_schema, out_schema, std::move(definitions));
  if (!cq_view.ok()) return cq_view.status();
  built.view = std::move(cq_view).value();
  return built;
}

template <typename P>
StatusOr<double> VerifyMonotoneToCq(const pdb::TiPdb<P>& input,
                                    const logic::FoView& view,
                                    const MonotoneToCq<P>& built) {
  pdb::FinitePdb<P> reference_in = input.Expand();
  StatusOr<pdb::FinitePdb<P>> reference =
      pdb::Pushforward(reference_in, view);
  if (!reference.ok()) return reference.status();
  pdb::FinitePdb<P> expanded = built.ti.Expand();
  StatusOr<pdb::FinitePdb<P>> image =
      pdb::Pushforward(expanded, built.view);
  if (!image.ok()) return image.status();
  return pdb::TotalVariationDistance(reference.value().DropNullWorlds(),
                                     image.value().DropNullWorlds());
}

template StatusOr<MonotoneToCq<double>> BuildMonotoneToCq(
    const pdb::TiPdb<double>&, const logic::FoView&, int);
template StatusOr<MonotoneToCq<math::Rational>> BuildMonotoneToCq(
    const pdb::TiPdb<math::Rational>&, const logic::FoView&, int);
template StatusOr<double> VerifyMonotoneToCq(
    const pdb::TiPdb<double>&, const logic::FoView&,
    const MonotoneToCq<double>&);
template StatusOr<double> VerifyMonotoneToCq(
    const pdb::TiPdb<math::Rational>&, const logic::FoView&,
    const MonotoneToCq<math::Rational>&);

}  // namespace core
}  // namespace ipdb
