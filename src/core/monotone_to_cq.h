#ifndef IPDB_CORE_MONOTONE_TO_CQ_H_
#define IPDB_CORE_MONOTONE_TO_CQ_H_

#include "logic/view.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Proposition B.4 — any monotone view of a finite TI-PDB is already a
/// CQ-view of a finite TI-PDB (hence CQ(TI_fin) = UCQ(TI_fin),
/// Figure 1's collapsed edge).
///
/// Construction: with T_sometimes(I) = {t₁, …, t_n}, a fresh TI-PDB J
/// carries a unary relation Ŝ with facts Ŝ(1..n) at the t_j's marginals
/// and Ŝ(0) at probability 1, plus deterministic "view tables" S_i of
/// arity n + r_i holding every (x̄, ȳ) with x̄ ∈ {0..n}^n and
/// R_i(ȳ) ∈ V(T_always ∪ {t_j : j ∈ x̄ \ {0}}). The CQ view is
///
///   Φ_i(ȳ) = ∃x̄: Ŝ(x₁) ∧ … ∧ Ŝ(x_n) ∧ S_i(x̄, ȳ).
///
/// The S_i tables grow like (n+1)^n — this is a constructive
/// expressiveness result, not an efficient one; fixtures keep n small.
template <typename P>
struct MonotoneToCq {
  rel::Schema cq_schema;  // {S_hat/1, S_i/(n + r_i)…}
  pdb::TiPdb<P> ti;
  logic::FoView view;  // a CQ view (checked by logic::IsCqView)
};

/// Runs the construction for a monotone view over a finite TI-PDB.
/// The view's monotonicity is the caller's responsibility (use
/// logic::IsMonotoneView for the syntactic guarantee); n = number of
/// uncertain facts must be at most `max_n` (default 4) to cap the
/// (n+1)^n table size.
template <typename P>
StatusOr<MonotoneToCq<P>> BuildMonotoneToCq(const pdb::TiPdb<P>& input,
                                            const logic::FoView& view,
                                            int max_n = 4);

/// Expands both sides and returns the total variation distance between
/// V(input) and Φ(J) (zero for exact P).
template <typename P>
StatusOr<double> VerifyMonotoneToCq(const pdb::TiPdb<P>& input,
                                    const logic::FoView& view,
                                    const MonotoneToCq<P>& built);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_MONOTONE_TO_CQ_H_
