#include "core/paper_examples.h"

#include <cmath>
#include <vector>

#include "prob/distribution.h"
#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

/// A world of `size` unary facts U(base), …, U(base+size-1).
rel::Instance RangeWorld(int64_t base, int64_t size) {
  std::vector<rel::Fact> facts;
  facts.reserve(size);
  for (int64_t t = 0; t < size; ++t) {
    facts.emplace_back(0, std::vector<rel::Value>{rel::Value::Int(base + t)});
  }
  return rel::Instance(std::move(facts));
}

}  // namespace

pdb::CountablePdb Example35() {
  // Index j >= 0 corresponds to the paper's i = j+1.
  pdb::CountablePdb::Family family;
  family.schema = UnarySchema();
  family.size_at = [](int64_t j) { return int64_t{1} << (j + 1); };
  // Disjoint ranges: D_i occupies [2^i, 2^{i+1}).
  family.world_at = [size_at = family.size_at](int64_t j) {
    int64_t size = size_at(j);
    return RangeWorld(size, size);
  };
  family.prob_at = [](int64_t j) {
    return 3.0 * std::pow(4.0, -static_cast<double>(j + 1));
  };
  // Σ_{j>=N} 3·4^{-(j+1)} = 4^{-N}.
  family.prob_tail_upper = [](int64_t N) {
    return std::pow(4.0, -static_cast<double>(N));
  };
  // Moment k: terms 3·2^{(j+1)(k-2)}. For k = 1 the tail is
  // Σ_{j>=N} 3·2^{-(j+1)} = 3·2^{-N}; for k >= 2 the terms do not even
  // vanish, certifying divergence.
  family.moment_tails.upper = [](int k, int64_t N) {
    if (k >= 2) return Interval::kInfinity;
    return 3.0 * std::pow(2.0, -static_cast<double>(N));
  };
  family.moment_tails.lower = [](int k, int64_t) {
    return k >= 2 ? Interval::kInfinity : 0.0;
  };
  family.description = "Example 3.5 (|D_i| = 2^i, P = 3*4^-i)";
  StatusOr<pdb::CountablePdb> pdb =
      pdb::CountablePdb::Create(std::move(family));
  IPDB_CHECK(pdb.ok());
  return std::move(pdb).value();
}

double Example39Probability(int64_t n) {
  IPDB_CHECK_GE(n, 1);
  const double c = 6.0 / (M_PI * M_PI);
  return c / (static_cast<double>(n) * static_cast<double>(n));
}

int64_t Example39AdomSize(int64_t n) {
  IPDB_CHECK_GE(n, 1);
  if (n == 1) return 0;
  int64_t bits = 0;
  int64_t v = n - 1;  // ceil(log2 n) = bits of (n-1) for n >= 2
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

pdb::CountablePdb Example39() {
  // Index j >= 0 corresponds to n = j+1.
  pdb::CountablePdb::Family family;
  family.schema = UnarySchema();
  family.size_at = [](int64_t j) { return Example39AdomSize(j + 1); };
  // Domain-disjoint worlds: world n uses values n·2^32 + t.
  family.world_at = [](int64_t j) {
    int64_t n = j + 1;
    return RangeWorld(n * (int64_t{1} << 32), Example39AdomSize(n));
  };
  family.prob_at = [](int64_t j) { return Example39Probability(j + 1); };
  family.prob_tail_upper = [](int64_t N) {
    const double c = 6.0 / (M_PI * M_PI);
    return PowerTailUpper(c, 2.0, N < 1 ? 1 : N);
  };
  // Moment k: terms ceil(log2 n)^k c/n². With ceil(log2 n) <= log2(n)+1
  // <= 2·max(log2 n, 1) and log2(n)^k <= A_k √n for all n >= 2, where
  // A_k = (2k/(e·ln 2))^k is the global maximum of log2(n)^k/√n:
  // tail(N) <= c·2^k·max(A_k, 1)·Σ_{n>=N} n^{-3/2}.
  family.moment_tails.upper = [](int k, int64_t N) {
    const double c = 6.0 / (M_PI * M_PI);
    double a_k = std::pow(2.0 * k / (std::exp(1.0) * std::log(2.0)),
                          static_cast<double>(k));
    double envelope = std::pow(2.0, static_cast<double>(k)) *
                      std::max(a_k, 1.0);
    return c * envelope * PowerTailUpper(1.0, 1.5, N < 1 ? 1 : N);
  };
  family.moment_tails.lower = [](int, int64_t) { return 0.0; };
  family.description =
      "Example 3.9 (|adom| = ceil(log2 n), P = c/n^2)";
  StatusOr<pdb::CountablePdb> pdb =
      pdb::CountablePdb::Create(std::move(family));
  IPDB_CHECK(pdb.ok());
  return std::move(pdb).value();
}

namespace {

/// x = Σ_{i>=1} 2^{-i²}, enclosed tightly.
double Example55Normalizer() {
  double x = 0.0;
  for (int64_t i = 1; i <= 32; ++i) {
    x += std::pow(2.0, -static_cast<double>(i * i));
  }
  return x;
}

}  // namespace

pdb::CountablePdb Example55() {
  // Index j >= 0 corresponds to i = j+1.
  const double x = Example55Normalizer();
  pdb::CountablePdb::Family family;
  family.schema = UnarySchema();
  family.size_at = [](int64_t j) { return j + 1; };
  // Disjoint ranges: world i occupies [i(i-1)/2, i(i+1)/2).
  family.world_at = [](int64_t j) {
    int64_t i = j + 1;
    return RangeWorld(i * (i - 1) / 2, i);
  };
  family.prob_at = [x](int64_t j) {
    int64_t i = j + 1;
    return std::pow(2.0, -static_cast<double>(i * i)) / x;
  };
  // Σ_{i>=M} 2^{-i²} <= 2·2^{-M²}.
  family.prob_tail_upper = [x](int64_t N) {
    int64_t m = N + 1;
    return 2.0 * std::pow(2.0, -static_cast<double>(m * m)) / x;
  };
  // Moment k: terms i^k 2^{-i²}/x; ratio a_{i+1}/a_i <= 2^k·2^{-(2i+1)}
  // <= 1/2 once i >= k. Skip-scan to that point, then the ratio bound.
  family.moment_tails.upper = [x](int k, int64_t N) {
    auto term = [x, k](int64_t idx) {
      int64_t i = idx + 1;
      return std::pow(static_cast<double>(i), static_cast<double>(k)) *
             std::pow(2.0, -static_cast<double>(i * i)) / x;
    };
    int64_t n = N < 0 ? 0 : N;
    double skipped = 0.0;
    while (n + 1 < k) {  // ensure ratio <= 1/2 afterwards
      skipped += term(n);
      ++n;
    }
    return skipped + prob::RatioTailBound(term(n), 0.5);
  };
  family.moment_tails.lower = [](int, int64_t) { return 0.0; };
  family.description = "Example 5.5 (|D_i| = i, P = 2^{-i^2}/x)";
  StatusOr<pdb::CountablePdb> pdb =
      pdb::CountablePdb::Create(std::move(family));
  IPDB_CHECK(pdb.ok());
  return std::move(pdb).value();
}

CriterionFamily Example55Criterion() {
  const double x = Example55Normalizer();
  CriterionFamily family;
  family.size_at = [](int64_t j) { return j + 1; };
  family.prob_at = [x](int64_t j) {
    int64_t i = j + 1;
    return std::pow(2.0, -static_cast<double>(i * i)) / x;
  };
  // For c = 1: term = i (2^{-i²}/x)^{1/i} = i (1/x)^{1/i} 2^{-i}
  // <= max(1, 1/x) i 2^{-i}. For general c the terms only shrink (the
  // probabilities are < 1), so the c = 1 tail bounds them all:
  // Σ_{i>=M} i 2^{-i} <= 2 (M+1) 2^{-M}.
  family.tail_upper = [x](int c, int64_t N) {
    (void)c;
    int64_t m = N + 1;
    double envelope = std::max(1.0, 1.0 / x);
    return envelope * 2.0 * static_cast<double>(m + 1) *
           std::pow(2.0, -static_cast<double>(m));
  };
  family.tail_lower = [](int, int64_t) { return 0.0; };
  family.description = "Example 5.5 criterion";
  return family;
}

namespace {

/// Z = Π_{i>=1} (1 - 1/(i²+1)), under-approximated (the divergence
/// certificate only needs a positive lower bound on min(1, Z)).
double PropositionD2ZLowerBound() {
  double log_z = 0.0;
  const int64_t terms = 1 << 16;
  for (int64_t i = 1; i <= terms; ++i) {
    double p = 1.0 / (static_cast<double>(i) * static_cast<double>(i) + 1.0);
    log_z += std::log1p(-p);
  }
  // Remaining factors: log(1-p) >= -2p for p <= 1/2; Σ_{i>N} p_i <= 1/N.
  log_z -= 2.0 / static_cast<double>(terms);
  return std::exp(log_z);
}

}  // namespace

pdb::CountableTiPdb Example56Ti() {
  pdb::CountableTiPdb::Family family;
  family.schema = UnarySchema();
  family.fact_at = [](int64_t i) {
    return rel::Fact(0, {rel::Value::Int(i + 1)});
  };
  family.marginal_at = [](int64_t i) {
    double n = static_cast<double>(i + 1);
    return 1.0 / (n * n + 1.0);
  };
  family.marginal_tail_upper = [](int64_t N) {
    return PowerTailUpper(1.0, 2.0, N < 1 ? 1 : N);
  };
  family.marginal_tail_lower = [](int64_t) { return 0.0; };
  family.description = "Example 5.6 TI-PDB (p_i = 1/(i^2+1))";
  StatusOr<pdb::CountableTiPdb> ti =
      pdb::CountableTiPdb::Create(std::move(family));
  IPDB_CHECK(ti.ok());
  return std::move(ti).value();
}

Series PropositionD2ReducedSeries(int c) {
  IPDB_CHECK_GE(c, 1);
  const double z = std::min(1.0, PropositionD2ZLowerBound());
  Series series;
  // Terms over n >= 1 (index i = n-1): min(1,Z)^c n^{-2c} 2^{n-1}; a
  // certified lower bound on the Theorem 5.3 criterion sum for the
  // Example 5.6 TI-PDB (Proposition D.2's final display).
  series.term = [z, c](int64_t i) {
    double n = static_cast<double>(i + 1);
    return std::pow(z, static_cast<double>(c)) *
           std::pow(n, -2.0 * static_cast<double>(c)) *
           std::pow(2.0, n - 1.0);
  };
  // 2^n beats any polynomial: the tail is infinite from every point on.
  series.tail_lower_bound = [](int64_t) { return Interval::kInfinity; };
  series.description =
      "Proposition D.2 reduced series (c=" + std::to_string(c) + ")";
  return series;
}

pdb::CountableBidPdb PropositionD3Bid() {
  pdb::CountableBidPdb::Family family;
  family.schema = rel::Schema({{"B", 2}});
  family.block_at = [](int64_t i) {
    double n = static_cast<double>(i + 1);
    double p = 1.0 / (2.0 * (n * n + 1.0));
    pdb::CountableBidPdb::Block block;
    block.emplace_back(
        rel::Fact(0, {rel::Value::Int(i + 1), rel::Value::Int(0)}), p);
    block.emplace_back(
        rel::Fact(0, {rel::Value::Int(i + 1), rel::Value::Int(1)}), p);
    return block;
  };
  family.block_mass_tail_upper = [](int64_t N) {
    return PowerTailUpper(1.0, 2.0, N < 1 ? 1 : N);
  };
  family.block_mass_tail_lower = [](int64_t) { return 0.0; };
  family.description =
      "Proposition D.3 BID-PDB (two facts per block, p = 1/(2(i^2+1)))";
  StatusOr<pdb::CountableBidPdb> bid =
      pdb::CountableBidPdb::Create(std::move(family));
  IPDB_CHECK(bid.ok());
  return std::move(bid).value();
}

Series PropositionD3ReducedSeries(int c) {
  Series base = PropositionD2ReducedSeries(c);
  Series series;
  series.term = [inner = base.term, c](int64_t i) {
    return std::pow(2.0, -static_cast<double>(c)) * inner(i);
  };
  series.tail_lower_bound = [](int64_t) { return Interval::kInfinity; };
  series.description =
      "Proposition D.3 reduced series (c=" + std::to_string(c) + ")";
  return series;
}

pdb::BidPdb<math::Rational> ExampleB2() {
  rel::Schema schema({{"T", 1}});
  pdb::BidPdb<math::Rational>::Block block;
  block.emplace_back(rel::Fact(0, {rel::Value::Int(0)}),
                     math::Rational::Ratio(1, 2));
  block.emplace_back(rel::Fact(0, {rel::Value::Int(1)}),
                     math::Rational::Ratio(1, 2));
  return pdb::BidPdb<math::Rational>::CreateOrDie(schema, {block});
}

ExampleB3 MakeExampleB3(const math::Rational& p, const math::Rational& p2) {
  ExampleB3 example;
  rel::Schema in_schema({{"R", 2}});
  rel::Value a = rel::Value::Symbol("a");
  rel::Value b = rel::Value::Symbol("b");
  example.ti = pdb::TiPdb<math::Rational>::CreateOrDie(
      in_schema, {{rel::Fact(0, {a, a}), p}, {rel::Fact(0, {a, b}), p2}});

  rel::Schema out_schema({{"S", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "z"};
  def.body = logic::Exists(
      "y", logic::And(
               logic::Atom(0, {logic::Term::Var("x"), logic::Term::Var("y")}),
               logic::Atom(0, {logic::Term::Var("y"),
                               logic::Term::Var("z")})));
  StatusOr<logic::FoView> view =
      logic::FoView::Create(in_schema, out_schema, {def});
  IPDB_CHECK(view.ok());
  example.view = std::move(view).value();
  return example;
}

pdb::CountableBidPdb CarAccidentsBid(const std::vector<double>& rates,
                                     int64_t max_count) {
  IPDB_CHECK(!rates.empty());
  pdb::CountableBidPdb::Family family;
  family.schema = rel::Schema({{"Accidents", 2}});  // (country, count)
  // One finite block per country: Accidents(country, k) for k in
  // [0, max_count), with Poisson probabilities; the Poisson tail mass
  // beyond max_count is the block residual ("count unknown/absent").
  family.block_at = [rates, max_count](int64_t i) {
    pdb::CountableBidPdb::Block block;
    if (i >= static_cast<int64_t>(rates.size())) return block;
    prob::IntDistribution poisson = prob::Poisson(rates[i]);
    for (int64_t k = 0; k < max_count; ++k) {
      block.emplace_back(
          rel::Fact(0, {rel::Value::Int(i), rel::Value::Int(k)}),
          poisson.pmf(k));
    }
    return block;
  };
  family.block_mass_tail_upper = [n = rates.size()](int64_t N) {
    return N >= static_cast<int64_t>(n)
               ? 0.0
               : static_cast<double>(static_cast<int64_t>(n) - N);
  };
  family.block_mass_tail_lower = [](int64_t) { return 0.0; };
  family.description = "car-accidents BID (Poisson counts per country)";
  StatusOr<pdb::CountableBidPdb> bid =
      pdb::CountableBidPdb::Create(std::move(family));
  IPDB_CHECK(bid.ok());
  return std::move(bid).value();
}

}  // namespace core
}  // namespace ipdb
