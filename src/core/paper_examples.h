#ifndef IPDB_CORE_PAPER_EXAMPLES_H_
#define IPDB_CORE_PAPER_EXAMPLES_H_

#include <vector>

#include "core/growth_criterion.h"
#include "logic/view.h"
#include "math/rational.h"
#include "pdb/bid_pdb.h"
#include "pdb/countable_pdb.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/series.h"

namespace ipdb {
namespace core {

/// The paper's worked examples as concrete objects with certified tail
/// bounds. These are the witnesses behind every strict edge of Figures 1
/// and 4; the benches print the numeric evidence and the tests assert
/// the claimed properties.

/// Example 3.5 — |D_i| = 2^i, P(D_i) = 3·4^{-i} (i >= 1):
/// E[|D|] = 3 but E[|D|²] = ∞, so not in FO(TI) by Proposition 3.4.
/// Worlds are unary facts over disjoint integer ranges.
pdb::CountablePdb Example35();

/// Example 3.9 — |adom(D_n)| = ceil(log2 n), P(D_n) = c/n², c = 6/π²:
/// all moments finite, yet the Lemma 3.7 balancing bound rules FO(TI)
/// out. Domain-disjoint by construction.
pdb::CountablePdb Example39();
/// The pieces of Example 3.9 used by the balance-bound sweep.
double Example39Probability(int64_t n);  // c/n² (n >= 1)
int64_t Example39AdomSize(int64_t n);    // ceil(log2 n)

/// Example 5.5 — |D_i| = i, P(D_i) = 2^{-i²}/x: unbounded instance size
/// yet in FO(TI) (the Theorem 5.3 criterion holds with c = 1).
pdb::CountablePdb Example55();
/// Its criterion family (with certified tails) for Theorem 5.3.
CriterionFamily Example55Criterion();

/// Example 5.6 / Proposition D.2 — the countable TI-PDB with marginals
/// p_i = 1/(i²+1): trivially in FO(TI), but the Theorem 5.3 criterion
/// FAILS for every c (the criterion is not necessary).
pdb::CountableTiPdb Example56Ti();
/// The reduced divergent series of Proposition D.2 for parameter c:
/// terms min(1, Z)^c n^{-2c} 2^{n-1} (a certified lower bound on the
/// criterion sum, diverging for every c).
Series PropositionD2ReducedSeries(int c);

/// Proposition D.3 — the BID analogue: blocks B_i = {(i,0), (i,1)} with
/// marginals 1/(2(i²+1)); also violates the criterion for every c.
pdb::CountableBidPdb PropositionD3Bid();
/// Its reduced divergent series (the D.2 series scaled by 2^{-c}).
Series PropositionD3ReducedSeries(int c);

/// Example B.2 — a single BID block with two facts of probability 1/2:
/// two maximal worlds, hence outside CQ(TI_fin) by Proposition B.1.
pdb::BidPdb<math::Rational> ExampleB2();

/// Example B.3 — T(I) = {R(a,a), R(a,b)} and Φ = ∃y R(x,y) ∧ R(y,z):
/// Φ(I) has exactly the worlds ∅, {S(a,a)} and {S(a,a), S(a,b)}; since
/// ∅ and the two-fact world occur but the {S(a,b)}-only world does not,
/// Φ(I) is neither TI nor BID — yet it is a CQ view of a TI-PDB.
struct ExampleB3 {
  pdb::TiPdb<math::Rational> ti;
  logic::FoView view;  // output schema {S/2}
};
ExampleB3 MakeExampleB3(const math::Rational& p, const math::Rational& p2);

/// The Poisson-noisy car-accident table from the paper's introduction,
/// as a countable BID-PDB: one block per country, the count attribute
/// Poisson-distributed (truncated at `max_count` with the residual mass
/// as "no fact"). A bounded-instance-size PDB, hence in FO(TI) by
/// Corollary 5.4.
pdb::CountableBidPdb CarAccidentsBid(const std::vector<double>& rates,
                                     int64_t max_count = 64);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_PAPER_EXAMPLES_H_
