#include "core/representability.h"

#include <sstream>

namespace ipdb {
namespace core {

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kInFoTi: return "IN FO(TI)";
    case Verdict::kNotInFoTi: return "NOT in FO(TI)";
    case Verdict::kUndecided: return "UNDECIDED";
  }
  return "?";
}

std::string RepresentabilityReport::ToString() const {
  std::ostringstream os;
  os << VerdictName(verdict) << " — " << explanation << "\n";
  os << moments.ToString();
  os << criterion.ToString() << "\n";
  return os.str();
}

RepresentabilityReport DecideRepresentability(
    const pdb::CountablePdb& pdb, const CriterionFamily* criterion_family,
    int max_k, int max_c, const SumOptions& options) {
  RepresentabilityReport report;

  // Necessary condition first: a certified infinite moment is final.
  report.moments = CheckFiniteMoments(pdb, max_k, options);
  if (report.moments.first_infinite_moment > 0) {
    report.verdict = Verdict::kNotInFoTi;
    report.explanation =
        "E|D|^" + std::to_string(report.moments.first_infinite_moment) +
        " is certified infinite (Proposition 3.4)";
    return report;
  }

  // Sufficient condition: a convergent criterion sum is final.
  if (criterion_family != nullptr) {
    report.criterion =
        FindCriterionWitness(*criterion_family, max_c, options);
    if (report.criterion.witness_c > 0) {
      report.verdict = Verdict::kInFoTi;
      report.explanation =
          "growth criterion holds with c = " +
          std::to_string(report.criterion.witness_c) + " (Theorem 5.3)";
      return report;
    }
  }

  report.verdict = Verdict::kUndecided;
  if (!report.moments.all_finite_certified) {
    report.explanation = "moment analyses inconclusive";
  } else if (criterion_family == nullptr) {
    report.explanation =
        "moments finite; no criterion certificates supplied — the "
        "necessary condition alone cannot decide membership";
  } else {
    report.explanation =
        "moments finite but the criterion diverges/was inconclusive — "
        "inside the Section 5 characterization gap (cf. Examples 3.9 "
        "and 5.6)";
  }
  return report;
}

}  // namespace core
}  // namespace ipdb
