#ifndef IPDB_CORE_REPRESENTABILITY_H_
#define IPDB_CORE_REPRESENTABILITY_H_

#include <string>

#include "core/growth_criterion.h"
#include "core/size_moments.h"
#include "pdb/countable_pdb.h"
#include "util/series.h"

namespace ipdb {
namespace core {

/// The combined decision pipeline of Sections 3 and 5: given a countable
/// PDB (and optionally its criterion certificates), run
///
///   1. the necessary condition — all size moments finite
///      (Proposition 3.4): a certified infinite moment decides OUT;
///   2. the sufficient condition — the Theorem 5.3 growth criterion for
///      some c: a certified convergent criterion sum decides IN;
///
/// and report the verdict. The gap between the conditions is real
/// (Examples 3.9 and 5.6): kUndecided is a genuine outcome, resolvable
/// only by problem-specific arguments (e.g. the Lemma 3.7 balance bound
/// in core/balance_bound.h).
enum class Verdict {
  kInFoTi,     // certified member of FO(TI)
  kNotInFoTi,  // certified non-member
  kUndecided,  // between the conditions (or analyses inconclusive)
};

const char* VerdictName(Verdict verdict);

struct RepresentabilityReport {
  Verdict verdict = Verdict::kUndecided;
  FiniteMomentsReport moments;
  GrowthCriterionResult criterion;
  /// One-line human-readable justification citing the deciding result.
  std::string explanation;

  std::string ToString() const;
};

/// Runs the pipeline. `criterion_family` may be null (then only the
/// necessary condition is applied). `max_k` moments and criterion
/// parameters `c = 1..max_c` are tested.
RepresentabilityReport DecideRepresentability(
    const pdb::CountablePdb& pdb, const CriterionFamily* criterion_family,
    int max_k = 4, int max_c = 3, const SumOptions& options = {});

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_REPRESENTABILITY_H_
