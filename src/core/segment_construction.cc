#include "core/segment_construction.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "util/check.h"

namespace ipdb {
namespace core {

namespace {

using logic::And;
using logic::Atom;
using logic::Eq;
using logic::Exactly;
using logic::Exists;
using logic::Forall;
using logic::Formula;
using logic::Not;
using logic::Term;

/// Builds the Seg(...) atom with the given terms for instance id, segment
/// id, next pointer and per-slot terms (c slots of width 1+r).
Formula SegAtom(rel::RelationId seg, Term instance_id, Term segment_id,
                Term next, const std::vector<std::vector<Term>>& slots) {
  std::vector<Term> terms;
  terms.push_back(std::move(instance_id));
  terms.push_back(std::move(segment_id));
  terms.push_back(std::move(next));
  for (const std::vector<Term>& slot : slots) {
    for (const Term& t : slot) terms.push_back(t);
  }
  return Atom(seg, std::move(terms));
}

/// c slots of fresh variables with the given name prefix.
std::vector<std::vector<Term>> FreshSlots(int c, int width,
                                          const std::string& prefix,
                                          std::vector<std::string>* names) {
  std::vector<std::vector<Term>> slots(c);
  for (int l = 0; l < c; ++l) {
    for (int p = 0; p < width; ++p) {
      std::string name =
          prefix + std::to_string(l) + "_" + std::to_string(p);
      names->push_back(name);
      slots[l].push_back(Term::Var(name));
    }
  }
  return slots;
}

/// Complete(u): instance id u has a complete chain in the drawn instance.
///   HasSeg0(u) := ∃n ∃slots Seg(u, 0, n, slots)
///   Closed(u)  := ∀j ∀n ∀slots ( Seg(u, j, n, slots) ∧ n ≠ ⊥
///                                 → ∃n' ∃slots' Seg(u, n, n', slots') )
Formula CompleteFormula(rel::RelationId seg, int c, int width,
                        const std::string& u) {
  // HasSeg0.
  std::vector<std::string> vars0;
  std::vector<std::vector<Term>> slots0 = FreshSlots(c, width, "z", &vars0);
  Formula has_seg0 = SegAtom(seg, Term::Var(u), Term::Int(0), Term::Var("n0"),
                             slots0);
  std::vector<std::string> exvars0 = {"n0"};
  exvars0.insert(exvars0.end(), vars0.begin(), vars0.end());
  has_seg0 = logic::ExistsAll(exvars0, has_seg0);

  // Closed.
  std::vector<std::string> varsj;
  std::vector<std::vector<Term>> slotsj = FreshSlots(c, width, "w", &varsj);
  Formula premise =
      And(SegAtom(seg, Term::Var(u), Term::Var("j"), Term::Var("n"), slotsj),
          Not(Eq(Term::Var("n"), Term::Const(rel::Value::Null()))));
  std::vector<std::string> varsn;
  std::vector<std::vector<Term>> slotsn = FreshSlots(c, width, "v", &varsn);
  Formula successor = SegAtom(seg, Term::Var(u), Term::Var("n"),
                              Term::Var("np"), slotsn);
  std::vector<std::string> exvars = {"np"};
  exvars.insert(exvars.end(), varsn.begin(), varsn.end());
  successor = logic::ExistsAll(exvars, successor);
  std::vector<std::string> allvars = {"j", "n"};
  allvars.insert(allvars.end(), varsj.begin(), varsj.end());
  Formula closed =
      logic::ForallAll(allvars, logic::Implies(premise, successor));

  return And(std::move(has_seg0), std::move(closed));
}

}  // namespace

StatusOr<SegmentConstruction> BuildSegmentConstruction(
    const pdb::FinitePdb<double>& input, int c) {
  if (c < 1) return InvalidArgumentError("segment width c must be >= 1");
  if (input.num_worlds() == 0) {
    return InvalidArgumentError("empty input PDB");
  }
  const rel::Schema& in_schema = input.schema();
  const int r = std::max(1, in_schema.max_arity());
  const int width = 1 + r;  // relation tag + padded arguments

  SegmentConstruction built;
  built.c = c;
  built.max_arity = r;
  StatusOr<rel::RelationId> seg_id =
      built.hat_schema.AddRelation("Seg", 3 + c * width);
  IPDB_CHECK(seg_id.ok());
  const rel::RelationId seg = seg_id.value();

  // Facts of the TI-PDB.
  pdb::TiPdb<double>::FactList ti_facts;
  int64_t instance_id = 0;
  for (const auto& [world, probability] : input.worlds()) {
    if (probability <= 0.0) continue;  // w.l.o.g. p_i > 0
    const int64_t s = world.size();
    const int64_t segments =
        std::max<int64_t>((s + c - 1) / c, 1);  // ŝ_i
    const double q =
        std::pow(probability / (1.0 + probability),
                 1.0 / static_cast<double>(segments));
    // The world's facts in canonical (sorted) order.
    const std::vector<rel::Fact>& world_facts = world.facts();
    for (int64_t j = 0; j < segments; ++j) {
      std::vector<rel::Value> args;
      args.push_back(rel::Value::Int(instance_id));
      args.push_back(rel::Value::Int(j));
      // Next pointer: ⊥ at the last segment.
      if (j + 1 < segments) {
        args.push_back(rel::Value::Int(j + 1));
      } else {
        args.push_back(rel::Value::Null());
      }
      // c slots of width 1+r.
      for (int l = 0; l < c; ++l) {
        int64_t fact_index = j * c + l;
        if (fact_index < s) {
          const rel::Fact& fact = world_facts[fact_index];
          args.push_back(rel::Value::Int(fact.relation()));
          for (const rel::Value& v : fact.args()) args.push_back(v);
          for (int p = fact.arity(); p < r; ++p) {
            args.push_back(rel::Value::Null());
          }
        } else {
          for (int p = 0; p < width; ++p) {
            args.push_back(rel::Value::Null());
          }
        }
      }
      ti_facts.emplace_back(rel::Fact(seg, std::move(args)), q);
      built.marginal_sum += q;
    }
    ++instance_id;
  }
  StatusOr<pdb::TiPdb<double>> ti =
      pdb::TiPdb<double>::Create(built.hat_schema, std::move(ti_facts));
  if (!ti.ok()) return ti.status();
  built.ti = std::move(ti).value();

  // φ: exactly one complete chain.
  built.condition =
      Exactly(1, "u", CompleteFormula(seg, c, width, "u"));

  // Φ: one definition per original relation. For relation R_k of arity
  // r_k, a tuple x̄ is output iff some segment fact of the (unique)
  // complete chain carries slot (k, x̄, ⊥-padding).
  std::vector<logic::FoView::Definition> definitions;
  for (rel::RelationId k = 0; k < in_schema.num_relations(); ++k) {
    const int rk = in_schema.arity(k);
    logic::FoView::Definition def;
    def.output_relation = k;
    for (int p = 0; p < rk; ++p) {
      def.head_vars.push_back("x" + std::to_string(p));
    }
    std::vector<Formula> per_slot;
    for (int l = 0; l < c; ++l) {
      // Build the Seg atom with slot l pinned to (k, x̄, ⊥…) and the
      // other slots as fresh variables.
      std::vector<std::string> other_vars;
      std::vector<std::vector<Term>> slots =
          FreshSlots(c, width, "s" + std::to_string(l) + "_", &other_vars);
      // Remove the variables of slot l from the quantifier list and
      // replace the slot by the pinned terms.
      std::vector<std::string> quantified;
      for (const std::string& name : other_vars) {
        bool in_slot_l =
            name.rfind("s" + std::to_string(l) + "_" + std::to_string(l) +
                           "_",
                       0) == 0;
        if (!in_slot_l) quantified.push_back(name);
      }
      std::vector<Term> pinned;
      pinned.push_back(Term::Int(k));
      for (int p = 0; p < rk; ++p) {
        pinned.push_back(Term::Var("x" + std::to_string(p)));
      }
      for (int p = rk; p < r; ++p) {
        pinned.push_back(Term::Const(rel::Value::Null()));
      }
      slots[l] = std::move(pinned);
      Formula atom = SegAtom(seg, Term::Var("u"), Term::Var("j"),
                             Term::Var("n"), slots);
      quantified.insert(quantified.begin(), {"j", "n"});
      per_slot.push_back(logic::ExistsAll(quantified, atom));
    }
    Formula body =
        Exists("u", And(CompleteFormula(seg, c, width, "u"),
                        logic::Or(std::move(per_slot))));
    def.body = std::move(body);
    definitions.push_back(std::move(def));
  }
  StatusOr<logic::FoView> view = logic::FoView::Create(
      built.hat_schema, in_schema, std::move(definitions));
  if (!view.ok()) return view.status();
  built.view = std::move(view).value();
  return built;
}

StatusOr<double> VerifySegmentConstruction(
    const pdb::FinitePdb<double>& input, const SegmentConstruction& built) {
  if (built.ti.num_facts() > 18) {
    return FailedPreconditionError(
        "too many TI facts for exhaustive verification");
  }
  pdb::FinitePdb<double> expanded = built.ti.Expand();
  StatusOr<pdb::FinitePdb<double>> conditioned =
      pdb::Condition(expanded, built.condition);
  if (!conditioned.ok()) return conditioned.status();
  StatusOr<pdb::FinitePdb<double>> image =
      pdb::Pushforward(conditioned.value(), built.view);
  if (!image.ok()) return image.status();
  return pdb::TotalVariationDistance(input.DropNullWorlds(), image.value());
}

StatusOr<SegmentConstruction> BuildBoundedSizeConstruction(
    const pdb::FinitePdb<double>& input) {
  int bound = 1;
  for (const auto& [world, probability] : input.worlds()) {
    bound = std::max(bound, world.size());
  }
  return BuildSegmentConstruction(input, bound);
}

namespace {

/// Shared lazy state of the countable segmented-fact family: cumulative
/// fact counts per world, so fact indices map to (world, segment) pairs.
struct SegmentFamilyState {
  pdb::CountablePdb input;
  int c;
  int r;      // max input arity
  int width;  // 1 + r
  // cumulative[i] = number of segment facts of worlds 0..i-1.
  std::vector<int64_t> cumulative = {0};

  int64_t SegmentsOf(int64_t world) const {
    int64_t s = input.SizeAt(world);
    return std::max<int64_t>((s + c - 1) / c, 1);
  }

  /// Ensures the cumulative table covers fact index k; returns the world
  /// index owning fact k and its segment offset.
  std::pair<int64_t, int64_t> Locate(int64_t k) {
    while (cumulative.back() <= k) {
      int64_t world = static_cast<int64_t>(cumulative.size()) - 1;
      cumulative.push_back(cumulative.back() + SegmentsOf(world));
    }
    auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), k) - 1;
    int64_t world = it - cumulative.begin();
    return {world, k - *it};
  }

  double MarginalOf(int64_t world) const {
    double p = input.ProbAt(world);
    return std::pow(p / (1.0 + p),
                    1.0 / static_cast<double>(SegmentsOf(world)));
  }

  rel::Fact FactOf(rel::RelationId seg, int64_t world, int64_t j) {
    rel::Instance instance = input.WorldAt(world);
    const int64_t s = instance.size();
    const int64_t segments = SegmentsOf(world);
    std::vector<rel::Value> args;
    args.push_back(rel::Value::Int(world));
    args.push_back(rel::Value::Int(j));
    if (j + 1 < segments) {
      args.push_back(rel::Value::Int(j + 1));
    } else {
      args.push_back(rel::Value::Null());
    }
    for (int l = 0; l < c; ++l) {
      int64_t fact_index = j * c + l;
      if (fact_index < s) {
        const rel::Fact& fact = instance.facts()[fact_index];
        args.push_back(rel::Value::Int(fact.relation()));
        for (const rel::Value& v : fact.args()) args.push_back(v);
        for (int p = fact.arity(); p < r; ++p) {
          args.push_back(rel::Value::Null());
        }
      } else {
        for (int p = 0; p < width; ++p) args.push_back(rel::Value::Null());
      }
    }
    return rel::Fact(seg, std::move(args));
  }
};

}  // namespace

StatusOr<pdb::CountableTiPdb> BuildSegmentTiFamily(
    const pdb::CountablePdb& input, int c,
    std::function<double(int64_t N)> ceiling_tail_upper) {
  if (c < 1) return InvalidArgumentError("segment width c must be >= 1");
  if (!ceiling_tail_upper) {
    return InvalidArgumentError(
        "the countable construction needs a ceiling-criterion tail "
        "certificate");
  }
  const int r = std::max(1, input.schema().max_arity());
  auto state = std::make_shared<SegmentFamilyState>(
      SegmentFamilyState{input, c, r, 1 + r});

  pdb::CountableTiPdb::Family family;
  StatusOr<rel::RelationId> seg_id =
      family.schema.AddRelation("Seg", 3 + c * (1 + r));
  IPDB_CHECK(seg_id.ok());
  const rel::RelationId seg = seg_id.value();

  family.fact_at = [state, seg](int64_t k) {
    auto [world, j] = state->Locate(k);
    return state->FactOf(seg, world, j);
  };
  family.marginal_at = [state](int64_t k) {
    auto [world, j] = state->Locate(k);
    (void)j;
    return state->MarginalOf(world);
  };
  family.marginal_tail_upper = [state, tail = std::move(ceiling_tail_upper)](
                                   int64_t N) {
    // Facts >= N belong to the world owning N (at most its full
    // ŝ_w · q_w mass) plus all later worlds, bounded by the
    // ceiling-criterion tail: ŝ_i q_i <= ⌈s_i/c⌉ p_i^{1/ŝ_i}.
    auto [world, j] = state->Locate(std::max<int64_t>(N, 0));
    (void)j;
    double current = static_cast<double>(state->SegmentsOf(world)) *
                     state->MarginalOf(world);
    return current + tail(world + 1);
  };
  family.marginal_tail_lower = [](int64_t) { return 0.0; };
  family.description =
      "Lemma 5.1 segmented-fact family (c=" + std::to_string(c) + ") over " +
      input.description();
  return pdb::CountableTiPdb::Create(std::move(family));
}

}  // namespace core
}  // namespace ipdb
