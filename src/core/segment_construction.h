#ifndef IPDB_CORE_SEGMENT_CONSTRUCTION_H_
#define IPDB_CORE_SEGMENT_CONSTRUCTION_H_

#include <cstdint>
#include <functional>

#include "logic/formula.h"
#include "logic/view.h"
#include "pdb/countable_pdb.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Lemma 5.1 / Theorem 5.3 — the segmented-fact construction, made
/// executable.
///
/// Given a PDB D = {D_0, D_1, …} and c ∈ ℕ₊, every instance D_i is cut
/// into ŝ_i = max(⌈|D_i|/c⌉, 1) *segments* of up to c facts each. Each
/// segment becomes one fact of a new TI-PDB:
///
///   Seg(i, j, next_j, slot_1, …, slot_c)
///
/// where i is the instance identifier, j the segment identifier, next_j
/// the next-segment pointer (⊥ at the chain's end) and each slot encodes
/// one original fact as (relation-tag, a_1, …, a_r) padded with ⊥ (r =
/// maximum input arity — this generalizes the paper's single-relation
/// presentation to arbitrary schemas). All facts of instance i get the
/// i.i.d. marginal q = (p_i / (1+p_i))^{1/ŝ_i}, so that drawing all of
/// them has probability p_i/(1+p_i).
///
/// The FO sentence φ ("is a representation") checks that *exactly one*
/// instance identifier u has a complete chain: a segment-0 fact plus
/// closure under next-pointers. The FO view Φ recovers the original
/// facts of the represented instance from the slots. Conditioning the
/// TI-PDB on φ and applying Φ reproduces D exactly — the
/// FO(TI | FO) representation of Lemma 5.1 (Theorem 4.1 then removes
/// the condition).

/// The construction output for a finite input PDB.
struct SegmentConstruction {
  /// Schema {Seg/(3 + c·(1+r))} of the TI-PDB.
  rel::Schema hat_schema;
  /// The tuple-independent PDB Î (marginals are irrational in general;
  /// carried as doubles).
  pdb::TiPdb<double> ti;
  /// φ: "the drawn instance is a representation".
  logic::Formula condition;
  /// Φ: maps representations to the instance they represent.
  logic::FoView view;
  /// Parameters for reference.
  int c = 1;
  int max_arity = 0;
  /// Σ_t q_t, the marginal mass (finite by the criterion; Theorem 2.4).
  double marginal_sum = 0.0;
};

/// Builds the construction for a finite PDB (zero-probability worlds are
/// skipped, mirroring the paper's w.l.o.g. p_i > 0). Fails if c < 1 or
/// the input is empty.
StatusOr<SegmentConstruction> BuildSegmentConstruction(
    const pdb::FinitePdb<double>& input, int c);

/// End-to-end verification: expands the TI-PDB (requires few enough
/// facts), conditions on φ, pushes forward through Φ, and returns the
/// total variation distance to the input (≈0 up to floating point; the
/// construction is exact in exact arithmetic).
StatusOr<double> VerifySegmentConstruction(
    const pdb::FinitePdb<double>& input, const SegmentConstruction& built);

/// Corollary 5.4 helper: for a PDB of bounded instance size, c = bound
/// makes every world a single segmented fact. Returns that construction.
StatusOr<SegmentConstruction> BuildBoundedSizeConstruction(
    const pdb::FinitePdb<double>& input);

/// The construction at the countable level: from a countable PDB whose
/// *ceiling criterion* sum Σ_i ⌈|D_i|/c⌉ P(D_i)^{1/⌈|D_i|/c⌉} has a
/// certified tail (the Lemma D.1 form of Theorem 5.3's condition), build
/// the countably infinite TI-PDB of segmented facts. The world-level
/// grouping is the same as in the finite construction; facts are
/// enumerated world-by-world, and the marginal tail certificate is
/// derived from the ceiling-criterion tail via
///
///   Σ_{t in worlds >= M} q_t <= Σ_{i >= M} ŝ_i (p_i/(1+p_i))^{1/ŝ_i}
///                            <= Σ_{i >= M} ⌈s_i/c⌉ p_i^{1/ŝ_i},
///
/// the exact sum the paper bounds in the Lemma 5.1 proof. The schema and
/// fact layout match the finite construction, so the same condition φ
/// and view Φ (built once by BuildSegmentConstruction on any finite
/// prefix) apply to sampled worlds of the countable family.
///
/// `ceiling_tail_upper(N)` must bound Σ_{i >= N} ⌈s_i/c⌉ p_i^{1/⌈s_i/c⌉}.
StatusOr<pdb::CountableTiPdb> BuildSegmentTiFamily(
    const pdb::CountablePdb& input, int c,
    std::function<double(int64_t N)> ceiling_tail_upper);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_SEGMENT_CONSTRUCTION_H_
