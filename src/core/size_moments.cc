#include "core/size_moments.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ipdb {
namespace core {

std::string FiniteMomentsReport::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < moments.size(); ++i) {
    os << "E[|D|^" << (i + 1) << "]: " << moments[i].ToString() << "\n";
  }
  if (all_finite_certified) {
    os << "all analyzed moments finite (necessary condition for FO(TI) "
          "holds)\n";
  } else if (first_infinite_moment > 0) {
    os << "moment " << first_infinite_moment
       << " diverges: NOT in FO(TI) by Proposition 3.4\n";
  } else {
    os << "inconclusive\n";
  }
  return os.str();
}

FiniteMomentsReport CheckFiniteMoments(const pdb::CountablePdb& pdb,
                                       int max_k, const SumOptions& options) {
  IPDB_CHECK_GE(max_k, 1);
  FiniteMomentsReport report;
  report.all_finite_certified = true;
  for (int k = 1; k <= max_k; ++k) {
    SumAnalysis analysis = pdb.AnalyzeMoment(k, options);
    if (analysis.kind != SumAnalysis::Kind::kConverged) {
      report.all_finite_certified = false;
    }
    if (report.first_infinite_moment == 0 &&
        analysis.kind == SumAnalysis::Kind::kDiverged) {
      report.first_infinite_moment = k;
    }
    report.moments.push_back(std::move(analysis));
  }
  return report;
}

double ViewMomentUpperBound(int m, int r, int r_prime, int c, int k,
                            const std::vector<double>& input_moments) {
  IPDB_CHECK_GE(m, 1);
  IPDB_CHECK_GE(r, 0);
  IPDB_CHECK_GE(r_prime, 1);
  IPDB_CHECK_GE(c, 0);
  IPDB_CHECK_GE(k, 1);
  const int rk = r * k;
  IPDB_CHECK_GE(static_cast<int>(input_moments.size()), rk + 1)
      << "need input moments up to order r*k";
  double total = 0.0;
  double binom = 1.0;  // C(rk, j), updated incrementally
  for (int j = 0; j <= rk; ++j) {
    total += binom *
             std::pow(static_cast<double>(r_prime), static_cast<double>(j)) *
             std::pow(static_cast<double>(c), static_cast<double>(rk - j)) *
             input_moments[j];
    binom = binom * static_cast<double>(rk - j) / static_cast<double>(j + 1);
  }
  return std::pow(static_cast<double>(m), static_cast<double>(k)) * total;
}

StatusOr<double> PushforwardMomentUpperBound(const pdb::CountableTiPdb& ti,
                                             const logic::FoView& view,
                                             int k, int64_t prefix) {
  const rel::Schema& out = view.output_schema();
  int m = out.num_relations();
  int r = out.max_arity();
  int r_prime = std::max(1, ti.schema().max_arity());
  int c = view.NumConstants();

  const int rk = r * k;
  std::vector<double> input_moments(rk + 1);
  input_moments[0] = 1.0;
  for (int j = 1; j <= rk; ++j) {
    StatusOr<Interval> moment = ti.SizeMomentInterval(j, prefix);
    if (!moment.ok()) return moment.status();
    if (!moment.value().is_finite()) {
      return InternalError(
          "TI moment bound not finite — tail certificate too weak");
    }
    input_moments[j] = moment.value().hi();
  }
  // 0^0 in the c = 0 case: the only non-zero summand is j = rk, which the
  // loop handles since pow(0, 0) == 1 in IEEE. The j < rk summands
  // correctly vanish.
  return ViewMomentUpperBound(m, r, r_prime, c, k, input_moments);
}

}  // namespace core
}  // namespace ipdb
