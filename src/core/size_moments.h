#ifndef IPDB_CORE_SIZE_MOMENTS_H_
#define IPDB_CORE_SIZE_MOMENTS_H_

#include <string>
#include <vector>

#include "logic/view.h"
#include "pdb/countable_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/interval.h"
#include "util/series.h"
#include "util/status.h"

namespace ipdb {
namespace core {

/// Section 3.1 — the finite moments property as executable analysis.
///
/// Proposition 3.2: every TI-PDB has all size moments finite.
/// Lemma 3.3:       FO-views preserve the finite moments property.
/// Proposition 3.4: hence so does FO(TI) — giving the paper's first
///                  necessary condition for representability.

/// Outcome of checking moments 1..max_k of a countable PDB.
struct FiniteMomentsReport {
  /// Per-k analysis (index 0 holds k=1).
  std::vector<SumAnalysis> moments;

  /// True iff every analyzed moment was certified convergent.
  bool all_finite_certified = false;

  /// Index (k) of the first moment certified divergent, or 0 if none.
  int first_infinite_moment = 0;

  std::string ToString() const;
};

/// Analyzes E[|D|^k] for k = 1..max_k. A certified-divergent moment is a
/// Proposition 3.4 witness that the PDB is NOT in FO(TI).
FiniteMomentsReport CheckFiniteMoments(const pdb::CountablePdb& pdb,
                                       int max_k,
                                       const SumOptions& options = {});

/// Quantitative Lemma 3.3: an upper bound on E[|V(D)|^k] from the input
/// moments. With m output relations of maximum arity r, c view constants
/// and maximum input arity r', the lemma shows
///
///   E[|V(D)|^k] <= m^k Σ_{j=0}^{rk} C(rk, j) r'^j c^{rk-j} E[|D|^j].
///
/// `input_moments[j]` must bound E[|D|^j] for j = 0..rk (so the vector
/// needs rk+1 entries, entry 0 being 1).
double ViewMomentUpperBound(int m, int r, int r_prime, int c, int k,
                            const std::vector<double>& input_moments);

/// Convenience wrapper deriving (m, r, c) from a view and r' from its
/// input schema, and the input moments from a countable TI-PDB via
/// Proposition 3.2's quantitative form. Returns an upper bound on the
/// k-th size moment of the image PDB (a concrete instance of
/// Proposition 3.4).
StatusOr<double> PushforwardMomentUpperBound(const pdb::CountableTiPdb& ti,
                                             const logic::FoView& view,
                                             int k, int64_t prefix = 4096);

}  // namespace core
}  // namespace ipdb

#endif  // IPDB_CORE_SIZE_MOMENTS_H_
