#include "durability/crc32c.h"

#include <array>
#include <cstring>

namespace ipdb {
namespace durability {

namespace {

/// Slicing-by-8 tables for the reflected Castagnoli polynomial: table 0
/// is the classic byte-at-a-time table; table k folds a byte that sits
/// k positions ahead of the CRC window, so the inner loop consumes 8
/// bytes with 8 independent lookups per iteration instead of 8 serially
/// dependent ones. Generated once at first use.
const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8>* tables = [] {
    auto* t = new std::array<std::array<uint32_t, 256>, 8>;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      (*t)[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = (*t)[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = (*t)[0][crc & 0xffu] ^ (crc >> 8);
        (*t)[k][i] = crc;
      }
    }
    return t;
  }();
  return *tables;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 8) {
    // Little-endian load of the 8-byte window (this project targets LE
    // hosts; the snapshot/WAL formats are LE for the same reason).
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
          t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) { return ExtendCrc32c(0, data, n); }

}  // namespace durability
}  // namespace ipdb
