#ifndef IPDB_DURABILITY_CRC32C_H_
#define IPDB_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ipdb {
namespace durability {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum every persisted section and WAL record carries. Chosen
/// over plain CRC-32 for its better error-detection properties on the
/// short records a WAL is made of; implemented in software (slice-by-one
/// table) so durability has no ISA dependency.
///
/// `Extend` continues a running checksum, so large sections can be
/// checksummed without concatenating buffers. `Crc32c(p, n)` ==
/// `Extend(0, p, n)`.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);
uint32_t Crc32c(const void* data, size_t n);

}  // namespace durability
}  // namespace ipdb

#endif  // IPDB_DURABILITY_CRC32C_H_
