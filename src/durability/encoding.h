#ifndef IPDB_DURABILITY_ENCODING_H_
#define IPDB_DURABILITY_ENCODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "relational/value.h"

namespace ipdb {
namespace durability {

/// Little-endian byte (de)serialization for the snapshot and WAL
/// formats. The writer appends to a std::string; the reader is fully
/// bounds-checked and *never* trusts its input — every Get returns false
/// on underrun and the caller converts that into a kDataLoss Status.
/// Fixed-width little-endian integers (memcpy'd, so the encode is
/// byte-identical across hosts of the same endianness, which is all this
/// project targets) keep the format trivially seekable and the CRC
/// stable.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  /// Bitwise image of the double — probabilities must round-trip to the
  /// identical bit pattern, not through decimal text.
  void PutF64(double v) { PutFixed(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  /// u32 length prefix + raw bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

 private:
  void PutFixed(const void* v, size_t n) {
    out_->append(static_cast<const char*>(v), n);
  }

  std::string* out_;
};

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  bool GetU8(uint8_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU16(uint16_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetFixed(v, sizeof(*v)); }
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }
  bool GetBytes(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  /// Reads a u32-length-prefixed string; rejects lengths that overrun
  /// the buffer (a corrupted length must not drive an allocation).
  bool GetString(std::string* out) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (remaining() < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  bool GetFixed(void* v, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// rel::Value wire form shared by the snapshot and WAL formats:
/// u8 kind, then the payload (i64 for ints, length-prefixed bytes for
/// symbols, nothing for ⊥).
inline void EncodeValue(ByteWriter* w, const rel::Value& value) {
  w->PutU8(static_cast<uint8_t>(value.kind()));
  switch (value.kind()) {
    case rel::Value::Kind::kNull:
      break;
    case rel::Value::Kind::kInt:
      w->PutI64(value.int_value());
      break;
    case rel::Value::Kind::kSymbol:
      w->PutString(value.symbol());
      break;
  }
}

inline bool DecodeValue(ByteReader* r, rel::Value* out) {
  uint8_t kind = 0;
  if (!r->GetU8(&kind)) return false;
  switch (kind) {
    case static_cast<uint8_t>(rel::Value::Kind::kNull):
      *out = rel::Value::Null();
      return true;
    case static_cast<uint8_t>(rel::Value::Kind::kInt): {
      int64_t v = 0;
      if (!r->GetI64(&v)) return false;
      *out = rel::Value::Int(v);
      return true;
    }
    case static_cast<uint8_t>(rel::Value::Kind::kSymbol): {
      std::string s;
      if (!r->GetString(&s)) return false;
      *out = rel::Value::Symbol(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace durability
}  // namespace ipdb

#endif  // IPDB_DURABILITY_ENCODING_H_
