#include "durability/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ipdb {
namespace durability {

namespace {

Status Errno(const char* op, const std::string& path) {
  return IPDB_STATUS(StatusCode::kUnavailable)
         << op << " '" << path << "': " << std::strerror(errno);
}

int OpenRetry(const char* path, int flags, mode_t mode) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

Status FullWrite(int fd, const char* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

Status FsyncFd(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("fsync", path);
  return Status::Ok();
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) {
    return IPDB_STATUS(StatusCode::kInvalidArgument) << "empty directory path";
  }
  std::string prefix;
  size_t start = 0;
  if (path[0] == '/') prefix = "/";
  while (start < path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    const std::string segment = path.substr(start, end - start);
    start = end + 1;
    if (segment.empty()) continue;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    prefix += segment;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) return Errno("open", path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (got == 0) break;
    out->append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  return Status::Ok();
}

Status WriteFileSync(const std::string& path, const std::string& bytes) {
  const int fd = OpenRetry(path.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  Status status = FullWrite(fd, bytes.data(), bytes.size(), path);
  if (status.ok()) status = FsyncFd(fd, path);
  ::close(fd);
  return status;
}

Status RenameSync(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return SyncParentDir(to);
}

Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (fd < 0) return Errno("open dir", dir);
  const Status status = FsyncFd(fd, dir);
  ::close(fd);
  return status;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

}  // namespace durability
}  // namespace ipdb
