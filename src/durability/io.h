#ifndef IPDB_DURABILITY_IO_H_
#define IPDB_DURABILITY_IO_H_

#include <string>

#include "util/status.h"

namespace ipdb {
namespace durability {

/// Thin EINTR-safe POSIX file helpers shared by the snapshot writer and
/// the WAL. All failures come back as Status (kUnavailable for
/// environmental I/O errors, kDataLoss only where bytes were read and
/// found untrustworthy) — durability code never aborts on I/O.

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

/// Creates `path` and every missing parent (mkdir -p semantics).
Status MakeDirs(const std::string& path);

/// Reads the whole file into `out`.
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `bytes` to `path` + fsync. Not atomic — use for temp files.
Status WriteFileSync(const std::string& path, const std::string& bytes);

/// Renames `from` to `to` and fsyncs the containing directory, making
/// the swap durable: after this returns OK a crash leaves `to` either
/// absent (never started) or complete — never half-written.
Status RenameSync(const std::string& from, const std::string& to);

/// fsyncs the directory containing `path` (directory entry durability).
Status SyncParentDir(const std::string& path);

/// Removes a file, tolerating absence.
Status RemoveFileIfExists(const std::string& path);

}  // namespace durability
}  // namespace ipdb

#endif  // IPDB_DURABILITY_IO_H_
