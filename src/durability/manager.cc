#include "durability/manager.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "durability/io.h"
#include "obs/obs.h"

namespace ipdb {
namespace durability {

namespace {

constexpr char kSnapshotFile[] = "snapshot.ipdb";
constexpr char kWalFile[] = "wal.log";

/// Applies one replayed record to the store. The record was validated by
/// CRC + decode; a store that still rejects it (e.g. erase of an absent
/// fact) means log and snapshot disagree — that is data loss, not a
/// caller error.
Status ApplyRecord(storage::TiStore* store, const WalRecord& record) {
  switch (record.op) {
    case WalOp::kInsert: {
      auto row = store->Insert(record.fact, record.prob);
      if (!row.ok()) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "replayed insert rejected: " << row.status().ToString();
      }
      return Status::Ok();
    }
    case WalOp::kErase: {
      const Status status = store->Erase(record.fact);
      if (!status.ok()) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "replayed erase rejected: " << status.ToString();
      }
      return Status::Ok();
    }
    case WalOp::kUpdateProbability: {
      const Status status =
          store->UpdateProbability(record.fact, record.prob);
      if (!status.ok()) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "replayed update rejected: " << status.ToString();
      }
      return Status::Ok();
    }
    case WalOp::kUpdateProbabilityExact: {
      const Status status =
          store->UpdateProbabilityExact(record.fact, record.exact);
      if (!status.ok()) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "replayed exact update rejected: " << status.ToString();
      }
      return Status::Ok();
    }
  }
  return IPDB_STATUS(StatusCode::kDataLoss) << "replayed record has bad op";
}

}  // namespace

DurableStore::DurableStore(std::shared_ptr<storage::TiStore> store,
                           std::unique_ptr<Wal> wal,
                           std::string snapshot_path, uint64_t last_lsn,
                           ReplayStats recovery_stats)
    : store_(std::move(store)),
      wal_(std::move(wal)),
      snapshot_path_(std::move(snapshot_path)),
      last_lsn_(last_lsn),
      recovery_stats_(recovery_stats) {}

StatusOr<int64_t> DurableStore::Insert(const rel::Fact& fact, double prob) {
  WalRecordRef record;
  record.op = WalOp::kInsert;
  record.fact = &fact;
  record.prob = prob;
  int64_t row = -1;
  IPDB_RETURN_IF_ERROR(LogThenApply(record, [&] {
    auto result = store_->Insert(fact, prob);
    if (!result.ok()) return result.status();
    row = *result;
    return Status::Ok();
  }));
  return row;
}

Status DurableStore::Erase(const rel::Fact& fact) {
  WalRecordRef record;
  record.op = WalOp::kErase;
  record.fact = &fact;
  return LogThenApply(record, [&] { return store_->Erase(fact); });
}

Status DurableStore::UpdateProbability(const rel::Fact& fact, double prob) {
  WalRecordRef record;
  record.op = WalOp::kUpdateProbability;
  record.fact = &fact;
  record.prob = prob;
  return LogThenApply(record,
                      [&] { return store_->UpdateProbability(fact, prob); });
}

Status DurableStore::UpdateProbabilityExact(const rel::Fact& fact,
                                            const math::Rational& prob) {
  WalRecordRef record;
  record.op = WalOp::kUpdateProbabilityExact;
  record.fact = &fact;
  record.prob = prob.ToDouble();
  record.exact = &prob;
  return LogThenApply(record, [&] {
    return store_->UpdateProbabilityExact(fact, prob);
  });
}

Status DurableStore::Flush() { return wal_->Flush(); }

Status DurableStore::Sync() { return wal_->Sync(); }

Status DurableStore::Checkpoint() {
  IPDB_OBS_SPAN("dur.checkpoint", "durability");
  // Buffered records must be on disk before the snapshot claims their
  // LSNs (the snapshot's last_lsn makes replay skip them afterwards).
  IPDB_RETURN_IF_ERROR(wal_->Sync());
  IPDB_RETURN_IF_ERROR(WriteSnapshot(*store_, last_lsn_, snapshot_path_));
  // A crash before this truncate is safe: every WAL record has
  // lsn <= the snapshot's last_lsn and replay skips it.
  IPDB_RETURN_IF_ERROR(wal_->TruncateAll());
  IPDB_OBS_COUNT("dur.checkpoints", 1);
  return Status::Ok();
}

Manager::Manager(std::string root_dir) : root_dir_(std::move(root_dir)) {}

Status Manager::ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "instance name must be 1..128 characters";
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) {
      return IPDB_STATUS(StatusCode::kInvalidArgument)
             << "instance name may only contain [A-Za-z0-9_.-]";
    }
  }
  if (name == "." || name == "..") {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "instance name may not be a directory alias";
  }
  return Status::Ok();
}

std::string Manager::InstanceDir(const std::string& name) const {
  return root_dir_ + "/" + name;
}
std::string Manager::SnapshotPath(const std::string& name) const {
  return InstanceDir(name) + "/" + kSnapshotFile;
}
std::string Manager::WalPath(const std::string& name) const {
  return InstanceDir(name) + "/" + kWalFile;
}

StatusOr<std::unique_ptr<DurableStore>> Manager::Create(
    const std::string& name, std::shared_ptr<storage::TiStore> store) {
  IPDB_RETURN_IF_ERROR(ValidateName(name));
  if (store == nullptr) {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "Create requires a non-null store";
  }
  IPDB_RETURN_IF_ERROR(MakeDirs(InstanceDir(name)));
  IPDB_RETURN_IF_ERROR(WriteSnapshot(*store, 0, SnapshotPath(name)));
  auto wal = Wal::Open(WalPath(name));
  if (!wal.ok()) return wal.status();
  // A stale WAL from a previous incarnation must not replay over the
  // fresh snapshot.
  IPDB_RETURN_IF_ERROR((*wal)->TruncateAll());
  return std::unique_ptr<DurableStore>(
      new DurableStore(std::move(store), std::move(wal).value(),
                       SnapshotPath(name), 0, ReplayStats{}));
}

Status Manager::Save(const std::string& name, const storage::TiStore& store) {
  IPDB_RETURN_IF_ERROR(ValidateName(name));
  IPDB_RETURN_IF_ERROR(MakeDirs(InstanceDir(name)));
  IPDB_RETURN_IF_ERROR(WriteSnapshot(store, 0, SnapshotPath(name)));
  auto wal = Wal::Open(WalPath(name));
  if (!wal.ok()) return wal.status();
  return (*wal)->TruncateAll();
}

StatusOr<std::unique_ptr<DurableStore>> Manager::Load(
    const std::string& name) {
  IPDB_OBS_SPAN("dur.recover", "durability");
  IPDB_OBS_SCOPED_TIMER("dur.recover_ns");
  IPDB_RETURN_IF_ERROR(ValidateName(name));
  auto snapshot = ReadSnapshot(SnapshotPath(name));
  if (!snapshot.ok()) {
    return IPDB_STATUS_FORWARD(snapshot.status())
           << "while loading instance '" << name << "'";
  }
  auto wal = Wal::Open(WalPath(name));
  if (!wal.ok()) {
    return IPDB_STATUS_FORWARD(wal.status())
           << "while loading instance '" << name << "'";
  }
  storage::TiStore* store = snapshot->store.get();
  ReplayStats stats;
  const Status replayed = (*wal)->Replay(
      snapshot->last_lsn,
      [store](const WalRecord& record) {
        return ApplyRecord(store, record);
      },
      &stats);
  if (!replayed.ok()) {
    return IPDB_STATUS_FORWARD(replayed)
           << "while recovering instance '" << name << "'";
  }
  IPDB_OBS_COUNT("dur.recoveries", 1);
  return std::unique_ptr<DurableStore>(new DurableStore(
      std::move(snapshot->store), std::move(wal).value(), SnapshotPath(name),
      stats.last_lsn, stats));
}

bool Manager::Exists(const std::string& name) const {
  return ValidateName(name).ok() && FileExists(SnapshotPath(name));
}

StatusOr<std::vector<std::string>> Manager::List() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(root_dir_.c_str());
  if (dir == nullptr) {
    // A root that does not exist yet simply has no instances.
    return names;
  }
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (Exists(name)) names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace durability
}  // namespace ipdb
