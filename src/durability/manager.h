#ifndef IPDB_DURABILITY_MANAGER_H_
#define IPDB_DURABILITY_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "durability/snapshot.h"
#include "durability/wal.h"
#include "storage/ti_store.h"
#include "util/status.h"

namespace ipdb {
namespace durability {

/// A TiStore with crash-safe persistence: every live mutation is
/// journaled to the instance's WAL *before* it is applied (log-then-
/// apply; a failed apply rolls the buffered record back), and
/// `Checkpoint()` folds the log into a fresh snapshot and truncates it.
///
/// Durability contract: a mutation survives process death (`kill -9`)
/// once `Flush()` has returned — the bytes are in the page cache and the
/// kernel completes them — and survives power loss once `Sync()` has
/// returned. Appends between flushes sit in a user-space group-commit
/// buffer (Wal::kFlushWatermarkBytes) so the per-mutation overhead is an
/// encode + CRC, not a syscall.
///
/// Single-writer, like the TiStore mutators it wraps.
class DurableStore {
 public:
  storage::TiStore& store() { return *store_; }
  const storage::TiStore& store() const { return *store_; }
  const std::shared_ptr<storage::TiStore>& shared_store() const {
    return store_;
  }

  /// Journaled mutators, mirroring TiStore's.
  StatusOr<int64_t> Insert(const rel::Fact& fact, double prob);
  Status Erase(const rel::Fact& fact);
  Status UpdateProbability(const rel::Fact& fact, double prob);
  Status UpdateProbabilityExact(const rel::Fact& fact,
                                const math::Rational& prob);

  /// Pushes buffered WAL records to the page cache / to stable storage.
  Status Flush();
  Status Sync();

  /// Writes a snapshot at the current LSN, then truncates the WAL. A
  /// crash between the two steps is safe: replay skips every record the
  /// snapshot already covers (lsn <= its last_lsn).
  Status Checkpoint();

  uint64_t last_lsn() const { return last_lsn_; }
  /// What recovery found in the WAL (zero stats for a Create'd store).
  const ReplayStats& recovery_stats() const { return recovery_stats_; }

 private:
  friend class Manager;
  DurableStore(std::shared_ptr<storage::TiStore> store,
               std::unique_ptr<Wal> wal, std::string snapshot_path,
               uint64_t last_lsn, ReplayStats recovery_stats);

  /// Appends `record` (lsn assigned here), applies `apply`, rolls the
  /// buffered record back if the apply fails, and group-commit-flushes.
  /// Templated (not std::function) so the per-mutation journaling cost
  /// is an inlined encode + CRC, nothing more.
  template <typename Apply>
  Status LogThenApply(WalRecordRef record, const Apply& apply) {
    record.lsn = last_lsn_ + 1;
    const size_t mark = wal_->mark();
    IPDB_RETURN_IF_ERROR(wal_->Append(record));
    const Status applied = apply();
    if (!applied.ok()) {
      // The mutation never happened; the buffered record must not
      // replay.
      wal_->RollbackTo(mark);
      return applied;
    }
    last_lsn_ = record.lsn;
    return wal_->MaybeFlush();
  }

  std::shared_ptr<storage::TiStore> store_;
  std::unique_ptr<Wal> wal_;
  std::string snapshot_path_;
  uint64_t last_lsn_;
  ReplayStats recovery_stats_;
};

/// Owns the on-disk layout: one directory per instance under a root,
/// holding `snapshot.ipdb` and `wal.log`. Instance names are restricted
/// to [A-Za-z0-9_.-] (they become path components).
class Manager {
 public:
  explicit Manager(std::string root_dir);

  /// Creates (or overwrites) the durable form of `store`: writes an
  /// initial snapshot at LSN 0 and an empty WAL, returning the live
  /// handle.
  StatusOr<std::unique_ptr<DurableStore>> Create(
      const std::string& name, std::shared_ptr<storage::TiStore> store);

  /// Snapshot-only save of an existing (immutable) store — what the
  /// Engine's SAVE command uses. Equivalent to Create minus the handle.
  Status Save(const std::string& name,
              const storage::TiStore& store);

  /// Recovers an instance: reads its snapshot, replays the WAL tail
  /// (fault site "dur.wal.replay"; torn tails are truncated, corrupt
  /// records surface as kDataLoss), and returns the live handle.
  StatusOr<std::unique_ptr<DurableStore>> Load(const std::string& name);

  /// True when `name` has a snapshot on disk.
  bool Exists(const std::string& name) const;

  /// Names of every instance with a snapshot under the root, sorted.
  StatusOr<std::vector<std::string>> List() const;

  const std::string& root_dir() const { return root_dir_; }
  std::string InstanceDir(const std::string& name) const;
  std::string SnapshotPath(const std::string& name) const;
  std::string WalPath(const std::string& name) const;

  static Status ValidateName(const std::string& name);

 private:
  std::string root_dir_;
};

}  // namespace durability
}  // namespace ipdb

#endif  // IPDB_DURABILITY_MANAGER_H_
