#include "durability/snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "durability/crc32c.h"
#include "durability/encoding.h"
#include "durability/io.h"
#include "math/rational.h"
#include "obs/obs.h"
#include "relational/value.h"
#include "util/fault.h"

namespace ipdb {
namespace durability {

namespace {

enum SectionType : uint32_t {
  kSectionSchema = 1,
  kSectionDictionary = 2,
  kSectionTable = 3,
  kSectionGlobalIndex = 4,
};

// magic | version | section_count | last_lsn | header crc32c.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;
constexpr size_t kHeaderCrcCoverage = kHeaderBytes - 4;

void AppendSection(std::string* out, uint32_t type,
                   const std::string& payload) {
  ByteWriter w(out);
  w.PutU32(type);
  w.PutU64(payload.size());
  w.PutU32(Crc32c(payload.data(), payload.size()));
  w.PutBytes(payload.data(), payload.size());
}

bool ReadU32Vector(ByteReader* r, size_t n, std::vector<uint32_t>* out) {
  if (r->remaining() < n * sizeof(uint32_t)) return false;
  out->resize(n);
  return r->GetBytes(out->data(), n * sizeof(uint32_t));
}

bool ReadF64Vector(ByteReader* r, size_t n, std::vector<double>* out) {
  if (r->remaining() < n * sizeof(double)) return false;
  out->resize(n);
  return r->GetBytes(out->data(), n * sizeof(double));
}

}  // namespace

StatusOr<std::string> SnapshotCodec::Encode(const storage::TiStore& store,
                                            uint64_t last_lsn) {
  const int num_relations = store.schema().num_relations();
  std::string out;
  out.reserve(kHeaderBytes +
              static_cast<size_t>(store.ApproxBytes()) / 2);
  {
    ByteWriter w(&out);
    w.PutBytes(kMagic, sizeof(kMagic));
    w.PutU32(kVersion);
    w.PutU32(static_cast<uint32_t>(3 + num_relations));
    w.PutU64(last_lsn);
    // The sections each carry their own CRC; this one covers the header
    // fields above so a flipped bit in last_lsn or section_count cannot
    // silently change replay semantics.
    w.PutU32(Crc32c(out.data(), kHeaderCrcCoverage));
  }

  std::string payload;
  {
    payload.clear();
    ByteWriter w(&payload);
    w.PutU32(static_cast<uint32_t>(num_relations));
    for (rel::RelationId r = 0; r < num_relations; ++r) {
      w.PutString(store.schema().relation_name(r));
      w.PutU32(static_cast<uint32_t>(store.schema().arity(r)));
    }
    AppendSection(&out, kSectionSchema, payload);
  }

  {
    payload.clear();
    ByteWriter w(&payload);
    const storage::Dictionary& dict = store.dictionary();
    w.PutU64(static_cast<uint64_t>(dict.size()));
    for (int64_t id = 0; id < dict.size(); ++id) {
      EncodeValue(&w, dict.ValueAt(static_cast<uint32_t>(id)));
    }
    AppendSection(&out, kSectionDictionary, payload);
  }

  for (rel::RelationId r = 0; r < num_relations; ++r) {
    const storage::ColumnTable& table = store.table(r);
    payload.clear();
    ByteWriter w(&payload);
    w.PutU32(static_cast<uint32_t>(r));
    w.PutU32(static_cast<uint32_t>(table.arity()));
    const size_t rows = static_cast<size_t>(table.num_rows());
    w.PutU64(rows);
    for (int c = 0; c < table.arity(); ++c) {
      const std::vector<uint32_t>& column = table.column(c);
      w.PutBytes(column.data(), column.size() * sizeof(uint32_t));
    }
    w.PutBytes(table.probs().data(), rows * sizeof(double));
    w.PutBytes(table.sorted_run().data(), rows * sizeof(uint32_t));
    const auto& exact = table.exact_entries();
    w.PutU64(exact.size());
    for (const auto& [row, value] : exact) {
      w.PutU32(row);
      w.PutString(value.ToString());
    }
    AppendSection(&out, kSectionTable, payload);
  }

  {
    payload.clear();
    ByteWriter w(&payload);
    const int64_t n = store.num_facts();
    w.PutU64(static_cast<uint64_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      w.PutU32(static_cast<uint32_t>(store.fact_rel(i)));
      w.PutU32(static_cast<uint32_t>(store.fact_row(i)));
    }
    AppendSection(&out, kSectionGlobalIndex, payload);
  }
  return out;
}

namespace {

/// Reads one section header + payload out of `reader`, CRC-verified,
/// returning a reader over the payload region of the backing buffer.
Status TakeSection(ByteReader* reader, const char* base, uint32_t expected,
                   const char* what, ByteReader* payload) {
  uint32_t type = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
  if (!reader->GetU32(&type) || !reader->GetU64(&size) ||
      !reader->GetU32(&crc)) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot truncated in " << what << " section header";
  }
  if (type != expected) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot section type " << type << " where " << what
           << " was expected";
  }
  if (size > reader->remaining()) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot " << what << " section claims " << size
           << " bytes but only " << reader->remaining() << " remain";
  }
  const char* start = base + reader->position();
  const size_t payload_size = static_cast<size_t>(size);
  *payload = ByteReader(start, payload_size);
  reader->Skip(payload_size);  // bounds checked above
  if (Crc32c(start, payload_size) != crc) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot " << what << " section failed its CRC32C check";
  }
  return Status::Ok();
}

}  // namespace

StatusOr<SnapshotResult> SnapshotCodec::Decode(const std::string& bytes) {
  ByteReader reader(bytes);
  char magic[sizeof(kMagic)];
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint64_t last_lsn = 0;
  uint32_t header_crc = 0;
  if (!reader.GetBytes(magic, sizeof(magic)) || !reader.GetU32(&version) ||
      !reader.GetU32(&section_count) || !reader.GetU64(&last_lsn) ||
      !reader.GetU32(&header_crc)) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot shorter than its header (" << bytes.size()
           << " bytes)";
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return IPDB_STATUS(StatusCode::kDataLoss) << "snapshot magic mismatch";
  }
  if (version != kVersion) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot version " << version << " unsupported (expected "
           << kVersion << ")";
  }
  if (Crc32c(bytes.data(), kHeaderCrcCoverage) != header_crc) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot header failed its CRC32C check";
  }
  if (section_count < 3) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot section count " << section_count << " is impossible";
  }

  std::shared_ptr<storage::TiStore> store(new storage::TiStore());

  // Schema.
  ByteReader payload(nullptr, 0);
  IPDB_RETURN_IF_ERROR(
      TakeSection(&reader, bytes.data(), kSectionSchema, "schema", &payload));
  uint32_t num_relations = 0;
  if (!payload.GetU32(&num_relations) ||
      num_relations != section_count - 3) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot schema relation count disagrees with section count";
  }
  for (uint32_t r = 0; r < num_relations; ++r) {
    std::string name;
    uint32_t arity = 0;
    if (!payload.GetString(&name) || !payload.GetU32(&arity) ||
        arity > 0xffffu) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot schema entry " << r << " malformed";
    }
    auto added =
        store->schema_.AddRelation(name, static_cast<int>(arity));
    if (!added.ok()) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot schema rejected: " << added.status().ToString();
    }
  }

  // Dictionary: values re-interned in id order reproduce the original
  // id assignment exactly (interning is deterministic and sequential).
  IPDB_RETURN_IF_ERROR(TakeSection(&reader, bytes.data(), kSectionDictionary,
                                   "dictionary", &payload));
  uint64_t dict_size = 0;
  if (!payload.GetU64(&dict_size) || dict_size > 0xffffffffull) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot dictionary size malformed";
  }
  for (uint64_t id = 0; id < dict_size; ++id) {
    rel::Value value;
    if (!DecodeValue(&payload, &value)) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot dictionary value " << id << " malformed";
    }
    const uint32_t assigned = store->dict_.Intern(value);
    if (assigned != static_cast<uint32_t>(id)) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot dictionary has duplicate value at id " << id;
    }
  }

  // Tables.
  store->tables_.reserve(num_relations);
  for (uint32_t r = 0; r < num_relations; ++r) {
    IPDB_RETURN_IF_ERROR(
        TakeSection(&reader, bytes.data(), kSectionTable, "table", &payload));
    uint32_t rel_id = 0;
    uint32_t arity = 0;
    uint64_t rows = 0;
    if (!payload.GetU32(&rel_id) || !payload.GetU32(&arity) ||
        !payload.GetU64(&rows) || rel_id != r ||
        static_cast<int>(arity) !=
            store->schema_.arity(static_cast<rel::RelationId>(r))) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot table section " << r << " header malformed";
    }
    const size_t n = static_cast<size_t>(rows);
    std::vector<std::vector<uint32_t>> columns(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      if (!ReadU32Vector(&payload, n, &columns[c])) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "snapshot table " << r << " column " << c << " truncated";
      }
      for (uint32_t id : columns[c]) {
        if (static_cast<int64_t>(id) >= store->dict_.size()) {
          return IPDB_STATUS(StatusCode::kDataLoss)
                 << "snapshot table " << r << " references dictionary id "
                 << id << " of " << store->dict_.size();
        }
      }
    }
    std::vector<double> probs;
    std::vector<uint32_t> sorted;
    if (!ReadF64Vector(&payload, n, &probs) ||
        !ReadU32Vector(&payload, n, &sorted)) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot table " << r << " columns truncated";
    }
    uint64_t num_exact = 0;
    if (!payload.GetU64(&num_exact) || num_exact > rows) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot table " << r << " exact count malformed";
    }
    std::vector<std::pair<uint32_t, math::Rational>> exact;
    exact.reserve(static_cast<size_t>(num_exact));
    for (uint64_t i = 0; i < num_exact; ++i) {
      uint32_t row = 0;
      std::string text;
      if (!payload.GetU32(&row) || !payload.GetString(&text)) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "snapshot table " << r << " exact entry " << i
               << " truncated";
      }
      auto value = math::Rational::FromString(text);
      if (!value.ok()) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "snapshot table " << r << " exact entry " << i
               << " unparsable: " << value.status().ToString();
      }
      exact.emplace_back(row, std::move(value).value());
    }
    storage::ColumnTable table(static_cast<int>(arity));
    IPDB_RETURN_IF_ERROR(table.RestoreRows(std::move(columns),
                                           std::move(probs), std::move(sorted),
                                           std::move(exact)));
    store->tables_.push_back(std::move(table));
  }

  // Global fact index; rebuilding row_global_ checks bijectivity.
  IPDB_RETURN_IF_ERROR(TakeSection(&reader, bytes.data(), kSectionGlobalIndex,
                                   "global index", &payload));
  uint64_t num_facts = 0;
  if (!payload.GetU64(&num_facts)) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot global index truncated";
  }
  uint64_t total_rows = 0;
  for (const storage::ColumnTable& table : store->tables_) {
    total_rows += static_cast<uint64_t>(table.num_rows());
  }
  if (num_facts != total_rows) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot global index covers " << num_facts << " facts, tables "
           << "hold " << total_rows;
  }
  store->fact_loc_.reserve(static_cast<size_t>(num_facts));
  store->row_global_.resize(num_relations);
  for (uint32_t r = 0; r < num_relations; ++r) {
    store->row_global_[r].assign(
        static_cast<size_t>(store->tables_[r].num_rows()), -1);
  }
  for (uint64_t i = 0; i < num_facts; ++i) {
    uint32_t rel_id = 0;
    uint32_t row = 0;
    if (!payload.GetU32(&rel_id) || !payload.GetU32(&row)) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot global index entry " << i << " truncated";
    }
    if (rel_id >= num_relations ||
        static_cast<int64_t>(row) >= store->tables_[rel_id].num_rows()) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot global index entry " << i << " out of range";
    }
    if (store->row_global_[rel_id][row] != -1) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "snapshot global index maps row (" << rel_id << ", " << row
             << ") twice";
    }
    store->row_global_[rel_id][row] = static_cast<int64_t>(i);
    store->fact_loc_.emplace_back(static_cast<rel::RelationId>(rel_id), row);
  }
  if (reader.remaining() != 0) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "snapshot has " << reader.remaining()
           << " trailing bytes after the last section";
  }

  SnapshotResult result;
  result.store = std::move(store);
  result.last_lsn = last_lsn;
  return result;
}

Status WriteSnapshot(const storage::TiStore& store, uint64_t last_lsn,
                     const std::string& path) {
  IPDB_OBS_SPAN("dur.snapshot.write", "durability");
  IPDB_OBS_SCOPED_TIMER("dur.snapshot.write_ns");
  IPDB_FAULT_POINT("dur.snapshot.write");
  auto bytes = SnapshotCodec::Encode(store, last_lsn);
  if (!bytes.ok()) return bytes.status();
  const std::string tmp = path + ".tmp";
  IPDB_RETURN_IF_ERROR(WriteFileSync(tmp, *bytes));
  IPDB_FAULT_POINT("dur.rename");
  IPDB_RETURN_IF_ERROR(RenameSync(tmp, path));
  IPDB_OBS_COUNT("dur.snapshot.writes", 1);
  IPDB_OBS_COUNT("dur.snapshot.bytes_written",
                 static_cast<int64_t>(bytes->size()));
  return Status::Ok();
}

StatusOr<SnapshotResult> ReadSnapshot(const std::string& path) {
  IPDB_OBS_SPAN("dur.snapshot.read", "durability");
  IPDB_OBS_SCOPED_TIMER("dur.snapshot.read_ns");
  std::string bytes;
  IPDB_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  auto result = SnapshotCodec::Decode(bytes);
  if (result.ok()) {
    IPDB_OBS_COUNT("dur.snapshot.reads", 1);
    IPDB_OBS_COUNT("dur.snapshot.bytes_read",
                   static_cast<int64_t>(bytes.size()));
  } else {
    IPDB_OBS_COUNT("dur.snapshot.read_errors", 1);
  }
  return result;
}

}  // namespace durability
}  // namespace ipdb
