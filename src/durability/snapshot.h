#ifndef IPDB_DURABILITY_SNAPSHOT_H_
#define IPDB_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/ti_store.h"
#include "util/status.h"

namespace ipdb {
namespace durability {

/// A decoded snapshot: the rebuilt store plus the log sequence number it
/// was checkpointed at (WAL records with lsn <= last_lsn are already
/// folded into the snapshot and must be skipped on replay — this is what
/// makes checkpoint-then-truncate crash-safe in either order).
struct SnapshotResult {
  std::shared_ptr<storage::TiStore> store;
  uint64_t last_lsn = 0;
};

/// The binary snapshot format for TiStore (see DESIGN.md "Durability &
/// crash recovery" for the byte layout):
///
///   "IPDBSNP1" | u32 version | u32 section_count | u64 last_lsn
///   | u32 header_crc32c (over the preceding 24 bytes)
///   then per section: u32 type | u64 payload_size | u32 crc32c | payload
///
/// Sections, in order: schema (1), dictionary (2), one table section (3)
/// per relation, global fact index (4). Dictionary values are written in
/// id order and tables carry their columns, bitwise double probabilities,
/// sorted run and exact-Rational side table verbatim, so Decode rebuilds
/// the *identical* store — same dictionary ids, same row numbering, same
/// global fact order — and every lineage grounded against the restored
/// store fingerprints bit-identically to the original.
///
/// Decode trusts nothing: magic, version, section framing, CRCs,
/// dictionary id bounds, sorted-run permutation and index bijectivity
/// are all validated, and every failure is a kDataLoss Status (never an
/// abort).
class SnapshotCodec {
 public:
  static constexpr char kMagic[8] = {'I', 'P', 'D', 'B', 'S', 'N', 'P', '1'};
  static constexpr uint32_t kVersion = 1;

  /// Serializes `store` (checkpoint at `last_lsn`) to bytes.
  static StatusOr<std::string> Encode(const storage::TiStore& store,
                                      uint64_t last_lsn);

  /// Rebuilds a store from snapshot bytes.
  static StatusOr<SnapshotResult> Decode(const std::string& bytes);
};

/// Encodes `store` and writes it to `path` crash-safely: the bytes go to
/// `path`.tmp first (fault site "dur.snapshot.write"), are fsynced, and
/// only then renamed over `path` ("dur.rename") with a directory fsync —
/// a crash at any point leaves either the old snapshot or the new one,
/// never a torn file.
Status WriteSnapshot(const storage::TiStore& store, uint64_t last_lsn,
                     const std::string& path);

/// Reads and decodes the snapshot at `path`.
StatusOr<SnapshotResult> ReadSnapshot(const std::string& path);

}  // namespace durability
}  // namespace ipdb

#endif  // IPDB_DURABILITY_SNAPSHOT_H_
