#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "durability/crc32c.h"
#include "durability/encoding.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/fault.h"

namespace ipdb {
namespace durability {

namespace {

constexpr size_t kHeaderBytes = 16;
constexpr size_t kFrameBytes = 8;  // u32 len + u32 crc

Status Errno(const char* op, const std::string& path) {
  return IPDB_STATUS(StatusCode::kUnavailable)
         << op << " '" << path << "': " << std::strerror(errno);
}

Status PwriteFull(int fd, const char* data, size_t n, uint64_t offset,
                  const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::pwrite(fd, data + done, n - done,
                                   static_cast<off_t>(offset + done));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", path);
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

Status FdatasyncRetry(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("fdatasync", path);
  return Status::Ok();
}

}  // namespace

void EncodeWalPayload(const WalRecordRef& record, std::string* out) {
  ByteWriter w(out);
  w.PutU64(record.lsn);
  w.PutU8(static_cast<uint8_t>(record.op));
  w.PutU32(static_cast<uint32_t>(record.fact->relation()));
  w.PutU16(static_cast<uint16_t>(record.fact->arity()));
  for (const rel::Value& value : record.fact->args()) {
    EncodeValue(&w, value);
  }
  switch (record.op) {
    case WalOp::kInsert:
    case WalOp::kUpdateProbability:
      w.PutF64(record.prob);
      break;
    case WalOp::kUpdateProbabilityExact:
      w.PutF64(record.prob);
      w.PutString(record.exact->ToString());
      break;
    case WalOp::kErase:
      break;
  }
}

void EncodeWalPayload(const WalRecord& record, std::string* out) {
  WalRecordRef ref;
  ref.lsn = record.lsn;
  ref.op = record.op;
  ref.fact = &record.fact;
  ref.prob = record.prob;
  ref.exact = &record.exact;
  EncodeWalPayload(ref, out);
}

bool DecodeWalPayload(const char* data, size_t size, WalRecord* out) {
  ByteReader r(data, size);
  uint8_t op = 0;
  uint32_t relation = 0;
  uint16_t arity = 0;
  if (!r.GetU64(&out->lsn) || !r.GetU8(&op) || !r.GetU32(&relation) ||
      !r.GetU16(&arity)) {
    return false;
  }
  if (op < static_cast<uint8_t>(WalOp::kInsert) ||
      op > static_cast<uint8_t>(WalOp::kUpdateProbabilityExact)) {
    return false;
  }
  out->op = static_cast<WalOp>(op);
  std::vector<rel::Value> args(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    if (!DecodeValue(&r, &args[i])) return false;
  }
  out->fact = rel::Fact(static_cast<rel::RelationId>(relation),
                        std::move(args));
  switch (out->op) {
    case WalOp::kInsert:
    case WalOp::kUpdateProbability:
      if (!r.GetF64(&out->prob)) return false;
      break;
    case WalOp::kUpdateProbabilityExact: {
      std::string text;
      if (!r.GetF64(&out->prob) || !r.GetString(&text)) return false;
      auto exact = math::Rational::FromString(text);
      if (!exact.ok()) return false;
      out->exact = std::move(exact).value();
      break;
    }
    case WalOp::kErase:
      break;
  }
  return r.remaining() == 0;
}

Wal::Wal(std::string path, int fd, uint64_t end_offset)
    : path_(std::move(path)), fd_(fd), end_offset_(end_offset) {}

Wal::~Wal() {
  // Best effort: buffered appends that were never flushed are the
  // caller's accepted loss window; the file itself is already coherent.
  if (!buffer_.empty()) (void)Flush();
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("open", path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);

  if (size < kHeaderBytes) {
    // Fresh log, or a crash tore the header itself: (re)initialize.
    if (::ftruncate(fd, 0) != 0) {
      const Status status = Errno("ftruncate", path);
      ::close(fd);
      return status;
    }
    std::string header;
    ByteWriter w(&header);
    w.PutBytes(kMagic, sizeof(kMagic));
    w.PutU32(kVersion);
    w.PutU32(0);  // reserved
    Status status = PwriteFull(fd, header.data(), header.size(), 0, path);
    if (status.ok()) status = FdatasyncRetry(fd, path);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    size = kHeaderBytes;
  } else {
    char header[kHeaderBytes];
    ssize_t got;
    do {
      got = ::pread(fd, header, sizeof(header), 0);
    } while (got < 0 && errno == EINTR);
    if (got != static_cast<ssize_t>(sizeof(header))) {
      const Status status = Errno("pread", path);
      ::close(fd);
      return status;
    }
    ByteReader r(header, sizeof(header));
    char magic[sizeof(kMagic)];
    uint32_t version = 0;
    r.GetBytes(magic, sizeof(magic));
    r.GetU32(&version);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      ::close(fd);
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "WAL '" << path << "' magic mismatch";
    }
    if (version != kVersion) {
      ::close(fd);
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "WAL '" << path << "' version " << version
             << " unsupported (expected " << kVersion << ")";
    }
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, size));
}

Status Wal::Append(const WalRecordRef& record) {
  IPDB_FAULT_POINT("dur.wal.append");
  // Encode straight into the group-commit buffer: reserve the 8-byte
  // frame header, write the payload behind it, then backfill length and
  // CRC. One buffer append per record, no scratch string.
  const size_t frame_start = buffer_.size();
  buffer_.append(kFrameBytes, '\0');
  EncodeWalPayload(record, &buffer_);
  const size_t payload_size = buffer_.size() - frame_start - kFrameBytes;
  if (payload_size > kMaxPayloadBytes) {
    buffer_.resize(frame_start);
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "WAL record payload of " << payload_size
           << " bytes exceeds the " << kMaxPayloadBytes << " frame cap";
  }
  const char* payload = buffer_.data() + frame_start + kFrameBytes;
  const uint32_t len = static_cast<uint32_t>(payload_size);
  const uint32_t crc = Crc32c(payload, payload_size);
  std::memcpy(&buffer_[frame_start], &len, sizeof(len));
  std::memcpy(&buffer_[frame_start + sizeof(len)], &crc, sizeof(crc));
  IPDB_OBS_COUNT("dur.wal.appends", 1);
  return Status::Ok();
}

Status Wal::Append(const WalRecord& record) {
  WalRecordRef ref;
  ref.lsn = record.lsn;
  ref.op = record.op;
  ref.fact = &record.fact;
  ref.prob = record.prob;
  ref.exact = &record.exact;
  return Append(ref);
}

void Wal::RollbackTo(size_t mark) {
  IPDB_CHECK_LE(mark, buffer_.size());
  buffer_.resize(mark);
}

Status Wal::MaybeFlush() {
  if (buffer_.size() < kFlushWatermarkBytes) return Status::Ok();
  return Flush();
}

Status Wal::Flush() {
  if (buffer_.empty()) return Status::Ok();
  return WriteBuffer();
}

Status Wal::WriteBuffer() {
  IPDB_OBS_COUNT("dur.wal.flushes", 1);
  IPDB_OBS_COUNT("dur.wal.flushed_bytes",
                 static_cast<int64_t>(buffer_.size()));
  IPDB_RETURN_IF_ERROR(
      PwriteFull(fd_, buffer_.data(), buffer_.size(), end_offset_, path_));
  end_offset_ += buffer_.size();
  buffer_.clear();
  return Status::Ok();
}

Status Wal::Sync() {
  IPDB_RETURN_IF_ERROR(Flush());
  return FdatasyncRetry(fd_, path_);
}

Status Wal::Replay(uint64_t min_lsn,
                   const std::function<Status(const WalRecord&)>& apply,
                   ReplayStats* stats) {
  IPDB_OBS_SPAN("dur.wal.replay", "durability");
  IPDB_OBS_SCOPED_TIMER("dur.wal.replay_ns");
  *stats = ReplayStats{};
  stats->last_lsn = min_lsn;
  IPDB_FAULT_POINT("dur.wal.replay");

  // Read everything past the header.
  std::string bytes;
  if (end_offset_ > kHeaderBytes) {
    bytes.resize(static_cast<size_t>(end_offset_ - kHeaderBytes));
    size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t got =
          ::pread(fd_, &bytes[done], bytes.size() - done,
                  static_cast<off_t>(kHeaderBytes + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Errno("pread", path_);
      }
      if (got == 0) break;  // file shorter than expected: torn tail below
      done += static_cast<size_t>(got);
    }
    bytes.resize(done);
  }

  size_t offset = 0;
  while (offset < bytes.size()) {
    ByteReader frame(bytes.data() + offset, bytes.size() - offset);
    uint32_t len = 0;
    uint32_t crc = 0;
    const bool header_ok = frame.GetU32(&len) && frame.GetU32(&crc);
    if (!header_ok || len > kMaxPayloadBytes ||
        frame.remaining() < len) {
      // Torn tail: a crash interrupted an append. Cut it off and go on.
      break;
    }
    const char* payload = bytes.data() + offset + kFrameBytes;
    if (Crc32c(payload, len) != crc) break;
    WalRecord record;
    if (!DecodeWalPayload(payload, len, &record)) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "WAL '" << path_ << "' record at offset "
             << (kHeaderBytes + offset)
             << " passes its CRC but does not decode";
    }
    if (record.lsn > stats->last_lsn) stats->last_lsn = record.lsn;
    if (record.lsn <= min_lsn) {
      ++stats->skipped;
    } else {
      const Status status = apply(record);
      if (!status.ok()) {
        return IPDB_STATUS_FORWARD(status)
               << "while replaying WAL record lsn " << record.lsn;
      }
      ++stats->applied;
    }
    offset += kFrameBytes + len;
  }

  if (offset < bytes.size()) {
    // Truncate the torn tail so the next append starts on a clean frame.
    const uint64_t good_end = kHeaderBytes + offset;
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      return Errno("ftruncate", path_);
    }
    IPDB_RETURN_IF_ERROR(FdatasyncRetry(fd_, path_));
    end_offset_ = good_end;
    stats->tail_truncated = true;
    IPDB_OBS_COUNT("dur.wal.torn_tails", 1);
  } else {
    end_offset_ = kHeaderBytes + bytes.size();
  }
  IPDB_OBS_COUNT("dur.wal.replayed", stats->applied);
  IPDB_OBS_COUNT("dur.wal.replay_skipped", stats->skipped);
  return Status::Ok();
}

Status Wal::TruncateAll() {
  buffer_.clear();
  if (::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) != 0) {
    return Errno("ftruncate", path_);
  }
  IPDB_RETURN_IF_ERROR(FdatasyncRetry(fd_, path_));
  end_offset_ = kHeaderBytes;
  IPDB_OBS_COUNT("dur.wal.truncations", 1);
  return Status::Ok();
}

}  // namespace durability
}  // namespace ipdb
