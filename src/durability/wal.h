#ifndef IPDB_DURABILITY_WAL_H_
#define IPDB_DURABILITY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "math/rational.h"
#include "relational/fact.h"
#include "util/status.h"

namespace ipdb {
namespace durability {

/// One logged mutation, mirroring TiStore's live mutators.
enum class WalOp : uint8_t {
  kInsert = 1,
  kErase = 2,
  kUpdateProbability = 3,
  kUpdateProbabilityExact = 4,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalOp op = WalOp::kInsert;
  rel::Fact fact;
  double prob = 0.0;     // kInsert / kUpdateProbability
  math::Rational exact;  // kUpdateProbabilityExact
};

/// Non-owning view of a record for the append hot path: journaling a
/// mutation must not copy the fact (a vector of values, often heap-
/// backed) just to serialize it. `exact` may be null except for
/// kUpdateProbabilityExact.
struct WalRecordRef {
  uint64_t lsn = 0;
  WalOp op = WalOp::kInsert;
  const rel::Fact* fact = nullptr;
  double prob = 0.0;
  const math::Rational* exact = nullptr;
};

/// What replay found in the log.
struct ReplayStats {
  int64_t applied = 0;      // records applied to the store
  int64_t skipped = 0;      // records with lsn <= the snapshot's last_lsn
  bool tail_truncated = false;  // a torn/corrupt tail was cut off
  uint64_t last_lsn = 0;    // highest lsn seen (0 when the log is empty)
};

/// A per-instance write-ahead log of checksummed mutation records.
///
/// File layout: 16-byte header ("IPDBWAL1" | u32 version | u32 reserved)
/// followed by records, each framed as
///
///   u32 payload_len | u32 crc32c(payload) | payload
///
/// where the payload encodes lsn, op, the fact, and the probability (see
/// DESIGN.md). Appends are buffered in user space and reach the page
/// cache on Flush() — a `kill -9` after Flush loses nothing because the
/// kernel owns the bytes; only Sync() (fdatasync) survives power loss.
/// A crash mid-write leaves a torn tail: Replay detects it (short frame
/// or CRC mismatch), truncates the file back to the last good record,
/// and carries on — torn tails are expected, not errors. A record that
/// passes its CRC but fails to decode is real corruption and surfaces as
/// a kDataLoss Status (never an abort).
///
/// Single-writer, like the store it journals.
class Wal {
 public:
  static constexpr char kMagic[8] = {'I', 'P', 'D', 'B', 'W', 'A', 'L', '1'};
  static constexpr uint32_t kVersion = 1;
  /// Flush watermark: appends accumulate in user space until this many
  /// bytes are pending, amortizing write() syscalls (group commit).
  static constexpr size_t kFlushWatermarkBytes = 64 * 1024;
  /// A frame longer than this is treated as a torn/corrupt length field.
  static constexpr uint32_t kMaxPayloadBytes = 1u << 26;

  /// Opens (creating if absent) the log at `path`. A fresh or torn-
  /// at-the-header file is (re)initialized; an existing header is
  /// validated (kDataLoss on magic/version mismatch).
  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Serializes `record` into the append buffer (fault site
  /// "dur.wal.append"), framing and checksumming in place — no per-
  /// record allocation. Nothing reaches the file until
  /// Flush/MaybeFlush; `RollbackTo(mark)` with a pre-append `mark()`
  /// undoes a buffered append whose apply step failed.
  Status Append(const WalRecordRef& record);
  Status Append(const WalRecord& record);

  /// Current buffer position, for RollbackTo.
  size_t mark() const { return buffer_.size(); }
  void RollbackTo(size_t mark);

  /// Flushes the buffer when the group-commit watermark is reached.
  Status MaybeFlush();
  /// Writes all buffered bytes to the file (page cache).
  Status Flush();
  /// Flush + fdatasync: durable against power loss.
  Status Sync();

  /// Reads the log from the top, skipping records with lsn <= `min_lsn`
  /// (already folded into the snapshot) and handing the rest to `apply`
  /// in order. Truncates a torn tail in place. Fault site
  /// "dur.wal.replay". Stats are filled even on early error.
  Status Replay(uint64_t min_lsn,
                const std::function<Status(const WalRecord&)>& apply,
                ReplayStats* stats);

  /// Discards buffered appends and resets the file to just its header
  /// (checkpoint compaction), fdatasync'd.
  Status TruncateAll();

  const std::string& path() const { return path_; }
  /// Bytes currently buffered but not yet written.
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  Wal(std::string path, int fd, uint64_t end_offset);

  Status WriteBuffer();

  std::string path_;
  int fd_;
  /// Validated end of the file; appends land here.
  uint64_t end_offset_;
  std::string buffer_;
};

/// Encodes / decodes a record payload (exposed for tests).
void EncodeWalPayload(const WalRecordRef& record, std::string* out);
void EncodeWalPayload(const WalRecord& record, std::string* out);
bool DecodeWalPayload(const char* data, size_t size, WalRecord* out);

}  // namespace durability
}  // namespace ipdb

#endif  // IPDB_DURABILITY_WAL_H_
