#include "kc/cache.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/fault.h"

namespace ipdb {
namespace kc {

namespace {

/// Estimated resident bytes of a compiled artifact: node records plus
/// child-edge storage plus the fixed struct. Feeds the
/// kc.artifact_cache.bytes gauge; an estimate is enough to spot a cache
/// whose artifacts dwarf its entry count.
int64_t ArtifactApproxBytes(const CompiledQuery& artifact) {
  return static_cast<int64_t>(sizeof(CompiledQuery)) +
         static_cast<int64_t>(artifact.circuit.size()) * 48 +
         artifact.circuit.num_edges() *
             static_cast<int64_t>(sizeof(NodeId));
}

/// The thread's ambient cache owner (see ScopedCacheOwner).
thread_local CacheOwner g_cache_owner = 0;

}  // namespace

ScopedCacheOwner::ScopedCacheOwner(CacheOwner owner)
    : previous_(g_cache_owner) {
  g_cache_owner = owner;
}

ScopedCacheOwner::~ScopedCacheOwner() { g_cache_owner = previous_; }

CacheOwner CurrentCacheOwner() { return g_cache_owner; }

CompiledQueryCache::CompiledQueryCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void CompiledQueryCache::PublishGaugesLocked() {
  IPDB_OBS_GAUGE_SET("kc.artifact_cache.entries",
                     static_cast<int64_t>(lru_.size()));
  IPDB_OBS_GAUGE_SET("kc.artifact_cache.bytes", approx_bytes_);
}

void CompiledQueryCache::EvictLocked(std::list<Entry>::iterator it,
                                     bool invalidation) {
  CacheOwnerStats& stats = owners_[it->owner];
  stats.entries -= 1;
  stats.bytes -= it->bytes;
  stats.evictions += 1;
  approx_bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  IPDB_OBS_COUNT("kc.artifact_cache.evictions", 1);
  if (invalidation) IPDB_OBS_COUNT("kc.artifact_cache.invalidations", 1);
}

bool CompiledQueryCache::EvictOwnerLruLocked(CacheOwner owner) {
  for (auto it = lru_.end(); it != lru_.begin();) {
    --it;
    if (it->owner == owner) {
      EvictLocked(it, /*invalidation=*/false);
      return true;
    }
  }
  return false;
}

void CompiledQueryCache::EvictForCapacityLocked() {
  // Fairness: the owner with the most resident entries sheds its own
  // LRU entry when it holds more than capacity / live-owners; a cache
  // flooded by one tenant therefore converges to that tenant recycling
  // its own slots while small tenants' artifacts survive. When every
  // owner is at or below fair share, plain global LRU applies.
  int64_t live_owners = 0;
  CacheOwner heaviest = 0;
  int64_t heaviest_entries = 0;
  for (const auto& [owner, stats] : owners_) {
    if (stats.entries <= 0) continue;
    ++live_owners;
    if (stats.entries > heaviest_entries) {
      heaviest_entries = stats.entries;
      heaviest = owner;
    }
  }
  const int64_t fair_share =
      live_owners > 0 ? static_cast<int64_t>(capacity_) / live_owners : 0;
  if (live_owners > 1 && heaviest_entries > std::max<int64_t>(fair_share, 1) &&
      EvictOwnerLruLocked(heaviest)) {
    return;
  }
  EvictLocked(std::prev(lru_.end()), /*invalidation=*/false);
}

StatusOr<std::shared_ptr<const CompiledQuery>>
CompiledQueryCache::GetOrCompile(pqe::Lineage* lineage, pqe::NodeId root,
                                 bool* was_hit,
                                 const CompileOptions& options) {
  if (lineage == nullptr) return InvalidArgumentError("null lineage");
  if (root < 0 || root >= lineage->size()) {
    return InvalidArgumentError("lineage root out of range");
  }
  IPDB_FAULT_POINT("kc.cache.lookup");
  const CacheOwner owner = CurrentCacheOwner();
  const Key key = LineageFingerprint(*lineage, root);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      owners_[owner].hits += 1;
      IPDB_OBS_COUNT("kc.artifact_cache.hits", 1);
      if (was_hit != nullptr) *was_hit = true;
      return it->second->artifact;
    }
  }
  // Compile outside the lock: compilation can be expensive and other
  // queries should not stall behind it. A racing thread may compile the
  // same fingerprint concurrently; the second insert is a no-op.
  StatusOr<CompiledQuery> compiled = CompileLineage(lineage, root, options);
  if (!compiled.ok()) return compiled.status();
  IPDB_FAULT_POINT("kc.cache.insert");
  auto artifact =
      std::make_shared<const CompiledQuery>(std::move(compiled).value());
  const int64_t artifact_bytes = ArtifactApproxBytes(*artifact);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    misses_.fetch_add(1, std::memory_order_relaxed);
    owners_[owner].misses += 1;
    IPDB_OBS_COUNT("kc.artifact_cache.misses", 1);
    auto it = index_.find(key);
    if (it == index_.end()) {
      // Per-owner quota first: an owner over its byte/entry limit makes
      // room out of its own residency before touching the shared pool.
      // (A single artifact larger than the byte cap still inserts once
      // the owner holds nothing else — the cap bounds hoarding, it does
      // not reject individual queries.)
      auto limit_it = owner_limits_.find(owner);
      if (limit_it != owner_limits_.end()) {
        const OwnerLimits& limits = limit_it->second;
        CacheOwnerStats& stats = owners_[owner];
        while ((limits.max_entries > 0 &&
                stats.entries + 1 > limits.max_entries) ||
               (limits.max_bytes > 0 &&
                stats.bytes + artifact_bytes > limits.max_bytes)) {
          if (!EvictOwnerLruLocked(owner)) break;
        }
      }
      lru_.push_front(Entry{key, artifact, owner, artifact_bytes});
      index_.emplace(key, lru_.begin());
      CacheOwnerStats& stats = owners_[owner];
      stats.entries += 1;
      stats.bytes += artifact_bytes;
      approx_bytes_ += artifact_bytes;
      while (lru_.size() > capacity_) EvictForCapacityLocked();
    }
    PublishGaugesLocked();
  }
  if (was_hit != nullptr) *was_hit = false;
  return artifact;
}

bool CompiledQueryCache::EraseFingerprint(uint64_t hi, uint64_t lo) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(Key{hi, lo});
  if (it == index_.end()) return false;
  EvictLocked(it->second, /*invalidation=*/true);
  PublishGaugesLocked();
  return true;
}

bool CompiledQueryCache::ContainsFingerprint(uint64_t hi, uint64_t lo) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(Key{hi, lo}) != index_.end();
}

void CompiledQueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  owners_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  approx_bytes_ = 0;
  PublishGaugesLocked();
}

size_t CompiledQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

int64_t CompiledQueryCache::approx_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return approx_bytes_;
}

void CompiledQueryCache::SetOwnerLimits(CacheOwner owner, int64_t max_bytes,
                                        int64_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  owner_limits_[owner] = OwnerLimits{max_bytes, max_entries};
}

CacheOwnerStats CompiledQueryCache::OwnerStats(CacheOwner owner) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = owners_.find(owner);
  return it == owners_.end() ? CacheOwnerStats{} : it->second;
}

std::vector<std::pair<CacheOwner, CacheOwnerStats>>
CompiledQueryCache::AccountingSnapshot() const {
  std::vector<std::pair<CacheOwner, CacheOwnerStats>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(owners_.begin(), owners_.end());
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snapshot;
}

Status CompiledQueryCache::CheckAccounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t entries = 0;
  int64_t bytes = 0;
  for (const auto& [owner, stats] : owners_) {
    if (stats.entries < 0 || stats.bytes < 0) {
      return IPDB_STATUS(StatusCode::kInternal)
             << "cache owner " << owner << " has negative accounting ("
             << stats.entries << " entries, " << stats.bytes << " bytes)";
    }
    entries += stats.entries;
    bytes += stats.bytes;
  }
  if (entries != static_cast<int64_t>(lru_.size())) {
    return IPDB_STATUS(StatusCode::kInternal)
           << "cache accounting drift: owners claim " << entries
           << " entries, cache holds " << lru_.size();
  }
  if (bytes != approx_bytes_) {
    return IPDB_STATUS(StatusCode::kInternal)
           << "cache accounting drift: owners claim " << bytes
           << " bytes, cache holds " << approx_bytes_;
  }
  return Status::Ok();
}

CompiledQueryCache& GlobalCompiledQueryCache() {
  static CompiledQueryCache* cache = new CompiledQueryCache(128);
  return *cache;
}

}  // namespace kc
}  // namespace ipdb
