#include "kc/cache.h"

#include "obs/obs.h"
#include "util/fault.h"

namespace ipdb {
namespace kc {

namespace {

/// Estimated resident bytes of a compiled artifact: node records plus
/// child-edge storage plus the fixed struct. Feeds the
/// kc.artifact_cache.bytes gauge; an estimate is enough to spot a cache
/// whose artifacts dwarf its entry count.
int64_t ArtifactApproxBytes(const CompiledQuery& artifact) {
  return static_cast<int64_t>(sizeof(CompiledQuery)) +
         static_cast<int64_t>(artifact.circuit.size()) * 48 +
         artifact.circuit.num_edges() *
             static_cast<int64_t>(sizeof(NodeId));
}

}  // namespace

CompiledQueryCache::CompiledQueryCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

StatusOr<std::shared_ptr<const CompiledQuery>>
CompiledQueryCache::GetOrCompile(pqe::Lineage* lineage, pqe::NodeId root,
                                 bool* was_hit,
                                 const CompileOptions& options) {
  if (lineage == nullptr) return InvalidArgumentError("null lineage");
  if (root < 0 || root >= lineage->size()) {
    return InvalidArgumentError("lineage root out of range");
  }
  IPDB_FAULT_POINT("kc.cache.lookup");
  const Key key = LineageFingerprint(*lineage, root);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      IPDB_OBS_COUNT("kc.artifact_cache.hits", 1);
      if (was_hit != nullptr) *was_hit = true;
      return it->second->second;
    }
  }
  // Compile outside the lock: compilation can be expensive and other
  // queries should not stall behind it. A racing thread may compile the
  // same fingerprint concurrently; the second insert is a no-op.
  StatusOr<CompiledQuery> compiled = CompileLineage(lineage, root, options);
  if (!compiled.ok()) return compiled.status();
  IPDB_FAULT_POINT("kc.cache.insert");
  auto artifact =
      std::make_shared<const CompiledQuery>(std::move(compiled).value());
  const int64_t artifact_bytes = ArtifactApproxBytes(*artifact);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    misses_.fetch_add(1, std::memory_order_relaxed);
    IPDB_OBS_COUNT("kc.artifact_cache.misses", 1);
    auto it = index_.find(key);
    if (it == index_.end()) {
      lru_.emplace_front(key, artifact);
      index_.emplace(key, lru_.begin());
      approx_bytes_ += artifact_bytes;
      while (lru_.size() > capacity_) {
        approx_bytes_ -= ArtifactApproxBytes(*lru_.back().second);
        index_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        IPDB_OBS_COUNT("kc.artifact_cache.evictions", 1);
      }
    }
    IPDB_OBS_GAUGE_SET("kc.artifact_cache.entries",
                       static_cast<int64_t>(lru_.size()));
    IPDB_OBS_GAUGE_SET("kc.artifact_cache.bytes", approx_bytes_);
  }
  if (was_hit != nullptr) *was_hit = false;
  return artifact;
}

bool CompiledQueryCache::EraseFingerprint(uint64_t hi, uint64_t lo) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(Key{hi, lo});
  if (it == index_.end()) return false;
  approx_bytes_ -= ArtifactApproxBytes(*it->second->second);
  lru_.erase(it->second);
  index_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  IPDB_OBS_COUNT("kc.artifact_cache.evictions", 1);
  IPDB_OBS_COUNT("kc.artifact_cache.invalidations", 1);
  IPDB_OBS_GAUGE_SET("kc.artifact_cache.entries",
                     static_cast<int64_t>(lru_.size()));
  IPDB_OBS_GAUGE_SET("kc.artifact_cache.bytes", approx_bytes_);
  return true;
}

bool CompiledQueryCache::ContainsFingerprint(uint64_t hi, uint64_t lo) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(Key{hi, lo}) != index_.end();
}

void CompiledQueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  approx_bytes_ = 0;
  IPDB_OBS_GAUGE_SET("kc.artifact_cache.entries", 0);
  IPDB_OBS_GAUGE_SET("kc.artifact_cache.bytes", 0);
}

size_t CompiledQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

int64_t CompiledQueryCache::approx_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return approx_bytes_;
}

CompiledQueryCache& GlobalCompiledQueryCache() {
  static CompiledQueryCache* cache = new CompiledQueryCache(128);
  return *cache;
}

}  // namespace kc
}  // namespace ipdb
