#include "kc/cache.h"

namespace ipdb {
namespace kc {

CompiledQueryCache::CompiledQueryCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

StatusOr<std::shared_ptr<const CompiledQuery>>
CompiledQueryCache::GetOrCompile(pqe::Lineage* lineage, pqe::NodeId root,
                                 bool* was_hit) {
  if (lineage == nullptr) return InvalidArgumentError("null lineage");
  if (root < 0 || root >= lineage->size()) {
    return InvalidArgumentError("lineage root out of range");
  }
  const Key key = LineageFingerprint(*lineage, root);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      if (was_hit != nullptr) *was_hit = true;
      return it->second->second;
    }
  }
  // Compile outside the lock: compilation can be expensive and other
  // queries should not stall behind it. A racing thread may compile the
  // same fingerprint concurrently; the second insert is a no-op.
  StatusOr<CompiledQuery> compiled = CompileLineage(lineage, root);
  if (!compiled.ok()) return compiled.status();
  auto artifact =
      std::make_shared<const CompiledQuery>(std::move(compiled).value());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    auto it = index_.find(key);
    if (it == index_.end()) {
      lru_.emplace_front(key, artifact);
      index_.emplace(key, lru_.begin());
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  if (was_hit != nullptr) *was_hit = false;
  return artifact;
}

void CompiledQueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
}

size_t CompiledQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

int64_t CompiledQueryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t CompiledQueryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

CompiledQueryCache& GlobalCompiledQueryCache() {
  static CompiledQueryCache* cache = new CompiledQueryCache(128);
  return *cache;
}

}  // namespace kc
}  // namespace ipdb
