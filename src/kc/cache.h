#ifndef IPDB_KC_CACHE_H_
#define IPDB_KC_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "kc/compile.h"
#include "util/status.h"

namespace ipdb {
namespace kc {

/// An LRU cache of compiled d-DNNF artifacts keyed by the 128-bit
/// structural lineage fingerprint. Repeated queries whose grounding
/// yields a structurally identical lineage — the same query re-asked
/// with updated marginals, or per-tuple lineages that are isomorphic
/// across a candidate grid — skip compilation entirely and go straight
/// to circuit-linear evaluation. Thread-safe: pqe::RankedAnswers and
/// friends call into it from worker threads.
class CompiledQueryCache {
 public:
  explicit CompiledQueryCache(size_t capacity = 128);

  /// Returns the cached artifact for `root`'s fingerprint, compiling
  /// (and inserting) on a miss. `was_hit`, if non-null, reports whether
  /// the artifact came from the cache. Artifacts are shared_ptr-held,
  /// so an entry evicted mid-use stays alive for its holders.
  ///
  /// `options` govern the miss-path compilation only (a hit never
  /// consults them): a budget-aborted compile propagates its error and
  /// leaves the cache untouched, so a later retry with a bigger budget
  /// starts clean. Note a cache hit can satisfy a query whose budget
  /// would have rejected compiling it — the artifact is already paid
  /// for, which is the point of the cache.
  StatusOr<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      pqe::Lineage* lineage, pqe::NodeId root, bool* was_hit = nullptr,
      const CompileOptions& options = {});

  /// Drops the artifact with the given 128-bit lineage fingerprint, if
  /// resident; true when something was erased. This is the incremental-
  /// invalidation hook: a storage::TiStore whose fact set mutates hands
  /// the fingerprints of dependent artifacts here (via the store's
  /// artifact evictor), so only circuits grounded against the stale fact
  /// layout are recompiled — the rest of the cache survives data churn.
  bool EraseFingerprint(uint64_t hi, uint64_t lo);

  /// True when an artifact with this fingerprint is resident (does not
  /// touch LRU order; for tests and introspection).
  bool ContainsFingerprint(uint64_t hi, uint64_t lo) const;

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }

  // Counters are atomics, so these accessors are lock-free and safe to
  // poll while other threads are querying. The same tallies flow into
  // the global metrics registry ("kc.artifact_cache.*"), where they are
  // cumulative for the process (Clear resets the accessors below, never
  // the registry).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Estimated heap footprint of the resident artifacts (node/edge
  /// counts times their storage cost; not an allocator measurement).
  int64_t approx_bytes() const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.first ^ (key.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  using Entry = std::pair<Key, std::shared_ptr<const CompiledQuery>>;

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  int64_t approx_bytes_ = 0;  // guarded by mutex_
};

/// The process-wide cache behind pqe::QueryProbability.
CompiledQueryCache& GlobalCompiledQueryCache();

}  // namespace kc
}  // namespace ipdb

#endif  // IPDB_KC_CACHE_H_
