#ifndef IPDB_KC_CACHE_H_
#define IPDB_KC_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kc/compile.h"
#include "util/status.h"

namespace ipdb {
namespace kc {

/// Identifies who is charged for artifact-cache traffic. Owner 0 is the
/// anonymous/shared owner every probe uses by default; the query service
/// assigns each tenant a non-zero owner id and wraps query execution in
/// a ScopedCacheOwner so that hits, misses, resident entries and bytes
/// are attributed per tenant even though the cache itself is shared.
using CacheOwner = uint32_t;

/// Per-owner accounting of a shared CompiledQueryCache. `entries` and
/// `bytes` describe the owner's residency right now (an entry belongs to
/// the owner whose probe compiled it); the tallies are cumulative.
struct CacheOwnerStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

/// Installs `owner` as this thread's ambient cache owner for the scope's
/// lifetime (restores the previous owner on destruction; nests).
class ScopedCacheOwner {
 public:
  explicit ScopedCacheOwner(CacheOwner owner);
  ~ScopedCacheOwner();
  ScopedCacheOwner(const ScopedCacheOwner&) = delete;
  ScopedCacheOwner& operator=(const ScopedCacheOwner&) = delete;

 private:
  CacheOwner previous_;
};

/// The ambient owner installed by the innermost live ScopedCacheOwner on
/// this thread (0 when none is installed).
CacheOwner CurrentCacheOwner();

/// An LRU cache of compiled d-DNNF artifacts keyed by the 128-bit
/// structural lineage fingerprint. Repeated queries whose grounding
/// yields a structurally identical lineage — the same query re-asked
/// with updated marginals, or per-tuple lineages that are isomorphic
/// across a candidate grid — skip compilation entirely and go straight
/// to circuit-linear evaluation. Thread-safe: pqe::RankedAnswers and
/// friends call into it from worker threads.
class CompiledQueryCache {
 public:
  explicit CompiledQueryCache(size_t capacity = 128);

  /// Returns the cached artifact for `root`'s fingerprint, compiling
  /// (and inserting) on a miss. `was_hit`, if non-null, reports whether
  /// the artifact came from the cache. Artifacts are shared_ptr-held,
  /// so an entry evicted mid-use stays alive for its holders.
  ///
  /// `options` govern the miss-path compilation only (a hit never
  /// consults them): a budget-aborted compile propagates its error and
  /// leaves the cache untouched, so a later retry with a bigger budget
  /// starts clean. Note a cache hit can satisfy a query whose budget
  /// would have rejected compiling it — the artifact is already paid
  /// for, which is the point of the cache.
  StatusOr<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      pqe::Lineage* lineage, pqe::NodeId root, bool* was_hit = nullptr,
      const CompileOptions& options = {});

  /// Drops the artifact with the given 128-bit lineage fingerprint, if
  /// resident; true when something was erased. This is the incremental-
  /// invalidation hook: a storage::TiStore whose fact set mutates hands
  /// the fingerprints of dependent artifacts here (via the store's
  /// artifact evictor), so only circuits grounded against the stale fact
  /// layout are recompiled — the rest of the cache survives data churn.
  bool EraseFingerprint(uint64_t hi, uint64_t lo);

  /// True when an artifact with this fingerprint is resident (does not
  /// touch LRU order; for tests and introspection).
  bool ContainsFingerprint(uint64_t hi, uint64_t lo) const;

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }

  // --- Per-owner (tenant) accounting -------------------------------
  //
  // Every probe is charged to CurrentCacheOwner(): a hit or miss tallies
  // against the prober, and a miss-compiled artifact is *owned* by the
  // prober until it leaves the cache, so `entries`/`bytes` partition the
  // resident set exactly (CheckAccounting gates the invariant in CI).

  /// Caps an owner's resident footprint. Before inserting an artifact
  /// for an owner over either cap, the owner's own least-recently-used
  /// entries are evicted first — a tenant that floods the cache pays
  /// with its own residency, not its neighbours'. 0 = uncapped.
  void SetOwnerLimits(CacheOwner owner, int64_t max_bytes,
                      int64_t max_entries);

  /// Accounting for one owner (zeroes for an owner never seen).
  CacheOwnerStats OwnerStats(CacheOwner owner) const;

  /// Accounting for every owner with any recorded traffic, sorted by
  /// owner id.
  std::vector<std::pair<CacheOwner, CacheOwnerStats>> AccountingSnapshot()
      const;

  /// Verifies the cross-owner accounting invariant: per-owner entries
  /// sum to size() and per-owner bytes sum to approx_bytes(). Any drift
  /// (a misattributed eviction, a double charge) surfaces as kInternal.
  Status CheckAccounting() const;

  // Counters are atomics, so these accessors are lock-free and safe to
  // poll while other threads are querying. The same tallies flow into
  // the global metrics registry ("kc.artifact_cache.*"), where they are
  // cumulative for the process (Clear resets the accessors below, never
  // the registry).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Estimated heap footprint of the resident artifacts (node/edge
  /// counts times their storage cost; not an allocator measurement).
  int64_t approx_bytes() const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.first ^ (key.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const CompiledQuery> artifact;
    CacheOwner owner = 0;
    int64_t bytes = 0;
  };
  struct OwnerLimits {
    int64_t max_bytes = 0;    // 0 = uncapped
    int64_t max_entries = 0;  // 0 = uncapped
  };

  /// Removes one entry, updating global and per-owner accounting.
  /// `invalidation` distinguishes fingerprint invalidations from
  /// capacity evictions in the registry counters.
  void EvictLocked(std::list<Entry>::iterator it, bool invalidation);
  /// Evicts `owner`'s least-recently-used entry; false when the owner
  /// has no resident entries.
  bool EvictOwnerLruLocked(CacheOwner owner);
  /// Capacity eviction with cross-owner fairness: the owner holding the
  /// most entries sheds its own LRU entry when it is over its fair share
  /// of the capacity; otherwise the global LRU tail goes.
  void EvictForCapacityLocked();
  void PublishGaugesLocked();

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::unordered_map<CacheOwner, CacheOwnerStats> owners_;
  std::unordered_map<CacheOwner, OwnerLimits> owner_limits_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  int64_t approx_bytes_ = 0;  // guarded by mutex_
};

/// The process-wide cache behind pqe::QueryProbability.
CompiledQueryCache& GlobalCompiledQueryCache();

}  // namespace kc
}  // namespace ipdb

#endif  // IPDB_KC_CACHE_H_
