#include "kc/circuit.h"

#include <algorithm>

#include "util/check.h"

namespace ipdb {
namespace kc {

namespace {

/// Merges two sorted variable lists.
std::vector<int> MergeSupport(const std::vector<int>& a,
                              const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

uint64_t ComplementKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

Circuit::Circuit() {
  nodes_.push_back({CircuitKind::kTrue, -1, true, {}});
  nodes_.push_back({CircuitKind::kFalse, -1, true, {}});
}

void Circuit::Reserve(size_t expected_nodes) {
  nodes_.reserve(expected_nodes);
  intern_.reserve(expected_nodes);
}

uint64_t Circuit::NodeHashKey(const Node& node) const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(node.kind));
  mix(static_cast<uint64_t>(node.variable) + 0x9e3779b9u);
  mix(node.positive ? 0x7f4a7c15u : 0x2545f491u);
  for (NodeId c : node.children) mix(static_cast<uint64_t>(c));
  return h;
}

NodeId Circuit::Intern(Node node) {
  const uint64_t key = NodeHashKey(node);
  // Single-slot intern table: on a (vanishingly rare) 64-bit hash
  // collision the new node is simply appended without dedup — a
  // duplicate structure is a size cost, never a correctness one.
  auto [it, inserted] = intern_.try_emplace(key, kFalseId);
  if (!inserted) {
    const Node& existing = nodes_[it->second];
    if (existing.kind == node.kind && existing.variable == node.variable &&
        existing.positive == node.positive &&
        existing.children == node.children) {
      return it->second;
    }
  }
  num_edges_ += static_cast<int64_t>(node.children.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  if (inserted) it->second = id;
  return id;
}

NodeId Circuit::Literal(int variable, bool positive) {
  IPDB_CHECK_GE(variable, 0);
  // Dense dedup slot per (variable, sign) — literals are by far the
  // most frequently requested nodes during compilation.
  const size_t slot = static_cast<size_t>(variable) * 2 + (positive ? 0 : 1);
  if (slot >= literal_ids_.size()) literal_ids_.resize(slot + 8, NodeId{-1});
  if (literal_ids_[slot] >= 0) return literal_ids_[slot];
  num_variables_ = std::max(num_variables_, variable + 1);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({CircuitKind::kLiteral, variable, positive, {}});
  literal_ids_[slot] = id;
  return id;
}

const std::vector<int>& Circuit::Support(NodeId id) const {
  if (static_cast<size_t>(id) >= supports_computed_) {
    supports_.resize(nodes_.size());
    for (size_t i = supports_computed_; i < nodes_.size(); ++i) {
      const Node& node = nodes_[i];
      if (node.kind == CircuitKind::kLiteral) {
        supports_[i] = {node.variable};
      } else {
        for (NodeId c : node.children) {
          supports_[i] = supports_[i].empty()
                             ? supports_[c]
                             : MergeSupport(supports_[i], supports_[c]);
        }
      }
    }
    supports_computed_ = nodes_.size();
  }
  return supports_[id];
}

NodeId Circuit::MakeAnd(std::vector<NodeId> operands) {
  // No flattening of nested ANDs: the compiler's first-success chains
  // nest ANDs of ANDs, and keeping them nested makes chain construction
  // linear instead of quadratic (and keeps the certified negation nodes
  // visible to the determinism checker as direct conjuncts).
  std::vector<NodeId> kept;
  kept.reserve(operands.size());
  for (NodeId id : operands) {
    if (id == kFalseId) return kFalseId;
    if (id == kTrueId) continue;
    kept.push_back(id);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.empty()) return kTrueId;
  if (kept.size() == 1) return kept[0];
  return Intern({CircuitKind::kAnd, -1, true, std::move(kept)});
}

NodeId Circuit::MakeOr(std::vector<NodeId> operands) {
  std::vector<NodeId> kept;
  for (NodeId id : operands) {
    if (id == kFalseId) continue;
    kept.push_back(id);
  }
  if (kept.empty()) return kFalseId;
  if (kept.size() == 1) return kept[0];
  // A ⊤ child among others would make the gate non-deterministic; the
  // compiler never produces one (⊥ siblings were already dropped).
  for (NodeId id : kept) IPDB_CHECK_NE(id, kTrueId);
  return Intern({CircuitKind::kOr, -1, true, std::move(kept)});
}

NodeId Circuit::MakeDecision(int variable, NodeId hi, NodeId lo) {
  if (hi == lo) return hi;  // (v ∧ f) ∨ (¬v ∧ f) = f
  NodeId hi_branch = MakeAnd({Literal(variable, true), hi});
  NodeId lo_branch = MakeAnd({Literal(variable, false), lo});
  return MakeOr({hi_branch, lo_branch});
}

void Circuit::MarkComplements(NodeId a, NodeId b) {
  if (complements_.insert(ComplementKey(a, b)).second) {
    complement_partners_[a].push_back(b);
    complement_partners_[b].push_back(a);
  }
}

bool Circuit::AreComplements(NodeId a, NodeId b) const {
  if ((a == kTrueId && b == kFalseId) || (a == kFalseId && b == kTrueId)) {
    return true;
  }
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  if (na.kind == CircuitKind::kLiteral && nb.kind == CircuitKind::kLiteral &&
      na.variable == nb.variable && na.positive != nb.positive) {
    return true;
  }
  return complements_.count(ComplementKey(a, b)) > 0;
}

void Circuit::AppendConjuncts(NodeId id, std::vector<NodeId>* out) const {
  if (nodes_[id].kind == CircuitKind::kAnd) {
    for (NodeId c : nodes_[id].children) out->push_back(c);
  } else {
    out->push_back(id);
  }
}

bool Circuit::MutuallyExclusive(NodeId a, NodeId b) const {
  std::vector<NodeId> ca;
  std::vector<NodeId> cb;
  AppendConjuncts(a, &ca);
  AppendConjuncts(b, &cb);
  for (NodeId x : ca) {
    for (NodeId y : cb) {
      if (AreComplements(x, y)) return true;
    }
  }
  // A certified node may also be entailed without appearing as a
  // conjunct itself: if some registered partner of a conjunct on one
  // side has all of *its* conjuncts present on the other side, the
  // other side entails that partner and the children are exclusive.
  auto entails_partner_of = [this](const std::vector<NodeId>& conjuncts,
                                   const std::vector<NodeId>& other) {
    std::unordered_set<NodeId> other_set(other.begin(), other.end());
    for (NodeId x : conjuncts) {
      auto it = complement_partners_.find(x);
      if (it == complement_partners_.end()) continue;
      for (NodeId partner : it->second) {
        std::vector<NodeId> parts;
        AppendConjuncts(partner, &parts);
        bool contained = true;
        for (NodeId p : parts) {
          if (other_set.count(p) == 0) {
            contained = false;
            break;
          }
        }
        if (contained) return true;
      }
    }
    return false;
  };
  return entails_partner_of(ca, cb) || entails_partner_of(cb, ca);
}

namespace {

/// Reachable node set from `root` (ids are topologically ordered, so a
/// simple reverse sweep with a seen-mask suffices).
std::vector<NodeId> Reachable(const Circuit& circuit, NodeId root) {
  std::vector<bool> seen(static_cast<size_t>(root) + 1, false);
  seen[root] = true;
  std::vector<NodeId> out;
  for (NodeId id = root; id >= 0; --id) {
    if (!seen[id]) continue;
    out.push_back(id);
    for (NodeId c : circuit.children(id)) seen[c] = true;
  }
  return out;
}

}  // namespace

Status Circuit::CheckDecomposable(NodeId root) const {
  if (root < 0 || root >= size()) {
    return InvalidArgumentError("circuit root out of range");
  }
  for (NodeId id : Reachable(*this, root)) {
    if (nodes_[id].kind != CircuitKind::kAnd) continue;
    const std::vector<NodeId>& kids = nodes_[id].children;
    // Children supports are pairwise disjoint iff their sizes add up to
    // the size of the (deduplicated) union, which is the gate support.
    size_t total = 0;
    for (NodeId c : kids) total += Support(c).size();
    if (total != Support(id).size()) {
      return InternalError("AND gate " + std::to_string(id) +
                           " is not decomposable (children share variables)");
    }
  }
  return Status::Ok();
}

Status Circuit::CheckDeterministic(NodeId root) const {
  if (root < 0 || root >= size()) {
    return InvalidArgumentError("circuit root out of range");
  }
  for (NodeId id : Reachable(*this, root)) {
    if (nodes_[id].kind != CircuitKind::kOr) continue;
    const std::vector<NodeId>& kids = nodes_[id].children;
    for (size_t i = 0; i < kids.size(); ++i) {
      for (size_t j = i + 1; j < kids.size(); ++j) {
        if (!MutuallyExclusive(kids[i], kids[j])) {
          return InternalError(
              "OR gate " + std::to_string(id) +
              " has no exclusivity certificate for children " +
              std::to_string(kids[i]) + ", " + std::to_string(kids[j]));
        }
      }
    }
  }
  return Status::Ok();
}

bool Circuit::Evaluate(NodeId root, const std::vector<bool>& assignment) const {
  std::vector<bool> value(static_cast<size_t>(root) + 1, false);
  for (NodeId id = 0; id <= root; ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case CircuitKind::kTrue:
        value[id] = true;
        break;
      case CircuitKind::kFalse:
        value[id] = false;
        break;
      case CircuitKind::kLiteral:
        IPDB_CHECK_LT(static_cast<size_t>(node.variable), assignment.size());
        value[id] = assignment[node.variable] == node.positive;
        break;
      case CircuitKind::kAnd: {
        bool v = true;
        for (NodeId c : node.children) v = v && value[c];
        value[id] = v;
        break;
      }
      case CircuitKind::kOr: {
        bool v = false;
        for (NodeId c : node.children) v = v || value[c];
        value[id] = v;
        break;
      }
    }
  }
  return value[root];
}

std::string Circuit::ToString(NodeId id) const {
  const Node& node = nodes_[id];
  switch (node.kind) {
    case CircuitKind::kTrue:
      return "T";
    case CircuitKind::kFalse:
      return "F";
    case CircuitKind::kLiteral:
      return (node.positive ? "x" : "!x") + std::to_string(node.variable);
    case CircuitKind::kAnd:
    case CircuitKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += node.kind == CircuitKind::kAnd ? " & " : " | ";
        out += ToString(node.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace kc
}  // namespace ipdb
