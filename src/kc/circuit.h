#ifndef IPDB_KC_CIRCUIT_H_
#define IPDB_KC_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace ipdb {
namespace kc {

/// Knowledge compilation: d-DNNF circuits for compile-once /
/// evaluate-many probabilistic inference.
///
/// A d-DNNF circuit is a negation normal form DAG (negation only at
/// literals) whose AND gates are *decomposable* (children mention
/// pairwise disjoint variable sets) and whose OR gates are
/// *deterministic* (children are pairwise logically inconsistent).
/// These two properties make weighted model counting a single
/// bottom-up pass: AND multiplies, OR adds — over any commutative
/// semiring, so the same circuit answers double, exact-rational and
/// certified-interval queries, and reverse-mode differentiation yields
/// all tuple marginal sensitivities in one extra pass (evaluate.h).

using NodeId = int32_t;

enum class CircuitKind : uint8_t { kTrue, kFalse, kLiteral, kAnd, kOr };

/// A hash-consed d-DNNF circuit. Construction applies structural
/// simplification (constant folding, single-child collapse) and dedups
/// identical nodes, so equal ids mean equal structure. Children always have smaller ids than their parents;
/// `nodes` is therefore a topological order and evaluation is a single
/// linear scan.
///
/// The factory methods do not *enforce* decomposability/determinism
/// (tests build invalid circuits on purpose); `CheckDecomposable` and
/// `CheckDeterministic` are the validity gate, run by the compiler
/// under `CompileOptions::verify` and by the property tests on every
/// compile. Determinism of non-decision OR gates is certified
/// structurally: the compiler registers complement pairs (two nodes it
/// compiled from the same lineage node under opposite polarities) via
/// `MarkComplements`, and the checker accepts two OR children as
/// mutually exclusive iff they contain conjuncts that are opposite
/// literals or a registered complement pair.
class Circuit {
 public:
  Circuit();

  static constexpr NodeId kTrueId = 0;
  static constexpr NodeId kFalseId = 1;

  NodeId True() const { return kTrueId; }
  NodeId False() const { return kFalseId; }
  /// Pre-sizes the node store and intern table (the compiler calls this
  /// with its lineage size to avoid rehashing during construction).
  void Reserve(size_t expected_nodes);
  /// The literal `variable` (positive) or `¬variable` (negative).
  NodeId Literal(int variable, bool positive);
  /// Decomposable conjunction: folds constants and dedups children.
  /// Nested ANDs stay nested — the compiler's first-success chains nest
  /// linearly, and flattening them would be quadratic and would hide
  /// certified negation nodes from the determinism checker.
  NodeId MakeAnd(std::vector<NodeId> operands);
  /// Deterministic disjunction: drops ⊥ children, collapses singletons.
  /// Does not flatten (flattening would invalidate the per-gate
  /// exclusivity certificates).
  NodeId MakeOr(std::vector<NodeId> operands);
  /// The decision gate (v ∧ hi) ∨ (¬v ∧ lo) — deterministic by
  /// construction; requires v ∉ support(hi) ∪ support(lo).
  NodeId MakeDecision(int variable, NodeId hi, NodeId lo);

  /// Registers that `a` and `b` represent complementary functions
  /// (the compiler's structural determinism certificate).
  void MarkComplements(NodeId a, NodeId b);
  /// True for opposite literals, {⊤,⊥}, and registered pairs.
  bool AreComplements(NodeId a, NodeId b) const;

  CircuitKind kind(NodeId id) const { return nodes_[id].kind; }
  int variable(NodeId id) const { return nodes_[id].variable; }
  bool positive(NodeId id) const { return nodes_[id].positive; }
  const std::vector<NodeId>& children(NodeId id) const {
    return nodes_[id].children;
  }
  /// Sorted variables occurring under `id`. Computed lazily (one
  /// bottom-up sweep, memoized): neither compilation nor evaluation
  /// needs supports, only the validity checkers and tests do.
  const std::vector<int>& Support(NodeId id) const;

  int size() const { return static_cast<int>(nodes_.size()); }
  /// 1 + the largest variable index mentioned anywhere (0 if none):
  /// the minimum length of a probability vector for evaluation.
  int num_variables() const { return num_variables_; }
  /// Total child-edge count over all nodes (circuit size measure).
  int64_t num_edges() const { return num_edges_; }

  /// Verifies that every AND gate reachable from `root` has children
  /// with pairwise disjoint supports.
  Status CheckDecomposable(NodeId root) const;
  /// Verifies that every OR gate reachable from `root` has pairwise
  /// mutually exclusive children, using the structural certificates
  /// (opposite literals / registered complement pairs among conjuncts).
  Status CheckDeterministic(NodeId root) const;

  /// Evaluates under a complete assignment (for tests; probabilistic
  /// evaluation lives in evaluate.h).
  bool Evaluate(NodeId root, const std::vector<bool>& assignment) const;

  std::string ToString(NodeId id) const;

 private:
  struct Node {
    CircuitKind kind;
    int variable = -1;   // kLiteral only
    bool positive = true;
    std::vector<NodeId> children;
  };

  NodeId Intern(Node node);
  uint64_t NodeHashKey(const Node& node) const;
  /// The conjunct set of a node: its children if an AND, else {id}.
  /// Used by the determinism checker.
  void AppendConjuncts(NodeId id, std::vector<NodeId>* out) const;
  bool MutuallyExclusive(NodeId a, NodeId b) const;

  std::vector<Node> nodes_;
  /// Lazily filled support sets, valid for ids < supports_computed_
  /// (ids are topologically ordered, so one forward sweep extends it).
  mutable std::vector<std::vector<int>> supports_;
  mutable size_t supports_computed_ = 0;
  /// Hash → node id. Single-slot: a 64-bit collision skips dedup for
  /// the colliding node (duplicate structure, still a correct circuit).
  std::unordered_map<uint64_t, NodeId> intern_;
  std::unordered_set<uint64_t> complements_;  // key: (min<<32)|max
  /// Per-node list of registered complement partners — the robustness
  /// fallback for the checker when a certified node's conjuncts appear
  /// inline in a bigger AND rather than as the node itself.
  std::unordered_map<NodeId, std::vector<NodeId>> complement_partners_;
  /// Dense literal dedup: slot 2·v (positive) / 2·v+1 (negative).
  std::vector<NodeId> literal_ids_;
  int num_variables_ = 0;
  int64_t num_edges_ = 0;
};

}  // namespace kc
}  // namespace ipdb

#endif  // IPDB_KC_CIRCUIT_H_
