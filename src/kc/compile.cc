#include "kc/compile.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/check.h"
#include "util/fault.h"

namespace ipdb {
namespace kc {

namespace {

using pqe::Lineage;
using pqe::NodeKind;
using LineageId = pqe::NodeId;

class Compiler {
 public:
  Compiler(Lineage* lineage, CompileStats* stats, bool certify,
           const ExecutionBudget* budget)
      : lineage_(*lineage),
        stats_(*stats),
        certify_(certify),
        budget_(budget),
        max_depth_(budget != nullptr ? budget->max_recursion_depth : 0),
        meter_(budget, budget != nullptr ? budget->max_circuit_nodes : 0,
               "kc.compile circuit-node") {}

  Circuit&& TakeCircuit() { return std::move(circuit_); }

  /// OK, or the budget/fault error that aborted compilation. Once set,
  /// the compiler stops doing real work: every further Compile call
  /// returns a False placeholder and unwinds, so the (worthless) partial
  /// circuit is cheap to abandon.
  const Status& error() const { return error_; }

  void ReserveFor(size_t lineage_size) {
    circuit_.Reserve(lineage_size * 2 + 16);
    memo_.resize(lineage_size * 2 + 16, kUncompiled);
  }

  NodeId Compile(LineageId id, bool negated) {
    // Memo-free fast paths: constants and variables are already
    // canonical in the circuit (literal interning is the dedup).
    switch (lineage_.kind(id)) {
      case NodeKind::kTrue:
        return negated ? circuit_.False() : circuit_.True();
      case NodeKind::kFalse:
        return negated ? circuit_.True() : circuit_.False();
      case NodeKind::kVar:
        return circuit_.Literal(lineage_.variable(id), !negated);
      default:
        break;
    }
    // Aborted compilations unwind through here constantly; the False
    // placeholder keeps every caller's invariants (a valid NodeId)
    // without growing the circuit.
    if (!error_.ok()) return circuit_.False();
    // Dense memo indexed by (lineage id, polarity) — ids are small and
    // contiguous, and the lineage grows during compilation.
    const size_t key = (static_cast<size_t>(id) << 1) | (negated ? 1 : 0);
    if (key < memo_.size() && memo_[key] != kUncompiled) {
      ++stats_.cache_hits;
      return memo_[key];
    }
    NodeId result;
    if (lineage_.kind(id) == NodeKind::kNot) {
      result = Compile(lineage_.children(id)[0], !negated);
    } else {
      result = CompileGate(id, negated);
    }
    // Never memoize a placeholder produced while unwinding an abort.
    if (!error_.ok()) return circuit_.False();
    if (key >= memo_.size()) {
      memo_.resize(static_cast<size_t>(lineage_.size()) * 2, kUncompiled);
    }
    memo_[key] = result;
    return result;
  }

 private:
  /// The polarity-independent analysis of a gate: either its split into
  /// >1 variable-disjoint components (one hash-consed lineage node
  /// each), or the Shannon branch variable with both restrictions.
  /// Computed once per gate and shared by both polarities — the
  /// union-find and the Restrict calls are the expensive part of
  /// compilation, and the first-success chains need both polarities.
  struct GateStructure {
    std::vector<LineageId> component_ids;  // >= 2 entries iff decomposed
    int branch_var = -1;
    LineageId hi = -1;
    LineageId lo = -1;
  };

  const GateStructure& AnalyzeGate(LineageId id) {
    auto memo_it = structure_.find(id);
    if (memo_it != structure_.end()) return memo_it->second;

    const bool is_and = lineage_.kind(id) == NodeKind::kAnd;
    // Copy: compilation grows the lineage and may invalidate references.
    const std::vector<LineageId> children = lineage_.children(id);
    const int n = static_cast<int>(children.size());

    // Union-find over children via shared variables.
    std::vector<int> parent(n);
    for (int i = 0; i < n; ++i) parent[i] = i;
    auto find = [&parent](int x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::unordered_map<int, int> var_owner;
    for (int i = 0; i < n; ++i) {
      for (int v : lineage_.Support(children[i])) {
        auto [it, inserted] = var_owner.emplace(v, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    // Components in first-member order (deterministic output).
    std::vector<std::vector<LineageId>> components;
    std::unordered_map<int, int> component_of_root;
    for (int i = 0; i < n; ++i) {
      auto [it, inserted] = component_of_root.emplace(
          find(i), static_cast<int>(components.size()));
      if (inserted) components.emplace_back();
      components[it->second].push_back(children[i]);
    }

    GateStructure structure;
    if (components.size() > 1) {
      ++stats_.decompositions;
      // One (hash-consed) lineage node per component; compiling it hits
      // the (node, polarity) memo whenever the same sub-formula recurs.
      structure.component_ids.reserve(components.size());
      for (std::vector<LineageId>& members : components) {
        structure.component_ids.push_back(
            members.size() == 1
                ? members[0]
                : (is_and ? lineage_.MakeAnd(std::move(members))
                          : lineage_.MakeOr(std::move(members))));
      }
    } else {
      // Variable-connected: Shannon expansion on the variable shared by
      // the most children (the legacy solver's branching heuristic).
      std::unordered_map<int, int> frequency;
      for (LineageId child : children) {
        for (int v : lineage_.Support(child)) ++frequency[v];
      }
      int best_var = -1;
      int best_count = 0;
      for (const auto& [v, count] : frequency) {
        if (count > best_count || (count == best_count && v < best_var)) {
          best_var = v;
          best_count = count;
        }
      }
      IPDB_CHECK_GE(best_var, 0);
      ++stats_.decisions;
      structure.branch_var = best_var;
      structure.hi = lineage_.Restrict(id, best_var, true);
      structure.lo = lineage_.Restrict(id, best_var, false);
    }
    return structure_.emplace(id, std::move(structure)).first->second;
  }

  NodeId CompileGate(LineageId id, bool negated) {
    ++depth_;
    NodeId result = CompileGateGoverned(id, negated);
    --depth_;
    return result;
  }

  /// Budget/fault gatekeeper around the real gate compilation. Charges
  /// the meter with the circuit's growth since the last gate (so `used`
  /// tracks actual circuit nodes, amortized) plus one progress unit, and
  /// enforces the recursion-depth cap exactly.
  NodeId CompileGateGoverned(LineageId id, bool negated) {
    if (budget_ != nullptr) {
      if (max_depth_ > 0 && depth_ > max_depth_) {
        error_ = ResourceExhaustedError(
            "kc.compile recursion depth cap of " +
            std::to_string(max_depth_) + " exceeded");
        return circuit_.False();
      }
      const int64_t size_now = circuit_.size();
      const int64_t growth = size_now > charged_ ? size_now - charged_ : 0;
      charged_ = size_now > charged_ ? size_now : charged_;
      Status status = meter_.Charge(growth + 1);
      if (!status.ok()) {
        error_ = std::move(status);
        return circuit_.False();
      }
    }
    if (IPDB_FAULT_FIRED("kc.compile.node_alloc")) {
      error_ = fault::InjectedFault("kc.compile.node_alloc");
      return circuit_.False();
    }
    const bool is_and = lineage_.kind(id) == NodeKind::kAnd;
    // Copy the structure: recursive Compile calls can rehash the memo.
    GateStructure structure = AnalyzeGate(id);
    if (structure.component_ids.empty()) {
      // Shannon decision gate on the shared branch variable.
      if (IPDB_FAULT_FIRED("kc.compile.shannon")) {
        error_ = fault::InjectedFault("kc.compile.shannon");
        return circuit_.False();
      }
      return circuit_.MakeDecision(structure.branch_var,
                                   Compile(structure.hi, negated),
                                   Compile(structure.lo, negated));
    }
    if (is_and != negated) {
      // ∧ᵢ Cᵢ (plain AND) or ∧ᵢ ¬Cᵢ (negated OR): a decomposable AND.
      std::vector<NodeId> parts;
      parts.reserve(structure.component_ids.size());
      for (LineageId c : structure.component_ids) {
        parts.push_back(Compile(c, negated));
      }
      return circuit_.MakeAnd(std::move(parts));
    }
    // ∨ᵢ Cᵢ (plain OR) or ∨ᵢ ¬Cᵢ (negated AND): the deterministic
    // first-success chain over elements eᵢ with polarity `element_neg`
    // mapping eᵢ to Compile(Cᵢ, ·).
    const bool element_negated = is_and;  // negated AND: elements are ¬Cᵢ
    return OrChain(structure.component_ids, 0, structure.component_ids.size(),
                   element_negated)
        .first;
  }

  /// Balanced deterministic disjunction of the independent elements
  /// eᵢ = Compile(componentᵢ, element_negated ⊕ ·):
  ///   pos(L ∪ R) = pos(L) ∨ (neg(L) ∧ pos(R)),  neg(L ∪ R) = neg(L) ∧ neg(R)
  /// Returns (⋁ eᵢ, ⋀ ¬eᵢ); every (pos, neg) pair is registered as a
  /// complement pair, which is exactly the exclusivity certificate the
  /// determinism checker consumes.
  std::pair<NodeId, NodeId> OrChain(const std::vector<LineageId>& elements,
                                    size_t lo, size_t hi,
                                    bool element_negated) {
    if (hi - lo == 1) {
      NodeId pos = Compile(elements[lo], element_negated);
      NodeId neg = Compile(elements[lo], !element_negated);
      if (certify_) circuit_.MarkComplements(pos, neg);
      return {pos, neg};
    }
    const size_t mid = lo + (hi - lo) / 2;
    auto [pl, nl] = OrChain(elements, lo, mid, element_negated);
    auto [pr, nr] = OrChain(elements, mid, hi, element_negated);
    NodeId pos = circuit_.MakeOr({pl, circuit_.MakeAnd({nl, pr})});
    NodeId neg = circuit_.MakeAnd({nl, nr});
    if (certify_) circuit_.MarkComplements(pos, neg);
    return {pos, neg};
  }

  static constexpr NodeId kUncompiled = -1;

  Lineage& lineage_;
  CompileStats& stats_;
  const bool certify_;
  const ExecutionBudget* budget_;
  const int64_t max_depth_;
  BudgetMeter meter_;
  int64_t depth_ = 0;
  int64_t charged_ = 0;  // circuit size already billed to the meter
  Status error_;
  Circuit circuit_;
  std::vector<NodeId> memo_;
  std::unordered_map<LineageId, GateStructure> structure_;
};

}  // namespace

StatusOr<CompiledQuery> CompileLineage(pqe::Lineage* lineage,
                                       pqe::NodeId root,
                                       const CompileOptions& options) {
  if (lineage == nullptr) return InvalidArgumentError("null lineage");
  if (root < 0 || root >= lineage->size()) {
    return InvalidArgumentError("lineage root out of range");
  }
  IPDB_OBS_SPAN("kc.compile", "kc");
  IPDB_OBS_SCOPED_TIMER("kc.compile_ns");
  const ExecutionBudget* budget =
      options.budget != nullptr && options.budget->unlimited()
          ? nullptr
          : options.budget;
  if (budget != nullptr) {
    IPDB_RETURN_IF_ERROR(budget->CheckTime("kc.compile"));
  }
  CompiledQuery compiled;
  Compiler compiler(lineage, &compiled.stats, /*certify=*/options.verify,
                    budget);
  compiler.ReserveFor(static_cast<size_t>(lineage->size()));
  compiled.root = compiler.Compile(root, /*negated=*/false);
  if (!compiler.error().ok()) {
    IPDB_OBS_COUNT("kc.compile.aborted", 1);
    return IPDB_STATUS_FORWARD(compiler.error())
           << "d-DNNF compilation aborted";
  }
  compiled.circuit = compiler.TakeCircuit();
  compiled.num_variables = compiled.circuit.num_variables();
  compiled.stats.circuit_nodes = compiled.circuit.size();
  compiled.stats.circuit_edges = compiled.circuit.num_edges();
  if (options.verify) {
    Status decomposable = compiled.circuit.CheckDecomposable(compiled.root);
    if (!decomposable.ok()) return decomposable;
    Status deterministic = compiled.circuit.CheckDeterministic(compiled.root);
    if (!deterministic.ok()) return deterministic;
  }
  IPDB_OBS_COUNT("kc.compiles", 1);
  IPDB_OBS_COUNT("kc.compile.decisions", compiled.stats.decisions);
  IPDB_OBS_COUNT("kc.compile.decompositions", compiled.stats.decompositions);
  IPDB_OBS_COUNT("kc.compile.circuit_nodes", compiled.stats.circuit_nodes);
  return compiled;
}

std::pair<uint64_t, uint64_t> LineageFingerprint(const pqe::Lineage& lineage,
                                                 pqe::NodeId root) {
  // Two independent FNV-style deep hashes, memoized per node;
  // iterative post-order to keep the stack flat on deep formulas.
  struct Hashes {
    uint64_t a = 0;
    uint64_t b = 0;
    bool done = false;
  };
  std::vector<Hashes> memo(static_cast<size_t>(lineage.size()));
  std::vector<std::pair<pqe::NodeId, bool>> stack;  // (node, expanded)
  stack.emplace_back(root, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (memo[id].done) continue;
    if (!expanded) {
      stack.emplace_back(id, true);
      for (pqe::NodeId c : lineage.children(id)) {
        if (!memo[c].done) stack.emplace_back(c, false);
      }
      continue;
    }
    uint64_t a = 1469598103934665603ULL;
    uint64_t b = 0xcbf29ce484222325ULL ^ 0x9e3779b97f4a7c15ULL;
    auto mix = [&a, &b](uint64_t x) {
      a = (a ^ x) * 1099511628211ULL;
      b = (b ^ (x + 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
      b ^= b >> 29;
    };
    mix(static_cast<uint64_t>(lineage.kind(id)) + 1);
    mix(static_cast<uint64_t>(lineage.variable(id)) + 0x51ed270b);
    // AND/OR are commutative and hash-consing may store the children of
    // structurally equal formulas in different id orders across
    // lineages; mixing the child hashes in sorted order makes the
    // fingerprint order-insensitive (and still deep-structural).
    std::vector<std::pair<uint64_t, uint64_t>> child_hashes;
    child_hashes.reserve(lineage.children(id).size());
    for (pqe::NodeId c : lineage.children(id)) {
      child_hashes.emplace_back(memo[c].a, memo[c].b);
    }
    const pqe::NodeKind kind = lineage.kind(id);
    if (kind == pqe::NodeKind::kAnd || kind == pqe::NodeKind::kOr) {
      std::sort(child_hashes.begin(), child_hashes.end());
    }
    for (const auto& [ca, cb] : child_hashes) {
      mix(ca);
      mix(cb);
    }
    memo[id] = {a, b, true};
  }
  return {memo[root].a, memo[root].b};
}

}  // namespace kc
}  // namespace ipdb
