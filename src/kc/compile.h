#ifndef IPDB_KC_COMPILE_H_
#define IPDB_KC_COMPILE_H_

#include <cstdint>
#include <utility>

#include "kc/circuit.h"
#include "pqe/lineage.h"
#include "util/budget.h"
#include "util/status.h"

namespace ipdb {
namespace kc {

/// Top-down compilation of a pqe::Lineage DAG into a d-DNNF circuit,
/// using the same two inference rules as the legacy WMC solver
/// (pqe::ComputeProbability) but *materializing* the trace:
///
///  * independent-component decomposition — a gate whose children fall
///    into variable-disjoint groups becomes a decomposable AND (for
///    conjunctions) or a balanced "first-success" chain
///    C₁ ∨ (¬C₁ ∧ C₂) ∨ … (for disjunctions), deterministic because
///    later disjuncts contradict earlier ones;
///  * Shannon expansion on the most shared variable — a decision gate
///    (v ∧ f|ᵥ₌₁) ∨ (¬v ∧ f|ᵥ₌₀), deterministic and decomposable by
///    construction.
///
/// Negation is pushed to the literals during compilation by tracking a
/// polarity bit, so the memo is keyed on (hash-consed lineage node id,
/// polarity) — the component cache. Compilation is worst-case
/// exponential (PQE is #P-hard), but the resulting circuit answers
/// every subsequent probability / gradient / interval query in time
/// linear in its size (evaluate.h), which is the compile-once /
/// evaluate-many contract this subsystem exists for.
struct CompileStats {
  int64_t decisions = 0;       // Shannon decision gates introduced
  int64_t decompositions = 0;  // gates split into >1 independent component
  int64_t cache_hits = 0;      // (lineage node, polarity) memo hits
  int64_t circuit_nodes = 0;   // size of the resulting circuit
  int64_t circuit_edges = 0;
};

struct CompileOptions {
  /// Run CheckDecomposable/CheckDeterministic on the result and fail
  /// with an internal Status on violation (on in tests; off on the
  /// serving path, where the invariants hold by construction). Also
  /// makes the compiler register its complement certificates on the
  /// circuit — the structural evidence the determinism checker consumes.
  bool verify = false;

  /// Optional resource governor. Compilation is worst-case exponential,
  /// so a serving path sets `budget->max_circuit_nodes` /
  /// `max_recursion_depth` / `deadline` and gets kResourceExhausted /
  /// kDeadlineExceeded / kCancelled back instead of an unbounded
  /// compile. Checks are amortized (BudgetMeter): the clock is polled
  /// every few hundred charged nodes, and the node cap may overshoot by
  /// the handful of gates one compilation step creates. Null or
  /// unlimited = ungoverned, with no extra work on the hot path.
  const ExecutionBudget* budget = nullptr;
};

/// A compiled lineage: the circuit, its root, and how it was built.
/// `num_variables` is the minimum probability-vector length accepted by
/// the evaluators.
struct CompiledQuery {
  Circuit circuit;
  NodeId root = Circuit::kFalseId;
  int num_variables = 0;
  CompileStats stats;
};

/// Compiles `root` (within `lineage`, which grows: Shannon expansion
/// interns restricted nodes) into a d-DNNF circuit.
StatusOr<CompiledQuery> CompileLineage(pqe::Lineage* lineage,
                                       pqe::NodeId root,
                                       const CompileOptions& options = {});

/// A 128-bit structural fingerprint of the formula DAG under `root`:
/// equal for structurally identical formulas across different Lineage
/// objects (grounding the same query against the same fact layout twice
/// yields the same fingerprint). Keys the compiled-artifact cache.
std::pair<uint64_t, uint64_t> LineageFingerprint(const pqe::Lineage& lineage,
                                                 pqe::NodeId root);

}  // namespace kc
}  // namespace ipdb

#endif  // IPDB_KC_COMPILE_H_
