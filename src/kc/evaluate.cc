#include "kc/evaluate.h"

#include <string>

#include "math/bigint.h"
#include "util/fault.h"

namespace ipdb {
namespace kc {

Status ValidateProbabilities(const std::vector<double>& probs) {
  for (size_t i = 0; i < probs.size(); ++i) {
    // Negated comparison also rejects NaN.
    if (!(probs[i] >= 0.0 && probs[i] <= 1.0)) {
      return InvalidArgumentError(
          "probability " + std::to_string(i) + " is " +
          std::to_string(probs[i]) + ", outside [0, 1]");
    }
  }
  return Status::Ok();
}

StatusOr<math::Rational> EvaluateCircuitExact(
    const Circuit& circuit, NodeId root,
    const std::vector<math::Rational>& probs,
    const ExecutionBudget* budget) {
  IPDB_FAULT_POINT("kc.evaluate.exact");
  if (budget != nullptr && budget->unlimited()) budget = nullptr;
  if (budget == nullptr) {
    return EvaluateCircuit<math::Rational>(circuit, root, probs);
  }
  // The limb cap works by suppression: an over-cap product latches the
  // thread-local flag and yields zero, which keeps the rest of the pass
  // cheap (inline-zero arithmetic) while we unwind to this checkpoint.
  // Anything computed under a tripped cap is garbage by design, so the
  // flag is checked before the result is surfaced.
  math::ScopedLimbCap limb_cap(budget->max_bigint_limbs);
  BudgetMeter meter(budget, 0, "kc.evaluate.exact");
  StatusOr<math::Rational> result =
      EvaluateCircuit<math::Rational>(circuit, root, probs, &meter);
  if (!result.ok()) return result.status();
  IPDB_RETURN_IF_ERROR(limb_cap.ToStatus("kc.evaluate.exact"));
  return result;
}

}  // namespace kc
}  // namespace ipdb
