#include "kc/evaluate.h"

#include <string>

namespace ipdb {
namespace kc {

Status ValidateProbabilities(const std::vector<double>& probs) {
  for (size_t i = 0; i < probs.size(); ++i) {
    // Negated comparison also rejects NaN.
    if (!(probs[i] >= 0.0 && probs[i] <= 1.0)) {
      return InvalidArgumentError(
          "probability " + std::to_string(i) + " is " +
          std::to_string(probs[i]) + ", outside [0, 1]");
    }
  }
  return Status::Ok();
}

}  // namespace kc
}  // namespace ipdb
