#ifndef IPDB_KC_EVALUATE_H_
#define IPDB_KC_EVALUATE_H_

#include <vector>

#include "kc/circuit.h"
#include "math/rational.h"
#include "util/budget.h"
#include "util/interval.h"
#include "util/status.h"

namespace ipdb {
namespace kc {

/// Circuit-linear inference over a compiled d-DNNF: decomposable AND
/// multiplies, deterministic OR adds, a positive literal of variable v
/// contributes probs[v] and a negative one 1 − probs[v]. Because the
/// pass is generic over the value type, one compiled artifact serves
///
///  * `double`        — the fast serving path,
///  * `math::Rational`— exact end-to-end PQE (no rounding anywhere:
///                      grounding, compilation and evaluation are all
///                      exact), and
///  * `util::Interval`— certified enclosures from interval marginals,
///
/// plus reverse-mode differentiation (`EvaluateGradient`): all tuple
/// sensitivities ∂Pr/∂pᵢ in one forward + one backward traversal.

/// Additive/multiplicative identities of the value types accepted by
/// the evaluators.
template <typename T>
struct SemiringTraits;

template <>
struct SemiringTraits<double> {
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
};

template <>
struct SemiringTraits<math::Rational> {
  static math::Rational Zero() { return math::Rational(); }
  static math::Rational One() { return math::Rational(1); }
};

template <>
struct SemiringTraits<Interval> {
  static Interval Zero() { return Interval::Point(0.0); }
  static Interval One() { return Interval::Point(1.0); }
};

/// Rejects probability vectors with entries outside [0, 1] (NaN
/// included) — the shared input gate of the double-valued entry points.
Status ValidateProbabilities(const std::vector<double>& probs);

/// Budget-governed exact evaluation: EvaluateCircuit<math::Rational>
/// with `budget->max_bigint_limbs` enforced through a math::ScopedLimbCap
/// around the whole pass (exact weights grow without bound; the cap is
/// what keeps one adversarial query from eating the heap) and the
/// deadline/cancel token polled per node. Returns kResourceExhausted
/// when any intermediate exceeded the limb cap — partial over-cap values
/// are never returned. A null/unlimited budget is the plain exact pass.
StatusOr<math::Rational> EvaluateCircuitExact(
    const Circuit& circuit, NodeId root,
    const std::vector<math::Rational>& probs,
    const ExecutionBudget* budget = nullptr);

/// The weighted model count of the circuit under `probs` (marginal of
/// variable v at index v). Requires probs.size() >= num_variables().
/// Correct only on valid d-DNNF circuits (see the Check* methods); the
/// compiler guarantees validity by construction.
///
/// `meter`, when non-null, is charged one unit per circuit node so a
/// governed caller's deadline/cancel token is polled amortized during
/// long evaluations; a tripped meter aborts with its error. Null keeps
/// the loop exactly as cheap as before (one pointer test per node).
template <typename T>
StatusOr<T> EvaluateCircuit(const Circuit& circuit, NodeId root,
                            const std::vector<T>& probs,
                            BudgetMeter* meter = nullptr) {
  if (root < 0 || root >= circuit.size()) {
    return InvalidArgumentError("circuit root out of range");
  }
  if (static_cast<int>(probs.size()) < circuit.num_variables()) {
    return InvalidArgumentError(
        "probability vector shorter than the circuit's variable count");
  }
  std::vector<T> value(static_cast<size_t>(root) + 1,
                       SemiringTraits<T>::Zero());
  for (NodeId id = 0; id <= root; ++id) {
    if (meter != nullptr) {
      Status status = meter->Charge();
      if (!status.ok()) return status;
    }
    switch (circuit.kind(id)) {
      case CircuitKind::kTrue:
        value[id] = SemiringTraits<T>::One();
        break;
      case CircuitKind::kFalse:
        value[id] = SemiringTraits<T>::Zero();
        break;
      case CircuitKind::kLiteral: {
        const T& p = probs[circuit.variable(id)];
        value[id] =
            circuit.positive(id) ? p : SemiringTraits<T>::One() - p;
        break;
      }
      case CircuitKind::kAnd: {
        T product = SemiringTraits<T>::One();
        for (NodeId c : circuit.children(id)) product = product * value[c];
        value[id] = std::move(product);
        break;
      }
      case CircuitKind::kOr: {
        T sum = SemiringTraits<T>::Zero();
        for (NodeId c : circuit.children(id)) sum = sum + value[c];
        value[id] = std::move(sum);
        break;
      }
    }
  }
  return value[root];
}

/// All marginal sensitivities in one reverse pass: returns g with
/// g[v] = ∂ Pr[circuit] / ∂ probs[v], sized like `probs` (zero for
/// variables outside the root's support). Because Pr is
/// multilinear in the marginals, g[v] also equals
/// Pr(· | v = 1) − Pr(· | v = 0) — the *tuple influence* of fact v.
/// Requires a ring (subtraction): double or math::Rational.
template <typename T>
StatusOr<std::vector<T>> EvaluateGradient(const Circuit& circuit, NodeId root,
                                          const std::vector<T>& probs) {
  if (root < 0 || root >= circuit.size()) {
    return InvalidArgumentError("circuit root out of range");
  }
  if (static_cast<int>(probs.size()) < circuit.num_variables()) {
    return InvalidArgumentError(
        "probability vector shorter than the circuit's variable count");
  }
  const T zero = SemiringTraits<T>::Zero();
  const T one = SemiringTraits<T>::One();
  // Forward values.
  std::vector<T> value(static_cast<size_t>(root) + 1, zero);
  for (NodeId id = 0; id <= root; ++id) {
    switch (circuit.kind(id)) {
      case CircuitKind::kTrue:
        value[id] = one;
        break;
      case CircuitKind::kFalse:
        break;
      case CircuitKind::kLiteral: {
        const T& p = probs[circuit.variable(id)];
        value[id] = circuit.positive(id) ? p : one - p;
        break;
      }
      case CircuitKind::kAnd: {
        T product = one;
        for (NodeId c : circuit.children(id)) product = product * value[c];
        value[id] = std::move(product);
        break;
      }
      case CircuitKind::kOr: {
        T sum = zero;
        for (NodeId c : circuit.children(id)) sum = sum + value[c];
        value[id] = std::move(sum);
        break;
      }
    }
  }
  // Reverse pass: adjoint[n] = ∂ value[root] / ∂ value[n]. Ids are
  // topologically ordered, so one descending sweep suffices.
  std::vector<T> adjoint(static_cast<size_t>(root) + 1, zero);
  adjoint[root] = one;
  std::vector<T> prefix;
  std::vector<T> suffix;
  for (NodeId id = root; id >= 0; --id) {
    if (adjoint[id] == zero) continue;
    const std::vector<NodeId>& kids = circuit.children(id);
    switch (circuit.kind(id)) {
      case CircuitKind::kAnd: {
        // ∂(Π value[c_j]) / ∂ value[c_i] = Π_{j≠i} value[c_j], via
        // prefix/suffix products (division-free: values may be zero).
        const size_t k = kids.size();
        prefix.assign(k + 1, one);
        suffix.assign(k + 1, one);
        for (size_t i = 0; i < k; ++i) {
          prefix[i + 1] = prefix[i] * value[kids[i]];
        }
        for (size_t i = k; i > 0; --i) {
          suffix[i - 1] = suffix[i] * value[kids[i - 1]];
        }
        for (size_t i = 0; i < k; ++i) {
          adjoint[kids[i]] =
              adjoint[kids[i]] + adjoint[id] * prefix[i] * suffix[i + 1];
        }
        break;
      }
      case CircuitKind::kOr:
        for (NodeId c : kids) adjoint[c] = adjoint[c] + adjoint[id];
        break;
      default:
        break;
    }
  }
  // Literal adjoints fold into per-variable gradients: d(p)/dp = 1 for
  // a positive literal, d(1−p)/dp = −1 for a negative one.
  std::vector<T> gradient(probs.size(), zero);
  for (NodeId id = 0; id <= root; ++id) {
    if (circuit.kind(id) != CircuitKind::kLiteral) continue;
    T& g = gradient[circuit.variable(id)];
    if (circuit.positive(id)) {
      g = g + adjoint[id];
    } else {
      g = g - adjoint[id];
    }
  }
  return gradient;
}

}  // namespace kc
}  // namespace ipdb

#endif  // IPDB_KC_EVALUATE_H_
