#include "logic/classify.h"

#include "relational/instance.h"

namespace ipdb {
namespace logic {

bool IsConjunctiveQuery(const Formula& formula) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return true;
    case FormulaKind::kAnd:
    case FormulaKind::kExists:
      for (const Formula& child : formula.children()) {
        if (!IsConjunctiveQuery(child)) return false;
      }
      return true;
    default:
      return false;
  }
}

bool IsUnionOfConjunctiveQueries(const Formula& formula) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return true;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kExists:
      for (const Formula& child : formula.children()) {
        if (!IsUnionOfConjunctiveQueries(child)) return false;
      }
      return true;
    default:
      return false;
  }
}

bool IsSyntacticallyMonotone(const Formula& formula) {
  // Same constructor set as UCQ; kept separate because the two notions
  // diverge once built-in predicates are added.
  return IsUnionOfConjunctiveQueries(formula);
}

bool IsCqView(const FoView& view) {
  for (const FoView::Definition& def : view.definitions()) {
    if (!IsConjunctiveQuery(def.body)) return false;
  }
  return true;
}

bool IsUcqView(const FoView& view) {
  for (const FoView::Definition& def : view.definitions()) {
    if (!IsUnionOfConjunctiveQueries(def.body)) return false;
  }
  return true;
}

bool IsMonotoneView(const FoView& view) {
  for (const FoView::Definition& def : view.definitions()) {
    if (!IsSyntacticallyMonotone(def.body)) return false;
  }
  return true;
}

bool CheckMonotoneOnSample(const FoView& view,
                           const std::vector<rel::Instance>& instances) {
  for (const rel::Instance& a : instances) {
    for (const rel::Instance& b : instances) {
      if (!a.IsSubsetOf(b)) continue;
      rel::Instance va = view.ApplyOrDie(a);
      rel::Instance vb = view.ApplyOrDie(b);
      if (!va.IsSubsetOf(vb)) return false;
    }
  }
  return true;
}

}  // namespace logic
}  // namespace ipdb
