#ifndef IPDB_LOGIC_CLASSIFY_H_
#define IPDB_LOGIC_CLASSIFY_H_

#include "logic/formula.h"
#include "logic/view.h"

namespace ipdb {
namespace logic {

/// Syntactic query-class membership (Section 2, "First-Order Logic").
///
/// The classes are syntactic: a formula may be *equivalent* to a CQ
/// without being one. The paper's arguments (Prop. 6.4, Fig. 1) use
/// syntactic membership, which is what these predicates decide.

/// Conjunctive query: atoms, equalities, ⊤, conjunction and existential
/// quantification only.
bool IsConjunctiveQuery(const Formula& formula);

/// Union of conjunctive queries: CQ constructors plus disjunction and ⊥.
/// (Any formula built from these is equivalent to a disjunction of CQs.)
bool IsUnionOfConjunctiveQueries(const Formula& formula);

/// Positive-existential / syntactically monotone: no negation, no
/// implication, no biconditional, no universal quantifier, and no
/// *inequality* (negated equality is already excluded by "no negation").
/// Every such formula defines a monotone query (Section 6.1).
bool IsSyntacticallyMonotone(const Formula& formula);

/// View-level versions: every definition body satisfies the predicate.
bool IsCqView(const FoView& view);
bool IsUcqView(const FoView& view);
bool IsMonotoneView(const FoView& view);

/// Dynamic monotonicity check on a sample: verifies
/// D ⊆ D' ⇒ V(D) ⊆ V(D') for all given pairs with D ⊆ D'. Returns false
/// if any pair violates monotonicity (a certificate that the view is not
/// monotone); true means "monotone on this sample".
bool CheckMonotoneOnSample(const FoView& view,
                           const std::vector<rel::Instance>& instances);

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_CLASSIFY_H_
