#include "logic/evaluator.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "relational/fact.h"
#include "util/check.h"

namespace ipdb {
namespace logic {

namespace {

/// Shared evaluation state: the instance's fact set (hashed for O(1) atom
/// lookups), the schema, and the quantifier ground set.
struct EvalContext {
  const rel::Schema* schema;
  std::unordered_set<rel::Fact, rel::FactHash> facts;
  std::vector<rel::Value> domain;
  bool use_guards = true;
};

StatusOr<rel::Value> ResolveTerm(const Term& term,
                                 const Assignment& assignment) {
  if (term.is_const()) return term.value();
  auto it = assignment.find(term.var());
  if (it == assignment.end()) {
    return InvalidArgumentError("unbound variable: " + term.var());
  }
  return it->second;
}

/// Guard analysis: a *guard* for variable x in a positive context is a
/// relational atom that must hold (as a conjunct) for the formula to hold
/// and that mentions x. Then x can only take values occurring at x's
/// positions in matching facts — turning quantifier enumeration over the
/// whole domain into a scan of the instance, which is what makes the
/// paper's construction sentences (Claims 4.3, 5.2, 5.8) checkable in
/// practice.
///
/// Returns candidates for `var` implied by a guard in `formula`, or
/// nullopt if no guard was found. Soundness: the returned set is a
/// superset-filter — every value of `var` making the formula true (under
/// the current partial assignment) is in the set. Terms bound by the
/// current assignment are matched against fact values; unbound variables
/// other than `var` act as wildcards.
std::optional<std::vector<rel::Value>> GuardCandidates(
    const EvalContext& context, const Formula& formula,
    const std::string& var, const Assignment& assignment,
    const std::set<std::string>& shadowed = {}) {
  switch (formula.kind()) {
    case FormulaKind::kAtom: {
      // Does the atom mention `var`?
      bool mentions = false;
      for (const Term& t : formula.terms()) {
        if (t.is_var() && t.var() == var) mentions = true;
      }
      if (!mentions) return std::nullopt;
      std::vector<rel::Value> candidates;
      for (const rel::Fact& fact : context.facts) {
        if (fact.relation() != formula.relation()) continue;
        if (fact.arity() != static_cast<int>(formula.terms().size())) {
          continue;
        }
        bool matches = true;
        std::optional<rel::Value> var_value;
        for (int i = 0; i < fact.arity() && matches; ++i) {
          const Term& t = formula.terms()[i];
          if (t.is_const()) {
            matches = fact.args()[i] == t.value();
          } else if (t.var() == var) {
            if (var_value.has_value()) {
              matches = fact.args()[i] == *var_value;
            } else {
              var_value = fact.args()[i];
            }
          } else if (shadowed.count(t.var()) == 0) {
            // Outer bindings constrain the match — but only for
            // variables not re-bound by a quantifier between here and
            // the guard query (those are wildcards).
            auto it = assignment.find(t.var());
            if (it != assignment.end()) {
              matches = fact.args()[i] == it->second;
            }
          }
        }
        if (matches && var_value.has_value()) {
          candidates.push_back(*var_value);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      return candidates;
    }
    case FormulaKind::kAnd: {
      // Any guarded conjunct guards the conjunction; prefer the smallest
      // candidate set found.
      std::optional<std::vector<rel::Value>> best;
      for (const Formula& child : formula.children()) {
        std::optional<std::vector<rel::Value>> guard =
            GuardCandidates(context, child, var, assignment, shadowed);
        if (guard.has_value() &&
            (!best.has_value() || guard->size() < best->size())) {
          best = std::move(guard);
        }
      }
      return best;
    }
    case FormulaKind::kOr: {
      // Every disjunct must guard; candidates are the union.
      std::vector<rel::Value> all;
      for (const Formula& child : formula.children()) {
        std::optional<std::vector<rel::Value>> guard =
            GuardCandidates(context, child, var, assignment, shadowed);
        if (!guard.has_value()) return std::nullopt;
        all.insert(all.end(), guard->begin(), guard->end());
      }
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      return all;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // ∃y ψ true at x needs ψ true for some y; ∀y ψ true at x needs ψ
      // true for every y, hence for some y. Either way x satisfies ψ's
      // guard (computed with y as a wildcard — a sound superset).
      if (formula.quantified_var() == var) return std::nullopt;
      std::set<std::string> inner = shadowed;
      inner.insert(formula.quantified_var());
      return GuardCandidates(context, formula.children()[0], var,
                             assignment, inner);
    }
    default:
      return std::nullopt;
  }
}

/// Co-guard analysis for universal quantification: candidates outside
/// which the body is guaranteed TRUE (so ∀ only needs to check the
/// candidates). Succeeds for bodies of the shapes
///   Implies(γ, δ)   — body false requires γ true, so guard(γ);
///   Or(…, ¬ψ, …)    — body false requires ψ true, so guard(ψ);
///   ¬ψ              — likewise.
std::optional<std::vector<rel::Value>> CoGuardCandidates(
    const EvalContext& context, const Formula& formula,
    const std::string& var, const Assignment& assignment,
    const std::set<std::string>& shadowed = {}) {
  switch (formula.kind()) {
    case FormulaKind::kImplies:
      return GuardCandidates(context, formula.children()[0], var,
                             assignment, shadowed);
    case FormulaKind::kNot:
      return GuardCandidates(context, formula.children()[0], var,
                             assignment, shadowed);
    case FormulaKind::kOr: {
      for (const Formula& child : formula.children()) {
        if (child.kind() == FormulaKind::kNot) {
          std::optional<std::vector<rel::Value>> guard = GuardCandidates(
              context, child.children()[0], var, assignment, shadowed);
          if (guard.has_value()) return guard;
        }
      }
      return std::nullopt;
    }
    case FormulaKind::kAnd: {
      // False requires some conjunct false: union of co-guards, all
      // conjuncts must have one (a conjunct without a co-guard could be
      // falsified anywhere).
      std::vector<rel::Value> all;
      for (const Formula& child : formula.children()) {
        std::optional<std::vector<rel::Value>> guard =
            CoGuardCandidates(context, child, var, assignment, shadowed);
        if (!guard.has_value()) return std::nullopt;
        all.insert(all.end(), guard->begin(), guard->end());
      }
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      return all;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // ∃y ψ false at x means ψ false for every y (in particular one);
      // ∀y ψ false at x means ψ false for some y. Either way x lies in
      // ψ's co-guard computed with y as a wildcard.
      if (formula.quantified_var() == var) return std::nullopt;
      std::set<std::string> inner = shadowed;
      inner.insert(formula.quantified_var());
      return CoGuardCandidates(context, formula.children()[0], var,
                               assignment, inner);
    }
    default:
      return std::nullopt;
  }
}

StatusOr<bool> EvalNode(const EvalContext& context, const Formula& formula,
                        Assignment* assignment) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      if (!context.schema->has_relation(formula.relation()) ||
          context.schema->arity(formula.relation()) !=
              static_cast<int>(formula.terms().size())) {
        return InvalidArgumentError("atom does not match schema: " +
                                    formula.ToString(*context.schema));
      }
      std::vector<rel::Value> args;
      args.reserve(formula.terms().size());
      for (const Term& t : formula.terms()) {
        StatusOr<rel::Value> v = ResolveTerm(t, *assignment);
        if (!v.ok()) return v.status();
        args.push_back(std::move(v).value());
      }
      return context.facts.count(rel::Fact(formula.relation(),
                                           std::move(args))) != 0;
    }
    case FormulaKind::kEquals: {
      StatusOr<rel::Value> lhs = ResolveTerm(formula.terms()[0], *assignment);
      if (!lhs.ok()) return lhs.status();
      StatusOr<rel::Value> rhs = ResolveTerm(formula.terms()[1], *assignment);
      if (!rhs.ok()) return rhs.status();
      return lhs.value() == rhs.value();
    }
    case FormulaKind::kNot: {
      StatusOr<bool> inner = EvalNode(context, formula.children()[0],
                                      assignment);
      if (!inner.ok()) return inner.status();
      return !inner.value();
    }
    case FormulaKind::kAnd: {
      for (const Formula& child : formula.children()) {
        StatusOr<bool> v = EvalNode(context, child, assignment);
        if (!v.ok()) return v.status();
        if (!v.value()) return false;
      }
      return true;
    }
    case FormulaKind::kOr: {
      for (const Formula& child : formula.children()) {
        StatusOr<bool> v = EvalNode(context, child, assignment);
        if (!v.ok()) return v.status();
        if (v.value()) return true;
      }
      return false;
    }
    case FormulaKind::kImplies: {
      StatusOr<bool> premise = EvalNode(context, formula.children()[0],
                                        assignment);
      if (!premise.ok()) return premise.status();
      if (!premise.value()) return true;
      return EvalNode(context, formula.children()[1], assignment);
    }
    case FormulaKind::kIff: {
      StatusOr<bool> lhs = EvalNode(context, formula.children()[0],
                                    assignment);
      if (!lhs.ok()) return lhs.status();
      StatusOr<bool> rhs = EvalNode(context, formula.children()[1],
                                    assignment);
      if (!rhs.ok()) return rhs.status();
      return lhs.value() == rhs.value();
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const bool is_exists = formula.kind() == FormulaKind::kExists;
      const std::string& var = formula.quantified_var();
      const Formula& body = formula.children()[0];
      // Guard analysis: restrict the iteration to the values that can
      // matter. For ∃ these are the only values that can make the body
      // true; for ∀ the body is vacuously true outside the co-guard set.
      std::optional<std::vector<rel::Value>> guard;
      if (context.use_guards) {
        guard = is_exists
                    ? GuardCandidates(context, body, var, *assignment)
                    : CoGuardCandidates(context, body, var, *assignment);
      }
      const std::vector<rel::Value>& domain =
          guard.has_value() ? *guard : context.domain;
      // Save and restore any outer binding of the same name.
      auto outer = assignment->find(var);
      bool had_outer = outer != assignment->end();
      rel::Value saved = had_outer ? outer->second : rel::Value();
      for (const rel::Value& candidate : domain) {
        (*assignment)[var] = candidate;
        StatusOr<bool> v = EvalNode(context, body, assignment);
        if (!v.ok()) return v.status();
        if (v.value() == is_exists) {
          if (had_outer) {
            (*assignment)[var] = saved;
          } else {
            assignment->erase(var);
          }
          return is_exists;
        }
      }
      if (had_outer) {
        (*assignment)[var] = saved;
      } else {
        assignment->erase(var);
      }
      return !is_exists;
    }
  }
  return InternalError("unhandled formula kind");
}

EvalContext MakeContext(const rel::Instance& instance,
                        const rel::Schema& schema, const Formula& formula,
                        const Assignment& assignment) {
  EvalContext context;
  context.schema = &schema;
  context.facts.reserve(instance.facts().size() * 2 + 1);
  for (const rel::Fact& f : instance.facts()) context.facts.insert(f);

  std::set<rel::Value> domain;
  for (const rel::Value& v : instance.ActiveDomain()) domain.insert(v);
  for (const rel::Value& v : formula.Constants()) domain.insert(v);
  for (const auto& [name, value] : assignment) domain.insert(value);
  // Fresh generic elements, one per quantifier level, distinct from
  // everything above. Symbols beginning with '$' are reserved for this.
  int rank = formula.QuantifierRank();
  for (int i = 0; i < rank; ++i) {
    domain.insert(rel::Value::Symbol("$fresh" + std::to_string(i)));
  }
  context.domain.assign(domain.begin(), domain.end());
  return context;
}

}  // namespace

std::vector<rel::Value> QuantifierDomain(const rel::Instance& instance,
                                         const Formula& formula) {
  EvalContext context = MakeContext(instance, rel::Schema(), formula, {});
  return context.domain;
}

StatusOr<bool> Evaluate(const rel::Instance& instance,
                        const rel::Schema& schema, const Formula& formula,
                        const Assignment& assignment,
                        const EvalOptions& options) {
  EvalContext context = MakeContext(instance, schema, formula, assignment);
  context.use_guards = options.use_guards;
  Assignment working = assignment;
  return EvalNode(context, formula, &working);
}

bool Satisfies(const rel::Instance& instance, const rel::Schema& schema,
               const Formula& sentence) {
  StatusOr<bool> result = Evaluate(instance, schema, sentence);
  IPDB_CHECK(result.ok()) << result.status().ToString() << " in sentence "
                          << sentence.ToString(schema);
  return result.value();
}

StatusOr<std::vector<std::vector<rel::Value>>> EvaluateQuery(
    const rel::Instance& instance, const rel::Schema& schema,
    const Formula& formula, const std::vector<std::string>& free_vars) {
  // Verify coverage of free variables.
  std::vector<std::string> actual_free = formula.FreeVariables();
  for (const std::string& v : actual_free) {
    if (std::find(free_vars.begin(), free_vars.end(), v) ==
        free_vars.end()) {
      return InvalidArgumentError("free variable " + v +
                                  " not covered by the head");
    }
  }

  EvalContext context = MakeContext(instance, schema, formula, {});
  // Output candidates: adom ∪ consts only (no fresh elements) — the
  // output-safety convention. Fresh elements stay in context.domain for
  // the inner quantifiers.
  std::set<rel::Value> candidate_set;
  for (const rel::Value& v : instance.ActiveDomain()) {
    candidate_set.insert(v);
  }
  for (const rel::Value& v : formula.Constants()) candidate_set.insert(v);
  std::vector<rel::Value> all_candidates(candidate_set.begin(),
                                         candidate_set.end());

  std::vector<std::vector<rel::Value>> results;
  if (free_vars.empty()) {
    Assignment assignment;
    StatusOr<bool> v = EvalNode(context, formula, &assignment);
    if (!v.ok()) return v.status();
    if (v.value()) results.push_back({});
    return results;
  }
  if (all_candidates.empty()) return results;

  // Per-variable candidate lists, narrowed by guard analysis where an
  // atom pins the variable to values occurring in the instance.
  std::vector<std::vector<rel::Value>> per_var(free_vars.size());
  for (size_t i = 0; i < free_vars.size(); ++i) {
    std::optional<std::vector<rel::Value>> guard =
        GuardCandidates(context, formula, free_vars[i], {});
    if (guard.has_value()) {
      // Guards may surface fresh/constant values not in the output
      // convention set; intersect to stay output-safe.
      for (const rel::Value& v : *guard) {
        if (candidate_set.count(v) != 0) per_var[i].push_back(v);
      }
    } else {
      per_var[i] = all_candidates;
    }
    if (per_var[i].empty()) return results;
  }

  // Enumerate the product of the candidate lists with an odometer.
  std::vector<size_t> odometer(free_vars.size(), 0);
  Assignment assignment;
  while (true) {
    for (size_t i = 0; i < free_vars.size(); ++i) {
      assignment[free_vars[i]] = per_var[i][odometer[i]];
    }
    StatusOr<bool> v = EvalNode(context, formula, &assignment);
    if (!v.ok()) return v.status();
    if (v.value()) {
      std::vector<rel::Value> tuple;
      tuple.reserve(free_vars.size());
      for (size_t i = 0; i < free_vars.size(); ++i) {
        tuple.push_back(per_var[i][odometer[i]]);
      }
      results.push_back(std::move(tuple));
    }
    // Advance odometer.
    size_t pos = 0;
    while (pos < odometer.size()) {
      if (++odometer[pos] < per_var[pos].size()) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == odometer.size()) break;
  }
  return results;
}

}  // namespace logic
}  // namespace ipdb
