#ifndef IPDB_LOGIC_EVALUATOR_H_
#define IPDB_LOGIC_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "util/status.h"

namespace ipdb {
namespace logic {

/// Model checking of first-order formulas over database instances with the
/// paper's semantics: quantifiers range over the *countably infinite*
/// universe U.
///
/// Since U is infinite, quantification cannot be enumerated directly.
/// We use the standard genericity argument: elements of U outside
/// adom(D) ∪ consts(φ) are pairwise interchangeable (the relations of D
/// cannot distinguish them, and only equality can tell them apart), so a
/// quantifier is faithfully decided by ranging over
///
///     adom(D) ∪ consts(φ) ∪ { q fresh pairwise-distinct elements },
///
/// where q is the quantifier rank of φ. Fresh elements are reserved
/// symbols "$fresh<i>" — user code must not use symbols starting with
/// '$'. This makes sentences like ∃x ¬R(x) true over finite instances,
/// exactly as the paper's semantics require.
///
/// A variable assignment maps variable names to universe elements.
using Assignment = std::map<std::string, rel::Value>;

/// Evaluation knobs. `use_guards` toggles the guard/co-guard quantifier
/// pruning — on by default; off exists for correctness cross-checks and
/// the ablation benchmark (bench/guard_ablation via fo_eval_bench).
struct EvalOptions {
  bool use_guards = true;
};

/// Decides D ⊨ φ[assignment]. `formula`'s free variables must all be bound
/// by `assignment`; otherwise an error is returned. Fails also when an
/// atom does not match the schema.
StatusOr<bool> Evaluate(const rel::Instance& instance,
                        const rel::Schema& schema, const Formula& formula,
                        const Assignment& assignment = {},
                        const EvalOptions& options = {});

/// Decides D ⊨ φ for a sentence (no free variables). Aborts on malformed
/// input; use `Evaluate` for recoverable handling. This is the hot-path
/// entry point used by the construction verifiers.
bool Satisfies(const rel::Instance& instance, const rel::Schema& schema,
               const Formula& sentence);

/// Computes the quantifier ground set for (instance, formula):
/// adom(instance) ∪ consts(formula) ∪ fresh elements (quantifier rank
/// many). Exposed for the view evaluator and for tests.
std::vector<rel::Value> QuantifierDomain(const rel::Instance& instance,
                                         const Formula& formula);

/// All tuples ā over adom(instance) ∪ consts(formula) such that
/// D ⊨ φ(ā), where the i-th position of each tuple binds `free_vars[i]`.
/// `free_vars` must cover the formula's free variables. This is the
/// relation defined by an FO formula in a view (Section 2, "Query
/// Semantics"); outputs are restricted to the active domain plus
/// constants, the output-safety convention documented in DESIGN.md.
StatusOr<std::vector<std::vector<rel::Value>>> EvaluateQuery(
    const rel::Instance& instance, const rel::Schema& schema,
    const Formula& formula, const std::vector<std::string>& free_vars);

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_EVALUATOR_H_
