#include "logic/formula.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace logic {

namespace internal_formula {
// (Node is defined in the header.)
}  // namespace internal_formula

using internal_formula::Node;

Formula MakeFormula(Node node) {
  return Formula(std::make_shared<const Node>(std::move(node)));
}

Formula::Formula() { *this = Truth(); }

Formula Truth() {
  Node n;
  n.kind = FormulaKind::kTrue;
  return MakeFormula(std::move(n));
}

Formula Falsity() {
  Node n;
  n.kind = FormulaKind::kFalse;
  return MakeFormula(std::move(n));
}

Formula Atom(rel::RelationId relation, std::vector<Term> terms) {
  Node n;
  n.kind = FormulaKind::kAtom;
  n.relation = relation;
  n.terms = std::move(terms);
  return MakeFormula(std::move(n));
}

Formula Eq(Term lhs, Term rhs) {
  Node n;
  n.kind = FormulaKind::kEquals;
  n.terms = {std::move(lhs), std::move(rhs)};
  return MakeFormula(std::move(n));
}

Formula Not(Formula operand) {
  Node n;
  n.kind = FormulaKind::kNot;
  n.children = {std::move(operand)};
  return MakeFormula(std::move(n));
}

Formula And(std::vector<Formula> operands) {
  Node n;
  n.kind = FormulaKind::kAnd;
  n.children = std::move(operands);
  return MakeFormula(std::move(n));
}

Formula Or(std::vector<Formula> operands) {
  Node n;
  n.kind = FormulaKind::kOr;
  n.children = std::move(operands);
  return MakeFormula(std::move(n));
}

Formula And(Formula a, Formula b) {
  return And(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Or(Formula a, Formula b) {
  return Or(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Implies(Formula premise, Formula conclusion) {
  Node n;
  n.kind = FormulaKind::kImplies;
  n.children = {std::move(premise), std::move(conclusion)};
  return MakeFormula(std::move(n));
}

Formula Iff(Formula a, Formula b) {
  Node n;
  n.kind = FormulaKind::kIff;
  n.children = {std::move(a), std::move(b)};
  return MakeFormula(std::move(n));
}

Formula Exists(std::string var, Formula body) {
  Node n;
  n.kind = FormulaKind::kExists;
  n.quantified_var = std::move(var);
  n.children = {std::move(body)};
  return MakeFormula(std::move(n));
}

Formula Forall(std::string var, Formula body) {
  Node n;
  n.kind = FormulaKind::kForall;
  n.quantified_var = std::move(var);
  n.children = {std::move(body)};
  return MakeFormula(std::move(n));
}

Formula ExistsAll(const std::vector<std::string>& vars, Formula body) {
  Formula result = std::move(body);
  for (size_t i = vars.size(); i-- > 0;) {
    result = Exists(vars[i], std::move(result));
  }
  return result;
}

Formula ForallAll(const std::vector<std::string>& vars, Formula body) {
  Formula result = std::move(body);
  for (size_t i = vars.size(); i-- > 0;) {
    result = Forall(vars[i], std::move(result));
  }
  return result;
}

namespace {

// Distinct fresh variable names "<var>$k" for counting quantifiers.
std::vector<std::string> CountingVars(const std::string& var, int count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (int i = 0; i < count; ++i) {
    names.push_back(var + "$" + std::to_string(i));
  }
  return names;
}

}  // namespace

Formula AtLeast(int count, const std::string& var, const Formula& body) {
  IPDB_CHECK_GE(count, 0);
  if (count == 0) return Truth();
  std::vector<std::string> names = CountingVars(var, count);
  std::vector<Formula> conjuncts;
  for (int i = 0; i < count; ++i) {
    conjuncts.push_back(body.Substitute(var, Term::Var(names[i])));
    for (int j = 0; j < i; ++j) {
      conjuncts.push_back(
          Not(Eq(Term::Var(names[i]), Term::Var(names[j]))));
    }
  }
  return ExistsAll(names, And(std::move(conjuncts)));
}

Formula AtMost(int count, const std::string& var, const Formula& body) {
  return Not(AtLeast(count + 1, var, body));
}

Formula Exactly(int count, const std::string& var, const Formula& body) {
  return And(AtLeast(count, var, body), AtMost(count, var, body));
}

std::vector<std::string> Formula::FreeVariables() const {
  std::set<std::string> free;
  std::vector<std::string> bound;
  // Recursive walk tracking the bound-variable stack.
  struct Walker {
    std::set<std::string>* free;
    std::vector<std::string>* bound;
    void Walk(const Formula& f) {
      switch (f.kind()) {
        case FormulaKind::kAtom:
        case FormulaKind::kEquals:
          for (const Term& t : f.terms()) {
            if (t.is_var() &&
                std::find(bound->begin(), bound->end(), t.var()) ==
                    bound->end()) {
              free->insert(t.var());
            }
          }
          break;
        case FormulaKind::kExists:
        case FormulaKind::kForall:
          bound->push_back(f.quantified_var());
          Walk(f.children()[0]);
          bound->pop_back();
          break;
        default:
          for (const Formula& child : f.children()) Walk(child);
          break;
      }
    }
  };
  Walker walker{&free, &bound};
  walker.Walk(*this);
  return std::vector<std::string>(free.begin(), free.end());
}

std::vector<rel::Value> Formula::Constants() const {
  std::set<rel::Value> constants;
  struct Walker {
    std::set<rel::Value>* constants;
    void Walk(const Formula& f) {
      for (const Term& t : f.terms()) {
        if (t.is_const()) constants->insert(t.value());
      }
      for (const Formula& child : f.children()) Walk(child);
    }
  };
  Walker walker{&constants};
  walker.Walk(*this);
  return std::vector<rel::Value>(constants.begin(), constants.end());
}

int Formula::QuantifierRank() const {
  int best = 0;
  for (const Formula& child : children()) {
    best = std::max(best, child.QuantifierRank());
  }
  if (kind() == FormulaKind::kExists || kind() == FormulaKind::kForall) {
    return best + 1;
  }
  return best;
}

int Formula::Size() const {
  int total = 1;
  for (const Formula& child : children()) total += child.Size();
  return total;
}

bool Formula::MatchesSchema(const rel::Schema& schema) const {
  if (kind() == FormulaKind::kAtom) {
    if (!schema.has_relation(relation())) return false;
    if (schema.arity(relation()) != static_cast<int>(terms().size())) {
      return false;
    }
  }
  for (const Formula& child : children()) {
    if (!child.MatchesSchema(schema)) return false;
  }
  return true;
}

std::string Formula::ToString(const rel::Schema& schema) const {
  switch (kind()) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kAtom: {
      std::string out = schema.has_relation(relation())
                            ? schema.relation_name(relation())
                            : "R#" + std::to_string(relation());
      out += "(";
      for (size_t i = 0; i < terms().size(); ++i) {
        if (i > 0) out += ", ";
        out += terms()[i].ToString();
      }
      return out + ")";
    }
    case FormulaKind::kEquals:
      return terms()[0].ToString() + " = " + terms()[1].ToString();
    case FormulaKind::kNot:
      return "!(" + children()[0].ToString(schema) + ")";
    case FormulaKind::kAnd: {
      if (children().empty()) return "true";
      std::string out = "(";
      for (size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += " & ";
        out += children()[i].ToString(schema);
      }
      return out + ")";
    }
    case FormulaKind::kOr: {
      if (children().empty()) return "false";
      std::string out = "(";
      for (size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += " | ";
        out += children()[i].ToString(schema);
      }
      return out + ")";
    }
    case FormulaKind::kImplies:
      return "(" + children()[0].ToString(schema) + " -> " +
             children()[1].ToString(schema) + ")";
    case FormulaKind::kIff:
      return "(" + children()[0].ToString(schema) + " <-> " +
             children()[1].ToString(schema) + ")";
    case FormulaKind::kExists:
      return "exists " + quantified_var() + ". (" +
             children()[0].ToString(schema) + ")";
    case FormulaKind::kForall:
      return "forall " + quantified_var() + ". (" +
             children()[0].ToString(schema) + ")";
  }
  return "?";
}

std::string Formula::ToString() const { return ToString(rel::Schema()); }

namespace {

// Returns a variable name based on `base` that is not in `taken`.
std::string FreshName(const std::string& base,
                      const std::vector<std::string>& taken) {
  std::string candidate = base;
  int suffix = 0;
  while (std::find(taken.begin(), taken.end(), candidate) != taken.end()) {
    candidate = base + "'" + std::to_string(++suffix);
  }
  return candidate;
}

}  // namespace

Formula Formula::Substitute(const std::string& var, const Term& term) const {
  switch (kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return *this;
    case FormulaKind::kAtom:
    case FormulaKind::kEquals: {
      std::vector<Term> new_terms = terms();
      bool changed = false;
      for (Term& t : new_terms) {
        if (t.is_var() && t.var() == var) {
          t = term;
          changed = true;
        }
      }
      if (!changed) return *this;
      if (kind() == FormulaKind::kAtom) {
        return Atom(relation(), std::move(new_terms));
      }
      return Eq(new_terms[0], new_terms[1]);
    }
    case FormulaKind::kNot:
      return Not(children()[0].Substitute(var, term));
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff: {
      std::vector<Formula> new_children;
      new_children.reserve(children().size());
      for (const Formula& child : children()) {
        new_children.push_back(child.Substitute(var, term));
      }
      Node n;
      n.kind = kind();
      n.children = std::move(new_children);
      return MakeFormula(std::move(n));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const std::string& bound = quantified_var();
      if (bound == var) return *this;  // `var` is not free below.
      Formula body = children()[0];
      std::string new_bound = bound;
      if (term.is_var() && term.var() == bound) {
        // Rename the bound variable to avoid capture.
        std::vector<std::string> taken = body.FreeVariables();
        taken.push_back(var);
        taken.push_back(term.var());
        new_bound = FreshName(bound, taken);
        body = body.Substitute(bound, Term::Var(new_bound));
      }
      body = body.Substitute(var, term);
      return kind() == FormulaKind::kExists ? Exists(new_bound, body)
                                            : Forall(new_bound, body);
    }
  }
  return *this;
}

bool operator==(const Formula& a, const Formula& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  if (a.kind() == FormulaKind::kAtom && a.relation() != b.relation()) {
    return false;
  }
  if (a.terms() != b.terms()) return false;
  if (a.kind() == FormulaKind::kExists || a.kind() == FormulaKind::kForall) {
    if (a.quantified_var() != b.quantified_var()) return false;
  }
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!(a.children()[i] == b.children()[i])) return false;
  }
  return true;
}

}  // namespace logic
}  // namespace ipdb
