#ifndef IPDB_LOGIC_FORMULA_H_
#define IPDB_LOGIC_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "logic/term.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace ipdb {
namespace logic {

/// Node kinds of the first-order formula AST.
enum class FormulaKind {
  kTrue,     // ⊤
  kFalse,    // ⊥ (logical falsity, unrelated to the ⊥ universe element)
  kAtom,     // R(t₁, …, t_k)
  kEquals,   // t₁ = t₂
  kNot,      // ¬φ
  kAnd,      // φ₁ ∧ … ∧ φ_n (n >= 0; empty conjunction is ⊤)
  kOr,       // φ₁ ∨ … ∨ φ_n (n >= 0; empty disjunction is ⊥)
  kImplies,  // φ₁ → φ₂
  kIff,      // φ₁ ↔ φ₂
  kExists,   // ∃x φ
  kForall,   // ∀x φ
};

class Formula;

namespace internal_formula {

/// Immutable AST node; shared between formulas (hash-consing is not
/// performed; nodes are plain shared immutable data).
struct Node {
  FormulaKind kind = FormulaKind::kTrue;
  // kAtom:
  rel::RelationId relation = 0;
  std::vector<Term> terms;  // also used by kEquals (exactly two terms)
  // kNot/kAnd/kOr/kImplies/kIff/kExists/kForall:
  std::vector<Formula> children;
  // kExists/kForall:
  std::string quantified_var;
};

}  // namespace internal_formula

/// An immutable first-order formula over some schema (Section 2 of the
/// paper). Build formulas with the free functions below:
///
///   Formula phi = Exists("x", Atom(r, {Term::Var("x"), Term::Int(7)}));
///
/// Formulas are cheap to copy (shared immutable nodes). The evaluator in
/// logic/evaluator.h implements the infinite-universe semantics.
class Formula {
 public:
  /// Default-constructed formula is ⊤.
  Formula();

  FormulaKind kind() const { return node_->kind; }

  /// Relation id; only valid for kAtom.
  rel::RelationId relation() const { return node_->relation; }

  /// Atom arguments (kAtom) or the two equality operands (kEquals).
  const std::vector<Term>& terms() const { return node_->terms; }

  /// Subformulas (empty for kTrue/kFalse/kAtom/kEquals).
  const std::vector<Formula>& children() const { return node_->children; }

  /// Quantified variable; only valid for kExists/kForall.
  const std::string& quantified_var() const { return node_->quantified_var; }

  /// Free variables of the formula, sorted.
  std::vector<std::string> FreeVariables() const;

  /// All constants mentioned in the formula (in atoms and equalities),
  /// sorted and duplicate-free. This is the set "constants of Φ" in
  /// Lemmas 3.6/3.7.
  std::vector<rel::Value> Constants() const;

  /// Quantifier rank (maximum nesting depth of quantifiers).
  int QuantifierRank() const;

  /// Number of AST nodes.
  int Size() const;

  /// Checks that every atom matches the schema (valid relation id and
  /// arity).
  bool MatchesSchema(const rel::Schema& schema) const;

  /// Pretty-printer; relation names resolved through the schema.
  std::string ToString(const rel::Schema& schema) const;
  std::string ToString() const;

  /// Capture-avoiding substitution of free occurrences of `var` by `term`.
  /// Bound variables that would capture are renamed to fresh names.
  Formula Substitute(const std::string& var, const Term& term) const;

  /// Structural equality (same tree, including variable names).
  friend bool operator==(const Formula& a, const Formula& b);
  friend bool operator!=(const Formula& a, const Formula& b) {
    return !(a == b);
  }

 private:
  friend Formula MakeFormula(internal_formula::Node node);

  explicit Formula(std::shared_ptr<const internal_formula::Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const internal_formula::Node> node_;
};

/// Factory functions (the public construction API).

/// ⊤ / ⊥.
Formula Truth();
Formula Falsity();

/// R(terms...). Arity is validated lazily by MatchesSchema / the evaluator.
Formula Atom(rel::RelationId relation, std::vector<Term> terms);

/// t₁ = t₂.
Formula Eq(Term lhs, Term rhs);

/// ¬φ.
Formula Not(Formula operand);

/// n-ary conjunction / disjunction; empty And() is ⊤, empty Or() is ⊥.
Formula And(std::vector<Formula> operands);
Formula Or(std::vector<Formula> operands);

/// Binary convenience overloads.
Formula And(Formula a, Formula b);
Formula Or(Formula a, Formula b);

/// φ₁ → φ₂ and φ₁ ↔ φ₂.
Formula Implies(Formula premise, Formula conclusion);
Formula Iff(Formula a, Formula b);

/// ∃x φ / ∀x φ.
Formula Exists(std::string var, Formula body);
Formula Forall(std::string var, Formula body);

/// ∃x₁ … ∃x_n φ for a list of variables.
Formula ExistsAll(const std::vector<std::string>& vars, Formula body);
Formula ForallAll(const std::vector<std::string>& vars, Formula body);

/// "There exist at least/at most/exactly `count` distinct x with φ(x)".
/// These are the counting quantifiers used by Claim 5.8; they expand to
/// plain FO.
Formula AtLeast(int count, const std::string& var, const Formula& body);
Formula AtMost(int count, const std::string& var, const Formula& body);
Formula Exactly(int count, const std::string& var, const Formula& body);

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_FORMULA_H_
