#include "logic/normalize.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ipdb {
namespace logic {

namespace {

Formula NnfImpl(const Formula& formula, bool negated) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
      return negated ? Falsity() : Truth();
    case FormulaKind::kFalse:
      return negated ? Truth() : Falsity();
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return negated ? Not(formula) : formula;
    case FormulaKind::kNot:
      return NnfImpl(formula.children()[0], !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      children.reserve(formula.children().size());
      for (const Formula& child : formula.children()) {
        children.push_back(NnfImpl(child, negated));
      }
      bool make_and = (formula.kind() == FormulaKind::kAnd) != negated;
      return make_and ? And(std::move(children)) : Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      // a → b ≡ ¬a ∨ b.
      Formula not_a = NnfImpl(formula.children()[0], !negated);
      Formula b = NnfImpl(formula.children()[1], negated);
      // Negated: ¬(a → b) ≡ a ∧ ¬b.
      return negated ? And(std::move(not_a), std::move(b))
                     : Or(std::move(not_a), std::move(b));
    }
    case FormulaKind::kIff: {
      // a ↔ b ≡ (a ∧ b) ∨ (¬a ∧ ¬b); negated swaps one side.
      const Formula& a = formula.children()[0];
      const Formula& b = formula.children()[1];
      Formula pos_a = NnfImpl(a, false);
      Formula neg_a = NnfImpl(a, true);
      Formula pos_b = NnfImpl(b, negated);
      Formula neg_b = NnfImpl(b, !negated);
      return Or(And(std::move(pos_a), std::move(pos_b)),
                And(std::move(neg_a), std::move(neg_b)));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      Formula body = NnfImpl(formula.children()[0], negated);
      bool make_exists =
          (formula.kind() == FormulaKind::kExists) != negated;
      return make_exists ? Exists(formula.quantified_var(), std::move(body))
                         : Forall(formula.quantified_var(), std::move(body));
    }
  }
  return formula;
}

/// Orders formulas structurally (via the printed form — adequate for
/// duplicate removal in small operand lists).
bool StructurallyLess(const Formula& a, const Formula& b) {
  return a.ToString() < b.ToString();
}

}  // namespace

Formula ToNnf(const Formula& formula) { return NnfImpl(formula, false); }

Formula Simplify(const Formula& formula) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return formula;
    case FormulaKind::kEquals: {
      const Term& lhs = formula.terms()[0];
      const Term& rhs = formula.terms()[1];
      if (lhs == rhs) return Truth();
      if (lhs.is_const() && rhs.is_const()) {
        return lhs.value() == rhs.value() ? Truth() : Falsity();
      }
      return formula;
    }
    case FormulaKind::kNot: {
      Formula inner = Simplify(formula.children()[0]);
      if (inner.kind() == FormulaKind::kTrue) return Falsity();
      if (inner.kind() == FormulaKind::kFalse) return Truth();
      if (inner.kind() == FormulaKind::kNot) return inner.children()[0];
      return Not(std::move(inner));
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const bool is_and = formula.kind() == FormulaKind::kAnd;
      std::vector<Formula> flat;
      for (const Formula& child : formula.children()) {
        Formula simplified = Simplify(child);
        // Units and absorbing elements.
        if (simplified.kind() == FormulaKind::kTrue) {
          if (!is_and) return Truth();
          continue;
        }
        if (simplified.kind() == FormulaKind::kFalse) {
          if (is_and) return Falsity();
          continue;
        }
        // Flatten same-kind children.
        if (simplified.kind() == formula.kind()) {
          for (const Formula& grandchild : simplified.children()) {
            flat.push_back(grandchild);
          }
        } else {
          flat.push_back(std::move(simplified));
        }
      }
      // Deduplicate structurally.
      std::sort(flat.begin(), flat.end(), StructurallyLess);
      flat.erase(std::unique(flat.begin(), flat.end(),
                             [](const Formula& a, const Formula& b) {
                               return a == b;
                             }),
                 flat.end());
      // Complementary pair: φ and ¬φ.
      for (const Formula& candidate : flat) {
        if (candidate.kind() != FormulaKind::kNot) continue;
        for (const Formula& other : flat) {
          if (other == candidate.children()[0]) {
            return is_and ? Falsity() : Truth();
          }
        }
      }
      if (flat.empty()) return is_and ? Truth() : Falsity();
      if (flat.size() == 1) return flat[0];
      return is_and ? And(std::move(flat)) : Or(std::move(flat));
    }
    case FormulaKind::kImplies: {
      Formula premise = Simplify(formula.children()[0]);
      Formula conclusion = Simplify(formula.children()[1]);
      if (premise.kind() == FormulaKind::kFalse) return Truth();
      if (premise.kind() == FormulaKind::kTrue) return conclusion;
      if (conclusion.kind() == FormulaKind::kTrue) return Truth();
      if (conclusion.kind() == FormulaKind::kFalse) {
        return Simplify(Not(premise));
      }
      return Implies(std::move(premise), std::move(conclusion));
    }
    case FormulaKind::kIff: {
      Formula lhs = Simplify(formula.children()[0]);
      Formula rhs = Simplify(formula.children()[1]);
      if (lhs == rhs) return Truth();
      if (lhs.kind() == FormulaKind::kTrue) return rhs;
      if (rhs.kind() == FormulaKind::kTrue) return lhs;
      if (lhs.kind() == FormulaKind::kFalse) return Simplify(Not(rhs));
      if (rhs.kind() == FormulaKind::kFalse) return Simplify(Not(lhs));
      return Iff(std::move(lhs), std::move(rhs));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      Formula body = Simplify(formula.children()[0]);
      if (body.kind() == FormulaKind::kTrue) return Truth();
      if (body.kind() == FormulaKind::kFalse) return Falsity();
      // Vacuous quantifier over the (never-empty) infinite universe.
      std::vector<std::string> free = body.FreeVariables();
      if (std::find(free.begin(), free.end(), formula.quantified_var()) ==
          free.end()) {
        return body;
      }
      return formula.kind() == FormulaKind::kExists
                 ? Exists(formula.quantified_var(), std::move(body))
                 : Forall(formula.quantified_var(), std::move(body));
    }
  }
  return formula;
}

namespace {

struct QuantifierStep {
  bool is_exists;
  std::string var;
};

/// Pulls the quantifier prefix out of an NNF formula, renaming every
/// bound variable to a globally fresh "$p<i>" so prefixes from sibling
/// subformulas cannot clash.
Formula PullQuantifiers(const Formula& formula,
                        std::vector<QuantifierStep>* prefix, int* counter) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return formula;
    case FormulaKind::kNot:
      // In NNF the operand is atomic: nothing to pull.
      return formula;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> matrices;
      matrices.reserve(formula.children().size());
      for (const Formula& child : formula.children()) {
        matrices.push_back(PullQuantifiers(child, prefix, counter));
      }
      return formula.kind() == FormulaKind::kAnd
                 ? And(std::move(matrices))
                 : Or(std::move(matrices));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::string fresh = "$p" + std::to_string((*counter)++);
      Formula body = formula.children()[0].Substitute(
          formula.quantified_var(), Term::Var(fresh));
      prefix->push_back(
          {formula.kind() == FormulaKind::kExists, fresh});
      return PullQuantifiers(body, prefix, counter);
    }
    default:
      IPDB_CHECK(false) << "non-NNF node in PullQuantifiers";
      return formula;
  }
}

}  // namespace

Formula ToPrenex(const Formula& formula) {
  Formula nnf = ToNnf(formula);
  std::vector<QuantifierStep> prefix;
  int counter = 0;
  Formula matrix = PullQuantifiers(nnf, &prefix, &counter);
  // Rebuild outermost-first: the first pulled quantifier is outermost.
  for (size_t i = prefix.size(); i-- > 0;) {
    matrix = prefix[i].is_exists ? Exists(prefix[i].var, std::move(matrix))
                                 : Forall(prefix[i].var, std::move(matrix));
  }
  return matrix;
}

bool IsPrenex(const Formula& formula) {
  const Formula* cursor = &formula;
  while (cursor->kind() == FormulaKind::kExists ||
         cursor->kind() == FormulaKind::kForall) {
    cursor = &cursor->children()[0];
  }
  // The matrix must be quantifier-free.
  struct Walker {
    bool QuantifierFree(const Formula& f) {
      if (f.kind() == FormulaKind::kExists ||
          f.kind() == FormulaKind::kForall) {
        return false;
      }
      for (const Formula& child : f.children()) {
        if (!QuantifierFree(child)) return false;
      }
      return true;
    }
  };
  return Walker().QuantifierFree(*cursor);
}

}  // namespace logic
}  // namespace ipdb
