#ifndef IPDB_LOGIC_NORMALIZE_H_
#define IPDB_LOGIC_NORMALIZE_H_

#include "logic/formula.h"

namespace ipdb {
namespace logic {

/// Negation normal form: negations pushed down to atoms and equalities,
/// with → and ↔ eliminated. Semantics-preserving. NNF exposes more
/// guard shapes to the evaluator's quantifier pruning (a ¬∃ becomes a
/// guarded ∀) and is the usual preprocessing step for lineage
/// compilation.
Formula ToNnf(const Formula& formula);

/// Light semantic-preserving simplification:
///   * constant folding (⊤/⊥ units and absorbing elements),
///   * flattening nested ∧/∧ and ∨/∨,
///   * duplicate-operand removal,
///   * double-negation elimination,
///   * complementary-literal detection (φ ∧ ¬φ → ⊥, φ ∨ ¬φ → ⊤,
///     for structurally identical φ),
///   * trivial equality folding (t = t → ⊤ for identical terms,
///     c = c' → ⊥ for distinct constants),
///   * vacuous-quantifier removal (∃x φ → φ when x not free in φ —
///     sound over the infinite universe, which is never empty).
Formula Simplify(const Formula& formula);

/// Prenex normal form: NNF with all quantifiers pulled into an outer
/// prefix; bound variables are renamed apart to fresh names ("$p<i>").
/// Semantics-preserving over the infinite universe (the domain is never
/// empty, so ∃/∀ commute with the propositional structure in NNF as
/// usual).
Formula ToPrenex(const Formula& formula);

/// True iff the formula is a quantifier prefix over a quantifier-free
/// matrix.
bool IsPrenex(const Formula& formula);

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_NORMALIZE_H_
