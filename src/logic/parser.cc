#include "logic/parser.h"

#include <cctype>
#include <optional>
#include <utility>
#include <vector>

#include "logic/term.h"

namespace ipdb {
namespace logic {

namespace {

enum class TokenKind {
  kEnd,
  kIdent,    // identifier (variable, relation or keyword)
  kInt,      // integer literal
  kSymbol,   // 'quoted' symbol constant
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEq,       // =
  kNeq,      // !=
  kNot,      // !
  kAnd,      // &
  kOr,       // |
  kImplies,  // ->
  kIff,      // <->
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // for kIdent / kSymbol
  int64_t int_value = 0;  // for kInt
  size_t position = 0;  // offset in the input, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      Token token;
      token.position = pos_;
      if (pos_ >= text_.size()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(token);
        return tokens;
      }
      char c = text_[pos_];
      if (c == '(') {
        token.kind = TokenKind::kLParen;
        ++pos_;
      } else if (c == ')') {
        token.kind = TokenKind::kRParen;
        ++pos_;
      } else if (c == ',') {
        token.kind = TokenKind::kComma;
        ++pos_;
      } else if (c == '.') {
        token.kind = TokenKind::kDot;
        ++pos_;
      } else if (c == '=') {
        token.kind = TokenKind::kEq;
        ++pos_;
      } else if (c == '&') {
        token.kind = TokenKind::kAnd;
        ++pos_;
      } else if (c == '|') {
        token.kind = TokenKind::kOr;
        ++pos_;
      } else if (c == '!') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          token.kind = TokenKind::kNeq;
          pos_ += 2;
        } else {
          token.kind = TokenKind::kNot;
          ++pos_;
        }
      } else if (c == '-') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          token.kind = TokenKind::kImplies;
          pos_ += 2;
        } else if (pos_ + 1 < text_.size() && std::isdigit(text_[pos_ + 1])) {
          LexInt(&token);
        } else {
          return Error("unexpected '-'");
        }
      } else if (c == '<') {
        if (pos_ + 2 < text_.size() && text_[pos_ + 1] == '-' &&
            text_[pos_ + 2] == '>') {
          token.kind = TokenKind::kIff;
          pos_ += 3;
        } else {
          return Error("unexpected '<'");
        }
      } else if (c == '\'') {
        size_t end = text_.find('\'', pos_ + 1);
        if (end == std::string::npos) {
          return Error("unterminated symbol literal");
        }
        token.kind = TokenKind::kSymbol;
        token.text = text_.substr(pos_ + 1, end - pos_ - 1);
        pos_ = end + 1;
      } else if (std::isdigit(c)) {
        LexInt(&token);
      } else if (std::isalpha(c) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(text_[pos_]) || text_[pos_] == '_' ||
                text_[pos_] == '\'')) {
          // Allow primes inside identifiers only when not starting a
          // symbol literal; a prime directly after an identifier char is
          // part of the identifier (e.g. x').
          if (text_[pos_] == '\'') {
            ++pos_;
            continue;
          }
          ++pos_;
        }
        token.kind = TokenKind::kIdent;
        token.text = text_.substr(start, pos_ - start);
      } else {
        return Error(std::string("unexpected character '") + c + "'");
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  void LexInt(Token* token) {
    size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    token->kind = TokenKind::kInt;
    token->int_value = std::stoll(text_.substr(start, pos_ - start));
  }

  Status Error(const std::string& message) {
    return InvalidArgumentError(message + " at offset " +
                                std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const rel::Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  StatusOr<Formula> Parse() {
    StatusOr<Formula> formula = ParseIff();
    if (!formula.ok()) return formula;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return formula;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Next() { return tokens_[index_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++index_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError(message + " at offset " +
                                std::to_string(Peek().position));
  }

  StatusOr<Formula> ParseIff() {
    StatusOr<Formula> lhs = ParseImplies();
    if (!lhs.ok()) return lhs;
    Formula result = std::move(lhs).value();
    while (Accept(TokenKind::kIff)) {
      StatusOr<Formula> rhs = ParseImplies();
      if (!rhs.ok()) return rhs;
      result = Iff(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  StatusOr<Formula> ParseImplies() {
    StatusOr<Formula> lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    if (Accept(TokenKind::kImplies)) {
      StatusOr<Formula> rhs = ParseImplies();  // right associative
      if (!rhs.ok()) return rhs;
      return Implies(std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  StatusOr<Formula> ParseOr() {
    StatusOr<Formula> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    Formula result = std::move(lhs).value();
    while (Accept(TokenKind::kOr)) {
      StatusOr<Formula> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      result = Or(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  StatusOr<Formula> ParseAnd() {
    StatusOr<Formula> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    Formula result = std::move(lhs).value();
    while (Accept(TokenKind::kAnd)) {
      StatusOr<Formula> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      result = And(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  StatusOr<Formula> ParseUnary() {
    if (Accept(TokenKind::kNot)) {
      StatusOr<Formula> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Not(std::move(operand).value());
    }
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      bool is_exists = Peek().text == "exists";
      Next();
      std::vector<std::string> vars;
      while (Peek().kind == TokenKind::kIdent && Peek().text != "exists" &&
             Peek().text != "forall") {
        vars.push_back(Next().text);
        if (Accept(TokenKind::kDot)) break;
      }
      if (vars.empty()) return Error("quantifier without variables");
      StatusOr<Formula> body = ParseIff();
      if (!body.ok()) return body;
      return is_exists ? ExistsAll(vars, std::move(body).value())
                       : ForallAll(vars, std::move(body).value());
    }
    return ParsePrimary();
  }

  StatusOr<Formula> ParsePrimary() {
    if (Accept(TokenKind::kLParen)) {
      StatusOr<Formula> inner = ParseIff();
      if (!inner.ok()) return inner;
      if (!Accept(TokenKind::kRParen)) return Error("expected ')'");
      return inner;
    }
    if (Peek().kind == TokenKind::kIdent) {
      if (Peek().text == "true") {
        Next();
        return Truth();
      }
      if (Peek().text == "false") {
        Next();
        return Falsity();
      }
      // Atom if the identifier is a known relation followed by '('.
      if (index_ + 1 < tokens_.size() &&
          tokens_[index_ + 1].kind == TokenKind::kLParen &&
          schema_.FindRelation(Peek().text).ok()) {
        return ParseAtom();
      }
    }
    // Otherwise: term (= | !=) term.
    StatusOr<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    if (Accept(TokenKind::kEq)) {
      StatusOr<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      return Eq(std::move(lhs).value(), std::move(rhs).value());
    }
    if (Accept(TokenKind::kNeq)) {
      StatusOr<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      return Not(Eq(std::move(lhs).value(), std::move(rhs).value()));
    }
    return Error("expected '=' or '!=' after term");
  }

  StatusOr<Formula> ParseAtom() {
    std::string name = Next().text;
    StatusOr<rel::RelationId> relation = schema_.FindRelation(name);
    if (!relation.ok()) return relation.status();
    if (!Accept(TokenKind::kLParen)) return Error("expected '('");
    std::vector<Term> terms;
    if (!Accept(TokenKind::kRParen)) {
      while (true) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        terms.push_back(std::move(term).value());
        if (Accept(TokenKind::kRParen)) break;
        if (!Accept(TokenKind::kComma)) return Error("expected ',' or ')'");
      }
    }
    if (static_cast<int>(terms.size()) != schema_.arity(relation.value())) {
      return InvalidArgumentError(
          "arity mismatch for relation " + name + ": expected " +
          std::to_string(schema_.arity(relation.value())) + " got " +
          std::to_string(terms.size()));
    }
    return Atom(relation.value(), std::move(terms));
  }

  StatusOr<Term> ParseTerm() {
    // Copy the token up front (indexing into tokens_ is invalidated by
    // nothing here, but the by-value copy also sidesteps a GCC
    // maybe-uninitialized false positive on the moved-from string).
    Token token = Peek();
    switch (token.kind) {
      case TokenKind::kInt:
        ++index_;
        return Term::Int(token.int_value);
      case TokenKind::kSymbol:
        ++index_;
        return Term::Const(rel::Value::Symbol(std::move(token.text)));
      case TokenKind::kIdent:
        ++index_;
        if (token.text == "null") return Term::Const(rel::Value::Null());
        return Term::Var(std::move(token.text));
      default:
        return Error("expected a term");
    }
  }

  std::vector<Token> tokens_;
  const rel::Schema& schema_;
  size_t index_ = 0;
};

}  // namespace

StatusOr<Formula> ParseFormula(const std::string& text,
                               const rel::Schema& schema) {
  Lexer lexer(text);
  StatusOr<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), schema);
  return parser.Parse();
}

StatusOr<Formula> ParseSentence(const std::string& text,
                                const rel::Schema& schema) {
  StatusOr<Formula> formula = ParseFormula(text, schema);
  if (!formula.ok()) return formula;
  std::vector<std::string> free = formula.value().FreeVariables();
  if (!free.empty()) {
    return InvalidArgumentError("formula is not a sentence; free variable " +
                                free.front());
  }
  return formula;
}

}  // namespace logic
}  // namespace ipdb
