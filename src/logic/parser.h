#ifndef IPDB_LOGIC_PARSER_H_
#define IPDB_LOGIC_PARSER_H_

#include <string>

#include "logic/formula.h"
#include "relational/schema.h"
#include "util/status.h"

namespace ipdb {
namespace logic {

/// Parses an ASCII first-order formula against a schema.
///
/// Grammar (precedence from loosest to tightest):
///
///   formula := iff
///   iff     := implies ( "<->" implies )*
///   implies := or ( "->" implies )?            (right associative)
///   or      := and ( "|" and )*
///   and     := unary ( "&" unary )*
///   unary   := "!" unary | quantified | primary
///   quantified := ("exists" | "forall") ident+ "." formula
///   primary := "(" formula ")" | "true" | "false"
///            | Relation "(" term ("," term)* ")"      -- atom
///            | term "=" term | term "!=" term         -- (in)equality
///   term    := ident          -- a variable
///            | integer        -- an integer constant
///            | "'" name "'"   -- a symbol constant
///            | "null"         -- the dummy element ⊥
///
/// A quantifier's body extends as far right as possible. Identifiers used
/// as relation names must exist in the schema; all other identifiers in
/// term position denote variables.
///
/// Examples:
///   "exists x. R(x, 7) & !S(x)"
///   "forall i. exists j. Edge(i, j) -> i = j"
StatusOr<Formula> ParseFormula(const std::string& text,
                               const rel::Schema& schema);

/// Parses a formula that must be a sentence (no free variables).
StatusOr<Formula> ParseSentence(const std::string& text,
                                const rel::Schema& schema);

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_PARSER_H_
