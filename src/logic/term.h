#ifndef IPDB_LOGIC_TERM_H_
#define IPDB_LOGIC_TERM_H_

#include <string>
#include <utility>

#include "relational/value.h"

namespace ipdb {
namespace logic {

/// A first-order term: either a variable (identified by name) or a
/// constant from the universe (an element of U, or ⊥).
class Term {
 public:
  /// Default-constructed term is the constant ⊥.
  Term() : is_var_(false) {}

  /// A variable term.
  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.var_ = std::move(name);
    return t;
  }

  /// A constant term.
  static Term Const(rel::Value value) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(value);
    return t;
  }

  /// Shorthand for an integer constant.
  static Term Int(int64_t value) { return Const(rel::Value::Int(value)); }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  /// Variable name; only valid when is_var().
  const std::string& var() const { return var_; }

  /// Constant payload; only valid when is_const().
  const rel::Value& value() const { return value_; }

  /// Renders in the parser's term syntax: variables bare, integer
  /// constants as digits, symbol constants quoted, ⊥ as "null" — so
  /// Formula::ToString output reparses to the same AST.
  std::string ToString() const {
    if (is_var_) return var_;
    switch (value_.kind()) {
      case rel::Value::Kind::kNull:
        return "null";
      case rel::Value::Kind::kInt:
        return std::to_string(value_.int_value());
      case rel::Value::Kind::kSymbol:
        return "'" + value_.symbol() + "'";
    }
    return "?";
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.var_ == b.var_ : a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  bool is_var_;
  std::string var_;
  rel::Value value_;
};

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_TERM_H_
