#include "logic/view.h"

#include <algorithm>
#include <set>
#include <utility>

#include "logic/evaluator.h"
#include "relational/fact.h"
#include "util/check.h"

namespace ipdb {
namespace logic {

StatusOr<FoView> FoView::Create(rel::Schema input_schema,
                                rel::Schema output_schema,
                                std::vector<Definition> definitions) {
  std::vector<bool> defined(output_schema.num_relations(), false);
  for (const Definition& def : definitions) {
    if (!output_schema.has_relation(def.output_relation)) {
      return InvalidArgumentError("definition for unknown output relation");
    }
    if (defined[def.output_relation]) {
      return InvalidArgumentError(
          "duplicate definition for output relation " +
          output_schema.relation_name(def.output_relation));
    }
    defined[def.output_relation] = true;
    if (static_cast<int>(def.head_vars.size()) !=
        output_schema.arity(def.output_relation)) {
      return InvalidArgumentError(
          "head arity mismatch for output relation " +
          output_schema.relation_name(def.output_relation));
    }
    // Head variables must be distinct.
    std::set<std::string> seen(def.head_vars.begin(), def.head_vars.end());
    if (seen.size() != def.head_vars.size()) {
      return InvalidArgumentError("repeated head variable in definition of " +
                                  output_schema.relation_name(
                                      def.output_relation));
    }
    if (!def.body.MatchesSchema(input_schema)) {
      return InvalidArgumentError("body does not match the input schema: " +
                                  def.body.ToString(input_schema));
    }
    std::vector<std::string> free = def.body.FreeVariables();
    for (const std::string& v : free) {
      if (seen.count(v) == 0) {
        return InvalidArgumentError("free variable " + v +
                                    " missing from the head");
      }
    }
  }
  for (int i = 0; i < output_schema.num_relations(); ++i) {
    if (!defined[i]) {
      return InvalidArgumentError("missing definition for output relation " +
                                  output_schema.relation_name(i));
    }
  }
  FoView view;
  view.input_schema_ = std::move(input_schema);
  view.output_schema_ = std::move(output_schema);
  view.definitions_ = std::move(definitions);
  return view;
}

StatusOr<rel::Instance> FoView::Apply(const rel::Instance& input) const {
  std::vector<rel::Fact> facts;
  for (const Definition& def : definitions_) {
    StatusOr<std::vector<std::vector<rel::Value>>> tuples =
        EvaluateQuery(input, input_schema_, def.body, def.head_vars);
    if (!tuples.ok()) return tuples.status();
    for (std::vector<rel::Value>& tuple : *tuples) {
      facts.emplace_back(def.output_relation, std::move(tuple));
    }
  }
  return rel::Instance(std::move(facts));
}

rel::Instance FoView::ApplyOrDie(const rel::Instance& input) const {
  StatusOr<rel::Instance> result = Apply(input);
  IPDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<rel::Value> FoView::Constants() const {
  std::set<rel::Value> constants;
  for (const Definition& def : definitions_) {
    for (const rel::Value& v : def.body.Constants()) constants.insert(v);
  }
  return std::vector<rel::Value>(constants.begin(), constants.end());
}

FoView FoView::Identity(const rel::Schema& schema) {
  std::vector<Definition> definitions;
  for (int r = 0; r < schema.num_relations(); ++r) {
    Definition def;
    def.output_relation = r;
    std::vector<Term> terms;
    for (int i = 0; i < schema.arity(r); ++i) {
      std::string name = "x" + std::to_string(i);
      def.head_vars.push_back(name);
      terms.push_back(Term::Var(name));
    }
    def.body = Atom(r, std::move(terms));
    definitions.push_back(std::move(def));
  }
  StatusOr<FoView> view = Create(schema, schema, std::move(definitions));
  IPDB_CHECK(view.ok()) << view.status().ToString();
  return std::move(view).value();
}

std::string FoView::ToString() const {
  std::string out;
  for (const Definition& def : definitions_) {
    out += output_schema_.relation_name(def.output_relation) + "(";
    for (size_t i = 0; i < def.head_vars.size(); ++i) {
      if (i > 0) out += ", ";
      out += def.head_vars[i];
    }
    out += ") := " + def.body.ToString(input_schema_) + "\n";
  }
  return out;
}

namespace {

/// Rewrites `formula` (over the intermediate schema) into a formula over
/// the inner view's input schema by replacing every intermediate atom
/// S(t̄) with innerdef_S's body under head_vars := t̄. `counter` generates
/// fresh variable names for the inner bodies' variables.
Formula InlineAtoms(const Formula& formula, const FoView& inner,
                    int* counter) {
  switch (formula.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquals:
      return formula;
    case FormulaKind::kAtom: {
      const FoView::Definition* def = nullptr;
      for (const FoView::Definition& d : inner.definitions()) {
        if (d.output_relation == formula.relation()) {
          def = &d;
          break;
        }
      }
      IPDB_CHECK(def != nullptr)
          << "no inner definition for relation " << formula.relation();
      // Freshly rename the inner body's variables (head and bound) to
      // avoid any clash with the outer formula's variables, then bind the
      // head variables to the atom's terms.
      Formula body = def->body;
      std::vector<std::string> fresh_heads;
      for (const std::string& head : def->head_vars) {
        std::string fresh = "$c" + std::to_string((*counter)++);
        body = body.Substitute(head, Term::Var(fresh));
        fresh_heads.push_back(fresh);
      }
      std::vector<Formula> conjuncts;
      conjuncts.push_back(body);
      // Bind fresh head variables to the atom terms via equalities under
      // existential quantifiers: ∃h̄ (body(h̄) ∧ h_i = t_i). Equalities
      // keep the semantics right when the same variable occurs twice in
      // the atom.
      for (size_t i = 0; i < fresh_heads.size(); ++i) {
        conjuncts.push_back(
            Eq(Term::Var(fresh_heads[i]), formula.terms()[i]));
      }
      return ExistsAll(fresh_heads, And(std::move(conjuncts)));
    }
    case FormulaKind::kNot:
      return Not(InlineAtoms(formula.children()[0], inner, counter));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      children.reserve(formula.children().size());
      for (const Formula& child : formula.children()) {
        children.push_back(InlineAtoms(child, inner, counter));
      }
      return formula.kind() == FormulaKind::kAnd ? And(std::move(children))
                                                 : Or(std::move(children));
    }
    case FormulaKind::kImplies:
      return Implies(InlineAtoms(formula.children()[0], inner, counter),
                     InlineAtoms(formula.children()[1], inner, counter));
    case FormulaKind::kIff:
      return Iff(InlineAtoms(formula.children()[0], inner, counter),
                 InlineAtoms(formula.children()[1], inner, counter));
    case FormulaKind::kExists:
      return Exists(formula.quantified_var(),
                    InlineAtoms(formula.children()[0], inner, counter));
    case FormulaKind::kForall:
      return Forall(formula.quantified_var(),
                    InlineAtoms(formula.children()[0], inner, counter));
  }
  return formula;
}

}  // namespace

StatusOr<FoView> ComposeViews(const FoView& inner, const FoView& outer) {
  if (!(inner.output_schema() == outer.input_schema())) {
    return InvalidArgumentError(
        "schema mismatch: inner output != outer input");
  }
  int counter = 0;
  std::vector<FoView::Definition> definitions;
  for (const FoView::Definition& def : outer.definitions()) {
    FoView::Definition composed;
    composed.output_relation = def.output_relation;
    composed.head_vars = def.head_vars;
    composed.body = InlineAtoms(def.body, inner, &counter);
    definitions.push_back(std::move(composed));
  }
  return FoView::Create(inner.input_schema(), outer.output_schema(),
                        std::move(definitions));
}

}  // namespace logic
}  // namespace ipdb
