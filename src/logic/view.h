#ifndef IPDB_LOGIC_VIEW_H_
#define IPDB_LOGIC_VIEW_H_

#include <string>
#include <vector>

#include "logic/formula.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/status.h"

namespace ipdb {
namespace logic {

/// An FO-view (Section 2, "Query Semantics"): one FO formula per relation
/// of the output schema. Applying the view to an input instance evaluates
/// every definition and collects the resulting facts.
///
/// Per the output-safety convention (DESIGN.md §5), output tuples range
/// over adom(input) ∪ consts(view); this matches domain-independent FO
/// views, which are the ones used by the paper's constructions.
class FoView {
 public:
  /// A single output relation definition: the output tuple is
  /// (head_vars...) and a tuple is produced iff `body` holds under the
  /// corresponding binding. All free variables of `body` must appear in
  /// `head_vars`; `head_vars` may also list variables that do not occur
  /// in the body (they then range over the whole candidate domain).
  struct Definition {
    rel::RelationId output_relation = 0;
    std::vector<std::string> head_vars;
    Formula body;
  };

  FoView() = default;

  /// A view from `input_schema` to `output_schema` with the given
  /// definitions. Every output relation must have exactly one definition
  /// whose head length equals the relation's arity; the bodies must match
  /// the input schema.
  static StatusOr<FoView> Create(rel::Schema input_schema,
                                 rel::Schema output_schema,
                                 std::vector<Definition> definitions);

  const rel::Schema& input_schema() const { return input_schema_; }
  const rel::Schema& output_schema() const { return output_schema_; }
  const std::vector<Definition>& definitions() const { return definitions_; }

  /// Applies the view: V(D).
  StatusOr<rel::Instance> Apply(const rel::Instance& input) const;

  /// Apply, aborting on error (for inputs already validated).
  rel::Instance ApplyOrDie(const rel::Instance& input) const;

  /// All constants appearing in any definition body.
  std::vector<rel::Value> Constants() const;

  /// The number of constants appearing in the view (parameter c in
  /// Lemma 3.3's size bound).
  int NumConstants() const { return static_cast<int>(Constants().size()); }

  /// The identity view on a schema.
  static FoView Identity(const rel::Schema& schema);

  std::string ToString() const;

 private:
  rel::Schema input_schema_;
  rel::Schema output_schema_;
  std::vector<Definition> definitions_;
};

/// Composes two views: returns a view W with W(D) = outer(inner(D)) for
/// all D, obtained by substituting the inner definitions into the outer
/// bodies (atoms over the intermediate schema are replaced by the inner
/// bodies with head variables bound). This witnesses FO(FO(TI)) = FO(TI)
/// (Remark 4.2). `outer.input_schema()` must equal
/// `inner.output_schema()`.
///
/// Caveat: textual composition is exactly equivalent to sequential
/// application for *output-safe* views whose intermediate results do not
/// depend on values outside adom ∪ consts (the only kind this library
/// produces); tests verify the equivalence on the constructions we use.
StatusOr<FoView> ComposeViews(const FoView& inner, const FoView& outer);

}  // namespace logic
}  // namespace ipdb

#endif  // IPDB_LOGIC_VIEW_H_
