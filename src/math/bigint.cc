#include "math/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace math {

namespace {

constexpr uint64_t kBase = 1ULL << 32;

// Operand size (in limbs of the smaller factor) above which
// multiplication switches from schoolbook to Karatsuba. 32 limbs =
// 1024 bits; below that the O(n²) kernel's constant factor wins.
constexpr size_t kKaratsubaThreshold = 32;

using Limbs = std::vector<uint32_t>;

// ScopedLimbCap state (see bigint.h). A cap of 0 means uncapped. The
// flag is sticky within a scope so governed callers can batch work and
// poll once per checkpoint.
thread_local int64_t tl_limb_cap = 0;
thread_local bool tl_limb_exceeded = false;

void Normalize(Limbs* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

int CompareMag(const uint32_t* a, size_t an, const uint32_t* b, size_t bn) {
  while (an > 0 && a[an - 1] == 0) --an;
  while (bn > 0 && b[bn - 1] == 0) --bn;
  if (an != bn) return an < bn ? -1 : 1;
  for (size_t i = an; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int CompareMag(const Limbs& a, const Limbs& b) {
  return CompareMag(a.data(), a.size(), b.data(), b.size());
}

// *a += b. `b` must not alias a's storage.
void AddMagInPlace(Limbs* a, const uint32_t* b, size_t bn) {
  if (a->size() < bn) a->resize(bn, 0);
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < bn; ++i) {
    uint64_t sum = static_cast<uint64_t>((*a)[i]) + b[i] + carry;
    (*a)[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  for (; carry != 0 && i < a->size(); ++i) {
    uint64_t sum = static_cast<uint64_t>((*a)[i]) + carry;
    (*a)[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) a->push_back(static_cast<uint32_t>(carry));
}

// a -= b in place. Requires |a| >= |b|; the caller normalizes.
void SubMagInPlace(uint32_t* a, size_t an, const uint32_t* b, size_t bn) {
  int64_t borrow = 0;
  size_t i = 0;
  for (; i < bn; ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   static_cast<int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(diff);
  }
  for (; borrow != 0 && i < an; ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow;
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(diff);
  }
  IPDB_CHECK_EQ(borrow, 0) << "SubMagInPlace underflow";
}

// a - b as a fresh vector. Requires |a| >= |b|.
Limbs SubMag(const uint32_t* a, size_t an, const uint32_t* b, size_t bn) {
  Limbs result(a, a + an);
  SubMagInPlace(result.data(), result.size(), b, bn);
  Normalize(&result);
  return result;
}

// out[0..an+bn) += nothing; writes a*b into the zero-initialized
// window. 64-bit accumulator schoolbook.
void MulSchoolbook(const uint32_t* a, size_t an, const uint32_t* b,
                   size_t bn, uint32_t* out) {
  if (an == 1 || bn == 1) {
    // Single-limb factor: one linear pass.
    const uint32_t* v = an == 1 ? b : a;
    size_t vn = an == 1 ? bn : an;
    uint64_t m = an == 1 ? a[0] : b[0];
    uint64_t carry = 0;
    for (size_t i = 0; i < vn; ++i) {
      uint64_t cur = static_cast<uint64_t>(v[i]) * m + carry;
      out[i] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out[vn] = static_cast<uint32_t>(carry);
    return;
  }
  for (size_t i = 0; i < an; ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < bn; ++j) {
      uint64_t cur = ai * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + bn] = static_cast<uint32_t>(carry);
  }
}

// out[offset..] += v with carry propagation; the carry must die inside
// the window (guaranteed when adding partial products of a product that
// fits the window).
void AddAt(uint32_t* out, size_t out_size, const uint32_t* v, size_t vn) {
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < vn; ++i) {
    uint64_t sum = static_cast<uint64_t>(out[i]) + v[i] + carry;
    out[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  for (; carry != 0 && i < out_size; ++i) {
    uint64_t sum = static_cast<uint64_t>(out[i]) + carry;
    out[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  IPDB_CHECK_EQ(carry, 0u) << "AddAt overflowed the product window";
}

// *a -= b (magnitudes, |a| >= |b|); trailing zero limbs of b allowed.
void SubFromRaw(Limbs* a, const uint32_t* b, size_t bn) {
  while (bn > 0 && b[bn - 1] == 0) --bn;
  IPDB_CHECK_GE(a->size(), bn);
  SubMagInPlace(a->data(), a->size(), b, bn);
  Normalize(a);
}

// Karatsuba/schoolbook dispatch; writes a*b into the zero-initialized
// out[0..an+bn).
void MulInto(const uint32_t* a, size_t an, const uint32_t* b, size_t bn,
             uint32_t* out) {
  if (an == 0 || bn == 0) return;
  if (std::min(an, bn) < kKaratsubaThreshold) {
    MulSchoolbook(a, an, b, bn, out);
    return;
  }
  // Split both operands at m limbs: x = x1·B^m + x0. z0 and z2 land in
  // disjoint windows of `out`; the middle term is assembled separately
  // because it overlaps both.
  size_t m = std::max(an, bn) / 2;
  size_t a0n = std::min(an, m), a1n = an - a0n;
  size_t b0n = std::min(bn, m), b1n = bn - b0n;
  const uint32_t* a1 = a + a0n;
  const uint32_t* b1 = b + b0n;

  MulInto(a, a0n, b, b0n, out);                    // z0 = a0·b0
  if (a1n != 0 && b1n != 0) {
    MulInto(a1, a1n, b1, b1n, out + 2 * m);        // z2 = a1·b1
  }

  // z1 = (a0+a1)(b0+b1) − z0 − z2, added at offset m.
  Limbs t1(a, a + a0n);
  AddMagInPlace(&t1, a1, a1n);
  Normalize(&t1);
  Limbs t2(b, b + b0n);
  AddMagInPlace(&t2, b1, b1n);
  Normalize(&t2);
  Limbs z1(t1.size() + t2.size(), 0);
  MulInto(t1.data(), t1.size(), t2.data(), t2.size(), z1.data());
  Normalize(&z1);
  SubFromRaw(&z1, out, a0n + b0n);
  if (a1n != 0 && b1n != 0) {
    SubFromRaw(&z1, out + 2 * m, a1n + b1n);
  }
  AddAt(out + m, an + bn - m, z1.data(), z1.size());
}

Limbs MulMag(const uint32_t* a, size_t an, const uint32_t* b, size_t bn) {
  if (an == 0 || bn == 0) return {};
  // Every limb-form product funnels through here (operator*, *=, the
  // Rational/pgf convolutions), so this is the single choke point for
  // the ScopedLimbCap governor: suppress the product and latch the flag
  // rather than allocate an over-cap result. The placeholder is 1, not
  // 0, so a suppressed denominator can never become a zero divisor
  // while the caller unwinds to its checkpoint.
  if (tl_limb_cap > 0 && static_cast<int64_t>(an + bn) > tl_limb_cap) {
    tl_limb_exceeded = true;
    return {1};
  }
  Limbs out(an + bn, 0);
  MulInto(a, an, b, bn, out.data());
  Normalize(&out);
  return out;
}

void DivModMag(const Limbs& a, const Limbs& b, Limbs* quotient,
               Limbs* remainder) {
  IPDB_CHECK(!b.empty()) << "division by zero";
  quotient->clear();
  remainder->clear();
  if (CompareMag(a, b) < 0) {
    *remainder = a;
    Normalize(remainder);
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    Normalize(quotient);
    if (rem != 0) remainder->push_back(static_cast<uint32_t>(rem));
    return;
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high
  // bit set.
  int shift = 0;
  {
    uint32_t top = b.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shift_left = [](const Limbs& v, int s) {
    if (s == 0) return v;
    Limbs out(v.size() + 1, 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << s;
      out[i + 1] |= static_cast<uint32_t>(static_cast<uint64_t>(v[i]) >>
                                          (32 - s));
    }
    Normalize(&out);
    return out;
  };
  Limbs u = shift_left(a, shift);
  Limbs v = shift_left(b, shift);
  size_t n = v.size();
  size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // extra high limb for the algorithm
  quotient->assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*base + u[j+n-1]) / v[n-1].
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t q_hat = numerator / v[n - 1];
    uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }
    // Multiply and subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffULL) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u[j + n] = static_cast<uint32_t>(
        diff + (negative ? static_cast<int64_t>(kBase) : 0));

    if (negative) {
      // q_hat was one too large: add v back.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffULL);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }
    (*quotient)[j] = static_cast<uint32_t>(q_hat);
  }
  Normalize(quotient);

  // Remainder = u[0..n) shifted back right.
  u.resize(n);
  if (shift != 0) {
    for (size_t i = 0; i + 1 < u.size(); ++i) {
      u[i] = (u[i] >> shift) |
             static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1])
                                   << (32 - shift));
    }
    u.back() >>= shift;
  }
  Normalize(&u);
  *remainder = std::move(u);
}

// *v = *v * mul + add, for small constants (decimal parsing).
void MulSmallAddInPlace(Limbs* v, uint32_t mul, uint32_t add) {
  uint64_t carry = add;
  for (uint32_t& limb : *v) {
    uint64_t cur = static_cast<uint64_t>(limb) * mul + carry;
    limb = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  if (carry != 0) v->push_back(static_cast<uint32_t>(carry));
}

size_t TrailingZeroBits(const Limbs& v) {
  size_t i = 0;
  while (i < v.size() && v[i] == 0) ++i;
  if (i == v.size()) return 32 * v.size();
  return 32 * i + static_cast<size_t>(__builtin_ctz(v[i]));
}

void ShrBitsInPlace(Limbs* v, size_t bits) {
  if (v->empty() || bits == 0) return;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= v->size()) {
    v->clear();
    return;
  }
  if (limb_shift != 0) v->erase(v->begin(), v->begin() + limb_shift);
  if (bit_shift != 0) {
    for (size_t i = 0; i + 1 < v->size(); ++i) {
      (*v)[i] = ((*v)[i] >> bit_shift) |
                static_cast<uint32_t>(static_cast<uint64_t>((*v)[i + 1])
                                      << (32 - bit_shift));
    }
    v->back() >>= bit_shift;
  }
  Normalize(v);
}

void ShlBitsInPlace(Limbs* v, size_t bits) {
  if (v->empty() || bits == 0) return;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (bit_shift != 0) {
    v->push_back(0);
    for (size_t i = v->size(); i-- > 0;) {
      uint32_t hi = (*v)[i] << bit_shift;
      uint32_t lo = i > 0
                        ? static_cast<uint32_t>(
                              static_cast<uint64_t>((*v)[i - 1]) >>
                              (32 - bit_shift))
                        : 0;
      (*v)[i] = hi | lo;
    }
  }
  if (limb_shift != 0) v->insert(v->begin(), limb_shift, 0);
  Normalize(v);
}

uint64_t Gcd64(uint64_t a, uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  int shift = __builtin_ctzll(a | b);
  a >>= __builtin_ctzll(a);
  do {
    b >>= __builtin_ctzll(b);
    if (a > b) std::swap(a, b);
    b -= a;
  } while (b != 0);
  return a << shift;
}

// Binary (Stein) GCD on magnitudes, with Euclid reduction steps while
// the operand sizes are badly unbalanced (a pure binary ladder would
// take O(bits) linear passes to close a large size gap).
Limbs GcdMag(Limbs a, Limbs b) {
  while (!a.empty() && !b.empty() &&
         (a.size() > b.size() + 1 || b.size() > a.size() + 1)) {
    if (CompareMag(a, b) < 0) a.swap(b);
    Limbs q;
    Limbs r;
    DivModMag(a, b, &q, &r);
    a = std::move(b);
    b = std::move(r);
  }
  if (a.empty()) return b;
  if (b.empty()) return a;
  size_t a_twos = TrailingZeroBits(a);
  size_t b_twos = TrailingZeroBits(b);
  size_t shift = std::min(a_twos, b_twos);
  ShrBitsInPlace(&a, a_twos);
  ShrBitsInPlace(&b, b_twos);
  while (true) {
    int cmp = CompareMag(a, b);
    if (cmp == 0) break;
    if (cmp > 0) a.swap(b);
    SubMagInPlace(b.data(), b.size(), a.data(), a.size());
    Normalize(&b);
    ShrBitsInPlace(&b, TrailingZeroBits(b));
  }
  ShlBitsInPlace(&a, shift);
  return a;
}

}  // namespace

BigInt::BigInt(bool negative, std::vector<uint32_t> limbs)
    : inline_(false), negative_(negative), limbs_(std::move(limbs)) {
  Normalize(&limbs_);
  if (limbs_.empty()) negative_ = false;
  CollapseIfSmall();
}

BigInt BigInt::FromWide(bool negative, unsigned __int128 magnitude) {
  if (magnitude == 0) return BigInt();
  if (!negative &&
      magnitude <= static_cast<unsigned __int128>(INT64_MAX)) {
    return BigInt(static_cast<int64_t>(static_cast<uint64_t>(magnitude)));
  }
  if (negative && magnitude <= (static_cast<unsigned __int128>(1) << 63)) {
    return BigInt(
        static_cast<int64_t>(~static_cast<uint64_t>(magnitude) + 1));
  }
  BigInt result;
  result.inline_ = false;
  result.negative_ = negative;
  while (magnitude != 0) {
    result.limbs_.push_back(static_cast<uint32_t>(magnitude));
    magnitude >>= 32;
  }
  return result;
}

uint64_t BigInt::InlineMagnitude() const {
  return small_ < 0 ? ~static_cast<uint64_t>(small_) + 1
                    : static_cast<uint64_t>(small_);
}

void BigInt::SpillToLimbs() {
  if (!inline_) return;
  uint64_t magnitude = InlineMagnitude();
  negative_ = small_ < 0;
  limbs_.clear();
  while (magnitude != 0) {
    limbs_.push_back(static_cast<uint32_t>(magnitude));
    magnitude >>= 32;
  }
  inline_ = false;
  small_ = 0;
}

void BigInt::CollapseIfSmall() {
  if (inline_) return;
  if (limbs_.size() > 2) return;
  uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) {
    magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  if (negative_) {
    if (magnitude > (1ULL << 63)) return;
    small_ = static_cast<int64_t>(~magnitude + 1);
  } else {
    if (magnitude > static_cast<uint64_t>(INT64_MAX)) return;
    small_ = static_cast<int64_t>(magnitude);
  }
  inline_ = true;
  negative_ = false;
  limbs_.clear();
}

const uint32_t* BigInt::MagnitudeView(const BigInt& v, uint32_t buf[2],
                                      size_t* n, bool* negative) {
  if (!v.inline_) {
    *n = v.limbs_.size();
    *negative = v.negative_;
    return v.limbs_.data();
  }
  uint64_t magnitude = v.InlineMagnitude();
  buf[0] = static_cast<uint32_t>(magnitude);
  buf[1] = static_cast<uint32_t>(magnitude >> 32);
  *n = magnitude == 0 ? 0 : (magnitude >> 32 != 0 ? 2 : 1);
  *negative = v.small_ < 0;
  return buf;
}

void BigInt::AccumulateMagnitude(bool other_negative, const uint32_t* other,
                                 size_t other_size) {
  if (negative_ == other_negative) {
    AddMagInPlace(&limbs_, other, other_size);
    return;
  }
  int cmp = CompareMag(limbs_.data(), limbs_.size(), other, other_size);
  if (cmp == 0) {
    limbs_.clear();
    negative_ = false;
    return;
  }
  if (cmp > 0) {
    SubMagInPlace(limbs_.data(), limbs_.size(), other, other_size);
    Normalize(&limbs_);
  } else {
    limbs_ = SubMag(other, other_size, limbs_.data(), limbs_.size());
    negative_ = other_negative;
  }
  if (limbs_.empty()) negative_ = false;
}

StatusOr<BigInt> BigInt::FromString(const std::string& text) {
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) {
    return InvalidArgumentError("empty integer literal: '" + text + "'");
  }
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return InvalidArgumentError("bad digit in integer literal: '" + text +
                                  "'");
    }
  }
  size_t digits = text.size() - pos;
  if (digits <= 18) {
    // Fits in int64_t with room to spare: stay inline.
    int64_t value = 0;
    for (size_t i = pos; i < text.size(); ++i) {
      value = value * 10 + (text[i] - '0');
    }
    return BigInt(negative ? -value : value);
  }
  // Limb accumulation in base-10^9 chunks: one multiply-add pass per
  // nine digits instead of one BigInt multiply per digit.
  Limbs limbs;
  size_t head = digits % 9;
  size_t i = pos;
  if (head != 0) {
    uint32_t chunk = 0;
    for (size_t k = 0; k < head; ++k) chunk = chunk * 10 + (text[i++] - '0');
    limbs.push_back(chunk);
    Normalize(&limbs);
  }
  for (; i < text.size(); i += 9) {
    uint32_t chunk = 0;
    for (size_t k = 0; k < 9; ++k) chunk = chunk * 10 + (text[i + k] - '0');
    MulSmallAddInPlace(&limbs, 1000000000u, chunk);
  }
  return BigInt(negative, std::move(limbs));
}

int BigInt::sign() const {
  if (inline_) return small_ < 0 ? -1 : (small_ > 0 ? 1 : 0);
  return negative_ ? -1 : 1;
}

BigInt BigInt::operator-() const {
  if (inline_) {
    if (small_ == INT64_MIN) return FromWide(false, 1ULL << 63);
    return BigInt(-small_);
  }
  BigInt result = *this;
  result.negative_ = !negative_;
  // +2^63 is limb-form but -2^63 is inline: keep the form canonical.
  result.CollapseIfSmall();
  return result;
}

BigInt BigInt::Abs() const {
  if (inline_) {
    if (small_ == INT64_MIN) return FromWide(false, 1ULL << 63);
    return BigInt(small_ < 0 ? -small_ : small_);
  }
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.inline_ && b.inline_) {
    if (a.small_ != b.small_) return a.small_ < b.small_ ? -1 : 1;
    return 0;
  }
  bool a_negative = a.is_negative();
  bool b_negative = b.is_negative();
  if (a_negative != b_negative) return a_negative ? -1 : 1;
  int magnitude;
  if (a.inline_ != b.inline_) {
    // Canonical invariant: a limb-form magnitude never fits in int64_t,
    // so it strictly exceeds any inline magnitude.
    magnitude = a.inline_ ? -1 : 1;
  } else {
    magnitude = CompareMag(a.limbs_, b.limbs_);
  }
  return a_negative ? -magnitude : magnitude;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (inline_ && other.inline_) {
    int64_t sum;
    if (!__builtin_add_overflow(small_, other.small_, &sum)) {
      small_ = sum;
      return *this;
    }
    __int128 wide = static_cast<__int128>(small_) + other.small_;
    *this = FromWide(wide < 0, wide < 0
                                   ? static_cast<unsigned __int128>(-wide)
                                   : static_cast<unsigned __int128>(wide));
    return *this;
  }
  if (&other == this) {
    BigInt copy = other;
    return *this += copy;
  }
  SpillToLimbs();
  uint32_t buf[2];
  size_t bn;
  bool b_negative;
  const uint32_t* bp = MagnitudeView(other, buf, &bn, &b_negative);
  AccumulateMagnitude(b_negative, bp, bn);
  CollapseIfSmall();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (inline_ && other.inline_) {
    int64_t diff;
    if (!__builtin_sub_overflow(small_, other.small_, &diff)) {
      small_ = diff;
      return *this;
    }
    __int128 wide = static_cast<__int128>(small_) - other.small_;
    *this = FromWide(wide < 0, wide < 0
                                   ? static_cast<unsigned __int128>(-wide)
                                   : static_cast<unsigned __int128>(wide));
    return *this;
  }
  if (&other == this) {
    *this = BigInt();
    return *this;
  }
  SpillToLimbs();
  uint32_t buf[2];
  size_t bn;
  bool b_negative;
  const uint32_t* bp = MagnitudeView(other, buf, &bn, &b_negative);
  AccumulateMagnitude(!b_negative, bp, bn);
  CollapseIfSmall();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (inline_ && other.inline_) {
    int64_t product;
    if (!__builtin_mul_overflow(small_, other.small_, &product)) {
      small_ = product;
      return *this;
    }
    unsigned __int128 magnitude =
        static_cast<unsigned __int128>(InlineMagnitude()) *
        other.InlineMagnitude();
    *this = FromWide((small_ < 0) != (other.small_ < 0), magnitude);
    return *this;
  }
  *this = *this * other;
  return *this;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (inline_ && other.inline_) {
    int64_t sum;
    if (!__builtin_add_overflow(small_, other.small_, &sum)) {
      return BigInt(sum);
    }
    __int128 wide = static_cast<__int128>(small_) + other.small_;
    return FromWide(wide < 0, wide < 0
                                  ? static_cast<unsigned __int128>(-wide)
                                  : static_cast<unsigned __int128>(wide));
  }
  BigInt result = *this;
  result += other;
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (inline_ && other.inline_) {
    int64_t diff;
    if (!__builtin_sub_overflow(small_, other.small_, &diff)) {
      return BigInt(diff);
    }
    __int128 wide = static_cast<__int128>(small_) - other.small_;
    return FromWide(wide < 0, wide < 0
                                  ? static_cast<unsigned __int128>(-wide)
                                  : static_cast<unsigned __int128>(wide));
  }
  BigInt result = *this;
  result -= other;
  return result;
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (inline_ && other.inline_) {
    int64_t product;
    if (!__builtin_mul_overflow(small_, other.small_, &product)) {
      return BigInt(product);
    }
    unsigned __int128 magnitude =
        static_cast<unsigned __int128>(InlineMagnitude()) *
        other.InlineMagnitude();
    return FromWide((small_ < 0) != (other.small_ < 0), magnitude);
  }
  uint32_t a_buf[2];
  uint32_t b_buf[2];
  size_t an;
  size_t bn;
  bool a_negative;
  bool b_negative;
  const uint32_t* ap = MagnitudeView(*this, a_buf, &an, &a_negative);
  const uint32_t* bp = MagnitudeView(other, b_buf, &bn, &b_negative);
  return BigInt(a_negative != b_negative, MulMag(ap, an, bp, bn));
}

Status BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                      BigInt* quotient, BigInt* remainder) {
  if (divisor.is_zero()) {
    return InvalidArgumentError("BigInt division by zero");
  }
  if (dividend.inline_ && divisor.inline_) {
    // __int128 covers INT64_MIN / -1, which overflows int64_t.
    __int128 q = static_cast<__int128>(dividend.small_) / divisor.small_;
    __int128 r = static_cast<__int128>(dividend.small_) % divisor.small_;
    *quotient = FromWide(q < 0, q < 0
                                    ? static_cast<unsigned __int128>(-q)
                                    : static_cast<unsigned __int128>(q));
    *remainder = BigInt(static_cast<int64_t>(r));
    return Status::Ok();
  }
  uint32_t a_buf[2];
  uint32_t b_buf[2];
  size_t an;
  size_t bn;
  bool a_negative;
  bool b_negative;
  const uint32_t* ap = MagnitudeView(dividend, a_buf, &an, &a_negative);
  const uint32_t* bp = MagnitudeView(divisor, b_buf, &bn, &b_negative);
  Limbs a(ap, ap + an);
  Limbs b(bp, bp + bn);
  Limbs q;
  Limbs r;
  DivModMag(a, b, &q, &r);
  *quotient = BigInt(a_negative != b_negative, std::move(q));
  *remainder = BigInt(a_negative, std::move(r));
  return Status::Ok();
}

StatusOr<BigInt> BigInt::CheckedDiv(const BigInt& dividend,
                                    const BigInt& divisor) {
  BigInt quotient;
  BigInt remainder;
  Status status = DivMod(dividend, divisor, &quotient, &remainder);
  if (!status.ok()) return status;
  return quotient;
}

StatusOr<BigInt> BigInt::CheckedMod(const BigInt& dividend,
                                    const BigInt& divisor) {
  BigInt quotient;
  BigInt remainder;
  Status status = DivMod(dividend, divisor, &quotient, &remainder);
  if (!status.ok()) return status;
  return remainder;
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  Status status = DivMod(*this, other, &quotient, &remainder);
  IPDB_CHECK(status.ok()) << status.ToString();
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  Status status = DivMod(*this, other, &quotient, &remainder);
  IPDB_CHECK(status.ok()) << status.ToString();
  return remainder;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  if (a.is_zero()) return b.Abs();
  if (b.is_zero()) return a.Abs();
  if (a.inline_ && b.inline_) {
    uint64_t g = Gcd64(a.InlineMagnitude(), b.InlineMagnitude());
    if (g <= static_cast<uint64_t>(INT64_MAX)) {
      return BigInt(static_cast<int64_t>(g));
    }
    return FromWide(false, g);
  }
  a.SpillToLimbs();
  b.SpillToLimbs();
  return BigInt(false, GcdMag(std::move(a.limbs_), std::move(b.limbs_)));
}

BigInt BigInt::Pow(uint64_t exponent) const {
  BigInt result(1);
  BigInt base = *this;
  while (exponent != 0) {
    if (exponent & 1) result *= base;
    exponent >>= 1;
    if (exponent != 0) base *= base;
  }
  return result;
}

BigInt BigInt::TwoToThe(uint64_t exponent) {
  if (exponent <= 62) {
    return BigInt(static_cast<int64_t>(1) << exponent);
  }
  std::vector<uint32_t> limbs(exponent / 32 + 1, 0);
  limbs.back() = 1u << (exponent % 32);
  return BigInt(false, std::move(limbs));
}

double BigInt::ToDouble() const {
  if (inline_) return static_cast<double>(small_);
  double magnitude = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    magnitude = magnitude * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -magnitude : magnitude;
}

StatusOr<int64_t> BigInt::ToInt64() const {
  // Canonical invariant: every value that fits in int64_t is inline.
  if (inline_) return small_;
  return OutOfRangeError("BigInt does not fit in int64_t: " + ToString());
}

std::string BigInt::ToString() const {
  if (inline_) return std::to_string(small_);
  std::vector<uint32_t> digits;  // base 10^9 chunks, little-endian
  std::vector<uint32_t> current = limbs_;
  while (!current.empty()) {
    uint64_t rem = 0;
    for (size_t i = current.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | current[i];
      current[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    digits.push_back(static_cast<uint32_t>(rem));
    Normalize(&current);
  }
  std::string out;
  if (negative_) out += '-';
  out += std::to_string(digits.back());
  for (size_t i = digits.size() - 1; i-- > 0;) {
    std::string chunk = std::to_string(digits[i]);
    out += std::string(9 - chunk.size(), '0');
    out += chunk;
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (inline_) {
    uint64_t magnitude = InlineMagnitude();
    if (magnitude == 0) return 0;
    return 64 - static_cast<size_t>(__builtin_clzll(magnitude));
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

ScopedLimbCap::ScopedLimbCap(int64_t max_limbs)
    : prev_cap_(tl_limb_cap), prev_exceeded_(tl_limb_exceeded) {
  tl_limb_cap = max_limbs > 0 ? max_limbs : 0;
  tl_limb_exceeded = false;
}

ScopedLimbCap::~ScopedLimbCap() {
  tl_limb_cap = prev_cap_;
  tl_limb_exceeded = prev_exceeded_;
}

bool ScopedLimbCap::exceeded() const { return tl_limb_exceeded; }

Status ScopedLimbCap::ToStatus(const char* what) const {
  if (!tl_limb_exceeded) return Status::Ok();
  return ResourceExhaustedError(
      std::string(what) + ": exact-arithmetic limb cap of " +
      std::to_string(tl_limb_cap) + " limbs exceeded");
}

}  // namespace math
}  // namespace ipdb
