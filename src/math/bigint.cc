#include "math/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/check.h"

namespace ipdb {
namespace math {

namespace {

constexpr uint64_t kBase = 1ULL << 32;

}  // namespace

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t magnitude =
      negative_ ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt::BigInt(bool negative, std::vector<uint32_t> limbs)
    : negative_(negative), limbs_(std::move(limbs)) {
  Normalize(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

StatusOr<BigInt> BigInt::FromString(const std::string& text) {
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) {
    return InvalidArgumentError("empty integer literal: '" + text + "'");
  }
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return InvalidArgumentError("bad digit in integer literal: '" + text +
                                  "'");
    }
    result = result * ten + BigInt(c - '0');
  }
  if (negative) result = -result;
  return result;
}

int BigInt::sign() const {
  if (limbs_.empty()) return 0;
  return negative_ ? -1 : 1;
}

BigInt BigInt::operator-() const {
  if (is_zero()) return *this;
  BigInt result = *this;
  result.negative_ = !negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_ ? -1 : 1;
  int magnitude = CompareMagnitude(a.limbs_, b.limbs_);
  return a.negative_ ? -magnitude : magnitude;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::Normalize(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> result;
  result.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0u);
    result.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<uint32_t>(carry));
  return result;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  IPDB_CHECK_GE(CompareMagnitude(a, b), 0);
  std::vector<uint32_t> result;
  result.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<uint32_t>(diff));
  }
  Normalize(&result);
  return result;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + result[i + j] + carry;
      result[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  Normalize(&result);
  return result;
}

void BigInt::DivModMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             std::vector<uint32_t>* quotient,
                             std::vector<uint32_t>* remainder) {
  IPDB_CHECK(!b.empty()) << "division by zero";
  quotient->clear();
  remainder->clear();
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    Normalize(remainder);
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    Normalize(quotient);
    if (rem != 0) remainder->push_back(static_cast<uint32_t>(rem));
    return;
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high
  // bit set.
  int shift = 0;
  {
    uint32_t top = b.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shift_left = [](const std::vector<uint32_t>& v, int s) {
    if (s == 0) return v;
    std::vector<uint32_t> out(v.size() + 1, 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << s;
      out[i + 1] |= static_cast<uint32_t>(static_cast<uint64_t>(v[i]) >>
                                          (32 - s));
    }
    Normalize(&out);
    return out;
  };
  std::vector<uint32_t> u = shift_left(a, shift);
  std::vector<uint32_t> v = shift_left(b, shift);
  size_t n = v.size();
  size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // extra high limb for the algorithm
  quotient->assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*base + u[j+n-1]) / v[n-1].
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t q_hat = numerator / v[n - 1];
    uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }
    // Multiply and subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffULL) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u[j + n] = static_cast<uint32_t>(diff + (negative ? static_cast<int64_t>(kBase) : 0));

    if (negative) {
      // q_hat was one too large: add v back.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffULL);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }
    (*quotient)[j] = static_cast<uint32_t>(q_hat);
  }
  Normalize(quotient);

  // Remainder = u[0..n) shifted back right.
  u.resize(n);
  if (shift != 0) {
    for (size_t i = 0; i + 1 < u.size(); ++i) {
      u[i] = (u[i] >> shift) |
             static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1])
                                   << (32 - shift));
    }
    u.back() >>= shift;
  }
  Normalize(&u);
  *remainder = std::move(u);
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    return BigInt(negative_, AddMagnitude(limbs_, other.limbs_));
  }
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  if (cmp == 0) return BigInt();
  if (cmp > 0) {
    return BigInt(negative_, SubMagnitude(limbs_, other.limbs_));
  }
  return BigInt(other.negative_, SubMagnitude(other.limbs_, limbs_));
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + (-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  return BigInt(negative_ != other.negative_,
                MulMagnitude(limbs_, other.limbs_));
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  std::vector<uint32_t> q;
  std::vector<uint32_t> r;
  DivModMagnitude(dividend.limbs_, divisor.limbs_, &q, &r);
  *quotient = BigInt(dividend.negative_ != divisor.negative_, std::move(q));
  *remainder = BigInt(dividend.negative_, std::move(r));
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  DivMod(*this, other, &quotient, &remainder);
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  DivMod(*this, other, &quotient, &remainder);
  return remainder;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a = a.Abs();
  b = b.Abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(uint64_t exponent) const {
  BigInt result(1);
  BigInt base = *this;
  while (exponent != 0) {
    if (exponent & 1) result *= base;
    exponent >>= 1;
    if (exponent != 0) base *= base;
  }
  return result;
}

BigInt BigInt::TwoToThe(uint64_t exponent) {
  std::vector<uint32_t> limbs(exponent / 32 + 1, 0);
  limbs.back() = 1u << (exponent % 32);
  return BigInt(false, std::move(limbs));
}

double BigInt::ToDouble() const {
  double magnitude = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    magnitude = magnitude * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -magnitude : magnitude;
}

StatusOr<int64_t> BigInt::ToInt64() const {
  if (limbs_.size() > 2) {
    return OutOfRangeError("BigInt does not fit in int64_t: " + ToString());
  }
  uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (magnitude > 0x8000000000000000ULL) {
      return OutOfRangeError("BigInt does not fit in int64_t: " + ToString());
    }
    return static_cast<int64_t>(~magnitude + 1);
  }
  if (magnitude > 0x7fffffffffffffffULL) {
    return OutOfRangeError("BigInt does not fit in int64_t: " + ToString());
  }
  return static_cast<int64_t>(magnitude);
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  std::vector<uint32_t> digits;  // base 10^9 chunks, little-endian
  std::vector<uint32_t> current = limbs_;
  while (!current.empty()) {
    uint64_t rem = 0;
    for (size_t i = current.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | current[i];
      current[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    digits.push_back(static_cast<uint32_t>(rem));
    Normalize(&current);
  }
  std::string out;
  if (negative_) out += '-';
  out += std::to_string(digits.back());
  for (size_t i = digits.size() - 1; i-- > 0;) {
    std::string chunk = std::to_string(digits[i]);
    out += std::string(9 - chunk.size(), '0');
    out += chunk;
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace math
}  // namespace ipdb
