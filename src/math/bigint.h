#ifndef IPDB_MATH_BIGINT_H_
#define IPDB_MATH_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace ipdb {
namespace math {

/// Arbitrary-precision signed integer.
///
/// Representation: sign/magnitude with base-2^32 limbs (little-endian,
/// normalized so the most significant limb is non-zero; zero has no limbs
/// and non-negative sign). Value semantics; all operations are
/// out-of-place. Multiplication is schoolbook, division is Knuth
/// Algorithm D — adequate for the magnitudes arising from exact
/// probability computations in this library (hundreds of digits).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer (implicit: BigInt is a drop-in
  /// numeric type).
  BigInt(int64_t value);  // NOLINT

  /// Parses an optionally signed decimal string.
  static StatusOr<BigInt> FromString(const std::string& text);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }

  /// -1, 0 or +1.
  int sign() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Divisor must be non-zero.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  /// Computes quotient and remainder in one pass.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// Greatest common divisor (always non-negative).
  static BigInt Gcd(BigInt a, BigInt b);

  /// this^exponent for exponent >= 0 (square-and-multiply).
  BigInt Pow(uint64_t exponent) const;

  /// 2^exponent.
  static BigInt TwoToThe(uint64_t exponent);

  /// Closest double (may overflow to +-inf for huge values).
  double ToDouble() const;

  /// Value as int64_t if it fits.
  StatusOr<int64_t> ToInt64() const;

  /// Decimal representation.
  std::string ToString() const;

  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return !(a == b);
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

  /// Three-way comparison: negative, zero or positive.
  static int Compare(const BigInt& a, const BigInt& b);

 private:
  // Magnitude-only helpers; ignore signs.
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static void DivModMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              std::vector<uint32_t>* quotient,
                              std::vector<uint32_t>* remainder);
  static void Normalize(std::vector<uint32_t>* limbs);

  BigInt(bool negative, std::vector<uint32_t> limbs);

  bool negative_ = false;
  std::vector<uint32_t> limbs_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace math
}  // namespace ipdb

#endif  // IPDB_MATH_BIGINT_H_
