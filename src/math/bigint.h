#ifndef IPDB_MATH_BIGINT_H_
#define IPDB_MATH_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace ipdb {
namespace math {

/// Arbitrary-precision signed integer with a small-value fast path.
///
/// Representation: a tagged union of
///  * an *inline* `int64_t` (no heap allocation) — the common case for
///    the exact probability computations in this library, and
///  * a sign/magnitude *limb* form with base-2^32 limbs (little-endian,
///    normalized so the most significant limb is non-zero), used only
///    once a value no longer fits in an `int64_t`.
///
/// The representation is canonical: any value representable as an
/// `int64_t` is stored inline, so equality is field-wise and never has
/// to compare across forms. Arithmetic on two inline operands runs on
/// machine words with overflow checks and only *spills* to limbs when
/// the result leaves the inline range; limb arithmetic collapses back
/// to inline form whenever a result fits.
///
/// Value semantics. The compound operators (`+=`, `-=`, `*=`) mutate in
/// place and avoid reallocating limb storage where possible.
/// Multiplication is schoolbook with 64-bit accumulators below a
/// crossover and Karatsuba above it; division is Knuth Algorithm D;
/// GCD is binary (Stein) with a hybrid Euclid step for very unbalanced
/// operands.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer (implicit: BigInt is a drop-in
  /// numeric type). Always inline.
  BigInt(int64_t value) : small_(value) {}  // NOLINT

  /// Parses an optionally signed decimal string.
  static StatusOr<BigInt> FromString(const std::string& text);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  bool is_zero() const { return inline_ && small_ == 0; }
  bool is_one() const { return inline_ && small_ == 1; }
  bool is_negative() const { return inline_ ? small_ < 0 : negative_; }

  /// True when the value is stored inline (fits in int64_t). Exposed so
  /// exact-arithmetic hot paths (Rational) can stay on machine words.
  bool is_inline() const { return inline_; }
  /// The inline value; only meaningful when `is_inline()`.
  int64_t inline_value() const { return small_; }

  /// -1, 0 or +1.
  int sign() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Divisor must be non-zero;
  /// use `CheckedDiv`/`CheckedMod`/`DivMod` for untrusted divisors.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  /// Computes quotient and remainder in one pass. Returns
  /// InvalidArgument (leaving the outputs untouched) on a zero divisor
  /// instead of aborting.
  static Status DivMod(const BigInt& dividend, const BigInt& divisor,
                       BigInt* quotient, BigInt* remainder);

  /// Division/remainder that reject a zero divisor with a Status.
  static StatusOr<BigInt> CheckedDiv(const BigInt& dividend,
                                     const BigInt& divisor);
  static StatusOr<BigInt> CheckedMod(const BigInt& dividend,
                                     const BigInt& divisor);

  /// Greatest common divisor (always non-negative). Binary GCD.
  static BigInt Gcd(BigInt a, BigInt b);

  /// this^exponent for exponent >= 0 (square-and-multiply).
  BigInt Pow(uint64_t exponent) const;

  /// 2^exponent.
  static BigInt TwoToThe(uint64_t exponent);

  /// Closest double (may overflow to +-inf for huge values).
  double ToDouble() const;

  /// Value as int64_t if it fits.
  StatusOr<int64_t> ToInt64() const;

  /// Decimal representation.
  std::string ToString() const;

  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  friend bool operator==(const BigInt& a, const BigInt& b) {
    if (a.inline_ != b.inline_) return false;
    if (a.inline_) return a.small_ == b.small_;
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return !(a == b);
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

  /// Three-way comparison: negative, zero or positive.
  static int Compare(const BigInt& a, const BigInt& b);

 private:
  // Limb-form constructor; normalizes and collapses to inline form when
  // the magnitude fits in an int64_t.
  BigInt(bool negative, std::vector<uint32_t> limbs);

  // Builds the canonical representation of a signed 128-bit magnitude.
  static BigInt FromWide(bool negative, unsigned __int128 magnitude);

  // Fills a limb view of `v`'s magnitude without allocating (`buf`
  // backs inline values). Returns the limb pointer, sets *n and
  // *negative.
  static const uint32_t* MagnitudeView(const BigInt& v, uint32_t buf[2],
                                       size_t* n, bool* negative);

  // |small_| as an unsigned 64-bit magnitude (correct for INT64_MIN).
  uint64_t InlineMagnitude() const;

  // Replaces the inline form with an equivalent limb form (used before
  // running a limb kernel in place).
  void SpillToLimbs();

  // Collapses the limb form back to inline when the magnitude fits.
  void CollapseIfSmall();

  // Adds/subtracts `other`'s magnitude into this limb-form value given
  // the effective sign of the other operand.
  void AccumulateMagnitude(bool other_negative, const uint32_t* other,
                           size_t other_size);

  bool inline_ = true;
  int64_t small_ = 0;
  // Limb form only (inline_ == false):
  bool negative_ = false;
  std::vector<uint32_t> limbs_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

/// Thread-local governor on the exact-arithmetic multiply kernels,
/// enforcing ExecutionBudget::max_bigint_limbs.
///
/// BigInt's operators return values and cannot return Status, so the cap
/// works through a sticky flag instead of an error return: while a
/// ScopedLimbCap is active on the current thread, any limb-form multiply
/// whose result would exceed `max_limbs` base-2^32 limbs *latches the
/// exceeded flag and yields ±1* instead of allocating the product (1
/// rather than 0 so a suppressed denominator never divides by zero).
/// Results computed after the flag latches are therefore garbage by
/// design — a governed caller (e.g. kc::EvaluateCircuitExact) must poll
/// `exceeded()` at its checkpoints and discard everything computed under
/// a tripped cap, surfacing `ToStatus()` (kResourceExhausted) instead.
///
/// The inline-int64 fast path is never guarded (its operands are bounded
/// by machine words); only the limb kernels check the cap, so ungoverned
/// small-value arithmetic pays nothing. Scopes nest: the constructor
/// saves the previous cap and flag, the destructor restores both.
class ScopedLimbCap {
 public:
  /// Caps limb-form products at `max_limbs` limbs on this thread for the
  /// lifetime of the scope; `max_limbs <= 0` means uncapped (the scope
  /// still isolates the exceeded flag). Clears the flag on entry.
  explicit ScopedLimbCap(int64_t max_limbs);
  ScopedLimbCap(const ScopedLimbCap&) = delete;
  ScopedLimbCap& operator=(const ScopedLimbCap&) = delete;
  ~ScopedLimbCap();

  /// True once any multiply under this scope was suppressed by the cap.
  bool exceeded() const;

  /// Ok, or kResourceExhausted naming `what` once `exceeded()`.
  Status ToStatus(const char* what) const;

 private:
  int64_t prev_cap_;
  bool prev_exceeded_;
};

}  // namespace math
}  // namespace ipdb

#endif  // IPDB_MATH_BIGINT_H_
