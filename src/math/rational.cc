#include "math/rational.h"

#include <cmath>
#include <ostream>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace math {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  IPDB_CHECK(!denominator_.is_zero()) << "rational with zero denominator";
  Canonicalize();
}

void Rational::Canonicalize() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (gcd != BigInt(1)) {
    numerator_ /= gcd;
    denominator_ /= gcd;
  }
}

StatusOr<Rational> Rational::FromString(const std::string& text) {
  size_t slash = text.find('/');
  if (slash == std::string::npos) {
    StatusOr<BigInt> value = BigInt::FromString(text);
    if (!value.ok()) return value.status();
    return Rational(std::move(value).value());
  }
  StatusOr<BigInt> numerator = BigInt::FromString(text.substr(0, slash));
  if (!numerator.ok()) return numerator.status();
  StatusOr<BigInt> denominator = BigInt::FromString(text.substr(slash + 1));
  if (!denominator.ok()) return denominator.status();
  if (denominator.value().is_zero()) {
    return InvalidArgumentError("zero denominator in rational: '" + text +
                                "'");
  }
  return Rational(std::move(numerator).value(),
                  std::move(denominator).value());
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(
      numerator_ * other.denominator_ - other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  IPDB_CHECK(!other.is_zero()) << "rational division by zero";
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

Rational Rational::Pow(int64_t exponent) const {
  if (exponent >= 0) {
    return Rational(numerator_.Pow(static_cast<uint64_t>(exponent)),
                    denominator_.Pow(static_cast<uint64_t>(exponent)));
  }
  IPDB_CHECK(!is_zero()) << "0 to a negative power";
  uint64_t e = static_cast<uint64_t>(-exponent);
  return Rational(denominator_.Pow(e), numerator_.Pow(e));
}

double Rational::ToDouble() const {
  // Shift so that the quotient carries ~64 bits of precision even when the
  // plain numerator/denominator doubles would overflow or lose precision.
  size_t num_bits = numerator_.BitLength();
  size_t den_bits = denominator_.BitLength();
  if (num_bits <= 500 && den_bits <= 500) {
    return numerator_.ToDouble() / denominator_.ToDouble();
  }
  int64_t shift = static_cast<int64_t>(den_bits) - static_cast<int64_t>(num_bits) + 64;
  BigInt scaled = shift >= 0
                      ? numerator_ * BigInt::TwoToThe(static_cast<uint64_t>(shift))
                      : numerator_ / BigInt::TwoToThe(static_cast<uint64_t>(-shift));
  double quotient = (scaled / denominator_).ToDouble();
  return quotient * std::pow(2.0, static_cast<double>(-shift));
}

std::string Rational::ToString() const {
  if (denominator_ == BigInt(1)) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

int Rational::Compare(const Rational& a, const Rational& b) {
  return BigInt::Compare(a.numerator_ * b.denominator_,
                         b.numerator_ * a.denominator_);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace math
}  // namespace ipdb
