#include "math/rational.h"

#include <cmath>
#include <ostream>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace math {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  IPDB_CHECK(!denominator_.is_zero()) << "rational with zero denominator";
  Canonicalize();
}

StatusOr<Rational> Rational::Create(BigInt numerator, BigInt denominator) {
  if (denominator.is_zero()) {
    return InvalidArgumentError("rational with zero denominator: " +
                                numerator.ToString() + "/0");
  }
  return Rational(std::move(numerator), std::move(denominator));
}

void Rational::Canonicalize() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  if (denominator_.is_one()) return;
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (!gcd.is_one()) {
    numerator_ /= gcd;
    denominator_ /= gcd;
  }
}

StatusOr<Rational> Rational::FromString(const std::string& text) {
  size_t slash = text.find('/');
  if (slash == std::string::npos) {
    StatusOr<BigInt> value = BigInt::FromString(text);
    if (!value.ok()) return value.status();
    return Rational(std::move(value).value());
  }
  StatusOr<BigInt> numerator = BigInt::FromString(text.substr(0, slash));
  if (!numerator.ok()) return numerator.status();
  StatusOr<BigInt> denominator = BigInt::FromString(text.substr(slash + 1));
  if (!denominator.ok()) return denominator.status();
  if (denominator.value().is_zero()) {
    return InvalidArgumentError("zero denominator in rational: '" + text +
                                "'");
  }
  return Create(std::move(numerator).value(),
                std::move(denominator).value());
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

void Rational::AddSigned(const Rational& other, bool negate) {
  if (&other == this) {
    Rational copy = other;
    AddSigned(copy, negate);
    return;
  }
  const BigInt& on = other.numerator_;
  const BigInt& od = other.denominator_;
  const bool d1_one = denominator_.is_one();
  const bool d2_one = od.is_one();
  if (d2_one) {
    if (d1_one) {
      // Integer ± integer.
      if (negate) numerator_ -= on; else numerator_ += on;
      return;
    }
    // a/d ± c = (a ± c·d)/d; gcd(a ± c·d, d) = gcd(a, d) = 1.
    BigInt t = on * denominator_;
    if (negate) numerator_ -= t; else numerator_ += t;
    return;
  }
  if (d1_one) {
    // a ± n/d = (a·d ± n)/d; gcd(a·d ± n, d) = gcd(n, d) = 1.
    numerator_ *= od;
    if (negate) numerator_ -= on; else numerator_ += on;
    denominator_ = od;
    return;
  }
  if (denominator_ == od) {
    // Equal denominators: only the (small) numerator sum can share a
    // factor with d.
    if (negate) numerator_ -= on; else numerator_ += on;
    if (numerator_.is_zero()) {
      denominator_ = BigInt(1);
      return;
    }
    BigInt gcd = BigInt::Gcd(numerator_, denominator_);
    if (!gcd.is_one()) {
      numerator_ /= gcd;
      denominator_ /= gcd;
    }
    return;
  }
  BigInt g = BigInt::Gcd(denominator_, od);
  if (g.is_one()) {
    // Coprime denominators: the result is canonical by construction —
    // any prime of d1·d2 divides exactly one of the cross terms.
    numerator_ *= od;
    BigInt t = on * denominator_;
    if (negate) numerator_ -= t; else numerator_ += t;
    denominator_ *= od;
    return;
  }
  // General Henrici addition: reduce through g = gcd(d1, d2); only
  // gcd(t, g) can still cancel.
  BigInt d1g = denominator_ / g;
  BigInt d2g = od / g;
  BigInt t = numerator_ * d2g;
  BigInt u = on * d1g;
  if (negate) t -= u; else t += u;
  if (t.is_zero()) {
    numerator_ = BigInt(0);
    denominator_ = BigInt(1);
    return;
  }
  BigInt g2 = BigInt::Gcd(t, g);
  if (g2.is_one()) {
    numerator_ = std::move(t);
    denominator_ = d1g * od;  // (d1/g)·d2
  } else {
    numerator_ = t / g2;
    denominator_ = d1g * (od / g2);  // (d1/g)·(d2/g2)
  }
}

Rational& Rational::operator+=(const Rational& other) {
  AddSigned(other, /*negate=*/false);
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  AddSigned(other, /*negate=*/true);
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  if (is_zero() || other.is_zero()) {
    numerator_ = BigInt(0);
    denominator_ = BigInt(1);
    return *this;
  }
  if (denominator_.is_one() && other.denominator_.is_one()) {
    numerator_ *= other.numerator_;
    return *this;
  }
  // Cross-reduction: divide out gcd(n1, d2) and gcd(n2, d1) up front;
  // the remaining product is coprime, so no final GCD is needed.
  BigInt on = other.numerator_;
  BigInt od = other.denominator_;
  BigInt g1 = BigInt::Gcd(numerator_, od);
  if (!g1.is_one()) {
    numerator_ /= g1;
    od /= g1;
  }
  BigInt g2 = BigInt::Gcd(on, denominator_);
  if (!g2.is_one()) {
    on /= g2;
    denominator_ /= g2;
  }
  numerator_ *= on;
  denominator_ *= od;
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  IPDB_CHECK(!other.is_zero()) << "rational division by zero";
  if (&other == this) {
    numerator_ = BigInt(1);
    denominator_ = BigInt(1);
    return *this;
  }
  if (is_zero()) return *this;
  // a/b ÷ c/d = (a·d)/(b·c), cross-reduced like multiplication.
  BigInt on = other.numerator_;
  BigInt od = other.denominator_;
  BigInt g1 = BigInt::Gcd(numerator_, on);
  if (!g1.is_one()) {
    numerator_ /= g1;
    on /= g1;
  }
  BigInt g2 = BigInt::Gcd(od, denominator_);
  if (!g2.is_one()) {
    od /= g2;
    denominator_ /= g2;
  }
  numerator_ *= od;
  denominator_ *= on;
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  return *this;
}

Rational Rational::operator+(const Rational& other) const {
  Rational result = *this;
  result += other;
  return result;
}

Rational Rational::operator-(const Rational& other) const {
  Rational result = *this;
  result -= other;
  return result;
}

Rational Rational::operator*(const Rational& other) const {
  Rational result = *this;
  result *= other;
  return result;
}

Rational Rational::operator/(const Rational& other) const {
  Rational result = *this;
  result /= other;
  return result;
}

StatusOr<Rational> Rational::CheckedDiv(const Rational& dividend,
                                        const Rational& divisor) {
  if (divisor.is_zero()) {
    return InvalidArgumentError("rational division by zero: " +
                                dividend.ToString() + " / 0");
  }
  Rational result = dividend;
  result /= divisor;
  return result;
}

Rational Rational::Pow(int64_t exponent) const {
  // gcd(n, d) = 1 implies gcd(n^e, d^e) = 1: both results are canonical
  // without re-reduction.
  if (exponent >= 0) {
    uint64_t e = static_cast<uint64_t>(exponent);
    return Rational(numerator_.Pow(e), denominator_.Pow(e), CanonicalTag());
  }
  IPDB_CHECK(!is_zero()) << "0 to a negative power";
  uint64_t e = static_cast<uint64_t>(-exponent);
  BigInt n = denominator_.Pow(e);
  BigInt d = numerator_.Pow(e);
  if (d.is_negative()) {
    n = -n;
    d = -d;
  }
  return Rational(std::move(n), std::move(d), CanonicalTag());
}

double Rational::ToDouble() const {
  if (numerator_.is_inline() && denominator_.is_inline()) {
    return static_cast<double>(numerator_.inline_value()) /
           static_cast<double>(denominator_.inline_value());
  }
  // Shift so that the quotient carries ~64 bits of precision even when the
  // plain numerator/denominator doubles would overflow or lose precision.
  size_t num_bits = numerator_.BitLength();
  size_t den_bits = denominator_.BitLength();
  if (num_bits <= 500 && den_bits <= 500) {
    return numerator_.ToDouble() / denominator_.ToDouble();
  }
  int64_t shift = static_cast<int64_t>(den_bits) - static_cast<int64_t>(num_bits) + 64;
  BigInt scaled = shift >= 0
                      ? numerator_ * BigInt::TwoToThe(static_cast<uint64_t>(shift))
                      : numerator_ / BigInt::TwoToThe(static_cast<uint64_t>(-shift));
  double quotient = (scaled / denominator_).ToDouble();
  return quotient * std::pow(2.0, static_cast<double>(-shift));
}

std::string Rational::ToString() const {
  if (denominator_.is_one()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

int Rational::Compare(const Rational& a, const Rational& b) {
  int a_sign = a.sign();
  int b_sign = b.sign();
  if (a_sign != b_sign) return a_sign < b_sign ? -1 : 1;
  if (a.denominator_ == b.denominator_) {
    return BigInt::Compare(a.numerator_, b.numerator_);
  }
  if (a.numerator_.is_inline() && a.denominator_.is_inline() &&
      b.numerator_.is_inline() && b.denominator_.is_inline()) {
    // Cross products of int64 values fit in 128 bits.
    __int128 lhs = static_cast<__int128>(a.numerator_.inline_value()) *
                   b.denominator_.inline_value();
    __int128 rhs = static_cast<__int128>(b.numerator_.inline_value()) *
                   a.denominator_.inline_value();
    if (lhs != rhs) return lhs < rhs ? -1 : 1;
    return 0;
  }
  return BigInt::Compare(a.numerator_ * b.denominator_,
                         b.numerator_ * a.denominator_);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace math
}  // namespace ipdb
