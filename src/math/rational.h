#ifndef IPDB_MATH_RATIONAL_H_
#define IPDB_MATH_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "math/bigint.h"
#include "util/status.h"

namespace ipdb {
namespace math {

/// Arbitrary-precision rational number, always kept in canonical form
/// (gcd(numerator, denominator) == 1, denominator > 0, zero is 0/1).
///
/// Used wherever the paper's statements are exact equalities between
/// probability distributions (Theorem 4.1, Lemma 5.7, the finite
/// completeness theorem): world probabilities are computed and compared
/// with no rounding at all.
///
/// Normalization uses binary GCD with the Henrici fast paths: integer
/// operands and additions over equal or coprime denominators skip the
/// reduction entirely (canonicality is implied), multiplication cross-
/// reduces gcd(n1,d2) and gcd(n2,d1) so the product needs no final GCD.
/// The compound operators (`+=`, `-=`, `*=`, `/=`) accumulate in place.
class Rational {
 public:
  /// Zero.
  Rational() : numerator_(0), denominator_(1) {}

  /// Conversion from an integer (implicit: Rational is a drop-in numeric
  /// type).
  Rational(int64_t value) : numerator_(value), denominator_(1) {}  // NOLINT
  Rational(BigInt value)  // NOLINT
      : numerator_(std::move(value)), denominator_(1) {}

  /// numerator / denominator; denominator must be non-zero (use
  /// `Create` for untrusted input).
  Rational(BigInt numerator, BigInt denominator);

  /// numerator / denominator; rejects a zero denominator with a Status
  /// instead of aborting.
  static StatusOr<Rational> Create(BigInt numerator, BigInt denominator);

  /// Parses "a/b" or "a" with optional signs.
  static StatusOr<Rational> FromString(const std::string& text);

  /// The exact value of an int ratio, e.g. Ratio(1, 3).
  static Rational Ratio(int64_t numerator, int64_t denominator) {
    return Rational(BigInt(numerator), BigInt(denominator));
  }

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  bool is_negative() const { return numerator_.is_negative(); }
  int sign() const { return numerator_.sign(); }

  Rational operator-() const;
  Rational Abs() const;

  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Division; other must be non-zero (use `CheckedDiv` for untrusted
  /// divisors).
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  /// Division that rejects a zero divisor with a Status.
  static StatusOr<Rational> CheckedDiv(const Rational& dividend,
                                       const Rational& divisor);

  /// this^exponent; negative exponents require a non-zero value.
  Rational Pow(int64_t exponent) const;

  /// Nearest double approximation.
  double ToDouble() const;

  /// "a/b", or "a" when the denominator is 1.
  std::string ToString() const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return Compare(a, b) >= 0;
  }

  static int Compare(const Rational& a, const Rational& b);

 private:
  // Tag for constructing from values already known to be canonical
  // (coprime, positive denominator) — skips the GCD.
  struct CanonicalTag {};
  Rational(BigInt numerator, BigInt denominator, CanonicalTag)
      : numerator_(std::move(numerator)),
        denominator_(std::move(denominator)) {}

  // *this = *this ± other with all Henrici fast paths.
  void AddSigned(const Rational& other, bool negate);

  void Canonicalize();

  BigInt numerator_;
  BigInt denominator_;
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace math
}  // namespace ipdb

#endif  // IPDB_MATH_RATIONAL_H_
