#include "obs/context.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace ipdb {
namespace obs {

uint64_t NewTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NewSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TraceStore::TraceData {
  std::vector<StoredSpan> spans;
  bool finished = false;
  bool truncated = false;
};

TraceStore::TraceStore() = default;
TraceStore::~TraceStore() = default;

TraceStore& TraceStore::Global() {
  static TraceStore* store = new TraceStore();
  return *store;
}

void TraceStore::Begin(uint64_t trace_id) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.count(trace_id) != 0) return;
  while (traces_.size() >= kMaxTraces && !order_.empty()) {
    traces_.erase(order_.front());
    order_.pop_front();
  }
  traces_[trace_id] = std::make_unique<TraceData>();
  order_.push_back(trace_id);
}

void TraceStore::Record(uint64_t trace_id, const StoredSpan& span) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) return;
  TraceData& data = *it->second;
  if (data.spans.size() >= kMaxSpansPerTrace) {
    data.truncated = true;
    return;
  }
  data.spans.push_back(span);
}

void TraceStore::Finish(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it != traces_.end()) it->second->finished = true;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  order_.clear();
}

namespace {

void AppendSpanJson(std::ostringstream& out, const StoredSpan& span,
                    const std::vector<std::vector<size_t>>& children,
                    const std::vector<StoredSpan>& spans, size_t index) {
  out << "{\"name\": \"" << JsonEscape(span.name ? span.name : "") << "\""
      << ", \"category\": \"" << JsonEscape(span.category ? span.category : "")
      << "\", \"span\": " << span.span_id
      << ", \"parent\": " << span.parent_span_id
      << ", \"startNs\": " << span.start_ns
      << ", \"durationNs\": " << span.duration_ns << ", \"tid\": " << span.tid
      << ", \"children\": [";
  const std::vector<size_t>& kids = children[index];
  for (size_t k = 0; k < kids.size(); ++k) {
    if (k != 0) out << ", ";
    AppendSpanJson(out, spans[kids[k]], children, spans, kids[k]);
  }
  out << "]}";
}

}  // namespace

std::string TraceStore::TreeJson(uint64_t trace_id) const {
  std::vector<StoredSpan> spans;
  bool finished = false;
  bool truncated = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(trace_id);
    if (it == traces_.end()) return "";
    spans = it->second->spans;
    finished = it->second->finished;
    truncated = it->second->truncated;
  }
  // Sort by start so children come out in temporal order, then index
  // parents. Spans with a missing parent (e.g. dropped past the cap)
  // surface as additional roots instead of vanishing.
  std::sort(spans.begin(), spans.end(),
            [](const StoredSpan& a, const StoredSpan& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.duration_ns > b.duration_ns;
            });
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].span_id, i);
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    auto parent = by_id.find(spans[i].parent_span_id);
    if (spans[i].parent_span_id != 0 && parent != by_id.end() &&
        parent->second != i) {
      children[parent->second].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::ostringstream out;
  out << "{\"schema\": \"ipdb-trace-tree-v1\", \"trace\": " << trace_id
      << ", \"finished\": " << (finished ? "true" : "false")
      << ", \"truncated\": " << (truncated ? "true" : "false")
      << ", \"spanCount\": " << spans.size() << ", \"roots\": [";
  for (size_t r = 0; r < roots.size(); ++r) {
    if (r != 0) out << ", ";
    AppendSpanJson(out, spans[roots[r]], children, spans, roots[r]);
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace ipdb
