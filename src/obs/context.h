#ifndef IPDB_OBS_CONTEXT_H_
#define IPDB_OBS_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ipdb {
namespace obs {

/// Request-scoped trace context: a 64-bit trace id plus the id of the
/// span that is currently "open" on this thread, carried in a
/// thread-local so RAII spans can attach themselves to the request that
/// created them even after the work hops across ThreadPool::Post /
/// ParallelFor boundaries (the pool captures the submitter's context
/// into the task closure and restores it in the worker).
///
/// `sampled` is decided head-based, once, when the request enters the
/// system (per-tenant sampling rate): sampled requests additionally
/// record their spans into the bounded TraceStore so the daemon can
/// serve `TRACE <id>` after the request finishes. Unsampled requests
/// still stamp trace/span ids onto Chrome-trace events whenever the
/// trace recorder is enabled, so offline traces stay connectable.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no active request context
  uint64_t span_id = 0;   // innermost open span (parent for new spans)
  bool sampled = false;   // record spans into TraceStore

  bool active() const { return trace_id != 0; }
};

namespace internal {
/// The thread's current context. Zero-initialized (constant init, no
/// guard) so reading it on an un-instrumented thread costs one TLS load.
inline thread_local TraceContext g_trace_context;
}  // namespace internal

/// The context new spans on this thread attach to (copy; cheap POD).
inline TraceContext CurrentTraceContext() { return internal::g_trace_context; }

/// Process-unique non-zero ids. Trace ids and span ids draw from
/// independent counters; both stay far below 2^53 so they survive a
/// round-trip through JSON numbers.
uint64_t NewTraceId();
uint64_t NewSpanId();

/// Installs `context` as the thread's current context for the enclosing
/// scope and restores the previous one on destruction. Used at request
/// entry (Engine::Submit) and inside pool-task wrappers.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context)
      : saved_(internal::g_trace_context) {
    internal::g_trace_context = context;
  }
  ~ScopedTraceContext() { internal::g_trace_context = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One finished span as kept by the TraceStore (names must be string
/// literals, same contract as TraceEvent).
struct StoredSpan {
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  const char* name = nullptr;
  const char* category = nullptr;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  int tid = 0;
};

/// Bounded in-memory store of span trees for sampled requests, keyed by
/// trace id, serving the daemon's `TRACE <id>` command. Entirely off the
/// un-sampled hot path: only spans whose thread context says
/// `sampled` ever take the store mutex.
///
/// Bounds: at most kMaxTraces live traces (oldest evicted FIFO) and
/// kMaxSpansPerTrace spans per trace (excess spans are dropped and the
/// trace is marked truncated), so a busy daemon cannot grow without
/// limit.
class TraceStore {
 public:
  static constexpr size_t kMaxTraces = 256;
  static constexpr size_t kMaxSpansPerTrace = 2048;

  // Out-of-line so TraceData can stay private to the .cc.
  TraceStore();
  ~TraceStore();
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  static TraceStore& Global();

  /// Registers `trace_id`, evicting the oldest trace when full.
  void Begin(uint64_t trace_id);
  /// Appends a finished span; unknown (never-begun or evicted) trace ids
  /// are dropped silently.
  void Record(uint64_t trace_id, const StoredSpan& span);
  /// Marks the trace finished (TRACE replies include the flag, so
  /// clients can tell an in-flight tree from a complete one).
  void Finish(uint64_t trace_id);

  /// Nested single-line JSON span tree ({"schema": "ipdb-trace-tree-v1",
  /// ...}), or an empty string when the trace id is unknown. Children
  /// are sorted by start time; spans whose parent is missing surface as
  /// extra roots rather than disappearing.
  std::string TreeJson(uint64_t trace_id) const;

  /// Number of traces currently held (tests).
  size_t size() const;
  /// Drops every stored trace (tests / bench isolation).
  void Clear();

 private:
  struct TraceData;
  mutable std::mutex mu_;
  // Open-addressed-enough for 256 entries: a vector scanned linearly
  // would also do, but the map keeps Record O(1) under churn.
  std::unordered_map<uint64_t, std::unique_ptr<TraceData>> traces_;
  std::deque<uint64_t> order_;  // insertion order, for FIFO eviction
};

}  // namespace obs
}  // namespace ipdb

#endif  // IPDB_OBS_CONTEXT_H_
