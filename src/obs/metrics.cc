#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ipdb {
namespace obs {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  int bits = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return std::min(bits, kBuckets - 1);
}

int64_t Histogram::BucketLowerBound(int bucket) {
  return bucket <= 0 ? 0 : int64_t{1} << (bucket - 1);
}

HistogramStats Histogram::Read() const {
  HistogramStats stats;
  stats.min = INT64_MAX;
  stats.max = INT64_MIN;
  int64_t merged_buckets[kBuckets] = {};
  for (const Shard& shard : shards_) {
    stats.count += shard.count.load(std::memory_order_relaxed);
    stats.sum += shard.sum.load(std::memory_order_relaxed);
    stats.min = std::min(stats.min, shard.min.load(std::memory_order_relaxed));
    stats.max = std::max(stats.max, shard.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b) {
      merged_buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (stats.count == 0) {
    stats.min = 0;
    stats.max = 0;
  }
  for (int b = 0; b < kBuckets; ++b) {
    if (merged_buckets[b] != 0) {
      stats.buckets.emplace_back(BucketLowerBound(b), merged_buckets[b]);
    }
  }
  return stats;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(INT64_MAX, std::memory_order_relaxed);
    shard.max.store(INT64_MIN, std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Read());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramStats* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, stats] : histograms) {
    if (n == name) return &stats;
  }
  return nullptr;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"schema\": \"ipdb-metrics-v1\", \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << JsonEscape(counters[i].first)
        << "\": " << counters[i].second;
  }
  out << "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << JsonEscape(gauges[i].first)
        << "\": " << gauges[i].second;
  }
  out << "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramStats& h = histograms[i].second;
    out << (i == 0 ? "" : ", ") << '"' << JsonEscape(histograms[i].first)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"mean\": " << h.Mean() << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << '[' << h.buckets[b].first << ", "
          << h.buckets[b].second << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace obs
}  // namespace ipdb
