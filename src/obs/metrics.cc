#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>

namespace ipdb {
namespace obs {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  int bits = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return std::min(bits, kBuckets - 1);
}

int64_t Histogram::BucketLowerBound(int bucket) {
  return bucket <= 0 ? 0 : int64_t{1} << (bucket - 1);
}

HistogramStats Histogram::Read() const {
  HistogramStats stats;
  stats.min = INT64_MAX;
  stats.max = INT64_MIN;
  int64_t merged_buckets[kBuckets] = {};
  for (const Shard& shard : shards_) {
    stats.count += shard.count.load(std::memory_order_relaxed);
    stats.sum += shard.sum.load(std::memory_order_relaxed);
    stats.min = std::min(stats.min, shard.min.load(std::memory_order_relaxed));
    stats.max = std::max(stats.max, shard.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b) {
      merged_buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (stats.count == 0) {
    stats.min = 0;
    stats.max = 0;
  }
  for (int b = 0; b < kBuckets; ++b) {
    if (merged_buckets[b] != 0) {
      stats.buckets.emplace_back(BucketLowerBound(b), merged_buckets[b]);
    }
  }
  return stats;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(INT64_MAX, std::memory_order_relaxed);
    shard.max.store(INT64_MIN, std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

namespace {

/// The label interner: one mutex-guarded table for the whole process.
/// Interning is cold (tenant registration, function-local statics); the
/// deque keeps LabelValue references stable as the table grows.
struct LabelTable {
  std::mutex mu;
  std::unordered_map<std::string, LabelId> ids;
  std::deque<std::string> values;
};

LabelTable& Labels() {
  static LabelTable* table = new LabelTable();
  return *table;
}

}  // namespace

LabelId InternLabel(const std::string& value) {
  LabelTable& table = Labels();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.ids.find(value);
  if (it != table.ids.end()) return it->second;
  const LabelId id = static_cast<LabelId>(table.values.size());
  table.values.push_back(value);
  table.ids.emplace(value, id);
  return id;
}

const std::string& LabelValue(LabelId id) {
  LabelTable& table = Labels();
  std::lock_guard<std::mutex> lock(table.mu);
  static const std::string* unknown = new std::string("<unknown-label>");
  if (id >= table.values.size()) return *unknown;
  return table.values[id];
}

Counter& CounterFamily::Grow(LabelId id) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  const Slots* current = slots_.load(std::memory_order_acquire);
  if (id < current->by_id.size() && current->by_id[id] != nullptr) {
    return *current->by_id[id];  // another thread grew it first
  }
  auto next = std::make_unique<Slots>();
  next->by_id = current->by_id;
  if (next->by_id.size() <= id) next->by_id.resize(id + 1, nullptr);
  owned_.push_back(std::make_unique<Counter>());
  next->by_id[id] = owned_.back().get();
  Counter& cell = *next->by_id[id];
  retired_.emplace_back(current);
  slots_.store(next.release(), std::memory_order_release);
  return cell;
}

std::vector<std::pair<LabelId, int64_t>> CounterFamily::Read() const {
  const Slots* slots = slots_.load(std::memory_order_acquire);
  std::vector<std::pair<LabelId, int64_t>> out;
  for (size_t id = 0; id < slots->by_id.size(); ++id) {
    if (slots->by_id[id] != nullptr) {
      out.emplace_back(static_cast<LabelId>(id), slots->by_id[id]->Value());
    }
  }
  return out;
}

void CounterFamily::Reset() {
  const Slots* slots = slots_.load(std::memory_order_acquire);
  for (Counter* cell : slots->by_id) {
    if (cell != nullptr) cell->Reset();
  }
}

Histogram& HistogramFamily::Grow(LabelId id) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  const Slots* current = slots_.load(std::memory_order_acquire);
  if (id < current->by_id.size() && current->by_id[id] != nullptr) {
    return *current->by_id[id];
  }
  auto next = std::make_unique<Slots>();
  next->by_id = current->by_id;
  if (next->by_id.size() <= id) next->by_id.resize(id + 1, nullptr);
  owned_.push_back(std::make_unique<Histogram>());
  next->by_id[id] = owned_.back().get();
  Histogram& cell = *next->by_id[id];
  retired_.emplace_back(current);
  slots_.store(next.release(), std::memory_order_release);
  return cell;
}

std::vector<std::pair<LabelId, HistogramStats>> HistogramFamily::Read() const {
  const Slots* slots = slots_.load(std::memory_order_acquire);
  std::vector<std::pair<LabelId, HistogramStats>> out;
  for (size_t id = 0; id < slots->by_id.size(); ++id) {
    if (slots->by_id[id] != nullptr) {
      out.emplace_back(static_cast<LabelId>(id), slots->by_id[id]->Read());
    }
  }
  return out;
}

void HistogramFamily::Reset() {
  const Slots* slots = slots_.load(std::memory_order_acquire);
  for (Histogram* cell : slots->by_id) {
    if (cell != nullptr) cell->Reset();
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

CounterFamily& MetricsRegistry::GetCounterFamily(const std::string& name,
                                                 const std::string& label_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counter_families_[name];
  if (slot == nullptr) slot = std::make_unique<CounterFamily>(name, label_key);
  return *slot;
}

HistogramFamily& MetricsRegistry::GetHistogramFamily(
    const std::string& name, const std::string& label_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histogram_families_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramFamily>(name, label_key);
  }
  return *slot;
}

namespace {

std::string DecoratedName(const std::string& name, const std::string& key,
                          const std::string& value) {
  return name + "{" + key + "=\"" + value + "\"}";
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Read());
  }
  for (const auto& [name, family] : counter_families_) {
    for (const auto& [id, value] : family->Read()) {
      const std::string& label = LabelValue(id);
      snapshot.counter_families.push_back(
          {name, family->label_key(), label, value});
      snapshot.counters.emplace_back(
          DecoratedName(name, family->label_key(), label), value);
    }
  }
  for (const auto& [name, family] : histogram_families_) {
    for (auto& [id, stats] : family->Read()) {
      const std::string& label = LabelValue(id);
      snapshot.histogram_families.push_back(
          {name, family->label_key(), label, stats});
      snapshot.histograms.emplace_back(
          DecoratedName(name, family->label_key(), label), std::move(stats));
    }
  }
  // The registry maps are unordered; sort every exported view so JSON /
  // Prometheus output is byte-stable across runs (obs_test pins this).
  auto by_first = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_first);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_first);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_first);
  auto by_cell = [](const auto& a, const auto& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.label_value < b.label_value;
  };
  std::sort(snapshot.counter_families.begin(), snapshot.counter_families.end(),
            by_cell);
  std::sort(snapshot.histogram_families.begin(),
            snapshot.histogram_families.end(), by_cell);
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, family] : counter_families_) family->Reset();
  for (auto& [name, family] : histogram_families_) family->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramStats* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, stats] : histograms) {
    if (n == name) return &stats;
  }
  return nullptr;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"schema\": \"ipdb-metrics-v1\", \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << JsonEscape(counters[i].first)
        << "\": " << counters[i].second;
  }
  out << "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << JsonEscape(gauges[i].first)
        << "\": " << gauges[i].second;
  }
  out << "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramStats& h = histograms[i].second;
    out << (i == 0 ? "" : ", ") << '"' << JsonEscape(histograms[i].first)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"mean\": " << h.Mean() << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << '[' << h.buckets[b].first << ", "
          << h.buckets[b].second << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string PromLabel(const std::string& key, const std::string& value) {
  return PromName(key) + "=\"" + JsonEscape(value) + "\"";
}

void AppendPromHistogram(std::ostringstream& out, const std::string& prom_name,
                         const std::string& label,  // "" or key="value"
                         const HistogramStats& stats) {
  // Power-of-two buckets: bucket with lower bound L >= 1 covers
  // [L, 2L - 1], so its inclusive upper bound is 2L - 1; the <= 0 bucket
  // reports le="0". Counts are cumulative per the exposition format.
  int64_t cumulative = 0;
  for (const auto& [lower, count] : stats.buckets) {
    cumulative += count;
    const long long le = lower <= 0 ? 0 : 2 * lower - 1;
    out << prom_name << "_bucket{";
    if (!label.empty()) out << label << ",";
    out << "le=\"" << le << "\"} " << cumulative << "\n";
  }
  out << prom_name << "_bucket{";
  if (!label.empty()) out << label << ",";
  out << "le=\"+Inf\"} " << stats.count << "\n";
  out << prom_name << "_sum";
  if (!label.empty()) out << "{" << label << "}";
  out << " " << stats.sum << "\n";
  out << prom_name << "_count";
  if (!label.empty()) out << "{" << label << "}";
  out << " " << stats.count << "\n";
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  // Group samples under one # TYPE header per metric name. The maps are
  // keyed by the sanitized name so collisions after sanitizing still
  // produce a single header.
  std::map<std::string, std::ostringstream> counter_blocks;
  std::map<std::string, std::ostringstream> gauge_blocks;
  std::map<std::string, std::ostringstream> histogram_blocks;

  for (const auto& [name, value] : counters) {
    if (name.find('{') != std::string::npos) continue;  // decorated alias
    counter_blocks[PromName(name)] << PromName(name) << " " << value << "\n";
  }
  for (const LabeledCounter& cell : counter_families) {
    counter_blocks[PromName(cell.name)]
        << PromName(cell.name) << "{"
        << PromLabel(cell.label_key, cell.label_value) << "} " << cell.value
        << "\n";
  }
  for (const auto& [name, value] : gauges) {
    gauge_blocks[PromName(name)] << PromName(name) << " " << value << "\n";
  }
  for (const auto& [name, stats] : histograms) {
    if (name.find('{') != std::string::npos) continue;
    AppendPromHistogram(histogram_blocks[PromName(name)], PromName(name), "",
                        stats);
  }
  for (const LabeledHistogram& cell : histogram_families) {
    AppendPromHistogram(histogram_blocks[PromName(cell.name)],
                        PromName(cell.name),
                        PromLabel(cell.label_key, cell.label_value),
                        cell.stats);
  }

  std::ostringstream out;
  for (const auto& [name, block] : counter_blocks) {
    out << "# TYPE " << name << " counter\n" << block.str();
  }
  for (const auto& [name, block] : gauge_blocks) {
    out << "# TYPE " << name << " gauge\n" << block.str();
  }
  for (const auto& [name, block] : histogram_blocks) {
    out << "# TYPE " << name << " histogram\n" << block.str();
  }
  return out.str();
}

}  // namespace obs
}  // namespace ipdb
