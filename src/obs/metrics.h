#ifndef IPDB_OBS_METRICS_H_
#define IPDB_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ipdb {
namespace obs {

/// Process-wide metrics: named counters, gauges and histograms held in a
/// registry and merged into an immutable snapshot on demand.
///
/// Hot-path cost model: an update is one relaxed atomic RMW on a
/// per-thread *shard* (a cache-line-padded slot chosen by a thread-local
/// index), so concurrent writers on different threads touch different
/// cache lines and pay no contention. All merging — summing shards,
/// joining histogram buckets — happens at snapshot time, off the hot
/// path. Relaxed ordering is sufficient because metric values are
/// monotone tallies, not synchronization; a snapshot taken while writers
/// are running may lag individual increments but equals the exact total
/// once the writing threads are joined (the concurrency tests pin this
/// down).

/// Number of per-metric shards. Threads are striped across shards by a
/// thread-local slot, so up to kMetricShards threads update disjoint
/// cache lines.
inline constexpr int kMetricShards = 16;

/// The shard this thread updates. Slots are handed out round-robin at
/// first use, so the first kMetricShards threads get private shards.
inline int MetricShardIndex() {
  static std::atomic<unsigned> next_slot{0};
  thread_local const unsigned slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(slot % kMetricShards);
}

/// Nanoseconds on the monotonic clock (timestamps for spans and timers).
inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A monotone counter. Increment is one relaxed add on this thread's
/// shard; Value sums the shards.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    shards_[MetricShardIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Zeroes every shard (registry Reset; references stay valid).
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// A last-write-wins instantaneous value (queue depths, cache entry
/// counts). Set/Add are single relaxed atomics — gauges are updated at
/// batch granularity, not per-item, so sharding would only blur the
/// "current value" reading.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged histogram state as reported by a snapshot.
struct HistogramStats {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // 0 when count == 0
  int64_t max = 0;
  /// (inclusive lower bound, count) for every non-empty bucket, in
  /// increasing bound order. Bucket b >= 1 covers [2^(b-1), 2^b); bucket
  /// 0 covers values <= 0... see Histogram::BucketIndex.
  std::vector<std::pair<int64_t, int64_t>> buckets;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// A histogram over non-negative int64 values (typically nanoseconds)
/// with power-of-two buckets: bucket 0 holds values <= 1 (including the
/// clamped negatives), bucket b >= 1 holds [2^(b-1), 2^b) shifted by one
/// so that bucket(v) = bit_width(v). 48 buckets cover ~39 hours in ns.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Observe(int64_t value) {
    if (value < 0) value = 0;
    Shard& shard = shards_[MetricShardIndex()];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    AtomicMin(&shard.min, value);
    AtomicMax(&shard.max, value);
  }

  HistogramStats Read() const;
  void Reset();

  /// bit_width(value), capped: 0 -> 0, 1 -> 1, [2,3] -> 2, [4,7] -> 3, …
  static int BucketIndex(int64_t value);
  /// Inclusive lower bound of bucket b (0 for b == 0, else 2^(b-1)).
  static int64_t BucketLowerBound(int bucket);

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::atomic<int64_t> buckets[kBuckets] = {};
  };

  static void AtomicMin(std::atomic<int64_t>* slot, int64_t value) {
    int64_t current = slot->load(std::memory_order_relaxed);
    while (value < current &&
           !slot->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<int64_t>* slot, int64_t value) {
    int64_t current = slot->load(std::memory_order_relaxed);
    while (value > current &&
           !slot->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
    }
  }

  Shard shards_[kMetricShards];
};

/// A small interned label value (tenant name, answer quality, shed
/// rung). Interning happens once per distinct string — at tenant
/// registration, or into a function-local static — so the hot path
/// carries a dense integer instead of a string.
using LabelId = uint32_t;

/// Returns the process-wide id for `value`, allocating on first use.
/// Ids are dense (0, 1, 2, ...) so families can index a flat slot array.
LabelId InternLabel(const std::string& value);
/// The string behind an id (reference valid for the process lifetime).
const std::string& LabelValue(LabelId id);

/// A counter family: one Counter per label value, addressed by LabelId.
/// The hot path is one acquire load of the slot array plus the counter's
/// own relaxed shard add — no string hashing, no lock. Growing to a new
/// label id copies the slot array under a mutex (copy-on-write; retired
/// arrays are kept alive so in-flight readers stay valid).
class CounterFamily {
 public:
  CounterFamily(std::string name, std::string label_key)
      : name_(std::move(name)), label_key_(std::move(label_key)) {
    slots_.store(new Slots(), std::memory_order_release);
  }
  // Retired arrays are owned by retired_; the live one only by the
  // atomic, so reclaim it here (no concurrent readers can outlive us).
  ~CounterFamily() { delete slots_.load(std::memory_order_acquire); }

  Counter& At(LabelId id) {
    const Slots* slots = slots_.load(std::memory_order_acquire);
    if (id < slots->by_id.size() && slots->by_id[id] != nullptr) {
      return *slots->by_id[id];
    }
    return Grow(id);
  }

  const std::string& name() const { return name_; }
  const std::string& label_key() const { return label_key_; }

  /// (label id, merged value) for every registered cell.
  std::vector<std::pair<LabelId, int64_t>> Read() const;
  void Reset();

 private:
  struct Slots {
    std::vector<Counter*> by_id;
  };
  Counter& Grow(LabelId id);

  std::string name_;
  std::string label_key_;
  std::atomic<const Slots*> slots_;
  std::mutex grow_mu_;
  std::vector<std::unique_ptr<Counter>> owned_;
  std::vector<std::unique_ptr<const Slots>> retired_;
};

/// A histogram family, same slot design as CounterFamily.
class HistogramFamily {
 public:
  HistogramFamily(std::string name, std::string label_key)
      : name_(std::move(name)), label_key_(std::move(label_key)) {
    slots_.store(new Slots(), std::memory_order_release);
  }
  // Retired arrays are owned by retired_; the live one only by the
  // atomic, so reclaim it here (no concurrent readers can outlive us).
  ~HistogramFamily() { delete slots_.load(std::memory_order_acquire); }

  Histogram& At(LabelId id) {
    const Slots* slots = slots_.load(std::memory_order_acquire);
    if (id < slots->by_id.size() && slots->by_id[id] != nullptr) {
      return *slots->by_id[id];
    }
    return Grow(id);
  }

  const std::string& name() const { return name_; }
  const std::string& label_key() const { return label_key_; }

  std::vector<std::pair<LabelId, HistogramStats>> Read() const;
  void Reset();

 private:
  struct Slots {
    std::vector<Histogram*> by_id;
  };
  Histogram& Grow(LabelId id);

  std::string name_;
  std::string label_key_;
  std::atomic<const Slots*> slots_;
  std::mutex grow_mu_;
  std::vector<std::unique_ptr<Histogram>> owned_;
  std::vector<std::unique_ptr<const Slots>> retired_;
};

/// An immutable, name-sorted view of every registered metric. Labeled
/// family cells appear twice: once in the structured vectors below
/// (name / key / value split out, for Prometheus and aggregation
/// checks), and once merged into `counters` / `histograms` under the
/// decorated name `name{key="value"}` so ToJson and the lookup helpers
/// see them without special cases.
struct MetricsSnapshot {
  struct LabeledCounter {
    std::string name;
    std::string label_key;
    std::string label_value;
    int64_t value = 0;
  };
  struct LabeledHistogram {
    std::string name;
    std::string label_key;
    std::string label_value;
    HistogramStats stats;
  };

  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
  std::vector<LabeledCounter> counter_families;
  std::vector<LabeledHistogram> histogram_families;

  /// 0 when the metric was never registered.
  int64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  /// nullptr when the histogram was never registered.
  const HistogramStats* FindHistogram(const std::string& name) const;

  /// {"schema": "ipdb-metrics-v1", "counters": {...}, "gauges": {...},
  ///  "histograms": {name: {count, sum, min, max, mean, buckets}}}.
  std::string ToJson() const;

  /// Prometheus text exposition format v0.0.4. Metric names are
  /// sanitized ([^a-zA-Z0-9_:] -> '_'), labeled cells become
  /// name{key="value"} samples under one # TYPE header, histograms
  /// export cumulative _bucket{le=...} / _sum / _count series using the
  /// power-of-two bucket upper bounds.
  std::string ToPrometheus() const;
};

/// Owns the named metrics. Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime, so hot call
/// sites resolve the name once (e.g. into a function-local static) and
/// pay only the atomic update afterwards. Counter, gauge and histogram
/// namespaces are independent; reusing a name across kinds is allowed.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  /// Registers (or returns) the family for `name`. The label key is
  /// fixed at first registration; later calls ignore a differing key.
  CounterFamily& GetCounterFamily(const std::string& name,
                                  const std::string& label_key);
  HistogramFamily& GetHistogramFamily(const std::string& name,
                                      const std::string& label_key);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place (handles stay valid). Intended for
  /// tests and bench setup; concurrent writers may land updates across
  /// the reset.
  void Reset();

 private:
  mutable std::mutex mu_;
  // Unordered for O(1) registration; Snapshot() sorts by name so the
  // exported views stay deterministic across runs and platforms.
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, std::unique_ptr<CounterFamily>>
      counter_families_;
  std::unordered_map<std::string, std::unique_ptr<HistogramFamily>>
      histogram_families_;
};

/// The process-wide registry behind the IPDB_OBS_* macros.
MetricsRegistry& GlobalMetrics();

/// Observes the elapsed monotonic nanoseconds into `histogram` on
/// destruction; a null histogram makes it a no-op (the runtime-disabled
/// path).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram == nullptr ? 0 : MonotonicNowNs()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(MonotonicNowNs() - start_ns_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  int64_t ElapsedNs() const {
    return histogram_ == nullptr ? 0 : MonotonicNowNs() - start_ns_;
  }

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

/// Minimal JSON string escaping shared by the exporters.
std::string JsonEscape(const std::string& text);

}  // namespace obs
}  // namespace ipdb

#endif  // IPDB_OBS_METRICS_H_
