#include "obs/obs.h"

#include <atomic>
#include <cstdlib>

namespace ipdb {
namespace obs {

namespace {

bool MetricsEnabledAtStartup() {
  // Metrics default ON (one relaxed add per update is serving-path
  // cheap); IPDB_OBS=0 opts out at process level.
  const char* env = std::getenv("IPDB_OBS");
  if (env == nullptr) return true;
  return !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& MetricsFlag() {
  // Function-local static: safe against use from other translation
  // units' static initializers.
  static std::atomic<bool> flag(MetricsEnabledAtStartup());
  return flag;
}

}  // namespace

bool MetricsEnabled() {
  return MetricsFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool on) {
  MetricsFlag().store(on, std::memory_order_relaxed);
}

void Configure(const ObsOptions& options) {
  SetMetricsEnabled(options.metrics);
  SetTracingEnabled(options.tracing);
}

}  // namespace obs
}  // namespace ipdb
