#ifndef IPDB_OBS_OBS_H_
#define IPDB_OBS_OBS_H_

/// Umbrella header for the observability layer: the metrics registry
/// (obs/metrics.h), scoped tracing (obs/trace.h), the runtime gates, and
/// the IPDB_OBS_* instrumentation macros the rest of the library uses.
///
/// Gating, from outermost to innermost:
///  * compile time — configuring with -DIPDB_OBSERVABILITY=OFF defines
///    IPDB_OBSERVABILITY_DISABLED, and every macro below expands to a
///    no-op statement: instrumented call sites compile to nothing;
///  * runtime — with instrumentation compiled in, metric updates are
///    skipped unless MetricsEnabled() (default on; env IPDB_OBS=0
///    disables) and spans are skipped unless tracing is enabled
///    (default off; env IPDB_TRACE=1 or --trace-out enables);
///  * per call — an enabled metric macro resolves its registry handle
///    once (function-local static) and then pays one relaxed atomic
///    add; a disabled-tracing span pays one relaxed atomic load.

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipdb {
namespace obs {

/// Runtime observability switches, applied with Configure. The
/// environment provides the initial values (IPDB_OBS / IPDB_TRACE).
struct ObsOptions {
  bool metrics = true;
  bool tracing = false;
};

void Configure(const ObsOptions& options);

/// Whether metric-update macros record (relaxed load; hot-path safe).
bool MetricsEnabled();
void SetMetricsEnabled(bool on);

inline bool TracingEnabled() { return TraceRecorder::Global().enabled(); }
inline void SetTracingEnabled(bool on) {
  TraceRecorder::Global().SetEnabled(on);
}

}  // namespace obs
}  // namespace ipdb

#if !defined(IPDB_OBSERVABILITY_DISABLED)

#define IPDB_OBS_INTERNAL_CONCAT2(a, b) a##b
#define IPDB_OBS_INTERNAL_CONCAT(a, b) IPDB_OBS_INTERNAL_CONCAT2(a, b)

/// Opens an RAII span for the rest of the enclosing scope. `name` and
/// `category` must be string literals (events keep the pointers).
#define IPDB_OBS_SPAN(name, category)                 \
  ::ipdb::obs::Span IPDB_OBS_INTERNAL_CONCAT(         \
      ipdb_obs_span_, __COUNTER__)(name, category)

/// Adds `delta` to the named counter. The registry lookup happens once
/// per call site (function-local static handle).
#define IPDB_OBS_COUNT(name, delta)                             \
  do {                                                          \
    if (::ipdb::obs::MetricsEnabled()) {                        \
      static ::ipdb::obs::Counter& ipdb_obs_counter =           \
          ::ipdb::obs::GlobalMetrics().GetCounter(name);        \
      ipdb_obs_counter.Increment(delta);                        \
    }                                                           \
  } while (0)

#define IPDB_OBS_GAUGE_SET(name, value)                         \
  do {                                                          \
    if (::ipdb::obs::MetricsEnabled()) {                        \
      static ::ipdb::obs::Gauge& ipdb_obs_gauge =               \
          ::ipdb::obs::GlobalMetrics().GetGauge(name);          \
      ipdb_obs_gauge.Set(value);                                \
    }                                                           \
  } while (0)

#define IPDB_OBS_GAUGE_ADD(name, delta)                         \
  do {                                                          \
    if (::ipdb::obs::MetricsEnabled()) {                        \
      static ::ipdb::obs::Gauge& ipdb_obs_gauge =               \
          ::ipdb::obs::GlobalMetrics().GetGauge(name);          \
      ipdb_obs_gauge.Add(delta);                                \
    }                                                           \
  } while (0)

/// Records `value` into the named histogram.
#define IPDB_OBS_OBSERVE(name, value)                           \
  do {                                                          \
    if (::ipdb::obs::MetricsEnabled()) {                        \
      static ::ipdb::obs::Histogram& ipdb_obs_histogram =       \
          ::ipdb::obs::GlobalMetrics().GetHistogram(name);      \
      ipdb_obs_histogram.Observe(value);                        \
    }                                                           \
  } while (0)

/// Adds `delta` to the `label_id` cell of the named counter family.
/// `name` and `label_key` are resolved once per call site; the hot path
/// is one slot-array load plus the counter's relaxed shard add.
/// `label_id` must come from ::ipdb::obs::InternLabel.
#define IPDB_OBS_COUNT_LABELED(name, label_key, label_id, delta)            \
  do {                                                                      \
    if (::ipdb::obs::MetricsEnabled()) {                                    \
      static ::ipdb::obs::CounterFamily& ipdb_obs_counter_family =          \
          ::ipdb::obs::GlobalMetrics().GetCounterFamily(name, label_key);   \
      ipdb_obs_counter_family.At(label_id).Increment(delta);                \
    }                                                                       \
  } while (0)

/// Records `value` into the `label_id` cell of the named histogram
/// family.
#define IPDB_OBS_OBSERVE_LABELED(name, label_key, label_id, value)          \
  do {                                                                      \
    if (::ipdb::obs::MetricsEnabled()) {                                    \
      static ::ipdb::obs::HistogramFamily& ipdb_obs_histogram_family =      \
          ::ipdb::obs::GlobalMetrics().GetHistogramFamily(name, label_key); \
      ipdb_obs_histogram_family.At(label_id).Observe(value);                \
    }                                                                       \
  } while (0)

/// Times the rest of the enclosing scope into the named histogram
/// (no-op when metrics are runtime-disabled).
#define IPDB_OBS_SCOPED_TIMER(name)                             \
  ::ipdb::obs::ScopedTimer IPDB_OBS_INTERNAL_CONCAT(            \
      ipdb_obs_timer_, __COUNTER__)(                            \
      ::ipdb::obs::MetricsEnabled()                             \
          ? &::ipdb::obs::GlobalMetrics().GetHistogram(name)    \
          : nullptr)

#else  // IPDB_OBSERVABILITY_DISABLED

#define IPDB_OBS_SPAN(name, category) \
  do {                                \
  } while (0)
#define IPDB_OBS_COUNT(name, delta) \
  do {                              \
  } while (0)
#define IPDB_OBS_GAUGE_SET(name, value) \
  do {                                  \
  } while (0)
#define IPDB_OBS_GAUGE_ADD(name, delta) \
  do {                                  \
  } while (0)
#define IPDB_OBS_OBSERVE(name, value) \
  do {                                \
  } while (0)
#define IPDB_OBS_COUNT_LABELED(name, label_key, label_id, delta) \
  do {                                                           \
  } while (0)
#define IPDB_OBS_OBSERVE_LABELED(name, label_key, label_id, value) \
  do {                                                             \
  } while (0)
#define IPDB_OBS_SCOPED_TIMER(name) \
  do {                              \
  } while (0)

#endif  // IPDB_OBSERVABILITY_DISABLED

#endif  // IPDB_OBS_OBS_H_
