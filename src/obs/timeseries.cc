#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ipdb {
namespace obs {

namespace {

constexpr int64_t kNsPerS = 1000000000;

/// Quantile over merged power-of-two buckets: the lower bound of the
/// first bucket whose cumulative count reaches q * total. Deterministic
/// and conservative (never overstates the quantile by more than one
/// bucket width), which is all the burn-rate math needs.
int64_t BucketQuantile(const int64_t (&buckets)[Histogram::kBuckets],
                       int64_t total, double q) {
  if (total <= 0) return 0;
  const int64_t rank = static_cast<int64_t>(std::ceil(q * total));
  int64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return Histogram::BucketLowerBound(b);
  }
  return Histogram::BucketLowerBound(Histogram::kBuckets - 1);
}

double SafeDiv(int64_t num, int64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / den;
}

/// burn = bad_fraction / allowed_bad_fraction. With no traffic there is
/// nothing burning; with a zero error budget any bad event burns
/// "infinitely" fast (capped to keep the JSON finite).
double BurnRate(int64_t bad, int64_t total, double target) {
  if (total <= 0) return 0.0;
  const double bad_fraction = static_cast<double>(bad) / total;
  const double allowed = 1.0 - target;
  if (allowed <= 0.0) return bad_fraction > 0.0 ? 1e9 : 0.0;
  return bad_fraction / allowed;
}

void AppendRollupJson(std::ostringstream& out, const SeriesRollup& r) {
  out << "{\"windowS\": " << r.window_s << ", \"served\": " << r.served
      << ", \"ok\": " << r.ok << ", \"errors\": " << r.errors
      << ", \"shed\": " << r.shed << ", \"degraded\": " << r.degraded
      << ", \"slow\": " << r.slow << ", \"qps\": " << r.qps
      << ", \"p50Ms\": " << r.p50_ns / 1e6 << ", \"p99Ms\": " << r.p99_ns / 1e6
      << ", \"shedRate\": " << r.shed_rate
      << ", \"errorRate\": " << r.error_rate
      << ", \"degradedRate\": " << r.degraded_rate << "}";
}

void AppendBurnJson(std::ostringstream& out, const SloBurn& burn) {
  out << "{\"enabled\": " << (burn.enabled ? "true" : "false")
      << ", \"fast\": " << burn.fast << ", \"slow\": " << burn.slow << "}";
}

}  // namespace

TenantSeries::TenantSeries(const SloPolicy& policy)
    : policy_(policy),
      slow_threshold_ns_(static_cast<int64_t>(policy.latency_threshold_ms *
                                              1e6)),
      ring_(static_cast<size_t>(kWindows)) {}

TenantSeries::Window& TenantSeries::At(int64_t now_ns) {
  const int64_t epoch_s = now_ns / kNsPerS;
  Window& window = ring_[static_cast<size_t>(epoch_s % kWindows)];
  if (window.epoch_s != epoch_s) {
    window = Window{};
    window.epoch_s = epoch_s;
  }
  return window;
}

void TenantSeries::RecordServed(int64_t now_ns, int64_t latency_ns, bool ok,
                                bool degraded) {
  if (latency_ns < 0) latency_ns = 0;
  std::lock_guard<std::mutex> lock(mu_);
  Window& window = At(now_ns);
  ++window.served;
  if (ok) {
    ++window.ok;
  } else {
    ++window.errors;
  }
  if (degraded) ++window.degraded;
  // "Slow" is judged at record time against the policy captured at
  // registration, so rollups never rescan raw latencies.
  if (slow_threshold_ns_ > 0 && latency_ns > slow_threshold_ns_) {
    ++window.slow;
  }
  window.latency_sum_ns += latency_ns;
  ++window.buckets[Histogram::BucketIndex(latency_ns)];
}

void TenantSeries::RecordShed(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++At(now_ns).shed;
}

SeriesRollup TenantSeries::Rollup(int64_t now_ns, int64_t window_s) const {
  SeriesRollup rollup;
  rollup.window_s = std::min(window_s, kWindows);
  const int64_t now_s = now_ns / kNsPerS;
  const int64_t first_s = now_s - rollup.window_s + 1;
  int64_t buckets[Histogram::kBuckets] = {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Window& window : ring_) {
      if (window.epoch_s < first_s || window.epoch_s > now_s) continue;
      rollup.served += window.served;
      rollup.ok += window.ok;
      rollup.errors += window.errors;
      rollup.shed += window.shed;
      rollup.degraded += window.degraded;
      rollup.slow += window.slow;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        buckets[b] += window.buckets[b];
      }
    }
  }
  rollup.qps = SafeDiv(rollup.served, rollup.window_s);
  rollup.p50_ns = BucketQuantile(buckets, rollup.served, 0.50);
  rollup.p99_ns = BucketQuantile(buckets, rollup.served, 0.99);
  rollup.shed_rate = SafeDiv(rollup.shed, rollup.served + rollup.shed);
  rollup.error_rate = SafeDiv(rollup.errors, rollup.served);
  rollup.degraded_rate = SafeDiv(rollup.degraded, rollup.served);
  return rollup;
}

SloReport TenantSeries::Evaluate(int64_t now_ns) const {
  SloReport report;
  if (!policy_.any()) return report;
  const SeriesRollup fast = Rollup(now_ns, kFastWindowS);
  const SeriesRollup slow = Rollup(now_ns, kSlowWindowS);
  bool breaching = false;
  if (policy_.latency_threshold_ms > 0.0) {
    report.latency.enabled = true;
    report.latency.fast =
        BurnRate(fast.slow, fast.served, policy_.latency_target);
    report.latency.slow =
        BurnRate(slow.slow, slow.served, policy_.latency_target);
    breaching = breaching || (report.latency.fast > policy_.burn_alert &&
                              report.latency.slow > policy_.burn_alert);
  }
  if (policy_.availability_target > 0.0) {
    report.availability.enabled = true;
    report.availability.fast =
        BurnRate(fast.errors + fast.shed, fast.served + fast.shed,
                 policy_.availability_target);
    report.availability.slow =
        BurnRate(slow.errors + slow.shed, slow.served + slow.shed,
                 policy_.availability_target);
    breaching = breaching || (report.availability.fast > policy_.burn_alert &&
                              report.availability.slow > policy_.burn_alert);
  }
  report.state = breaching ? "breaching" : "ok";
  return report;
}

TenantSeries& ServiceStats::GetSeries(const std::string& tenant,
                                      const SloPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[tenant];
  if (slot == nullptr) slot = std::make_unique<TenantSeries>(policy);
  return *slot;
}

TenantSeries* ServiceStats::FindSeries(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(tenant);
  return it == series_.end() ? nullptr : it->second.get();
}

std::string ServiceStats::ReportJson(int64_t now_ns) const {
  std::ostringstream out;
  out << "{\"schema\": \"ipdb-stats-v1\", \"tenants\": {";
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const auto& [tenant, series] : series_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(tenant) << "\": {\"1m\": ";
    AppendRollupJson(out, series->Rollup(now_ns, TenantSeries::kFastWindowS));
    out << ", \"10m\": ";
    AppendRollupJson(out, series->Rollup(now_ns, TenantSeries::kSlowWindowS));
    const SloReport slo = series->Evaluate(now_ns);
    out << ", \"slo\": {\"state\": \"" << slo.state << "\", \"latency\": ";
    AppendBurnJson(out, slo.latency);
    out << ", \"availability\": ";
    AppendBurnJson(out, slo.availability);
    out << "}}";
  }
  out << "}}";
  return out.str();
}

}  // namespace obs
}  // namespace ipdb
