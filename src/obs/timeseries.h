#ifndef IPDB_OBS_TIMESERIES_H_
#define IPDB_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ipdb {
namespace obs {

/// Per-tenant time-series and SLO burn-rate evaluation.
///
/// Each tenant owns a ring of 1-second windows (10 minutes deep). A
/// request completion lands one mutex-guarded tally in the current
/// window; rollups (qps, p50/p99 over the power-of-two latency buckets,
/// shed/error/degraded rates) merge a window range at read time. SLO
/// health follows the multi-window burn-rate rule: an objective is
/// `breaching` when the error budget burns faster than `burn_alert` in
/// BOTH the fast (1m) and slow (10m) windows — the fast window makes the
/// alert responsive, the slow window keeps one bad second from paging.
///
/// Every entry point takes an explicit `now_ns` (monotonic clock) so
/// tests can drive the clock deterministically; production callers pass
/// MonotonicNowNs().

/// A tenant's declared objectives. Zeroed fields disable the matching
/// objective; a policy with no objectives reports state "no_slo".
struct SloPolicy {
  /// Latency objective: at least `latency_target` of served requests
  /// complete within `latency_threshold_ms` (0 disables).
  double latency_threshold_ms = 0.0;
  double latency_target = 0.99;
  /// Availability objective: at least this fraction of submitted
  /// requests are served without shed or error (0 disables).
  double availability_target = 0.0;
  /// Burn-rate multiple that flips an objective to breaching.
  double burn_alert = 1.0;

  bool any() const {
    return latency_threshold_ms > 0.0 || availability_target > 0.0;
  }
};

/// Merged view of a window range.
struct SeriesRollup {
  int64_t window_s = 0;
  int64_t served = 0;   // completed requests (ok or error)
  int64_t ok = 0;
  int64_t errors = 0;
  int64_t shed = 0;
  int64_t degraded = 0;
  int64_t slow = 0;     // served with latency > policy threshold
  double qps = 0.0;     // served / window_s
  int64_t p50_ns = 0;   // bucket lower-bound quantiles; 0 when served == 0
  int64_t p99_ns = 0;
  double shed_rate = 0.0;      // shed / (served + shed)
  double error_rate = 0.0;     // errors / served
  double degraded_rate = 0.0;  // degraded / served
};

/// Burn rates for one objective: (bad fraction) / (allowed bad
/// fraction) per window. 1.0 = burning the budget exactly at the
/// sustainable rate; > burn_alert in both windows = breaching.
struct SloBurn {
  bool enabled = false;
  double fast = 0.0;  // 1m
  double slow = 0.0;  // 10m
};

struct SloReport {
  SloBurn latency;
  SloBurn availability;
  /// "no_slo", "ok", or "breaching".
  std::string state = "no_slo";
};

/// One tenant's ring of per-second windows. Thread-safe; each record is
/// one mutex acquisition on the tenant's own lock (cross-tenant traffic
/// never contends).
class TenantSeries {
 public:
  static constexpr int64_t kWindows = 600;  // ring depth: 10 minutes
  static constexpr int64_t kFastWindowS = 60;
  static constexpr int64_t kSlowWindowS = 600;

  explicit TenantSeries(const SloPolicy& policy);

  /// A request that completed (ok=false means it returned an error).
  void RecordServed(int64_t now_ns, int64_t latency_ns, bool ok,
                    bool degraded);
  /// A request rejected by admission/quota before execution.
  void RecordShed(int64_t now_ns);

  SeriesRollup Rollup(int64_t now_ns, int64_t window_s) const;
  SloReport Evaluate(int64_t now_ns) const;
  const SloPolicy& policy() const { return policy_; }

 private:
  struct Window {
    int64_t epoch_s = -1;  // second this window covers; -1 = empty
    int64_t served = 0;
    int64_t ok = 0;
    int64_t errors = 0;
    int64_t shed = 0;
    int64_t degraded = 0;
    int64_t slow = 0;
    int64_t latency_sum_ns = 0;
    int64_t buckets[Histogram::kBuckets] = {};
  };

  /// Returns the (reset-if-stale) window covering now_ns. Caller holds
  /// mu_.
  Window& At(int64_t now_ns);

  mutable std::mutex mu_;
  SloPolicy policy_;
  int64_t slow_threshold_ns_ = 0;
  std::vector<Window> ring_;
};

/// The per-service hub: tenant name -> series. Owned by the Engine (one
/// per service instance, not process-global, so tests and multiple
/// engines stay isolated).
class ServiceStats {
 public:
  /// Returns the tenant's series, creating it with `policy` on first
  /// use (later calls keep the original policy).
  TenantSeries& GetSeries(const std::string& tenant, const SloPolicy& policy);
  /// nullptr when the tenant was never registered.
  TenantSeries* FindSeries(const std::string& tenant);

  /// {"schema": "ipdb-stats-v1", "tenants": {name: {"1m": {...},
  ///  "10m": {...}, "slo": {"state": ..., "latency": {...},
  ///  "availability": {...}}}}} — single line, deterministic order.
  std::string ReportJson(int64_t now_ns) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantSeries>> series_;
};

}  // namespace obs
}  // namespace ipdb

#endif  // IPDB_OBS_TIMESERIES_H_
