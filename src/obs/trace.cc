#include "obs/trace.h"

#include "obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ipdb {
namespace obs {

namespace {

/// Cold path: only runs when a buffer is already at its cap. Declared in
/// obs.h; guarded so the obs-off / metrics-off builds stay silent.
void CountDroppedEvent() {
  if (!MetricsEnabled()) return;
  static Counter& dropped =
      GlobalMetrics().GetCounter("obs.trace.dropped_events");
  dropped.Increment();
}

}  // namespace

/// `events` and `dropped` are shared with Drain and guarded by `mu`;
/// `depth` is touched only by the owning thread (span open/close are
/// same-thread by construction).
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int64_t dropped = 0;
  int tid = 0;
  int depth = 0;
};

TraceRecorder::TraceRecorder() {
  const char* env = std::getenv("IPDB_TRACE");
  enabled_.store(env != nullptr && !(env[0] == '0' && env[1] == '\0'),
                 std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // One cached pointer per thread is enough because the recorder is a
  // process singleton; the recorder owns the buffer, so it outlives the
  // thread and dead threads' events survive until the next Drain.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    cached = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return cached;
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
      buffer->events.clear();
      buffer->dropped = 0;
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.duration_ns > b.duration_ns;
            });
  return all;
}

int64_t TraceRecorder::dropped_events() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const bool chrome = recorder.enabled();
  const TraceContext context = CurrentTraceContext();
  if (context.active()) {
    trace_id_ = context.trace_id;
    parent_span_id_ = context.span_id;
    store_ = context.sampled;
  }
  if (!chrome && !store_) {
    trace_id_ = 0;  // nothing will record; skip the clock reads
    return;
  }
  if (trace_id_ != 0) {
    span_id_ = NewSpanId();
    internal::g_trace_context.span_id = span_id_;  // children nest under us
  }
  if (chrome) {
    TraceRecorder::ThreadBuffer* buffer = recorder.BufferForThisThread();
    buffer_ = buffer;
    depth_ = buffer->depth++;
  }
  start_ns_ = MonotonicNowNs();
}

Span::~Span() {
  if (buffer_ == nullptr && !store_) return;
  const int64_t end_ns = MonotonicNowNs();
  if (trace_id_ != 0) {
    // Restore the parent as the thread's open span. The context may have
    // been swapped mid-span (pool task wrappers install their own and
    // restore it before we get here), so only write back if we are still
    // the innermost open span of our own trace.
    TraceContext& current = internal::g_trace_context;
    if (current.trace_id == trace_id_ && current.span_id == span_id_) {
      current.span_id = parent_span_id_;
    }
  }
  if (store_) {
    TraceStore::Global().Record(
        trace_id_, StoredSpan{span_id_, parent_span_id_, name_, category_,
                              start_ns_, end_ns - start_ns_, 0});
  }
  if (buffer_ == nullptr) return;
  auto* buffer = static_cast<TraceRecorder::ThreadBuffer*>(buffer_);
  --buffer->depth;
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= TraceRecorder::kMaxEventsPerThread) {
    ++buffer->dropped;
    CountDroppedEvent();
    return;
  }
  buffer->events.push_back(TraceEvent{name_, category_, start_ns_,
                                      end_ns - start_ns_, buffer->tid, depth_,
                                      trace_id_, span_id_, parent_span_id_});
}

void TraceRecorder::Append(const TraceEvent& event) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    CountDroppedEvent();
    return;
  }
  TraceEvent copy = event;
  copy.tid = buffer->tid;
  buffer->events.push_back(copy);
}

void RecordCompletedSpan(const TraceContext& context, uint64_t span_id,
                         uint64_t parent_span_id, const char* name,
                         const char* category, int64_t start_ns,
                         int64_t duration_ns, int depth) {
  if (context.sampled) {
    TraceStore::Global().Record(
        context.trace_id, StoredSpan{span_id, parent_span_id, name, category,
                                     start_ns, duration_ns, 0});
  }
  TraceRecorder::Global().Append(TraceEvent{name, category, start_ns,
                                            duration_ns, 0, depth,
                                            context.trace_id, span_id,
                                            parent_span_id});
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const MetricsSnapshot* metrics,
                            int64_t dropped_events) {
  int64_t origin_ns = INT64_MAX;
  for (const TraceEvent& event : events) {
    origin_ns = std::min(origin_ns, event.start_ns);
  }
  if (events.empty()) origin_ns = 0;

  std::ostringstream out;
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  auto microseconds = [](int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    return std::string(buf);
  };
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << "    {\"name\": \"" << JsonEscape(event.name) << "\", \"cat\": \""
        << JsonEscape(event.category) << "\", \"ph\": \"X\", \"ts\": "
        << microseconds(event.start_ns - origin_ns) << ", \"dur\": "
        << microseconds(event.duration_ns) << ", \"pid\": 1, \"tid\": "
        << event.tid << ", \"args\": {\"depth\": " << event.depth;
    if (event.trace_id != 0) {
      out << ", \"trace\": " << event.trace_id << ", \"span\": "
          << event.span_id << ", \"parent\": " << event.parent_span_id;
    }
    out << "}}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"otherData\": {\"droppedEvents\": " << dropped_events
      << ", \"truncated\": " << (dropped_events > 0 ? "true" : "false");
  if (metrics != nullptr) {
    out << ", \"metrics\": " << metrics->ToJson();
  }
  out << "}\n}\n";
  return out.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const MetricsSnapshot* metrics,
                        int64_t dropped_events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InvalidArgumentError("cannot open trace output file: " + path);
  }
  out << ChromeTraceJson(events, metrics, dropped_events);
  out.flush();
  if (!out) return InternalError("failed writing trace file: " + path);
  return Status::Ok();
}

}  // namespace obs
}  // namespace ipdb
