#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ipdb {
namespace obs {

/// `events` and `dropped` are shared with Drain and guarded by `mu`;
/// `depth` is touched only by the owning thread (span open/close are
/// same-thread by construction).
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int64_t dropped = 0;
  int tid = 0;
  int depth = 0;
};

TraceRecorder::TraceRecorder() {
  const char* env = std::getenv("IPDB_TRACE");
  enabled_.store(env != nullptr && !(env[0] == '0' && env[1] == '\0'),
                 std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // One cached pointer per thread is enough because the recorder is a
  // process singleton; the recorder owns the buffer, so it outlives the
  // thread and dead threads' events survive until the next Drain.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    cached = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return cached;
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
      buffer->events.clear();
      buffer->dropped = 0;
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.duration_ns > b.duration_ns;
            });
  return all;
}

int64_t TraceRecorder::dropped_events() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  TraceRecorder::ThreadBuffer* buffer = recorder.BufferForThisThread();
  buffer_ = buffer;
  depth_ = buffer->depth++;
  start_ns_ = MonotonicNowNs();
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  const int64_t end_ns = MonotonicNowNs();
  auto* buffer = static_cast<TraceRecorder::ThreadBuffer*>(buffer_);
  --buffer->depth;
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= TraceRecorder::kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(TraceEvent{name_, category_, start_ns_,
                                      end_ns - start_ns_, buffer->tid,
                                      depth_});
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const MetricsSnapshot* metrics,
                            int64_t dropped_events) {
  int64_t origin_ns = INT64_MAX;
  for (const TraceEvent& event : events) {
    origin_ns = std::min(origin_ns, event.start_ns);
  }
  if (events.empty()) origin_ns = 0;

  std::ostringstream out;
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  auto microseconds = [](int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    return std::string(buf);
  };
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << "    {\"name\": \"" << JsonEscape(event.name) << "\", \"cat\": \""
        << JsonEscape(event.category) << "\", \"ph\": \"X\", \"ts\": "
        << microseconds(event.start_ns - origin_ns) << ", \"dur\": "
        << microseconds(event.duration_ns) << ", \"pid\": 1, \"tid\": "
        << event.tid << ", \"args\": {\"depth\": " << event.depth << "}}"
        << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"otherData\": {\"droppedEvents\": " << dropped_events;
  if (metrics != nullptr) {
    out << ", \"metrics\": " << metrics->ToJson();
  }
  out << "}\n}\n";
  return out.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const MetricsSnapshot* metrics,
                        int64_t dropped_events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InvalidArgumentError("cannot open trace output file: " + path);
  }
  out << ChromeTraceJson(events, metrics, dropped_events);
  out.flush();
  if (!out) return InternalError("failed writing trace file: " + path);
  return Status::Ok();
}

}  // namespace obs
}  // namespace ipdb
