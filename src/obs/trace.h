#ifndef IPDB_OBS_TRACE_H_
#define IPDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/context.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace ipdb {
namespace obs {

/// Scoped tracing: RAII spans record (name, start, duration, thread,
/// nesting depth) into per-thread buffers owned by a process-wide
/// recorder, and the buffered events export as Chrome trace-event JSON
/// (load in chrome://tracing or https://ui.perfetto.dev).
///
/// Cost model: a span on a disabled recorder is one relaxed atomic load
/// per constructor — the serving path keeps its spans permanently in
/// place and pays only that check. An enabled span adds two monotonic
/// clock reads and one push onto this thread's buffer (the buffer mutex
/// is only ever contended by Drain/export). Span *names must be string
/// literals* (or otherwise outlive the recorder): events store the
/// pointers, not copies.

/// One completed span. `depth` is the number of enclosing spans on the
/// same thread when this span opened (0 = top-level), which makes
/// well-nestedness checkable without re-deriving it from timestamps.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  int64_t start_ns = 0;     // MonotonicNowNs() at span open
  int64_t duration_ns = 0;  // close - open
  int tid = 0;              // stable small id, assigned per thread
  int depth = 0;
  // Request attribution, 0 when the span opened outside a request
  // context (TraceContext in obs/context.h). Exported into the Chrome
  // trace args so the CI connectivity gate can reassemble span trees.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// The process-wide span sink. Threads register a buffer on first use
/// and append completed spans to it; Drain merges and clears all
/// buffers. Enabled state starts from the IPDB_TRACE environment
/// variable ("1" or any non-"0" value turns tracing on) and can be
/// flipped at runtime (Configure / SetEnabled / bench --trace-out).
class TraceRecorder {
 public:
  /// Per-thread buffers stop accepting events past this size (Drain
  /// resets the limit): a tracing run left on across a long benchmark
  /// degrades to a truncated trace instead of unbounded memory growth.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Removes and returns every buffered event, sorted by (tid, start,
  /// -duration) so parents precede their children deterministically.
  /// Also resets the dropped-event tally.
  std::vector<TraceEvent> Drain();

  /// Events rejected because a per-thread buffer hit its cap since the
  /// last Drain.
  int64_t dropped_events() const;

  /// Appends an already-timed event to this thread's buffer (the tid
  /// field is overwritten with the thread's id). Used for synthesized
  /// spans whose start/end were measured elsewhere, e.g. the serve.queue
  /// wait recorded by the worker after the fact. No-op while disabled.
  void Append(const TraceEvent& event);

 private:
  struct ThreadBuffer;
  friend class Span;

  TraceRecorder();
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ / next_tid_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 0;
};

/// RAII span recording into TraceRecorder::Global(). Captures the
/// enabled flag at construction: a span that opened while tracing was on
/// records even if tracing is switched off before it closes (and vice
/// versa), so traces never contain half-open spans.
///
/// When the thread has an active TraceContext the span also allocates a
/// span id, parents itself under the context's current span, and makes
/// itself the parent for spans opened inside it (the context is restored
/// on close, so sibling spans share a parent). Sampled contexts
/// additionally record the finished span into TraceStore::Global() even
/// while the Chrome recorder is off — the daemon's TRACE command works
/// without a --trace-out run.
class Span {
 public:
  explicit Span(const char* name, const char* category = "ipdb");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_ns_ = 0;
  int depth_ = 0;
  void* buffer_ = nullptr;  // TraceRecorder::ThreadBuffer*; null = inactive
  uint64_t trace_id_ = 0;   // 0 = no request context at open
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  bool store_ = false;  // record into TraceStore on close
};

/// Records a span whose lifetime was measured externally (explicit
/// timestamps) into both sinks: the Chrome recorder (when enabled) and
/// the TraceStore (when `context.sampled`). Used by the engine for the
/// synthesized serve.request root and serve.queue wait spans.
void RecordCompletedSpan(const TraceContext& context, uint64_t span_id,
                         uint64_t parent_span_id, const char* name,
                         const char* category, int64_t start_ns,
                         int64_t duration_ns, int depth = 0);

/// Chrome trace-event JSON ("X" complete events, microsecond
/// timestamps normalized to the earliest span). When `metrics` is
/// non-null the snapshot is embedded under otherData.metrics so a trace
/// file carries the counters needed to correlate it with BENCH_*.json
/// rows; `dropped_events` is recorded under otherData.droppedEvents and
/// mirrored as otherData.truncated (true when any event was dropped).
/// Events carrying a request context additionally export args.trace /
/// args.span / args.parent.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const MetricsSnapshot* metrics = nullptr,
                            int64_t dropped_events = 0);

/// Writes ChromeTraceJson to `path` (truncating).
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const MetricsSnapshot* metrics = nullptr,
                        int64_t dropped_events = 0);

}  // namespace obs
}  // namespace ipdb

#endif  // IPDB_OBS_TRACE_H_
