#ifndef IPDB_OBS_TRACE_H_
#define IPDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace ipdb {
namespace obs {

/// Scoped tracing: RAII spans record (name, start, duration, thread,
/// nesting depth) into per-thread buffers owned by a process-wide
/// recorder, and the buffered events export as Chrome trace-event JSON
/// (load in chrome://tracing or https://ui.perfetto.dev).
///
/// Cost model: a span on a disabled recorder is one relaxed atomic load
/// per constructor — the serving path keeps its spans permanently in
/// place and pays only that check. An enabled span adds two monotonic
/// clock reads and one push onto this thread's buffer (the buffer mutex
/// is only ever contended by Drain/export). Span *names must be string
/// literals* (or otherwise outlive the recorder): events store the
/// pointers, not copies.

/// One completed span. `depth` is the number of enclosing spans on the
/// same thread when this span opened (0 = top-level), which makes
/// well-nestedness checkable without re-deriving it from timestamps.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  int64_t start_ns = 0;     // MonotonicNowNs() at span open
  int64_t duration_ns = 0;  // close - open
  int tid = 0;              // stable small id, assigned per thread
  int depth = 0;
};

/// The process-wide span sink. Threads register a buffer on first use
/// and append completed spans to it; Drain merges and clears all
/// buffers. Enabled state starts from the IPDB_TRACE environment
/// variable ("1" or any non-"0" value turns tracing on) and can be
/// flipped at runtime (Configure / SetEnabled / bench --trace-out).
class TraceRecorder {
 public:
  /// Per-thread buffers stop accepting events past this size (Drain
  /// resets the limit): a tracing run left on across a long benchmark
  /// degrades to a truncated trace instead of unbounded memory growth.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Removes and returns every buffered event, sorted by (tid, start,
  /// -duration) so parents precede their children deterministically.
  /// Also resets the dropped-event tally.
  std::vector<TraceEvent> Drain();

  /// Events rejected because a per-thread buffer hit its cap since the
  /// last Drain.
  int64_t dropped_events() const;

 private:
  struct ThreadBuffer;
  friend class Span;

  TraceRecorder();
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ / next_tid_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 0;
};

/// RAII span recording into TraceRecorder::Global(). Captures the
/// enabled flag at construction: a span that opened while tracing was on
/// records even if tracing is switched off before it closes (and vice
/// versa), so traces never contain half-open spans.
class Span {
 public:
  explicit Span(const char* name, const char* category = "ipdb");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_ns_ = 0;
  int depth_ = 0;
  void* buffer_ = nullptr;  // TraceRecorder::ThreadBuffer*; null = inactive
};

/// Chrome trace-event JSON ("X" complete events, microsecond
/// timestamps normalized to the earliest span). When `metrics` is
/// non-null the snapshot is embedded under otherData.metrics so a trace
/// file carries the counters needed to correlate it with BENCH_*.json
/// rows; `dropped_events` is recorded under otherData.droppedEvents.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const MetricsSnapshot* metrics = nullptr,
                            int64_t dropped_events = 0);

/// Writes ChromeTraceJson to `path` (truncating).
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const MetricsSnapshot* metrics = nullptr,
                        int64_t dropped_events = 0);

}  // namespace obs
}  // namespace ipdb

#endif  // IPDB_OBS_TRACE_H_
