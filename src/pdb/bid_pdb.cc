#include "pdb/bid_pdb.h"

#include <algorithm>
#include <cmath>

#include "storage/ti_store.h"
#include "util/check.h"

namespace ipdb {
namespace pdb {

template <typename P>
StatusOr<BidPdb<P>> BidPdb<P>::Create(rel::Schema schema,
                                      std::vector<Block> blocks) {
  using Traits = ProbTraits<P>;
  // Global distinctness across blocks rides on the columnar sort (one
  // dictionary-encoded pass instead of a std::set<Fact> probe per fact);
  // range and per-block mass checks stay inline.
  storage::TiStore::Builder distinct(schema);
  for (const Block& block : blocks) {
    P block_sum = Traits::Zero();
    for (const auto& [fact, marginal] : block) {
      if (!fact.MatchesSchema(schema)) {
        return InvalidArgumentError("fact does not match the schema: " +
                                    fact.ToString(schema));
      }
      distinct.Add(fact, 0.0);
      if (!Traits::IsNonNegative(marginal)) {
        return InvalidArgumentError("negative marginal");
      }
      block_sum += marginal;
    }
    if (Traits::ToDouble(block_sum) > 1.0 + 1e-12) {
      return InvalidArgumentError("block marginal mass exceeds 1");
    }
  }
  StatusOr<std::shared_ptr<storage::TiStore>> checked = distinct.Finish();
  if (!checked.ok()) {
    // Keep the legacy wording for the duplicate diagnostic.
    const std::string& message = checked.status().message();
    const std::string prefix = "duplicate fact: ";
    if (message.rfind(prefix, 0) == 0) {
      return InvalidArgumentError("duplicate fact across blocks: " +
                                  message.substr(prefix.size()));
    }
    return checked.status();
  }
  BidPdb result;
  result.schema_ = std::move(schema);
  result.blocks_ = std::move(blocks);
  return result;
}

template <typename P>
BidPdb<P> BidPdb<P>::CreateOrDie(rel::Schema schema,
                                 std::vector<Block> blocks) {
  StatusOr<BidPdb> pdb = Create(std::move(schema), std::move(blocks));
  IPDB_CHECK(pdb.ok()) << pdb.status().ToString();
  return std::move(pdb).value();
}

template <typename P>
P BidPdb<P>::Residual(int64_t block) const {
  IPDB_CHECK_GE(block, static_cast<int64_t>(0));
  IPDB_CHECK_LT(block, num_blocks());
  P total = ProbTraits<P>::Zero();
  for (const auto& [fact, marginal] : blocks_[block]) {
    total += marginal;
  }
  return ProbTraits<P>::One() - total;
}

template <typename P>
P BidPdb<P>::Marginal(const rel::Fact& fact) const {
  for (const Block& block : blocks_) {
    for (const auto& [candidate, marginal] : block) {
      if (candidate == fact) return marginal;
    }
  }
  return ProbTraits<P>::Zero();
}

template <typename P>
P BidPdb<P>::WorldProbability(const rel::Instance& instance) const {
  // Map each instance fact to its block; reject unknown facts and
  // duplicated blocks.
  P probability = ProbTraits<P>::One();
  int64_t matched = 0;
  for (int64_t b = 0; b < num_blocks(); ++b) {
    const Block& block = blocks_[b];
    int found_in_block = 0;
    P chosen = ProbTraits<P>::Zero();
    for (const auto& [fact, marginal] : block) {
      if (instance.Contains(fact)) {
        ++found_in_block;
        chosen = marginal;
      }
    }
    if (found_in_block > 1) return ProbTraits<P>::Zero();
    if (found_in_block == 1) {
      probability *= chosen;
      ++matched;
    } else {
      probability *= Residual(b);
    }
  }
  if (matched != instance.size()) return ProbTraits<P>::Zero();
  return probability;
}

template <typename P>
StatusOr<FinitePdb<P>> BidPdb<P>::TryExpand() const {
  // Mixed-radix enumeration over (|B_b| + 1) options per block, option 0
  // meaning "no fact from this block".
  uint64_t world_count = 1;
  for (const Block& block : blocks_) {
    world_count *= block.size() + 1;
    if (world_count > (1ULL << 22)) {
      return ResourceExhaustedError(
          "BID expansion too large: world count exceeds 2^22");
    }
  }
  typename FinitePdb<P>::WorldList worlds;
  worlds.reserve(world_count);
  std::vector<size_t> choice(blocks_.size(), 0);
  while (true) {
    std::vector<rel::Fact> chosen;
    P probability = ProbTraits<P>::One();
    for (int64_t b = 0; b < num_blocks(); ++b) {
      if (choice[b] == 0) {
        probability *= Residual(b);
      } else {
        chosen.push_back(blocks_[b][choice[b] - 1].first);
        probability *= blocks_[b][choice[b] - 1].second;
      }
    }
    worlds.emplace_back(rel::Instance(std::move(chosen)),
                        std::move(probability));
    size_t b = 0;
    while (b < blocks_.size()) {
      if (++choice[b] <= blocks_[b].size()) break;
      choice[b] = 0;
      ++b;
    }
    if (b == blocks_.size()) break;
  }
  return FinitePdb<P>::CreateOrDie(schema_, std::move(worlds));
}

template <typename P>
FinitePdb<P> BidPdb<P>::Expand() const {
  StatusOr<FinitePdb<P>> expanded = TryExpand();
  IPDB_CHECK(expanded.ok()) << expanded.status().ToString();
  return std::move(expanded).value();
}

template <typename P>
rel::Instance BidPdb<P>::Sample(Pcg32* rng) const {
  std::vector<rel::Fact> chosen;
  for (int64_t b = 0; b < num_blocks(); ++b) {
    double x = rng->NextDouble();
    double cumulative = 0.0;
    for (const auto& [fact, marginal] : blocks_[b]) {
      cumulative += ProbTraits<P>::ToDouble(marginal);
      if (x < cumulative) {
        chosen.push_back(fact);
        break;
      }
    }
  }
  return rel::Instance(std::move(chosen));
}

template <typename P>
std::string BidPdb<P>::ToString() const {
  std::string out;
  for (int64_t b = 0; b < num_blocks(); ++b) {
    out += "block " + std::to_string(b) + ":\n";
    for (const auto& [fact, marginal] : blocks_[b]) {
      out += "  " + fact.ToString(schema_) + " : " +
             ProbTraits<P>::ToString(marginal) + "\n";
    }
  }
  return out;
}

template class BidPdb<double>;
template class BidPdb<math::Rational>;

StatusOr<CountableBidPdb> CountableBidPdb::Create(Family family) {
  if (!family.block_at) {
    return InvalidArgumentError("countable BID family needs block_at");
  }
  return CountableBidPdb(std::move(family));
}

Series CountableBidPdb::BlockMassSeries() const {
  Series series;
  series.term = [block_at = family_.block_at](int64_t i) {
    double total = 0.0;
    for (const auto& [fact, marginal] : block_at(i)) total += marginal;
    return total;
  };
  series.tail_upper_bound = family_.block_mass_tail_upper;
  series.tail_lower_bound = family_.block_mass_tail_lower;
  series.description = "block marginal mass of " + family_.description;
  return series;
}

SumAnalysis CountableBidPdb::CheckWellDefined(
    const SumOptions& options) const {
  return AnalyzeSum(BlockMassSeries(), options);
}

StatusOr<rel::Instance> CountableBidPdb::Sample(Pcg32* rng,
                                                double epsilon) const {
  if (!family_.block_mass_tail_upper) {
    return FailedPreconditionError("sampling needs a tail certificate");
  }
  int64_t cutoff = 1;
  while (family_.block_mass_tail_upper(cutoff) > epsilon) {
    cutoff *= 2;
    if (cutoff > (1LL << 30)) {
      return FailedPreconditionError(
          "tail certificate does not reach the requested epsilon");
    }
  }
  std::vector<rel::Fact> chosen;
  for (int64_t i = 0; i < cutoff; ++i) {
    Block block = family_.block_at(i);
    double x = rng->NextDouble();
    double cumulative = 0.0;
    for (const auto& [fact, marginal] : block) {
      cumulative += marginal;
      if (x < cumulative) {
        chosen.push_back(fact);
        break;
      }
    }
  }
  return rel::Instance(std::move(chosen));
}

BidPdb<double> CountableBidPdb::Truncate(int64_t n) const {
  std::vector<BidPdb<double>::Block> blocks;
  blocks.reserve(n);
  for (int64_t i = 0; i < n; ++i) blocks.push_back(family_.block_at(i));
  return BidPdb<double>::CreateOrDie(family_.schema, std::move(blocks));
}

}  // namespace pdb
}  // namespace ipdb
