#ifndef IPDB_PDB_BID_PDB_H_
#define IPDB_PDB_BID_PDB_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "math/rational.h"
#include "pdb/finite_pdb.h"
#include "pdb/prob_traits.h"
#include "relational/fact.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/random.h"
#include "util/series.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// A block-independent disjoint PDB with finitely many facts
/// (Definition 2.5): the fact set is partitioned into blocks; facts in
/// the same block are mutually exclusive, facts across blocks independent.
/// Each block contributes either exactly one of its facts (fact t with
/// probability p_t) or no fact (with the residual probability
/// r = 1 − Σ p_t, Lemma 5.7's terminology).
template <typename P>
class BidPdb {
 public:
  /// One block: facts with marginals; Σ marginals <= 1.
  using Block = std::vector<std::pair<rel::Fact, P>>;

  BidPdb() = default;

  /// Validates: globally distinct facts matching the schema, marginals in
  /// [0, 1], per-block sums at most 1 (within tolerance for double).
  static StatusOr<BidPdb> Create(rel::Schema schema,
                                 std::vector<Block> blocks);
  static BidPdb CreateOrDie(rel::Schema schema, std::vector<Block> blocks);

  const rel::Schema& schema() const { return schema_; }
  const std::vector<Block>& blocks() const { return blocks_; }
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }

  /// Residual probability of block b: 1 − Σ_{t∈B_b} p_t.
  P Residual(int64_t block) const;

  /// Marginal of a fact (zero for unknown facts).
  P Marginal(const rel::Fact& fact) const;

  /// Probability of a world: Π over blocks of (the marginal of its chosen
  /// fact, or the residual). Zero if the instance contains an unknown
  /// fact or two facts of one block.
  P WorldProbability(const rel::Instance& instance) const;

  /// Enumerates all Π_b (|B_b|+1) worlds as an explicit finite PDB.
  /// Returns kResourceExhausted when the world count would exceed 2^22
  /// (a data-dependent limit, so a recoverable Status, not a crash).
  StatusOr<FinitePdb<P>> TryExpand() const;

  /// TryExpand() or die — for callers whose block structure is small by
  /// construction.
  FinitePdb<P> Expand() const;

  /// Independent per-block draws.
  rel::Instance Sample(Pcg32* rng) const;

  std::string ToString() const;

 private:
  rel::Schema schema_;
  std::vector<Block> blocks_;
};

using BidPdbD = BidPdb<double>;
using BidPdbQ = BidPdb<math::Rational>;

/// A countably infinite BID-PDB: an enumerated family of blocks with
/// certified total-marginal tails (Theorem 2.6's condition
/// Σ_B Σ_{t∈B} p_t < ∞).
class CountableBidPdb {
 public:
  using Block = std::vector<std::pair<rel::Fact, double>>;

  struct Family {
    rel::Schema schema;
    /// block_at(i) for i >= 0; facts pairwise distinct across all blocks.
    std::function<Block(int64_t)> block_at;
    /// Certified upper bound on sum over blocks >= N of their marginal
    /// mass.
    std::function<double(int64_t)> block_mass_tail_upper;
    /// Optional lower bound (+inf certifies non-well-definedness).
    std::function<double(int64_t)> block_mass_tail_lower;
    std::string description;
  };

  static StatusOr<CountableBidPdb> Create(Family family);

  const rel::Schema& schema() const { return family_.schema; }
  const std::string& description() const { return family_.description; }
  Block BlockAt(int64_t i) const { return family_.block_at(i); }

  /// The Theorem 2.6 condition series: per-block marginal mass.
  Series BlockMassSeries() const;
  SumAnalysis CheckWellDefined(const SumOptions& options = {}) const;

  /// Samples a world; exact with probability >= 1 - epsilon (blocks past
  /// the cutoff choose a fact with probability at most the tail mass).
  StatusOr<rel::Instance> Sample(Pcg32* rng, double epsilon = 1e-9) const;

  /// The finite BID-PDB on the first `n` blocks.
  BidPdb<double> Truncate(int64_t n) const;

 private:
  explicit CountableBidPdb(Family family) : family_(std::move(family)) {}

  Family family_;
};

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_BID_PDB_H_
