#include "pdb/combinators.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace pdb {

namespace {

/// Checks that the (positive-marginal) fact sets of the operands are
/// disjoint; returns a description of an offending fact otherwise.
template <typename P>
Status CheckDisjointFactSets(const std::vector<rel::Fact>& a,
                             const std::vector<rel::Fact>& b,
                             const rel::Schema& schema) {
  std::set<rel::Fact> seen(a.begin(), a.end());
  for (const rel::Fact& f : b) {
    if (seen.count(f) != 0) {
      return InvalidArgumentError("fact sets overlap on " +
                                  f.ToString(schema));
    }
  }
  return Status::Ok();
}

}  // namespace

template <typename P>
StatusOr<FinitePdb<P>> IndependentProduct(const FinitePdb<P>& a,
                                          const FinitePdb<P>& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("product requires a common schema");
  }
  Status disjoint = CheckDisjointFactSets<P>(a.FactSet(), b.FactSet(),
                                             a.schema());
  if (!disjoint.ok()) return disjoint;
  typename FinitePdb<P>::WorldList worlds;
  worlds.reserve(a.worlds().size() * b.worlds().size());
  for (const auto& [wa, pa] : a.worlds()) {
    for (const auto& [wb, pb] : b.worlds()) {
      worlds.emplace_back(rel::Instance::Union(wa, wb), pa * pb);
    }
  }
  return FinitePdb<P>::Create(a.schema(), std::move(worlds));
}

template <typename P>
StatusOr<TiPdb<P>> TiUnion(const TiPdb<P>& a, const TiPdb<P>& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("union requires a common schema");
  }
  typename TiPdb<P>::FactList facts = a.facts();
  for (const auto& fact : b.facts()) facts.push_back(fact);
  return TiPdb<P>::Create(a.schema(), std::move(facts));
}

template <typename P>
StatusOr<BidPdb<P>> BidUnion(const BidPdb<P>& a, const BidPdb<P>& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("union requires a common schema");
  }
  std::vector<typename BidPdb<P>::Block> blocks = a.blocks();
  for (const auto& block : b.blocks()) blocks.push_back(block);
  return BidPdb<P>::Create(a.schema(), std::move(blocks));
}

template <typename P>
StatusOr<FinitePdb<P>> Mixture(const FinitePdb<P>& a, const FinitePdb<P>& b,
                               const P& lambda) {
  using Traits = ProbTraits<P>;
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("mixture requires a common schema");
  }
  if (!Traits::IsNonNegative(lambda) || Traits::ToDouble(lambda) > 1.0) {
    return InvalidArgumentError("lambda must lie in [0, 1]");
  }
  typename FinitePdb<P>::WorldList worlds;
  for (const auto& [world, probability] : a.worlds()) {
    worlds.emplace_back(world, lambda * probability);
  }
  P complement = Traits::One() - lambda;
  for (const auto& [world, probability] : b.worlds()) {
    worlds.emplace_back(world, complement * probability);
  }
  return FinitePdb<P>::Create(a.schema(), std::move(worlds));
}

template StatusOr<FinitePdb<double>> IndependentProduct(
    const FinitePdb<double>&, const FinitePdb<double>&);
template StatusOr<FinitePdb<math::Rational>> IndependentProduct(
    const FinitePdb<math::Rational>&, const FinitePdb<math::Rational>&);
template StatusOr<TiPdb<double>> TiUnion(const TiPdb<double>&,
                                         const TiPdb<double>&);
template StatusOr<TiPdb<math::Rational>> TiUnion(
    const TiPdb<math::Rational>&, const TiPdb<math::Rational>&);
template StatusOr<BidPdb<double>> BidUnion(const BidPdb<double>&,
                                           const BidPdb<double>&);
template StatusOr<BidPdb<math::Rational>> BidUnion(
    const BidPdb<math::Rational>&, const BidPdb<math::Rational>&);
template StatusOr<FinitePdb<double>> Mixture(const FinitePdb<double>&,
                                             const FinitePdb<double>&,
                                             const double&);
template StatusOr<FinitePdb<math::Rational>> Mixture(
    const FinitePdb<math::Rational>&, const FinitePdb<math::Rational>&,
    const math::Rational&);

}  // namespace pdb
}  // namespace ipdb
