#ifndef IPDB_PDB_COMBINATORS_H_
#define IPDB_PDB_COMBINATORS_H_

#include "math/rational.h"
#include "pdb/bid_pdb.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// Combinators assembling larger PDBs from independent parts — the
/// operations used implicitly all over the paper (k independent copies
/// in Theorem 4.1, independent blocks in Lemma 5.7, mixing worlds in the
/// Section 6 assignments).

/// The independent product of two finite PDBs over the same schema with
/// disjoint fact sets: worlds are unions, probabilities multiply.
/// Fails if the positive-probability fact sets intersect (the union
/// would not determine the parts).
template <typename P>
StatusOr<FinitePdb<P>> IndependentProduct(const FinitePdb<P>& a,
                                          const FinitePdb<P>& b);

/// The union of two TI-PDBs over the same schema with disjoint fact
/// sets: one TI-PDB carrying all facts (independence composes freely).
template <typename P>
StatusOr<TiPdb<P>> TiUnion(const TiPdb<P>& a, const TiPdb<P>& b);

/// The union of two BID-PDBs over the same schema with disjoint fact
/// sets: block lists concatenate.
template <typename P>
StatusOr<BidPdb<P>> BidUnion(const BidPdb<P>& a, const BidPdb<P>& b);

/// The convex mixture λ·a + (1−λ)·b of two finite PDBs over the same
/// schema. Mixtures generally destroy independence (they are how the
/// non-TI counterexamples of Section 2/B arise) but are always valid
/// PDBs. λ must lie in [0, 1].
template <typename P>
StatusOr<FinitePdb<P>> Mixture(const FinitePdb<P>& a, const FinitePdb<P>& b,
                               const P& lambda);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_COMBINATORS_H_
