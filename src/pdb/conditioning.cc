#include "pdb/conditioning.h"

#include <utility>

#include "logic/evaluator.h"
#include "util/check.h"

namespace ipdb {
namespace pdb {

template <typename P>
StatusOr<P> EventProbability(const FinitePdb<P>& pdb,
                             const logic::Formula& sentence) {
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("conditioning formula is not a sentence");
  }
  P total = ProbTraits<P>::Zero();
  for (const auto& [instance, probability] : pdb.worlds()) {
    StatusOr<bool> holds = logic::Evaluate(instance, pdb.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) total += probability;
  }
  return total;
}

template <typename P>
StatusOr<FinitePdb<P>> Condition(const FinitePdb<P>& pdb,
                                 const logic::Formula& sentence) {
  StatusOr<P> mass = EventProbability(pdb, sentence);
  if (!mass.ok()) return mass.status();
  if (ProbTraits<P>::IsZero(mass.value())) {
    return FailedPreconditionError(
        "conditioning event has probability zero");
  }
  typename FinitePdb<P>::WorldList worlds;
  for (const auto& [instance, probability] : pdb.worlds()) {
    StatusOr<bool> holds = logic::Evaluate(instance, pdb.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) {
      worlds.emplace_back(instance, probability / mass.value());
    }
  }
  return FinitePdb<P>::Create(pdb.schema(), std::move(worlds));
}

template <typename P>
FinitePdb<P> ConditionOrDie(const FinitePdb<P>& pdb,
                            const logic::Formula& sentence) {
  StatusOr<FinitePdb<P>> result = Condition(pdb, sentence);
  IPDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

template StatusOr<double> EventProbability(const FinitePdb<double>&,
                                           const logic::Formula&);
template StatusOr<math::Rational> EventProbability(
    const FinitePdb<math::Rational>&, const logic::Formula&);
template StatusOr<FinitePdb<double>> Condition(const FinitePdb<double>&,
                                               const logic::Formula&);
template StatusOr<FinitePdb<math::Rational>> Condition(
    const FinitePdb<math::Rational>&, const logic::Formula&);
template FinitePdb<double> ConditionOrDie(const FinitePdb<double>&,
                                          const logic::Formula&);
template FinitePdb<math::Rational> ConditionOrDie(
    const FinitePdb<math::Rational>&, const logic::Formula&);

}  // namespace pdb
}  // namespace ipdb
