#ifndef IPDB_PDB_CONDITIONING_H_
#define IPDB_PDB_CONDITIONING_H_

#include "logic/formula.h"
#include "pdb/finite_pdb.h"

namespace ipdb {
namespace pdb {

/// Conditioning D | φ (Section 4): restricts the sample space to the
/// worlds satisfying the FO-sentence φ and rescales. Fails when
/// Pr(D ⊨ φ) = 0 (the conditioned PDB is undefined), when φ has free
/// variables, or when φ does not match the schema.
template <typename P>
StatusOr<FinitePdb<P>> Condition(const FinitePdb<P>& pdb,
                                 const logic::Formula& sentence);

/// Condition, aborting on error.
template <typename P>
FinitePdb<P> ConditionOrDie(const FinitePdb<P>& pdb,
                            const logic::Formula& sentence);

/// Pr_{D~pdb}(D ⊨ φ), the probability of the event named by a sentence.
template <typename P>
StatusOr<P> EventProbability(const FinitePdb<P>& pdb,
                             const logic::Formula& sentence);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_CONDITIONING_H_
