#include "pdb/countable_pdb.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace pdb {

StatusOr<CountablePdb> CountablePdb::Create(Family family) {
  if (!family.world_at || !family.prob_at || !family.size_at) {
    return InvalidArgumentError(
        "countable PDB family needs world_at, prob_at and size_at");
  }
  return CountablePdb(std::move(family));
}

Series CountablePdb::ProbabilitySeries() const {
  Series series;
  series.term = family_.prob_at;
  series.tail_upper_bound = family_.prob_tail_upper;
  series.description = "probability mass of " + family_.description;
  return series;
}

Series CountablePdb::MomentSeries(int k) const {
  return prob::MakeMomentSeries(family_.size_at, family_.prob_at, k,
                                family_.moment_tails);
}

SumAnalysis CountablePdb::AnalyzeMoment(int k,
                                        const SumOptions& options) const {
  return AnalyzeSum(MomentSeries(k), options);
}

StatusOr<int64_t> CountablePdb::SampleIndex(Pcg32* rng,
                                            double epsilon) const {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return InvalidArgumentError("epsilon must lie in (0, 1)");
  }
  double x = rng->NextDouble();
  double cumulative = 0.0;
  int64_t i = 0;
  const int64_t hard_limit = 1LL << 40;
  while (i < hard_limit) {
    cumulative += family_.prob_at(i);
    if (x < cumulative) return i;
    // If the remaining mass is certifiably below epsilon, give up and
    // return the current index (the caller accepts epsilon error).
    if (family_.prob_tail_upper && 1.0 - cumulative <= epsilon) return i;
    ++i;
  }
  return FailedPreconditionError("sampling exceeded the enumeration limit");
}

StatusOr<FinitePdb<double>> CountablePdb::TruncateAndRenormalize(
    int64_t n) const {
  double mass = 0.0;
  for (int64_t i = 0; i < n; ++i) mass += family_.prob_at(i);
  if (mass <= 0.0) {
    return FailedPreconditionError("prefix has zero probability mass");
  }
  FinitePdb<double>::WorldList worlds;
  worlds.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    worlds.emplace_back(family_.world_at(i), family_.prob_at(i) / mass);
  }
  return FinitePdb<double>::Create(family_.schema, std::move(worlds));
}

}  // namespace pdb
}  // namespace ipdb
