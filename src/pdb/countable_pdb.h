#ifndef IPDB_PDB_COUNTABLE_PDB_H_
#define IPDB_PDB_COUNTABLE_PDB_H_

#include <cstdint>
#include <functional>
#include <string>

#include "pdb/finite_pdb.h"
#include "prob/moments.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/interval.h"
#include "util/random.h"
#include "util/series.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// A countably infinite PDB (Definition 2.1) presented as an enumerated
/// world family D_0, D_1, … with probabilities p_i and certified tail
/// bounds. All of the paper's example PDBs (Examples 3.5, 3.9, 5.5;
/// Lemmas 6.5/6.6) have this form.
///
/// Certificates:
///  * `prob_tail_upper(N)` >= sum_{i >= N} p_i — needed for sampling and
///    for certifying normalization;
///  * `moment_tails` — bounds on sum_{i >= N} |D_i|^k p_i, which decide
///    the finite moments property (Section 3.1) for this family.
class CountablePdb {
 public:
  struct Family {
    rel::Schema schema;
    /// world_at(i) for i >= 0; worlds must be pairwise distinct.
    std::function<rel::Instance(int64_t)> world_at;
    /// prob_at(i) >= 0, summing to 1 over all i.
    std::function<double(int64_t)> prob_at;
    /// |world_at(i)| without materializing the world. Required: the
    /// paper's families have worlds of size 2^i and similar, which must
    /// not be built to compute moments.
    std::function<int64_t(int64_t)> size_at;
    /// Certified upper bound on sum_{i >= N} prob_at(i); may be null.
    std::function<double(int64_t)> prob_tail_upper;
    /// Moment-sum tail certificates (either direction may be null).
    prob::MomentTailCertificates moment_tails;
    std::string description;
  };

  static StatusOr<CountablePdb> Create(Family family);

  const rel::Schema& schema() const { return family_.schema; }
  const std::string& description() const { return family_.description; }
  rel::Instance WorldAt(int64_t i) const { return family_.world_at(i); }
  double ProbAt(int64_t i) const { return family_.prob_at(i); }
  int64_t SizeAt(int64_t i) const { return family_.size_at(i); }

  /// The normalization series Σ p_i (must converge to 1).
  Series ProbabilitySeries() const;

  /// The k-th size-moment series Σ |D_i|^k p_i with certificates
  /// attached; analyzing it decides E[|D|^k] (Section 3.1).
  Series MomentSeries(int k) const;

  /// Analyzes E[|D|^k]; kConverged yields a certified enclosure,
  /// kDiverged certifies an infinite moment (the Proposition 3.4
  /// obstruction).
  SumAnalysis AnalyzeMoment(int k, const SumOptions& options = {}) const;

  /// Samples a world index by inversion; exact with probability
  /// >= 1 - epsilon given a probability tail certificate.
  StatusOr<int64_t> SampleIndex(Pcg32* rng, double epsilon = 1e-9) const;

  /// The conditional finite PDB on the first n worlds (renormalized).
  /// Useful for exercising finite algorithms against prefixes of the
  /// paper's infinite examples.
  StatusOr<FinitePdb<double>> TruncateAndRenormalize(int64_t n) const;

 private:
  explicit CountablePdb(Family family) : family_(std::move(family)) {}

  Family family_;
};

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_COUNTABLE_PDB_H_
