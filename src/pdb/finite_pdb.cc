#include "pdb/finite_pdb.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "util/check.h"

namespace ipdb {
namespace pdb {

template <typename P>
StatusOr<FinitePdb<P>> FinitePdb<P>::Create(rel::Schema schema,
                                            WorldList worlds) {
  using Traits = ProbTraits<P>;
  // Merge duplicate instances.
  std::sort(worlds.begin(), worlds.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  WorldList merged;
  for (auto& [instance, probability] : worlds) {
    if (!Traits::IsNonNegative(probability)) {
      return InvalidArgumentError("negative world probability");
    }
    if (!instance.MatchesSchema(schema)) {
      return InvalidArgumentError("world does not match the schema: " +
                                  instance.ToString(schema));
    }
    if (!merged.empty() && merged.back().first == instance) {
      merged.back().second += probability;
    } else {
      merged.emplace_back(std::move(instance), std::move(probability));
    }
  }
  P total = Traits::Zero();
  for (const auto& [instance, probability] : merged) {
    total += probability;
  }
  if (!Traits::IsOne(total)) {
    return InvalidArgumentError("world probabilities sum to " +
                                Traits::ToString(total) + ", not 1");
  }
  FinitePdb result;
  result.schema_ = std::move(schema);
  result.worlds_ = std::move(merged);
  return result;
}

template <typename P>
FinitePdb<P> FinitePdb<P>::CreateOrDie(rel::Schema schema, WorldList worlds) {
  StatusOr<FinitePdb> pdb = Create(std::move(schema), std::move(worlds));
  IPDB_CHECK(pdb.ok()) << pdb.status().ToString();
  return std::move(pdb).value();
}

template <typename P>
P FinitePdb<P>::Probability(const rel::Instance& instance) const {
  auto it = std::lower_bound(
      worlds_.begin(), worlds_.end(), instance,
      [](const auto& world, const rel::Instance& key) {
        return world.first < key;
      });
  if (it != worlds_.end() && it->first == instance) return it->second;
  return ProbTraits<P>::Zero();
}

template <typename P>
P FinitePdb<P>::Marginal(const rel::Fact& fact) const {
  P total = ProbTraits<P>::Zero();
  for (const auto& [instance, probability] : worlds_) {
    if (instance.Contains(fact)) total += probability;
  }
  return total;
}

template <typename P>
std::vector<rel::Fact> FinitePdb<P>::FactSet() const {
  std::vector<rel::Fact> facts;
  for (const auto& [instance, probability] : worlds_) {
    if (ProbTraits<P>::IsZero(probability)) continue;
    for (const rel::Fact& f : instance.facts()) facts.push_back(f);
  }
  std::sort(facts.begin(), facts.end());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  return facts;
}

template <typename P>
double FinitePdb<P>::SizeMoment(int k) const {
  IPDB_CHECK_GE(k, 0);
  double total = 0.0;
  for (const auto& [instance, probability] : worlds_) {
    total += std::pow(static_cast<double>(instance.size()),
                      static_cast<double>(k)) *
             ProbTraits<P>::ToDouble(probability);
  }
  return total;
}

template <typename P>
P FinitePdb<P>::SizeMomentExact(int k) const {
  IPDB_CHECK_GE(k, 0);
  P total = ProbTraits<P>::Zero();
  for (const auto& [instance, probability] : worlds_) {
    P size_power = ProbTraits<P>::One();
    for (int i = 0; i < k; ++i) {
      size_power *= P(instance.size());
    }
    total += size_power * probability;
  }
  return total;
}

template <typename P>
FinitePdb<P> FinitePdb<P>::DropNullWorlds() const {
  FinitePdb result;
  result.schema_ = schema_;
  for (const auto& world : worlds_) {
    if (!ProbTraits<P>::IsZero(world.second)) {
      result.worlds_.push_back(world);
    }
  }
  return result;
}

namespace {

// Compares a probability against a product of probabilities with type-
// appropriate tolerance.
bool ProbablyEqual(double a, double b) { return std::abs(a - b) <= 1e-9; }
bool ProbablyEqual(const math::Rational& a, const math::Rational& b) {
  return a == b;
}

}  // namespace

template <typename P>
StatusOr<bool> FinitePdb<P>::CheckTupleIndependent() const {
  std::vector<rel::Fact> facts = FactSet();
  if (facts.size() > 24u) {
    return ResourceExhaustedError(
        "tuple-independence check is 2^n: " + std::to_string(facts.size()) +
        " facts exceed the 24-fact limit");
  }
  // For every subset S of facts: Pr(S ⊆ D) must equal Π_{t∈S} Pr(t ∈ D).
  std::vector<P> marginals;
  marginals.reserve(facts.size());
  for (const rel::Fact& f : facts) marginals.push_back(Marginal(f));
  for (uint64_t mask = 0; mask < (1ULL << facts.size()); ++mask) {
    P joint = ProbTraits<P>::Zero();
    for (const auto& [instance, probability] : worlds_) {
      bool covers = true;
      for (size_t i = 0; i < facts.size(); ++i) {
        if ((mask >> i) & 1) {
          if (!instance.Contains(facts[i])) {
            covers = false;
            break;
          }
        }
      }
      if (covers) joint += probability;
    }
    P product = ProbTraits<P>::One();
    for (size_t i = 0; i < facts.size(); ++i) {
      if ((mask >> i) & 1) product *= marginals[i];
    }
    if (!ProbablyEqual(joint, product)) return false;
  }
  return true;
}

template <typename P>
bool FinitePdb<P>::IsTupleIndependent() const {
  StatusOr<bool> independent = CheckTupleIndependent();
  IPDB_CHECK(independent.ok()) << independent.status().ToString();
  return independent.value();
}

template <typename P>
StatusOr<bool> FinitePdb<P>::CheckBlockIndependentDisjoint(
    const std::vector<std::vector<rel::Fact>>& blocks) const {
  if (blocks.size() > 12u) {
    return ResourceExhaustedError(
        "BID check is exponential in blocks: " +
        std::to_string(blocks.size()) + " blocks exceed the 12-block limit");
  }
  // (2) facts within a block are mutually exclusive.
  for (const auto& block : blocks) {
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        for (const auto& [instance, probability] : worlds_) {
          if (ProbTraits<P>::IsZero(probability)) continue;
          if (instance.Contains(block[i]) && instance.Contains(block[j])) {
            return false;
          }
        }
      }
    }
  }
  // (1) cross-block factorization: for every choice of at most one fact
  // per block, the joint probability factorizes. We check all tuples of
  // facts from pairwise different blocks (product over block choices,
  // including "no fact"), which is exponential in the number of blocks —
  // intended for small fixtures (hence the 12-block cap above).
  std::vector<size_t> choice(blocks.size(), 0);  // 0 = skip block
  while (true) {
    std::vector<rel::Fact> chosen;
    for (size_t b = 0; b < blocks.size(); ++b) {
      if (choice[b] > 0) chosen.push_back(blocks[b][choice[b] - 1]);
    }
    if (chosen.size() >= 2) {
      P joint = ProbTraits<P>::Zero();
      for (const auto& [instance, probability] : worlds_) {
        bool covers = true;
        for (const rel::Fact& f : chosen) {
          if (!instance.Contains(f)) {
            covers = false;
            break;
          }
        }
        if (covers) joint += probability;
      }
      P product = ProbTraits<P>::One();
      for (const rel::Fact& f : chosen) product *= Marginal(f);
      if (!ProbablyEqual(joint, product)) return false;
    }
    // Advance the mixed-radix counter.
    size_t b = 0;
    while (b < blocks.size()) {
      if (++choice[b] <= blocks[b].size()) break;
      choice[b] = 0;
      ++b;
    }
    if (b == blocks.size()) break;
  }
  return true;
}

template <typename P>
bool FinitePdb<P>::IsBlockIndependentDisjoint(
    const std::vector<std::vector<rel::Fact>>& blocks) const {
  StatusOr<bool> bid = CheckBlockIndependentDisjoint(blocks);
  IPDB_CHECK(bid.ok()) << bid.status().ToString();
  return bid.value();
}

template <typename P>
std::string FinitePdb<P>::ToString() const {
  std::string out;
  for (const auto& [instance, probability] : worlds_) {
    out += instance.ToString(schema_) + " : " +
           ProbTraits<P>::ToString(probability) + "\n";
  }
  return out;
}

template <typename P>
StatusOr<double> TryTotalVariationDistance(const FinitePdb<P>& a,
                                           const FinitePdb<P>& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("TV distance across schemas");
  }
  double total = 0.0;
  // Merge the two sorted world lists.
  const auto& wa = a.worlds();
  const auto& wb = b.worlds();
  size_t i = 0;
  size_t j = 0;
  while (i < wa.size() || j < wb.size()) {
    if (j >= wb.size() || (i < wa.size() && wa[i].first < wb[j].first)) {
      total += std::abs(ProbTraits<P>::ToDouble(wa[i].second));
      ++i;
    } else if (i >= wa.size() || wb[j].first < wa[i].first) {
      total += std::abs(ProbTraits<P>::ToDouble(wb[j].second));
      ++j;
    } else {
      total += std::abs(ProbTraits<P>::ToDouble(wa[i].second) -
                        ProbTraits<P>::ToDouble(wb[j].second));
      ++i;
      ++j;
    }
  }
  return total / 2.0;
}

template <typename P>
double TotalVariationDistance(const FinitePdb<P>& a, const FinitePdb<P>& b) {
  StatusOr<double> distance = TryTotalVariationDistance(a, b);
  IPDB_CHECK(distance.ok()) << distance.status().ToString();
  return distance.value();
}

template class FinitePdb<double>;
template class FinitePdb<math::Rational>;
template double TotalVariationDistance<double>(const FinitePdb<double>&,
                                               const FinitePdb<double>&);
template double TotalVariationDistance<math::Rational>(
    const FinitePdb<math::Rational>&, const FinitePdb<math::Rational>&);
template StatusOr<double> TryTotalVariationDistance<double>(
    const FinitePdb<double>&, const FinitePdb<double>&);
template StatusOr<double> TryTotalVariationDistance<math::Rational>(
    const FinitePdb<math::Rational>&, const FinitePdb<math::Rational>&);

}  // namespace pdb
}  // namespace ipdb
