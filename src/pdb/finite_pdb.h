#ifndef IPDB_PDB_FINITE_PDB_H_
#define IPDB_PDB_FINITE_PDB_H_

#include <string>
#include <utility>
#include <vector>

#include "math/rational.h"
#include "pdb/prob_traits.h"
#include "relational/fact.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// A finite probabilistic database (Definition 2.1 with |𝔻| finite): an
/// explicit list of possible worlds with probabilities summing to one.
///
/// `P` is `double` (numeric) or `math::Rational` (exact); see
/// ProbTraits. Worlds are kept sorted by instance and duplicate-free
/// (probabilities of equal instances are merged), so two FinitePdbs are
/// equal as probability spaces iff their world lists are equal.
template <typename P>
class FinitePdb {
 public:
  using WorldList = std::vector<std::pair<rel::Instance, P>>;

  FinitePdb() = default;

  /// Validates and canonicalizes: all probabilities non-negative, total
  /// mass one (exactly for Rational, within 1e-9 for double), all
  /// instances matching the schema. Zero-probability worlds are kept if
  /// given (they matter for IDB(D) only when positive, so callers usually
  /// drop them; `DropNullWorlds` removes them).
  static StatusOr<FinitePdb> Create(rel::Schema schema, WorldList worlds);

  /// Create, aborting on invalid input.
  static FinitePdb CreateOrDie(rel::Schema schema, WorldList worlds);

  const rel::Schema& schema() const { return schema_; }
  const WorldList& worlds() const { return worlds_; }
  int64_t num_worlds() const { return static_cast<int64_t>(worlds_.size()); }

  /// Probability of one instance (zero if absent).
  P Probability(const rel::Instance& instance) const;

  /// Marginal probability Pr(t ∈ D) of a fact.
  P Marginal(const rel::Fact& fact) const;

  /// The fact set T(D): all facts appearing in worlds of positive
  /// probability, sorted.
  std::vector<rel::Fact> FactSet() const;

  /// E[|D|^k] as a double (also exact in spirit for Rational inputs — the
  /// k-th moment of a finite PDB is finite and this converts at the end).
  double SizeMoment(int k) const;

  /// E[|D|^k] computed exactly (only for P = math::Rational).
  P SizeMomentExact(int k) const;

  /// Removes worlds of zero probability.
  FinitePdb DropNullWorlds() const;

  /// Tuple-independence test (Definition 2.3): checks that for every
  /// subset of the fact set, the joint membership probability factorizes.
  /// Exponential in |T(D)|: returns kResourceExhausted beyond 24 facts
  /// (a data-dependent limit, hence a recoverable Status).
  StatusOr<bool> CheckTupleIndependent() const;

  /// CheckTupleIndependent() or die — for small test fixtures.
  bool IsTupleIndependent() const;

  /// Block-independent-disjointness test for a given partition of the
  /// fact set into blocks (Definition 2.5). Exponential in the number of
  /// blocks: returns kResourceExhausted beyond 12 blocks.
  StatusOr<bool> CheckBlockIndependentDisjoint(
      const std::vector<std::vector<rel::Fact>>& blocks) const;

  /// CheckBlockIndependentDisjoint() or die — for small test fixtures.
  bool IsBlockIndependentDisjoint(
      const std::vector<std::vector<rel::Fact>>& blocks) const;

  std::string ToString() const;

  friend bool operator==(const FinitePdb& a, const FinitePdb& b) {
    return a.schema_ == b.schema_ && a.worlds_ == b.worlds_;
  }

 private:
  rel::Schema schema_;
  WorldList worlds_;
};

using FinitePdbD = FinitePdb<double>;
using FinitePdbQ = FinitePdb<math::Rational>;

/// Total variation distance between two finite PDBs over the same schema:
/// (1/2) Σ_D |P₁(D) − P₂(D)| (as a double). Returns kInvalidArgument on
/// a schema mismatch.
template <typename P>
StatusOr<double> TryTotalVariationDistance(const FinitePdb<P>& a,
                                           const FinitePdb<P>& b);

/// TryTotalVariationDistance() or die — for callers that constructed
/// both PDBs over one schema.
template <typename P>
double TotalVariationDistance(const FinitePdb<P>& a, const FinitePdb<P>& b);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_FINITE_PDB_H_
