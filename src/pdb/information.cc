#include "pdb/information.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ipdb {
namespace pdb {

namespace {

double Log2(double x) { return std::log(x) / std::log(2.0); }

/// Binary entropy h(p) in bits (h(0) = h(1) = 0).
double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * Log2(p) - (1.0 - p) * Log2(1.0 - p);
}

}  // namespace

template <typename P>
double ShannonEntropy(const FinitePdb<P>& pdb) {
  double entropy = 0.0;
  for (const auto& [world, probability] : pdb.worlds()) {
    double p = ProbTraits<P>::ToDouble(probability);
    if (p > 0.0) entropy -= p * Log2(p);
  }
  return entropy;
}

template <typename P>
double TiEntropy(const TiPdb<P>& ti) {
  double entropy = 0.0;
  for (const auto& [fact, marginal] : ti.facts()) {
    entropy += BinaryEntropy(ProbTraits<P>::ToDouble(marginal));
  }
  return entropy;
}

template <typename P>
StatusOr<double> KlDivergence(const FinitePdb<P>& a, const FinitePdb<P>& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("KL divergence across schemas");
  }
  double divergence = 0.0;
  for (const auto& [world, probability] : a.worlds()) {
    double pa = ProbTraits<P>::ToDouble(probability);
    if (pa <= 0.0) continue;
    double pb = ProbTraits<P>::ToDouble(b.Probability(world));
    if (pb <= 0.0) {
      return FailedPreconditionError(
          "KL divergence infinite: support mismatch at " +
          world.ToString(a.schema()));
    }
    divergence += pa * Log2(pa / pb);
  }
  // Clamp tiny negative rounding residue (KL >= 0 mathematically).
  return divergence < 0.0 && divergence > -1e-12 ? 0.0 : divergence;
}

template <typename P>
StatusOr<double> TryHellingerDistance(const FinitePdb<P>& a,
                                      const FinitePdb<P>& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("Hellinger distance across schemas");
  }
  // Bhattacharyya coefficient over the union of supports.
  double coefficient = 0.0;
  for (const auto& [world, probability] : a.worlds()) {
    double pa = ProbTraits<P>::ToDouble(probability);
    double pb = ProbTraits<P>::ToDouble(b.Probability(world));
    coefficient += std::sqrt(pa * pb);
  }
  double inside = 1.0 - coefficient;
  if (inside < 0.0) inside = 0.0;  // rounding
  return std::sqrt(inside);
}

template <typename P>
double HellingerDistance(const FinitePdb<P>& a, const FinitePdb<P>& b) {
  StatusOr<double> distance = TryHellingerDistance(a, b);
  IPDB_CHECK(distance.ok()) << distance.status().ToString();
  return distance.value();
}

template <typename P>
StatusOr<double> IndependenceGap(const FinitePdb<P>& pdb) {
  // The product approximation with matching marginals.
  std::vector<rel::Fact> facts = pdb.FactSet();
  typename TiPdb<double>::FactList marginals;
  marginals.reserve(facts.size());
  for (const rel::Fact& fact : facts) {
    marginals.emplace_back(fact,
                           ProbTraits<P>::ToDouble(pdb.Marginal(fact)));
  }
  StatusOr<TiPdb<double>> product =
      TiPdb<double>::Create(pdb.schema(), std::move(marginals));
  if (!product.ok()) return product.status();

  double divergence = 0.0;
  for (const auto& [world, probability] : pdb.worlds()) {
    double pa = ProbTraits<P>::ToDouble(probability);
    if (pa <= 0.0) continue;
    double pb = product.value().WorldProbability(world);
    if (pb <= 0.0) {
      return FailedPreconditionError(
          "degenerate marginal zeroes a used world: " +
          world.ToString(pdb.schema()));
    }
    divergence += pa * Log2(pa / pb);
  }
  return divergence < 0.0 && divergence > -1e-12 ? 0.0 : divergence;
}

template double ShannonEntropy(const FinitePdb<double>&);
template double ShannonEntropy(const FinitePdb<math::Rational>&);
template double TiEntropy(const TiPdb<double>&);
template double TiEntropy(const TiPdb<math::Rational>&);
template StatusOr<double> KlDivergence(const FinitePdb<double>&,
                                       const FinitePdb<double>&);
template StatusOr<double> KlDivergence(const FinitePdb<math::Rational>&,
                                       const FinitePdb<math::Rational>&);
template StatusOr<double> TryHellingerDistance(const FinitePdb<double>&,
                                               const FinitePdb<double>&);
template StatusOr<double> TryHellingerDistance(
    const FinitePdb<math::Rational>&, const FinitePdb<math::Rational>&);
template double HellingerDistance(const FinitePdb<double>&,
                                  const FinitePdb<double>&);
template double HellingerDistance(const FinitePdb<math::Rational>&,
                                  const FinitePdb<math::Rational>&);
template StatusOr<double> IndependenceGap(const FinitePdb<double>&);
template StatusOr<double> IndependenceGap(const FinitePdb<math::Rational>&);

}  // namespace pdb
}  // namespace ipdb
