#ifndef IPDB_PDB_INFORMATION_H_
#define IPDB_PDB_INFORMATION_H_

#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// Information-theoretic measures on finite PDBs. Besides total
/// variation (finite_pdb.h), these quantify how far a distribution is
/// from independence — the gap the paper's representation theorems close
/// constructively.

/// Shannon entropy H(D) = −Σ P(D) log₂ P(D) in bits.
template <typename P>
double ShannonEntropy(const FinitePdb<P>& pdb);

/// The entropy of a TI-PDB in closed form: facts are independent, so
/// H = Σ_t h(p_t) with h the binary entropy function. Matches
/// ShannonEntropy(ti.Expand()) exactly (tested), without the 2^n
/// expansion.
template <typename P>
double TiEntropy(const TiPdb<P>& ti);

/// Kullback–Leibler divergence KL(a ‖ b) in bits. Fails when a puts
/// positive mass where b has none (the divergence is infinite) — use
/// the return status to detect support mismatches.
template <typename P>
StatusOr<double> KlDivergence(const FinitePdb<P>& a, const FinitePdb<P>& b);

/// Hellinger distance H(a, b) = sqrt(1 − Σ sqrt(P_a P_b)) ∈ [0, 1].
/// Returns kInvalidArgument on a schema mismatch.
template <typename P>
StatusOr<double> TryHellingerDistance(const FinitePdb<P>& a,
                                      const FinitePdb<P>& b);

/// TryHellingerDistance() or die.
template <typename P>
double HellingerDistance(const FinitePdb<P>& a, const FinitePdb<P>& b);

/// The "independence gap" of a finite PDB: the KL divergence from the
/// PDB to the TI-PDB carrying the same marginals (its maximum-entropy
/// product approximation). Zero iff the PDB is itself tuple-independent
/// — a quantitative version of the TI membership test. Always finite
/// for marginals in (0, 1); degenerate marginals (exactly 0 or 1) can
/// only zero out worlds the PDB does not use either.
template <typename P>
StatusOr<double> IndependenceGap(const FinitePdb<P>& pdb);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_INFORMATION_H_
