#include "pdb/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace ipdb {
namespace pdb {

int64_t EmpiricalDistribution::Count(const rel::Instance& instance) const {
  auto it = counts_.find(instance);
  return it == counts_.end() ? 0 : it->second;
}

double EmpiricalDistribution::Frequency(const rel::Instance& instance) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(instance)) /
         static_cast<double>(total_);
}

template <typename P>
double EmpiricalDistribution::TvDistance(const FinitePdb<P>& pdb) const {
  double total = 0.0;
  std::set<rel::Instance> support;
  for (const auto& [instance, count] : counts_) support.insert(instance);
  for (const auto& [instance, probability] : pdb.worlds()) {
    support.insert(instance);
  }
  for (const rel::Instance& instance : support) {
    total += std::abs(Frequency(instance) -
                      ProbTraits<P>::ToDouble(pdb.Probability(instance)));
  }
  return total / 2.0;
}

template <typename P>
double EmpiricalDistribution::MaxAbsDiff(const FinitePdb<P>& pdb) const {
  double best = 0.0;
  std::set<rel::Instance> support;
  for (const auto& [instance, count] : counts_) support.insert(instance);
  for (const auto& [instance, probability] : pdb.worlds()) {
    support.insert(instance);
  }
  for (const rel::Instance& instance : support) {
    best = std::max(
        best, std::abs(Frequency(instance) -
                       ProbTraits<P>::ToDouble(pdb.Probability(instance))));
  }
  return best;
}

template double EmpiricalDistribution::TvDistance(
    const FinitePdb<double>&) const;
template double EmpiricalDistribution::TvDistance(
    const FinitePdb<math::Rational>&) const;
template double EmpiricalDistribution::MaxAbsDiff(
    const FinitePdb<double>&) const;
template double EmpiricalDistribution::MaxAbsDiff(
    const FinitePdb<math::Rational>&) const;

double TvDistanceMixed(const FinitePdb<math::Rational>& exact,
                       const FinitePdb<double>& approx) {
  double total = 0.0;
  std::set<rel::Instance> support;
  for (const auto& [instance, probability] : exact.worlds()) {
    support.insert(instance);
  }
  for (const auto& [instance, probability] : approx.worlds()) {
    support.insert(instance);
  }
  for (const rel::Instance& instance : support) {
    total += std::abs(exact.Probability(instance).ToDouble() -
                      approx.Probability(instance));
  }
  return total / 2.0;
}

}  // namespace pdb
}  // namespace ipdb
