#ifndef IPDB_PDB_METRICS_H_
#define IPDB_PDB_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "pdb/finite_pdb.h"
#include "relational/instance.h"

namespace ipdb {
namespace pdb {

/// An empirical distribution over instances accumulated from samples;
/// used for Monte Carlo verification that a construction's sampled output
/// matches the target distribution.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;

  void Add(const rel::Instance& instance) {
    ++counts_[instance];
    ++total_;
  }

  /// Adds every count of `other`; the workhorse of merging per-shard
  /// tallies from parallel accumulation. Merging is order-insensitive
  /// (counts are exact integers), so any merge order yields the same
  /// distribution.
  void MergeFrom(const EmpiricalDistribution& other) {
    for (const auto& [instance, count] : other.counts_) {
      counts_[instance] += count;
    }
    total_ += other.total_;
  }

  int64_t total() const { return total_; }
  int64_t Count(const rel::Instance& instance) const;
  double Frequency(const rel::Instance& instance) const;
  const std::map<rel::Instance, int64_t>& counts() const { return counts_; }

  /// Total variation distance between the empirical distribution and a
  /// finite PDB: (1/2) Σ |freq(D) − P(D)|, summed over the union of
  /// supports. Converges to 0 like O(sqrt(#worlds / samples)) when the
  /// sampler is faithful.
  template <typename P>
  double TvDistance(const FinitePdb<P>& pdb) const;

  /// Maximum absolute difference between empirical frequencies and PDB
  /// probabilities over the union of supports.
  template <typename P>
  double MaxAbsDiff(const FinitePdb<P>& pdb) const;

 private:
  std::map<rel::Instance, int64_t> counts_;
  int64_t total_ = 0;
};

/// Total variation distance between PDBs carried at different probability
/// types (e.g. an exact construction output vs. a double reference).
double TvDistanceMixed(const FinitePdb<math::Rational>& exact,
                       const FinitePdb<double>& approx);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_METRICS_H_
