#ifndef IPDB_PDB_PROB_TRAITS_H_
#define IPDB_PDB_PROB_TRAITS_H_

#include <cmath>
#include <string>

#include "math/rational.h"

namespace ipdb {
namespace pdb {

/// Traits abstracting the probability type used by finite PDBs.
///
/// Two instantiations are supported:
///  * `double` — fast, used for Monte Carlo and numeric criteria;
///  * `math::Rational` — exact, used wherever the paper's statements are
///    exact distribution equalities (Theorem 4.1, Lemma 5.7, the finite
///    completeness theorem).
template <typename P>
struct ProbTraits;

template <>
struct ProbTraits<double> {
  static constexpr bool kExact = false;
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
  static double ToDouble(double p) { return p; }
  static bool IsNonNegative(double p) { return p >= 0.0; }
  /// Tolerant normalization check: |p - 1| <= 1e-9.
  static bool IsOne(double p) { return std::abs(p - 1.0) <= 1e-9; }
  static bool IsZero(double p) { return p == 0.0; }
  static std::string ToString(double p) { return std::to_string(p); }
};

template <>
struct ProbTraits<math::Rational> {
  static constexpr bool kExact = true;
  static math::Rational Zero() { return math::Rational(0); }
  static math::Rational One() { return math::Rational(1); }
  static double ToDouble(const math::Rational& p) { return p.ToDouble(); }
  static bool IsNonNegative(const math::Rational& p) {
    return !p.is_negative();
  }
  static bool IsOne(const math::Rational& p) {
    return p == math::Rational(1);
  }
  static bool IsZero(const math::Rational& p) { return p.is_zero(); }
  static std::string ToString(const math::Rational& p) {
    return p.ToString();
  }
};

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_PROB_TRAITS_H_
