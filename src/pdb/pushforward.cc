#include "pdb/pushforward.h"

#include <map>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace pdb {

template <typename P>
StatusOr<FinitePdb<P>> Pushforward(const FinitePdb<P>& pdb,
                                   const logic::FoView& view) {
  if (!(view.input_schema() == pdb.schema())) {
    return InvalidArgumentError("view input schema differs from the PDB's");
  }
  std::map<rel::Instance, P> grouped;
  for (const auto& [instance, probability] : pdb.worlds()) {
    StatusOr<rel::Instance> image = view.Apply(instance);
    if (!image.ok()) return image.status();
    auto [it, inserted] =
        grouped.emplace(std::move(image).value(), probability);
    if (!inserted) it->second += probability;
  }
  typename FinitePdb<P>::WorldList worlds;
  worlds.reserve(grouped.size());
  for (auto& [instance, probability] : grouped) {
    worlds.emplace_back(instance, probability);
  }
  return FinitePdb<P>::Create(view.output_schema(), std::move(worlds));
}

template <typename P>
FinitePdb<P> PushforwardOrDie(const FinitePdb<P>& pdb,
                              const logic::FoView& view) {
  StatusOr<FinitePdb<P>> result = Pushforward(pdb, view);
  IPDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

template StatusOr<FinitePdb<double>> Pushforward(const FinitePdb<double>&,
                                                 const logic::FoView&);
template StatusOr<FinitePdb<math::Rational>> Pushforward(
    const FinitePdb<math::Rational>&, const logic::FoView&);
template FinitePdb<double> PushforwardOrDie(const FinitePdb<double>&,
                                            const logic::FoView&);
template FinitePdb<math::Rational> PushforwardOrDie(
    const FinitePdb<math::Rational>&, const logic::FoView&);

}  // namespace pdb
}  // namespace ipdb
