#ifndef IPDB_PDB_PUSHFORWARD_H_
#define IPDB_PDB_PUSHFORWARD_H_

#include "logic/view.h"
#include "pdb/finite_pdb.h"

namespace ipdb {
namespace pdb {

/// The image PDB V(D) of a finite PDB under an FO-view (Section 2,
/// "Query Semantics"): P'(D') = P({D : V(D) = D'}). Fails if a view body
/// is malformed or the view's input schema differs from the PDB's.
template <typename P>
StatusOr<FinitePdb<P>> Pushforward(const FinitePdb<P>& pdb,
                                   const logic::FoView& view);

/// Pushforward, aborting on error.
template <typename P>
FinitePdb<P> PushforwardOrDie(const FinitePdb<P>& pdb,
                              const logic::FoView& view);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_PUSHFORWARD_H_
