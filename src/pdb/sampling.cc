#include "pdb/sampling.h"

namespace ipdb {
namespace pdb {

template <typename P>
rel::Instance SampleWorld(const FinitePdb<P>& pdb, Pcg32* rng) {
  double x = rng->NextDouble();
  double cumulative = 0.0;
  for (const auto& [instance, probability] : pdb.worlds()) {
    cumulative += ProbTraits<P>::ToDouble(probability);
    if (x < cumulative) return instance;
  }
  // Floating point slack: return the last world.
  return pdb.worlds().back().first;
}

template rel::Instance SampleWorld(const FinitePdb<double>&, Pcg32*);
template rel::Instance SampleWorld(const FinitePdb<math::Rational>&, Pcg32*);

EmpiricalDistribution Accumulate(
    const std::function<rel::Instance()>& sampler, int64_t samples) {
  EmpiricalDistribution empirical;
  for (int64_t i = 0; i < samples; ++i) {
    empirical.Add(sampler());
  }
  return empirical;
}

}  // namespace pdb
}  // namespace ipdb
