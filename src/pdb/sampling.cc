#include "pdb/sampling.h"

#include <algorithm>
#include <vector>

#include "obs/obs.h"
#include "util/parallel.h"

namespace ipdb {
namespace pdb {

template <typename P>
rel::Instance SampleWorld(const FinitePdb<P>& pdb, Pcg32* rng) {
  double x = rng->NextDouble();
  double cumulative = 0.0;
  for (const auto& [instance, probability] : pdb.worlds()) {
    cumulative += ProbTraits<P>::ToDouble(probability);
    if (x < cumulative) return instance;
  }
  // Floating point slack: return the last world.
  return pdb.worlds().back().first;
}

template rel::Instance SampleWorld(const FinitePdb<double>&, Pcg32*);
template rel::Instance SampleWorld(const FinitePdb<math::Rational>&, Pcg32*);

EmpiricalDistribution Accumulate(
    const std::function<rel::Instance()>& sampler, int64_t samples) {
  IPDB_OBS_SPAN("pdb.accumulate", "sampling");
  EmpiricalDistribution empirical;
  for (int64_t i = 0; i < samples; ++i) {
    empirical.Add(sampler());
  }
  IPDB_OBS_COUNT("pdb.mc.samples", samples);
  return empirical;
}

EmpiricalDistribution Accumulate(
    const std::function<rel::Instance(Pcg32*)>& sampler, int64_t samples,
    const Pcg32& base_rng, const SamplingOptions& options) {
  IPDB_OBS_SPAN("pdb.accumulate", "sampling");
  const int shards = std::max(1, options.shards);
  // Shard s draws ceil/floor(samples / shards) samples from substream s.
  // The decomposition depends only on (samples, shards), so any thread
  // count replays exactly the same draws.
  std::vector<EmpiricalDistribution> partial(shards);
  ParallelFor(options.threads, shards, [&](int64_t s) {
    // Per-shard wall-clock: the histogram's spread shows scheduling
    // skew, its sum over the counter below gives samples/second.
    IPDB_OBS_SCOPED_TIMER("pdb.mc.shard_ns");
    Pcg32 rng = base_rng.Split(static_cast<uint64_t>(s));
    int64_t count =
        samples / shards + (s < samples % shards ? 1 : 0);
    for (int64_t i = 0; i < count; ++i) {
      partial[s].Add(sampler(&rng));
    }
  });
  IPDB_OBS_COUNT("pdb.mc.samples", samples);
  EmpiricalDistribution merged;
  for (EmpiricalDistribution& p : partial) merged.MergeFrom(p);
  return merged;
}

}  // namespace pdb
}  // namespace ipdb
