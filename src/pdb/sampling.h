#ifndef IPDB_PDB_SAMPLING_H_
#define IPDB_PDB_SAMPLING_H_

#include <cstdint>
#include <functional>

#include "pdb/bid_pdb.h"
#include "pdb/finite_pdb.h"
#include "pdb/metrics.h"
#include "pdb/ti_pdb.h"
#include "util/budget.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {

/// Knobs for the parallel Monte Carlo paths (Accumulate,
/// pqe::EstimateQueryProbability, pqe::RankedAnswers).
///
/// Determinism contract: the sample stream is partitioned into `shards`
/// logical substreams, shard s drawing from base_rng.Split(s), and
/// per-shard results are merged in shard order. The output is therefore a
/// pure function of (base seed, shards, samples) and NEVER depends on
/// `threads`, which only controls how shards are scheduled onto workers.
struct SamplingOptions {
  /// Worker threads (including the caller); <= 0 means
  /// HardwareThreadCount(), 1 means fully sequential.
  int threads = 1;
  /// Logical RNG substreams. Changing this changes which samples are
  /// drawn (a different but equally valid sample stream); changing
  /// `threads` does not.
  int shards = 64;
  /// Optional resource governor for the sampling loop. The deadline and
  /// cancel token are polled per chunk of ~64 samples inside each shard;
  /// `max_samples` clamps the total draw count up front. A sampler
  /// stopped early returns the partial estimate (with its interval
  /// widened to the samples actually drawn) and marks it `truncated` —
  /// a truncated run's sample count depends on timing, so the
  /// determinism contract above applies only to un-truncated runs.
  const ExecutionBudget* budget = nullptr;
};

/// Draws a world from an explicit finite PDB (linear inversion; adequate
/// for test-sized PDBs).
template <typename P>
rel::Instance SampleWorld(const FinitePdb<P>& pdb, Pcg32* rng);

/// Runs `samples` draws from `sampler` and accumulates the empirical
/// distribution; the workhorse of Monte Carlo construction checks.
EmpiricalDistribution Accumulate(
    const std::function<rel::Instance()>& sampler, int64_t samples);

/// Parallel overload: `sampler` is invoked concurrently, once per draw,
/// with a shard-local rng derived via base_rng.Split(shard). Bit-identical
/// for a fixed base_rng and options.shards regardless of options.threads.
EmpiricalDistribution Accumulate(
    const std::function<rel::Instance(Pcg32*)>& sampler, int64_t samples,
    const Pcg32& base_rng, const SamplingOptions& options = {});

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_SAMPLING_H_
