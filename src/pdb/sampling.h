#ifndef IPDB_PDB_SAMPLING_H_
#define IPDB_PDB_SAMPLING_H_

#include <cstdint>
#include <functional>

#include "pdb/bid_pdb.h"
#include "pdb/finite_pdb.h"
#include "pdb/metrics.h"
#include "pdb/ti_pdb.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {

/// Draws a world from an explicit finite PDB (linear inversion; adequate
/// for test-sized PDBs).
template <typename P>
rel::Instance SampleWorld(const FinitePdb<P>& pdb, Pcg32* rng);

/// Runs `samples` draws from `sampler` and accumulates the empirical
/// distribution; the workhorse of Monte Carlo construction checks.
EmpiricalDistribution Accumulate(
    const std::function<rel::Instance()>& sampler, int64_t samples);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_SAMPLING_H_
