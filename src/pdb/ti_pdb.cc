#include "pdb/ti_pdb.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ipdb {
namespace pdb {

template <typename P>
StatusOr<TiPdb<P>> TiPdb<P>::Create(rel::Schema schema, FactList facts) {
  using Traits = ProbTraits<P>;
  // Validation rides on the columnar build: schema and range checks
  // inline (preserving the legacy error order), distinctness via the
  // per-relation sort in Builder::Finish instead of a std::set probe
  // per fact.
  storage::TiStore::Builder builder(schema);
  builder.Reserve(static_cast<int64_t>(facts.size()));
  for (const auto& [fact, marginal] : facts) {
    if (!fact.MatchesSchema(schema)) {
      return InvalidArgumentError("fact does not match the schema: " +
                                  fact.ToString(schema));
    }
    if (!Traits::IsNonNegative(marginal) ||
        Traits::ToDouble(marginal) > 1.0 + 1e-12) {
      return InvalidArgumentError("marginal probability outside [0, 1]");
    }
    if constexpr (Traits::kExact) {
      builder.AddExact(fact, marginal);
    } else {
      builder.Add(fact, marginal);
    }
  }
  StatusOr<std::shared_ptr<storage::TiStore>> store = builder.Finish();
  if (!store.ok()) return store.status();
  TiPdb result;
  result.schema_ = std::move(schema);
  result.facts_ = std::move(facts);
  result.store_ = std::move(store).value();
  return result;
}

template <typename P>
TiPdb<P> TiPdb<P>::CreateOrDie(rel::Schema schema, FactList facts) {
  StatusOr<TiPdb> pdb = Create(std::move(schema), std::move(facts));
  IPDB_CHECK(pdb.ok()) << pdb.status().ToString();
  return std::move(pdb).value();
}

template <typename P>
StatusOr<TiPdb<P>> TiPdb<P>::FromStore(
    std::shared_ptr<const storage::TiStore> store) {
  if (store == nullptr) return InvalidArgumentError("null store");
  TiPdb result;
  result.schema_ = store->schema();
  result.facts_.reserve(static_cast<size_t>(store->num_facts()));
  for (int64_t i = 0; i < store->num_facts(); ++i) {
    if constexpr (ProbTraits<P>::kExact) {
      const math::Rational* exact = store->ExactAt(i);
      if (exact == nullptr) {
        return FailedPreconditionError(
            "exact TiPdb view requires an exact marginal for every stored "
            "fact");
      }
      result.facts_.emplace_back(store->FactAt(i), *exact);
    } else {
      result.facts_.emplace_back(store->FactAt(i), store->ProbAt(i));
    }
  }
  result.store_ = std::move(store);
  return result;
}

template <typename P>
P TiPdb<P>::Marginal(const rel::Fact& fact) const {
  if (store_ != nullptr) {
    // Binary search in the columnar store; the view's value is returned
    // so exactness and above-one tolerance behave exactly as before.
    const int64_t i = store_->FindFact(fact);
    return i < 0 ? ProbTraits<P>::Zero()
                 : facts_[static_cast<size_t>(i)].second;
  }
  for (const auto& [candidate, marginal] : facts_) {
    if (candidate == fact) return marginal;
  }
  return ProbTraits<P>::Zero();
}

template <typename P>
P TiPdb<P>::WorldProbability(const rel::Instance& instance) const {
  // Every fact of the instance must be in the fact set.
  for (const rel::Fact& f : instance.facts()) {
    bool found = false;
    for (const auto& [candidate, marginal] : facts_) {
      if (candidate == f) {
        found = true;
        break;
      }
    }
    if (!found) return ProbTraits<P>::Zero();
  }
  P probability = ProbTraits<P>::One();
  for (const auto& [fact, marginal] : facts_) {
    if (instance.Contains(fact)) {
      probability *= marginal;
    } else {
      probability *= ProbTraits<P>::One() - marginal;
    }
  }
  return probability;
}

template <typename P>
P TiPdb<P>::MarginalSum() const {
  P total = ProbTraits<P>::Zero();
  for (const auto& [fact, marginal] : facts_) total += marginal;
  return total;
}

template <typename P>
StatusOr<FinitePdb<P>> TiPdb<P>::TryExpand() const {
  // Facts with marginal exactly 1 are present in every world and facts
  // with marginal 0 in none, so only "uncertain" facts drive the 2^n
  // expansion.
  std::vector<rel::Fact> certain;
  std::vector<std::pair<rel::Fact, P>> uncertain;
  for (const auto& [fact, marginal] : facts_) {
    if (ProbTraits<P>::IsZero(marginal)) continue;
    if (ProbTraits<P>::IsOne(marginal) &&
        ProbTraits<P>::ToDouble(marginal) >= 1.0) {
      certain.push_back(fact);
    } else {
      uncertain.emplace_back(fact, marginal);
    }
  }
  if (uncertain.size() > 20u) {
    return ResourceExhaustedError(
        "TI expansion is 2^n: " + std::to_string(uncertain.size()) +
        " uncertain facts exceed the 20-fact enumeration limit");
  }
  typename FinitePdb<P>::WorldList worlds;
  const uint64_t count = 1ULL << uncertain.size();
  worlds.reserve(count);
  for (uint64_t mask = 0; mask < count; ++mask) {
    std::vector<rel::Fact> chosen = certain;
    P probability = ProbTraits<P>::One();
    for (size_t i = 0; i < uncertain.size(); ++i) {
      if ((mask >> i) & 1) {
        chosen.push_back(uncertain[i].first);
        probability *= uncertain[i].second;
      } else {
        probability =
            probability * (ProbTraits<P>::One() - uncertain[i].second);
      }
    }
    worlds.emplace_back(rel::Instance(std::move(chosen)),
                        std::move(probability));
  }
  return FinitePdb<P>::CreateOrDie(schema_, std::move(worlds));
}

template <typename P>
FinitePdb<P> TiPdb<P>::Expand() const {
  StatusOr<FinitePdb<P>> expanded = TryExpand();
  IPDB_CHECK(expanded.ok()) << expanded.status().ToString();
  return std::move(expanded).value();
}

template <typename P>
rel::Instance TiPdb<P>::Sample(Pcg32* rng) const {
  std::vector<rel::Fact> chosen;
  for (const auto& [fact, marginal] : facts_) {
    if (rng->NextBernoulli(ProbTraits<P>::ToDouble(marginal))) {
      chosen.push_back(fact);
    }
  }
  return rel::Instance(std::move(chosen));
}

template <typename P>
std::vector<double> TiPdb<P>::SizeDistribution() const {
  std::vector<double> marginals;
  marginals.reserve(facts_.size());
  for (const auto& [fact, marginal] : facts_) {
    marginals.push_back(ProbTraits<P>::ToDouble(marginal));
  }
  return prob::PoissonBinomialPmf(marginals);
}

template <typename P>
double TiPdb<P>::SizeMoment(int k) const {
  return prob::MomentFromPmf(SizeDistribution(), k);
}

template <typename P>
std::string TiPdb<P>::ToString() const {
  std::string out;
  for (const auto& [fact, marginal] : facts_) {
    out += fact.ToString(schema_) + " : " +
           ProbTraits<P>::ToString(marginal) + "\n";
  }
  return out;
}

template class TiPdb<double>;
template class TiPdb<math::Rational>;

StatusOr<CountableTiPdb> CountableTiPdb::Create(Family family) {
  if (!family.fact_at || !family.marginal_at) {
    return InvalidArgumentError(
        "countable TI family needs fact_at and marginal_at");
  }
  return CountableTiPdb(std::move(family));
}

Series CountableTiPdb::MarginalSeries() const {
  Series series;
  series.term = family_.marginal_at;
  series.tail_upper_bound = family_.marginal_tail_upper;
  series.tail_lower_bound = family_.marginal_tail_lower;
  series.description = "marginal sum of " + family_.description;
  return series;
}

SumAnalysis CountableTiPdb::CheckWellDefined(const SumOptions& options) const {
  return AnalyzeSum(MarginalSeries(), options);
}

StatusOr<Interval> CountableTiPdb::SizeMomentInterval(int k,
                                                      int64_t prefix) const {
  if (k < 0) return InvalidArgumentError("moment order must be >= 0");
  if (prefix <= 0) return InvalidArgumentError("prefix must be positive");
  if (!family_.marginal_tail_upper) {
    return FailedPreconditionError(
        "size moments need a marginal tail certificate");
  }
  double tail = family_.marginal_tail_upper(prefix);
  if (!std::isfinite(tail)) {
    return FailedPreconditionError("marginal tail certificate is infinite");
  }
  std::vector<double> marginals;
  marginals.reserve(prefix);
  for (int64_t i = 0; i < prefix; ++i) {
    marginals.push_back(family_.marginal_at(i));
  }
  return prob::PoissonBinomialMomentInterval(marginals, tail, k);
}

StatusOr<rel::Instance> CountableTiPdb::Sample(Pcg32* rng,
                                               double epsilon) const {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return InvalidArgumentError("epsilon must lie in (0, 1)");
  }
  if (!family_.marginal_tail_upper) {
    return FailedPreconditionError("sampling needs a tail certificate");
  }
  // Find a cutoff with tail mass <= epsilon (P(any fact >= N appears) <=
  // sum of their marginals).
  int64_t cutoff = 1;
  while (family_.marginal_tail_upper(cutoff) > epsilon) {
    cutoff *= 2;
    if (cutoff > (1LL << 30)) {
      return FailedPreconditionError(
          "tail certificate does not reach the requested epsilon");
    }
  }
  std::vector<rel::Fact> chosen;
  for (int64_t i = 0; i < cutoff; ++i) {
    if (rng->NextBernoulli(family_.marginal_at(i))) {
      chosen.push_back(family_.fact_at(i));
    }
  }
  return rel::Instance(std::move(chosen));
}

TiPdb<double> CountableTiPdb::Truncate(int64_t n) const {
  TiPdb<double>::FactList facts;
  facts.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    facts.emplace_back(family_.fact_at(i), family_.marginal_at(i));
  }
  return TiPdb<double>::CreateOrDie(family_.schema, std::move(facts));
}

}  // namespace pdb
}  // namespace ipdb
