#ifndef IPDB_PDB_TI_PDB_H_
#define IPDB_PDB_TI_PDB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "math/rational.h"
#include "pdb/finite_pdb.h"
#include "pdb/prob_traits.h"
#include "prob/poisson_binomial.h"
#include "relational/fact.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "storage/ti_store.h"
#include "util/interval.h"
#include "util/random.h"
#include "util/series.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// A tuple-independent PDB with a *finite* fact set (Definition 2.3): the
/// facts' memberships are independent events with the given marginal
/// probabilities. Represented by the marginals alone; the induced sample
/// space is the power set of the fact set.
///
/// Storage: `Create` builds a columnar, dictionary-encoded
/// storage::TiStore (the representation the grounding and lifted engines
/// scan) and keeps the caller's FactList as a compatibility view — the
/// view preserves insertion order, so sampling streams and double
/// accumulation orders are bit-identical to the pre-columnar engine.
/// Fact i of the view is global fact i of the store.
template <typename P>
class TiPdb {
 public:
  using FactList = std::vector<std::pair<rel::Fact, P>>;

  TiPdb() = default;

  /// Validates: facts distinct and matching the schema, marginals in
  /// [0, 1].
  static StatusOr<TiPdb> Create(rel::Schema schema, FactList facts);
  static TiPdb CreateOrDie(rel::Schema schema, FactList facts);

  /// Wraps an existing columnar store (e.g. one that went through live
  /// mutators), materializing the compatibility view from its columns.
  /// For P = math::Rational every fact must carry an exact side-table
  /// entry (kFailedPrecondition otherwise).
  static StatusOr<TiPdb> FromStore(
      std::shared_ptr<const storage::TiStore> store);

  const rel::Schema& schema() const { return schema_; }
  const FactList& facts() const { return facts_; }
  int64_t num_facts() const { return static_cast<int64_t>(facts_.size()); }

  /// The columnar backing store; null only for a default-constructed
  /// TiPdb. Hot consumers (grounding, the lifted engine, benches) scan
  /// this instead of the object-per-tuple view.
  const std::shared_ptr<const storage::TiStore>& store() const {
    return store_;
  }

  /// Marginal of a fact (zero for facts outside the fact set).
  P Marginal(const rel::Fact& fact) const;

  /// Exact probability of a world: Π_{t∈D} p_t Π_{t∉D} (1−p_t);
  /// zero if D contains a fact outside the fact set.
  P WorldProbability(const rel::Instance& instance) const;

  /// Sum of marginals (always finite here; the object of Theorem 2.4).
  P MarginalSum() const;

  /// Enumerates all 2^n worlds as an explicit finite PDB. Returns
  /// kResourceExhausted when more than 20 facts have marginals strictly
  /// between 0 and 1 (the expansion would exceed 2^20 worlds) — a data-
  /// dependent limit, so it is a recoverable Status, not a crash.
  StatusOr<FinitePdb<P>> TryExpand() const;

  /// TryExpand() or die — for callers (tests, fixtures) whose fact sets
  /// are small by construction.
  FinitePdb<P> Expand() const;

  /// Independent coin flips (uses double approximations of marginals).
  rel::Instance Sample(Pcg32* rng) const;

  /// Distribution of the instance size |D| (Poisson binomial), as
  /// doubles.
  std::vector<double> SizeDistribution() const;

  /// E[|D|^k] (exact DP in doubles).
  double SizeMoment(int k) const;

  std::string ToString() const;

 private:
  rel::Schema schema_;
  FactList facts_;
  std::shared_ptr<const storage::TiStore> store_;
};

using TiPdbD = TiPdb<double>;
using TiPdbQ = TiPdb<math::Rational>;

/// A *countably infinite* tuple-independent PDB, presented as an
/// enumerated fact family with certified marginal tails. This is the
/// paper's central infinite object (Theorem 2.4): the family is a
/// well-defined TI-PDB iff the marginal series converges.
class CountableTiPdb {
 public:
  struct Family {
    rel::Schema schema;
    /// fact_at(i) for i >= 0; facts must be pairwise distinct.
    std::function<rel::Fact(int64_t)> fact_at;
    /// marginal_at(i) in [0, 1].
    std::function<double(int64_t)> marginal_at;
    /// Certified upper bound on sum_{i >= N} marginal_at(i); may be null
    /// (then only witness-level statements are possible).
    std::function<double(int64_t)> marginal_tail_upper;
    /// Optional certified lower bound on the marginal tail (+inf certifies
    /// that the family is NOT a TI-PDB).
    std::function<double(int64_t)> marginal_tail_lower;
    std::string description;
  };

  static StatusOr<CountableTiPdb> Create(Family family);

  const rel::Schema& schema() const { return family_.schema; }
  const std::string& description() const { return family_.description; }
  rel::Fact FactAt(int64_t i) const { return family_.fact_at(i); }
  double MarginalAt(int64_t i) const { return family_.marginal_at(i); }

  /// The marginal sum series (Theorem 2.4 condition) with its
  /// certificates.
  Series MarginalSeries() const;

  /// Analyzes Theorem 2.4's condition: converged means the family spans a
  /// well-defined TI-PDB.
  SumAnalysis CheckWellDefined(const SumOptions& options = {}) const;

  /// Certified enclosure of E[|D|^k]: prefix Poisson-binomial DP plus the
  /// Lemma C.1 tail bound (Proposition 3.2 made quantitative). Requires a
  /// marginal tail certificate; `prefix` facts are used.
  StatusOr<Interval> SizeMomentInterval(int k, int64_t prefix = 4096) const;

  /// Samples a world: with probability >= 1 - epsilon the result is exact
  /// (no fact beyond the cutoff N with tail(N) <= epsilon would have
  /// appeared). Requires a tail certificate.
  StatusOr<rel::Instance> Sample(Pcg32* rng, double epsilon = 1e-9) const;

  /// The finite TI-PDB on the first `n` facts.
  TiPdb<double> Truncate(int64_t n) const;

 private:
  explicit CountableTiPdb(Family family) : family_(std::move(family)) {}

  Family family_;
};

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_TI_PDB_H_
