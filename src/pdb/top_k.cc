#include "pdb/top_k.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "util/check.h"

namespace ipdb {
namespace pdb {

StatusOr<std::vector<std::pair<rel::Instance, double>>> TopKWorlds(
    const TiPdb<double>& ti, int64_t k) {
  if (k < 0) return InvalidArgumentError("k must be non-negative");
  const int64_t n = ti.num_facts();
  if (n > 63) {
    return FailedPreconditionError("top-k search supports up to 63 facts");
  }

  // Order facts by the cost of flipping them away from the mode:
  // flipping fact i multiplies the probability by ratio_i =
  // min(p, 1-p) / max(p, 1-p) <= 1. Facts with p exactly 0 or 1 have
  // ratio 0 (flipping yields probability 0; still enumerated last).
  struct Flip {
    int64_t fact;
    double ratio;
    bool in_mode;  // fact present in the modal world?
  };
  std::vector<Flip> flips(n);
  double mode_probability = 1.0;
  for (int64_t i = 0; i < n; ++i) {
    double p = ti.facts()[i].second;
    bool take = p >= 0.5;
    mode_probability *= take ? p : 1.0 - p;
    double hi = std::max(p, 1.0 - p);
    double lo = std::min(p, 1.0 - p);
    flips[i] = {i, hi > 0.0 ? lo / hi : 0.0, take};
  }
  std::sort(flips.begin(), flips.end(),
            [](const Flip& a, const Flip& b) { return a.ratio > b.ratio; });

  // Best-first over flip masks (bit j = flip the j-th *sorted* fact).
  // Lawler-style expansion: from a mask whose highest set bit is h,
  // successors are (mask | 1<<j) for j > h, plus the classic
  // "advance/extend" pair; using the general visited-set version keeps
  // it simple and correct.
  struct Entry {
    double probability;
    uint64_t mask;
    bool operator<(const Entry& other) const {
      if (probability != other.probability) {
        return probability < other.probability;
      }
      return mask > other.mask;  // deterministic tie-break
    }
  };
  auto probability_of = [&](uint64_t mask) {
    double probability = mode_probability;
    for (int j = 0; j < n; ++j) {
      if ((mask >> j) & 1) probability *= flips[j].ratio;
    }
    return probability;
  };

  std::priority_queue<Entry> heap;
  std::set<uint64_t> visited;
  heap.push({mode_probability, 0});
  visited.insert(0);

  std::vector<std::pair<rel::Instance, double>> result;
  while (!heap.empty() && static_cast<int64_t>(result.size()) < k) {
    Entry top = heap.top();
    heap.pop();
    // Materialize the world.
    std::vector<rel::Fact> facts;
    for (int j = 0; j < n; ++j) {
      bool flipped = (top.mask >> j) & 1;
      bool present = flips[j].in_mode != flipped;
      if (present) facts.push_back(ti.facts()[flips[j].fact].first);
    }
    result.emplace_back(rel::Instance(std::move(facts)), top.probability);
    // Successors: flip any bit above the highest set bit (enumerates
    // every mask exactly once), plus "move the highest bit up".
    int highest = -1;
    for (int j = n - 1; j >= 0; --j) {
      if ((top.mask >> j) & 1) {
        highest = j;
        break;
      }
    }
    for (int j = highest + 1; j < n; ++j) {
      uint64_t next = top.mask | (uint64_t{1} << j);
      if (visited.insert(next).second) {
        heap.push({probability_of(next), next});
      }
    }
  }
  return result;
}

template <typename P>
std::vector<std::pair<rel::Instance, P>> TopKWorlds(const FinitePdb<P>& pdb,
                                                    int64_t k) {
  std::vector<std::pair<rel::Instance, P>> worlds = pdb.worlds();
  std::stable_sort(worlds.begin(), worlds.end(),
                   [](const auto& a, const auto& b) {
                     return ProbTraits<P>::ToDouble(a.second) >
                            ProbTraits<P>::ToDouble(b.second);
                   });
  if (static_cast<int64_t>(worlds.size()) > k) {
    worlds.resize(k);
  }
  return worlds;
}

template std::vector<std::pair<rel::Instance, double>> TopKWorlds(
    const FinitePdb<double>&, int64_t);
template std::vector<std::pair<rel::Instance, math::Rational>> TopKWorlds(
    const FinitePdb<math::Rational>&, int64_t);

}  // namespace pdb
}  // namespace ipdb
