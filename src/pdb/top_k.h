#ifndef IPDB_PDB_TOP_K_H_
#define IPDB_PDB_TOP_K_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "pdb/ti_pdb.h"
#include "relational/instance.h"
#include "util/status.h"

namespace ipdb {
namespace pdb {

/// Top-k most probable possible worlds of a finite TI-PDB, *without*
/// expanding the 2^n sample space: best-first search from the modal
/// world (take each fact iff its marginal is >= 1/2), expanding one fact
/// flip at a time through a max-heap. Runs in O(k n log(kn)) heap
/// operations for n facts — usable where Expand() is not.
///
/// Returns up to k (world, probability) pairs in non-increasing
/// probability order. Supports up to 63 facts; ties are broken by the
/// flip pattern (deterministic).
StatusOr<std::vector<std::pair<rel::Instance, double>>> TopKWorlds(
    const TiPdb<double>& ti, int64_t k);

/// Top-k worlds of an explicit finite PDB (sorting shortcut, for parity
/// of API and for cross-checking the TI search in tests).
template <typename P>
std::vector<std::pair<rel::Instance, P>> TopKWorlds(
    const FinitePdb<P>& pdb, int64_t k);

}  // namespace pdb
}  // namespace ipdb

#endif  // IPDB_PDB_TOP_K_H_
