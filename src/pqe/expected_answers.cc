#include "pqe/expected_answers.h"

#include <algorithm>
#include <set>
#include <utility>

#include "pqe/wmc.h"
#include "util/parallel.h"

namespace ipdb {
namespace pqe {

namespace {

using logic::Formula;
using logic::Term;

StatusOr<std::vector<RankedAnswer>> EnumerateAnswers(
    const pdb::TiPdb<double>& ti, const Formula& query,
    const std::vector<std::string>& head_vars,
    const pdb::SamplingOptions& options) {
  std::vector<std::string> free = query.FreeVariables();
  for (const std::string& v : free) {
    if (std::find(head_vars.begin(), head_vars.end(), v) ==
        head_vars.end()) {
      return InvalidArgumentError("free variable " + v +
                                  " not covered by the head");
    }
  }
  // Candidate values: adom of the fact set plus query constants.
  std::set<rel::Value> candidate_set;
  for (const auto& [fact, marginal] : ti.facts()) {
    for (const rel::Value& v : fact.args()) candidate_set.insert(v);
  }
  for (const rel::Value& v : query.Constants()) candidate_set.insert(v);
  std::vector<rel::Value> candidates(candidate_set.begin(),
                                     candidate_set.end());

  std::vector<RankedAnswer> answers;
  if (head_vars.empty()) {
    StatusOr<double> p = QueryProbability(ti, query);
    if (!p.ok()) return p.status();
    if (p.value() > 0.0) answers.push_back({{}, p.value()});
    return answers;
  }
  if (candidates.empty()) return answers;

  // Materialize the candidate grid first, then evaluate each grounded
  // query by exact WMC — independent work items, fanned out across
  // options.threads and recombined in grid order so the result does not
  // depend on the schedule.
  std::vector<std::vector<rel::Value>> tuples;
  std::vector<size_t> odometer(head_vars.size(), 0);
  while (true) {
    std::vector<rel::Value> tuple;
    tuple.reserve(head_vars.size());
    for (size_t i = 0; i < head_vars.size(); ++i) {
      tuple.push_back(candidates[odometer[i]]);
    }
    tuples.push_back(std::move(tuple));
    size_t pos = 0;
    while (pos < odometer.size()) {
      if (++odometer[pos] < candidates.size()) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == odometer.size()) break;
  }

  std::vector<double> probabilities(tuples.size(), 0.0);
  std::vector<Status> statuses(tuples.size(), Status::Ok());
  ParallelFor(options.threads, static_cast<int64_t>(tuples.size()),
              [&](int64_t t) {
                Formula grounded = query;
                for (size_t i = 0; i < head_vars.size(); ++i) {
                  grounded = grounded.Substitute(
                      head_vars[i], Term::Const(tuples[t][i]));
                }
                StatusOr<double> p = QueryProbability(ti, grounded);
                if (!p.ok()) {
                  statuses[t] = p.status();
                  return;
                }
                probabilities[t] = p.value();
              });
  for (size_t t = 0; t < tuples.size(); ++t) {
    if (!statuses[t].ok()) return statuses[t];
    if (probabilities[t] > 0.0) {
      answers.push_back({std::move(tuples[t]), probabilities[t]});
    }
  }
  std::sort(answers.begin(), answers.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.tuple < b.tuple;
            });
  return answers;
}

}  // namespace

StatusOr<std::vector<RankedAnswer>> RankedAnswers(
    const pdb::TiPdb<double>& ti, const logic::Formula& query,
    const std::vector<std::string>& head_vars,
    const pdb::SamplingOptions& options) {
  return EnumerateAnswers(ti, query, head_vars, options);
}

StatusOr<double> ExpectedAnswerCount(
    const pdb::TiPdb<double>& ti, const logic::Formula& query,
    const std::vector<std::string>& head_vars,
    const pdb::SamplingOptions& options) {
  StatusOr<std::vector<RankedAnswer>> answers =
      EnumerateAnswers(ti, query, head_vars, options);
  if (!answers.ok()) return answers.status();
  double total = 0.0;
  for (const RankedAnswer& answer : answers.value()) {
    total += answer.probability;
  }
  return total;
}

}  // namespace pqe
}  // namespace ipdb
