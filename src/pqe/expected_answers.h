#ifndef IPDB_PQE_EXPECTED_ANSWERS_H_
#define IPDB_PQE_EXPECTED_ANSWERS_H_

#include <string>
#include <vector>

#include "logic/formula.h"
#include "pdb/sampling.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// The expected answer count E[|q(D)|] of a non-boolean query over a
/// TI-PDB — the quantity whose boundedness Lemma 3.3 exploits to show
/// that FO-views preserve finite moments, here computed exactly.
///
/// By linearity of expectation,
///
///   E[|q(D)|] = Σ_ā Pr(D ⊨ q(ā)),
///
/// with ā ranging over (adom(T(I)) ∪ consts(q))^k (the output-safety
/// candidate set) and each summand evaluated by exact WMC. `head_vars`
/// orders the free variables, as in logic::EvaluateQuery.
///
/// The per-tuple WMC calls are independent, so both entry points accept
/// an optional options knob whose `threads` field fans the candidate
/// grid out across workers; summands and answers are combined in
/// candidate order, making the result independent of the thread count
/// (options.shards is ignored — the computation is exact, not sampled).
StatusOr<double> ExpectedAnswerCount(
    const pdb::TiPdb<double>& ti, const logic::Formula& query,
    const std::vector<std::string>& head_vars,
    const pdb::SamplingOptions& options = {});

/// Per-tuple answer probabilities: the pairs (ā, Pr(D ⊨ q(ā))) with
/// positive probability — the standard "probabilistic answers, ranked"
/// output of a probabilistic database.
struct RankedAnswer {
  std::vector<rel::Value> tuple;
  double probability;
};
StatusOr<std::vector<RankedAnswer>> RankedAnswers(
    const pdb::TiPdb<double>& ti, const logic::Formula& query,
    const std::vector<std::string>& head_vars,
    const pdb::SamplingOptions& options = {});

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_EXPECTED_ANSWERS_H_
