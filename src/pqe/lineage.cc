#include "pqe/lineage.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "logic/evaluator.h"
#include "relational/fact.h"
#include "util/check.h"

namespace ipdb {
namespace pqe {

Lineage::Lineage() {
  nodes_.push_back({NodeKind::kTrue, -1, {}});
  nodes_.push_back({NodeKind::kFalse, -1, {}});
  support_cache_.resize(2);
  support_cached_.resize(2, true);
}

uint64_t Lineage::NodeHashKey(const Node& node) const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(node.kind));
  mix(static_cast<uint64_t>(node.variable) + 0x9e3779b9u);
  for (NodeId c : node.children) mix(static_cast<uint64_t>(c));
  return h;
}

NodeId Lineage::Intern(Node node) {
  uint64_t key = NodeHashKey(node);
  auto& bucket = intern_[key];
  for (NodeId id : bucket) {
    const Node& existing = nodes_[id];
    if (existing.kind == node.kind && existing.variable == node.variable &&
        existing.children == node.children) {
      return id;
    }
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  support_cache_.emplace_back();
  support_cached_.push_back(false);
  bucket.push_back(id);
  return id;
}

NodeId Lineage::Var(int variable) {
  IPDB_CHECK_GE(variable, 0);
  return Intern({NodeKind::kVar, variable, {}});
}

NodeId Lineage::MakeNot(NodeId operand) {
  if (operand == kTrueId) return kFalseId;
  if (operand == kFalseId) return kTrueId;
  if (nodes_[operand].kind == NodeKind::kNot) {
    return nodes_[operand].children[0];
  }
  return Intern({NodeKind::kNot, -1, {operand}});
}

NodeId Lineage::MakeAnd(std::vector<NodeId> operands) {
  std::vector<NodeId> flat;
  for (NodeId id : operands) {
    if (id == kFalseId) return kFalseId;
    if (id == kTrueId) continue;
    if (nodes_[id].kind == NodeKind::kAnd) {
      for (NodeId c : nodes_[id].children) flat.push_back(c);
    } else {
      flat.push_back(id);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return kTrueId;
  if (flat.size() == 1) return flat[0];
  // x ∧ ¬x = false.
  for (NodeId id : flat) {
    if (nodes_[id].kind == NodeKind::kNot &&
        std::binary_search(flat.begin(), flat.end(),
                           nodes_[id].children[0])) {
      return kFalseId;
    }
  }
  return Intern({NodeKind::kAnd, -1, std::move(flat)});
}

NodeId Lineage::MakeOr(std::vector<NodeId> operands) {
  std::vector<NodeId> flat;
  for (NodeId id : operands) {
    if (id == kTrueId) return kTrueId;
    if (id == kFalseId) continue;
    if (nodes_[id].kind == NodeKind::kOr) {
      for (NodeId c : nodes_[id].children) flat.push_back(c);
    } else {
      flat.push_back(id);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return kFalseId;
  if (flat.size() == 1) return flat[0];
  for (NodeId id : flat) {
    if (nodes_[id].kind == NodeKind::kNot &&
        std::binary_search(flat.begin(), flat.end(),
                           nodes_[id].children[0])) {
      return kTrueId;
    }
  }
  return Intern({NodeKind::kOr, -1, std::move(flat)});
}

const std::vector<int>& Lineage::Support(NodeId id) {
  if (support_cached_[id]) return support_cache_[id];
  std::set<int> vars;
  const Node& node = nodes_[id];
  if (node.kind == NodeKind::kVar) {
    vars.insert(node.variable);
  } else {
    for (NodeId c : node.children) {
      const std::vector<int>& sub = Support(c);
      vars.insert(sub.begin(), sub.end());
    }
  }
  support_cache_[id].assign(vars.begin(), vars.end());
  support_cached_[id] = true;
  return support_cache_[id];
}

bool Lineage::Evaluate(NodeId id, const std::vector<bool>& assignment) const {
  const Node& node = nodes_[id];
  switch (node.kind) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kFalse:
      return false;
    case NodeKind::kVar:
      IPDB_CHECK_LT(static_cast<size_t>(node.variable), assignment.size());
      return assignment[node.variable];
    case NodeKind::kNot:
      return !Evaluate(node.children[0], assignment);
    case NodeKind::kAnd:
      for (NodeId c : node.children) {
        if (!Evaluate(c, assignment)) return false;
      }
      return true;
    case NodeKind::kOr:
      for (NodeId c : node.children) {
        if (Evaluate(c, assignment)) return true;
      }
      return false;
  }
  return false;
}

NodeId Lineage::Restrict(NodeId id, int variable, bool value) {
  // Memo local to one (variable, value) restriction pass.
  std::unordered_map<NodeId, NodeId> memo;
  struct Walker {
    Lineage* lineage;
    int variable;
    bool value;
    std::unordered_map<NodeId, NodeId>* memo;
    NodeId Walk(NodeId id) {
      auto it = memo->find(id);
      if (it != memo->end()) return it->second;
      // Copy the node's payload: recursive Walk calls can grow nodes_
      // and invalidate references.
      NodeKind kind = lineage->nodes_[id].kind;
      int node_variable = lineage->nodes_[id].variable;
      std::vector<NodeId> original = lineage->nodes_[id].children;
      NodeId result = id;
      switch (kind) {
        case NodeKind::kTrue:
        case NodeKind::kFalse:
          break;
        case NodeKind::kVar:
          if (node_variable == variable) {
            result = value ? kTrueId : kFalseId;
          }
          break;
        case NodeKind::kNot:
          result = lineage->MakeNot(Walk(original[0]));
          break;
        case NodeKind::kAnd:
        case NodeKind::kOr: {
          std::vector<NodeId> children;
          children.reserve(original.size());
          for (NodeId c : original) children.push_back(Walk(c));
          result = kind == NodeKind::kAnd
                       ? lineage->MakeAnd(std::move(children))
                       : lineage->MakeOr(std::move(children));
          break;
        }
      }
      (*memo)[id] = result;
      return result;
    }
  };
  Walker walker{this, variable, value, &memo};
  return walker.Walk(id);
}

std::string Lineage::ToString(NodeId id) const {
  const Node& node = nodes_[id];
  switch (node.kind) {
    case NodeKind::kTrue:
      return "T";
    case NodeKind::kFalse:
      return "F";
    case NodeKind::kVar:
      return "x" + std::to_string(node.variable);
    case NodeKind::kNot:
      return "!" + ToString(node.children[0]);
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += node.kind == NodeKind::kAnd ? " & " : " | ";
        out += ToString(node.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

using logic::Formula;
using logic::FormulaKind;
using logic::Term;

struct GroundContext {
  Lineage* lineage;
  const rel::Schema* schema;
  /// Columnar atom index; when set, fact_index stays empty and atoms
  /// resolve by dictionary probe + binary search.
  const storage::TiStore* store = nullptr;
  std::map<rel::Fact, int> fact_index;
  std::vector<rel::Value> domain;
};

StatusOr<rel::Value> ResolveTerm(const Term& term,
                                 const logic::Assignment& assignment) {
  if (term.is_const()) return term.value();
  auto it = assignment.find(term.var());
  if (it == assignment.end()) {
    return InvalidArgumentError("unbound variable in grounding: " +
                                term.var());
  }
  return it->second;
}

StatusOr<NodeId> Ground(GroundContext& context, const Formula& formula,
                        logic::Assignment* assignment) {
  Lineage& lineage = *context.lineage;
  switch (formula.kind()) {
    case FormulaKind::kTrue:
      return lineage.True();
    case FormulaKind::kFalse:
      return lineage.False();
    case FormulaKind::kAtom: {
      std::vector<rel::Value> args;
      for (const Term& t : formula.terms()) {
        StatusOr<rel::Value> v = ResolveTerm(t, *assignment);
        if (!v.ok()) return v.status();
        args.push_back(std::move(v).value());
      }
      rel::Fact fact(formula.relation(), std::move(args));
      // Closed-world over the fact set: facts outside T(I) never occur.
      if (context.store != nullptr) {
        const int64_t i = context.store->FindFact(fact);
        if (i < 0) return lineage.False();
        return lineage.Var(static_cast<int>(i));
      }
      auto it = context.fact_index.find(fact);
      if (it == context.fact_index.end()) return lineage.False();
      return lineage.Var(it->second);
    }
    case FormulaKind::kEquals: {
      StatusOr<rel::Value> lhs = ResolveTerm(formula.terms()[0], *assignment);
      if (!lhs.ok()) return lhs.status();
      StatusOr<rel::Value> rhs = ResolveTerm(formula.terms()[1], *assignment);
      if (!rhs.ok()) return rhs.status();
      return lhs.value() == rhs.value() ? lineage.True() : lineage.False();
    }
    case FormulaKind::kNot: {
      StatusOr<NodeId> inner =
          Ground(context, formula.children()[0], assignment);
      if (!inner.ok()) return inner.status();
      return lineage.MakeNot(inner.value());
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<NodeId> children;
      for (const Formula& child : formula.children()) {
        StatusOr<NodeId> c = Ground(context, child, assignment);
        if (!c.ok()) return c.status();
        children.push_back(c.value());
        // Short-circuit on constants.
        if (formula.kind() == FormulaKind::kAnd &&
            c.value() == Lineage::kFalseId) {
          return lineage.False();
        }
        if (formula.kind() == FormulaKind::kOr &&
            c.value() == Lineage::kTrueId) {
          return lineage.True();
        }
      }
      return formula.kind() == FormulaKind::kAnd
                 ? lineage.MakeAnd(std::move(children))
                 : lineage.MakeOr(std::move(children));
    }
    case FormulaKind::kImplies: {
      StatusOr<NodeId> premise =
          Ground(context, formula.children()[0], assignment);
      if (!premise.ok()) return premise.status();
      StatusOr<NodeId> conclusion =
          Ground(context, formula.children()[1], assignment);
      if (!conclusion.ok()) return conclusion.status();
      return lineage.MakeOr({lineage.MakeNot(premise.value()),
                             conclusion.value()});
    }
    case FormulaKind::kIff: {
      StatusOr<NodeId> lhs =
          Ground(context, formula.children()[0], assignment);
      if (!lhs.ok()) return lhs.status();
      StatusOr<NodeId> rhs =
          Ground(context, formula.children()[1], assignment);
      if (!rhs.ok()) return rhs.status();
      NodeId both = lineage.MakeAnd({lhs.value(), rhs.value()});
      NodeId neither = lineage.MakeAnd({lineage.MakeNot(lhs.value()),
                                        lineage.MakeNot(rhs.value())});
      return lineage.MakeOr({both, neither});
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const bool is_exists = formula.kind() == FormulaKind::kExists;
      const std::string& var = formula.quantified_var();
      auto outer = assignment->find(var);
      bool had_outer = outer != assignment->end();
      rel::Value saved = had_outer ? outer->second : rel::Value();
      std::vector<NodeId> children;
      for (const rel::Value& candidate : context.domain) {
        (*assignment)[var] = candidate;
        StatusOr<NodeId> c =
            Ground(context, formula.children()[0], assignment);
        if (!c.ok()) return c.status();
        children.push_back(c.value());
      }
      if (had_outer) {
        (*assignment)[var] = saved;
      } else {
        assignment->erase(var);
      }
      return is_exists ? lineage.MakeOr(std::move(children))
                       : lineage.MakeAnd(std::move(children));
    }
  }
  return InternalError("unhandled formula kind in grounding");
}

}  // namespace

namespace {

/// Domain finalization shared by both grounding paths: constants and
/// fresh witnesses join the active domain, then sort + unique — the
/// same ordered set the legacy std::set construction produced.
void FinishDomain(const logic::Formula& sentence,
                  std::vector<rel::Value>* domain) {
  for (const rel::Value& v : sentence.Constants()) domain->push_back(v);
  int rank = sentence.QuantifierRank();
  for (int i = 0; i < rank; ++i) {
    domain->push_back(rel::Value::Symbol("$fresh" + std::to_string(i)));
  }
  std::sort(domain->begin(), domain->end());
  domain->erase(std::unique(domain->begin(), domain->end()), domain->end());
}

}  // namespace

StatusOr<NodeId> GroundSentence(const pdb::TiPdb<double>& ti,
                                const logic::Formula& sentence,
                                Lineage* lineage) {
  // Global store index i is exactly facts()[i], so the columnar path
  // yields the same variable numbering.
  if (ti.store() != nullptr) {
    return GroundSentence(*ti.store(), sentence, lineage);
  }
  return GroundSentenceLegacy(ti, sentence, lineage);
}

StatusOr<NodeId> GroundSentence(const storage::TiStore& store,
                                const logic::Formula& sentence,
                                Lineage* lineage) {
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("grounding requires a sentence");
  }
  if (!sentence.MatchesSchema(store.schema())) {
    return InvalidArgumentError("sentence does not match the TI schema");
  }
  if (store.num_facts() > std::numeric_limits<NodeId>::max()) {
    return InvalidArgumentError(
        "lineage variables are 32-bit: the store has too many facts to "
        "ground");
  }
  GroundContext context;
  context.lineage = lineage;
  context.schema = &store.schema();
  context.store = &store;
  context.domain = store.SortedDomain();
  FinishDomain(sentence, &context.domain);
  logic::Assignment assignment;
  return Ground(context, sentence, &assignment);
}

StatusOr<NodeId> GroundSentenceLegacy(const pdb::TiPdb<double>& ti,
                                      const logic::Formula& sentence,
                                      Lineage* lineage) {
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("grounding requires a sentence");
  }
  if (!sentence.MatchesSchema(ti.schema())) {
    return InvalidArgumentError("sentence does not match the TI schema");
  }
  GroundContext context;
  context.lineage = lineage;
  context.schema = &ti.schema();
  std::set<rel::Value> domain;
  for (size_t i = 0; i < ti.facts().size(); ++i) {
    context.fact_index[ti.facts()[i].first] = static_cast<int>(i);
    for (const rel::Value& v : ti.facts()[i].first.args()) {
      domain.insert(v);
    }
  }
  for (const rel::Value& v : sentence.Constants()) domain.insert(v);
  int rank = sentence.QuantifierRank();
  for (int i = 0; i < rank; ++i) {
    domain.insert(rel::Value::Symbol("$fresh" + std::to_string(i)));
  }
  context.domain.assign(domain.begin(), domain.end());
  logic::Assignment assignment;
  return Ground(context, sentence, &assignment);
}

}  // namespace pqe
}  // namespace ipdb
