#ifndef IPDB_PQE_LINEAGE_H_
#define IPDB_PQE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "storage/ti_store.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Probabilistic query evaluation (PQE) over TI-PDBs — the workhorse
/// problem that makes tuple-independence the representation of choice
/// (the paper's related-work context, [17, 51]). A boolean FO query φ
/// over a TI-PDB I grounds to a propositional *lineage*: a formula over
/// one boolean variable per fact such that I' ⊨ φ iff the assignment
/// "fact ∈ I'" satisfies the lineage. The query probability is then the
/// weighted model count of the lineage under the marginals (wmc.h).

using NodeId = int32_t;

enum class NodeKind : uint8_t { kTrue, kFalse, kVar, kNot, kAnd, kOr };

/// A hash-consed DAG of propositional formulas over integer variables.
/// Construction applies light simplification (constant folding,
/// flattening, duplicate removal, double-negation); identical structures
/// share a NodeId, so equality of ids is sound (not complete) for
/// logical equivalence.
class Lineage {
 public:
  Lineage();

  NodeId True() const { return kTrueId; }
  NodeId False() const { return kFalseId; }
  NodeId Var(int variable);
  NodeId MakeNot(NodeId operand);
  NodeId MakeAnd(std::vector<NodeId> operands);
  NodeId MakeOr(std::vector<NodeId> operands);

  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  int variable(NodeId id) const { return nodes_[id].variable; }
  const std::vector<NodeId>& children(NodeId id) const {
    return nodes_[id].children;
  }

  /// Number of live nodes.
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Sorted list of variables occurring under `id` (memoized).
  const std::vector<int>& Support(NodeId id);

  /// Evaluates under a complete assignment (variable -> bool).
  bool Evaluate(NodeId id, const std::vector<bool>& assignment) const;

  /// The node obtained by fixing `variable` to `value` and simplifying.
  NodeId Restrict(NodeId id, int variable, bool value);

  std::string ToString(NodeId id) const;

  static constexpr NodeId kTrueId = 0;
  static constexpr NodeId kFalseId = 1;

 private:
  struct Node {
    NodeKind kind;
    int variable = -1;
    std::vector<NodeId> children;
  };

  NodeId Intern(Node node);
  uint64_t NodeHashKey(const Node& node) const;

  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, std::vector<NodeId>> intern_;
  std::vector<std::vector<int>> support_cache_;
  std::vector<bool> support_cached_;
};

/// Grounds a boolean FO sentence over the fact set of a finite TI-PDB.
/// Variable i of the lineage corresponds to `ti.facts()[i]`. Quantifiers
/// follow the infinite-universe semantics of logic/evaluator.h
/// (adom(T) ∪ consts(φ) ∪ fresh elements). Delegates to the columnar
/// overload below when the TI carries a store (always, except for
/// default-constructed TIs).
StatusOr<NodeId> GroundSentence(const pdb::TiPdb<double>& ti,
                                const logic::Formula& sentence,
                                Lineage* lineage);

/// Columnar grounding: atom lookups are dictionary probes plus one
/// binary search in the relation's sorted run — no per-call
/// std::map<Fact, int> is materialized. Variable i of the lineage is
/// global fact i of the store; the produced lineage (node ids, domain
/// order, hence fingerprints) is identical to the TiPdb overload's.
StatusOr<NodeId> GroundSentence(const storage::TiStore& store,
                                const logic::Formula& sentence,
                                Lineage* lineage);

/// The pre-columnar path — builds an ordered fact-index map over
/// `ti.facts()` per call. Kept as the benchmark baseline the storage
/// gate measures against; prefer GroundSentence.
StatusOr<NodeId> GroundSentenceLegacy(const pdb::TiPdb<double>& ti,
                                      const logic::Formula& sentence,
                                      Lineage* lineage);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_LINEAGE_H_
