#include "pqe/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "logic/evaluator.h"
#include "obs/obs.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace ipdb {
namespace pqe {

namespace {

/// Samples between budget checkpoints: small enough that a deadline
/// overshoots by microseconds of work, large enough that the clock read
/// vanishes against per-sample world materialization cost.
constexpr int64_t kBudgetChunk = 64;

/// A null budget, or one with nothing to enforce, costs nothing below.
const ExecutionBudget* NormalizeBudget(const ExecutionBudget* budget) {
  return budget != nullptr && budget->unlimited() ? nullptr : budget;
}

/// The requested sample count clamped to the budget's max_samples.
int64_t ClampSamples(int64_t samples, const ExecutionBudget* budget) {
  if (budget != nullptr && budget->max_samples > 0 &&
      samples > budget->max_samples) {
    return budget->max_samples;
  }
  return samples;
}

StatusOr<double> HoeffdingHalfWidth(int64_t samples, double confidence) {
  if (samples <= 0) return InvalidArgumentError("need at least one sample");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return InvalidArgumentError("confidence must lie in (0, 1)");
  }
  double delta = 1.0 - confidence;
  return std::sqrt(std::log(2.0 / delta) /
                   (2.0 * static_cast<double>(samples)));
}

Status ValidateEpsilon(double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return InvalidArgumentError("epsilon must lie in (0, 1)");
  }
  return Status::Ok();
}

/// Shared skeleton of the parallel estimators: partitions `samples` into
/// `shards` substreams, runs `shard_body(shard rng, shard samples, hits
/// out)` per shard, and merges hit tallies in shard order. The hit count
/// is an integer, so the merged estimate is exact and independent of the
/// thread schedule.
///
/// Budget handling lives here, not in shard_body: each shard calls its
/// body in chunks of kBudgetChunk samples against the *same* rng (the
/// sample stream is identical to one uninterrupted call) and polls the
/// deadline/cancel token between chunks. A budget stop is not an error:
/// the shard records how far it got and the partial tallies merge into a
/// truncated estimate. Real evaluation errors cancel the remaining
/// batch via TryParallelFor and propagate.
StatusOr<MonteCarloEstimate> EstimateSharded(
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence,
    const std::function<Status(Pcg32* rng, int64_t count, int64_t* hits)>&
        shard_body) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  IPDB_OBS_SPAN("pqe.mc.estimate", "sampling");
  const ExecutionBudget* budget = NormalizeBudget(options.budget);
  const int64_t target = ClampSamples(samples, budget);
  const int shards = std::max(1, options.shards);
  std::vector<int64_t> shard_hits(shards, 0);
  std::vector<int64_t> shard_done(shards, 0);
  std::vector<Status> shard_stop(shards, Status::Ok());
  Status batch = TryParallelFor(
      options.threads, shards,
      [&](int64_t s) -> Status {
        IPDB_OBS_SCOPED_TIMER("pqe.mc.shard_ns");
        IPDB_FAULT_POINT("pqe.mc.shard");
        Pcg32 rng = base_rng.Split(static_cast<uint64_t>(s));
        const int64_t count =
            target / shards + (s < target % shards ? 1 : 0);
        while (shard_done[s] < count) {
          if (budget != nullptr) {
            Status time = budget->CheckTime("pqe.mc");
            if (!time.ok()) {
              shard_stop[s] = std::move(time);
              return Status::Ok();  // partial result, not an error
            }
          }
          const int64_t chunk =
              std::min(kBudgetChunk, count - shard_done[s]);
          IPDB_RETURN_IF_ERROR(shard_body(&rng, chunk, &shard_hits[s]));
          shard_done[s] += chunk;
        }
        return Status::Ok();
      },
      budget != nullptr ? budget->cancel : nullptr);
  if (!batch.ok()) return batch;
  int64_t hits = 0;
  int64_t done = 0;
  for (int s = 0; s < shards; ++s) {
    hits += shard_hits[s];
    done += shard_done[s];
  }
  IPDB_OBS_COUNT("pqe.mc.samples", done);
  if (done == 0) {
    // Nothing was drawn before the budget tripped: surface the stop.
    for (int s = 0; s < shards; ++s) {
      if (!shard_stop[s].ok()) return shard_stop[s];
    }
    return DeadlineExceededError("pqe.mc drew no samples within budget");
  }
  MonteCarloEstimate result;
  result.estimate = static_cast<double>(hits) / static_cast<double>(done);
  // The certified interval covers the samples actually drawn: recompute
  // when a budget truncated the run (wider interval, same confidence).
  result.half_width = half_width.value();
  result.samples = done;
  result.truncated = done < samples;
  if (done != samples) {
    StatusOr<double> partial = HoeffdingHalfWidth(done, confidence);
    if (!partial.ok()) return partial.status();
    result.half_width = partial.value();
    IPDB_OBS_COUNT("pqe.mc.truncated", 1);
  }
  return result;
}

}  // namespace

namespace {

/// Shared sequential loop: draw-and-check `target` samples with budget
/// checkpoints every kBudgetChunk draws; on a budget stop return the
/// partial (possibly zero-sample) state through *done.
StatusOr<MonteCarloEstimate> EstimateSequential(
    int64_t samples, double confidence, const ExecutionBudget* budget,
    const std::function<StatusOr<bool>(Pcg32*)>& draw_and_check,
    Pcg32* rng) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  IPDB_OBS_SPAN("pqe.mc.estimate", "sampling");
  budget = NormalizeBudget(budget);
  const int64_t target = ClampSamples(samples, budget);
  int64_t hits = 0;
  int64_t done = 0;
  Status stop;
  while (done < target) {
    if (budget != nullptr && done % kBudgetChunk == 0) {
      stop = budget->CheckTime("pqe.mc");
      if (!stop.ok()) break;
    }
    StatusOr<bool> holds = draw_and_check(rng);
    if (!holds.ok()) return holds.status();
    if (holds.value()) ++hits;
    ++done;
  }
  IPDB_OBS_COUNT("pqe.mc.samples", done);
  if (done == 0) {
    if (!stop.ok()) return stop;
    return DeadlineExceededError("pqe.mc drew no samples within budget");
  }
  MonteCarloEstimate result;
  result.estimate = static_cast<double>(hits) / static_cast<double>(done);
  result.half_width = half_width.value();
  result.samples = done;
  result.truncated = done < samples;
  if (done != samples) {
    StatusOr<double> partial = HoeffdingHalfWidth(done, confidence);
    if (!partial.ok()) return partial.status();
    result.half_width = partial.value();
    IPDB_OBS_COUNT("pqe.mc.truncated", 1);
  }
  return result;
}

}  // namespace

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence,
    const ExecutionBudget* budget) {
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  return EstimateSequential(
      samples, confidence, budget,
      [&](Pcg32* r) -> StatusOr<bool> {
        rel::Instance world = ti.Sample(r);
        return logic::Evaluate(world, ti.schema(), sentence);
      },
      rng);
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence, double epsilon,
    const ExecutionBudget* budget) {
  Status epsilon_ok = ValidateEpsilon(epsilon);
  if (!epsilon_ok.ok()) return epsilon_ok;
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  StatusOr<MonteCarloEstimate> result = EstimateSequential(
      samples, confidence, budget,
      [&](Pcg32* r) -> StatusOr<bool> {
        StatusOr<rel::Instance> world = ti.Sample(r, epsilon);
        if (!world.ok()) return world.status();
        return logic::Evaluate(world.value(), ti.schema(), sentence);
      },
      rng);
  if (!result.ok()) return result;
  result.value().sampler_bias = epsilon;
  return result;
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence) {
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  return EstimateSharded(
      samples, base_rng, options, confidence,
      [&](Pcg32* rng, int64_t count, int64_t* hits) -> Status {
        for (int64_t i = 0; i < count; ++i) {
          rel::Instance world = ti.Sample(rng);
          StatusOr<bool> holds =
              logic::Evaluate(world, ti.schema(), sentence);
          if (!holds.ok()) return holds.status();
          if (holds.value()) ++*hits;
        }
        return Status::Ok();
      });
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence,
    double epsilon) {
  Status epsilon_ok = ValidateEpsilon(epsilon);
  if (!epsilon_ok.ok()) return epsilon_ok;
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  StatusOr<MonteCarloEstimate> result = EstimateSharded(
      samples, base_rng, options, confidence,
      [&](Pcg32* rng, int64_t count, int64_t* hits) -> Status {
        for (int64_t i = 0; i < count; ++i) {
          StatusOr<rel::Instance> world = ti.Sample(rng, epsilon);
          if (!world.ok()) return world.status();
          StatusOr<bool> holds =
              logic::Evaluate(world.value(), ti.schema(), sentence);
          if (!holds.ok()) return holds.status();
          if (holds.value()) ++*hits;
        }
        return Status::Ok();
      });
  if (!result.ok()) return result;
  result.value().sampler_bias = epsilon;
  return result;
}

}  // namespace pqe
}  // namespace ipdb
