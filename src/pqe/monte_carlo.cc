#include "pqe/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "logic/evaluator.h"
#include "obs/obs.h"
#include "util/parallel.h"

namespace ipdb {
namespace pqe {

namespace {

StatusOr<double> HoeffdingHalfWidth(int64_t samples, double confidence) {
  if (samples <= 0) return InvalidArgumentError("need at least one sample");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return InvalidArgumentError("confidence must lie in (0, 1)");
  }
  double delta = 1.0 - confidence;
  return std::sqrt(std::log(2.0 / delta) /
                   (2.0 * static_cast<double>(samples)));
}

Status ValidateEpsilon(double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return InvalidArgumentError("epsilon must lie in (0, 1)");
  }
  return Status::Ok();
}

/// Shared skeleton of the parallel estimators: partitions `samples` into
/// `shards` substreams, runs `shard_body(shard rng, shard samples, hits
/// out)` per shard, and merges hit tallies in shard order. The hit count
/// is an integer, so the merged estimate is exact and independent of the
/// thread schedule.
StatusOr<MonteCarloEstimate> EstimateSharded(
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence,
    const std::function<Status(Pcg32* rng, int64_t count, int64_t* hits)>&
        shard_body) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  IPDB_OBS_SPAN("pqe.mc.estimate", "sampling");
  const int shards = std::max(1, options.shards);
  std::vector<int64_t> shard_hits(shards, 0);
  std::vector<Status> shard_status(shards, Status::Ok());
  ParallelFor(options.threads, shards, [&](int64_t s) {
    IPDB_OBS_SCOPED_TIMER("pqe.mc.shard_ns");
    Pcg32 rng = base_rng.Split(static_cast<uint64_t>(s));
    int64_t count = samples / shards + (s < samples % shards ? 1 : 0);
    shard_status[s] = shard_body(&rng, count, &shard_hits[s]);
  });
  IPDB_OBS_COUNT("pqe.mc.samples", samples);
  int64_t hits = 0;
  for (int s = 0; s < shards; ++s) {
    if (!shard_status[s].ok()) return shard_status[s];
    hits += shard_hits[s];
  }
  MonteCarloEstimate result;
  result.estimate =
      static_cast<double>(hits) / static_cast<double>(samples);
  result.half_width = half_width.value();
  result.samples = samples;
  return result;
}

}  // namespace

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  IPDB_OBS_SPAN("pqe.mc.estimate", "sampling");
  int64_t hits = 0;
  for (int64_t i = 0; i < samples; ++i) {
    rel::Instance world = ti.Sample(rng);
    StatusOr<bool> holds = logic::Evaluate(world, ti.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) ++hits;
  }
  IPDB_OBS_COUNT("pqe.mc.samples", samples);
  MonteCarloEstimate result;
  result.estimate =
      static_cast<double>(hits) / static_cast<double>(samples);
  result.half_width = half_width.value();
  result.samples = samples;
  return result;
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence, double epsilon) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  Status epsilon_ok = ValidateEpsilon(epsilon);
  if (!epsilon_ok.ok()) return epsilon_ok;
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  IPDB_OBS_SPAN("pqe.mc.estimate", "sampling");
  int64_t hits = 0;
  for (int64_t i = 0; i < samples; ++i) {
    StatusOr<rel::Instance> world = ti.Sample(rng, epsilon);
    if (!world.ok()) return world.status();
    StatusOr<bool> holds =
        logic::Evaluate(world.value(), ti.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) ++hits;
  }
  IPDB_OBS_COUNT("pqe.mc.samples", samples);
  MonteCarloEstimate result;
  result.estimate =
      static_cast<double>(hits) / static_cast<double>(samples);
  result.half_width = half_width.value();
  result.samples = samples;
  result.sampler_bias = epsilon;
  return result;
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence) {
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  return EstimateSharded(
      samples, base_rng, options, confidence,
      [&](Pcg32* rng, int64_t count, int64_t* hits) -> Status {
        for (int64_t i = 0; i < count; ++i) {
          rel::Instance world = ti.Sample(rng);
          StatusOr<bool> holds =
              logic::Evaluate(world, ti.schema(), sentence);
          if (!holds.ok()) return holds.status();
          if (holds.value()) ++*hits;
        }
        return Status::Ok();
      });
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence,
    double epsilon) {
  Status epsilon_ok = ValidateEpsilon(epsilon);
  if (!epsilon_ok.ok()) return epsilon_ok;
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  StatusOr<MonteCarloEstimate> result = EstimateSharded(
      samples, base_rng, options, confidence,
      [&](Pcg32* rng, int64_t count, int64_t* hits) -> Status {
        for (int64_t i = 0; i < count; ++i) {
          StatusOr<rel::Instance> world = ti.Sample(rng, epsilon);
          if (!world.ok()) return world.status();
          StatusOr<bool> holds =
              logic::Evaluate(world.value(), ti.schema(), sentence);
          if (!holds.ok()) return holds.status();
          if (holds.value()) ++*hits;
        }
        return Status::Ok();
      });
  if (!result.ok()) return result;
  result.value().sampler_bias = epsilon;
  return result;
}

}  // namespace pqe
}  // namespace ipdb
