#include "pqe/monte_carlo.h"

#include <cmath>

#include "logic/evaluator.h"

namespace ipdb {
namespace pqe {

namespace {

StatusOr<double> HoeffdingHalfWidth(int64_t samples, double confidence) {
  if (samples <= 0) return InvalidArgumentError("need at least one sample");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return InvalidArgumentError("confidence must lie in (0, 1)");
  }
  double delta = 1.0 - confidence;
  return std::sqrt(std::log(2.0 / delta) /
                   (2.0 * static_cast<double>(samples)));
}

}  // namespace

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  int64_t hits = 0;
  for (int64_t i = 0; i < samples; ++i) {
    rel::Instance world = ti.Sample(rng);
    StatusOr<bool> holds = logic::Evaluate(world, ti.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) ++hits;
  }
  MonteCarloEstimate result;
  result.estimate =
      static_cast<double>(hits) / static_cast<double>(samples);
  result.half_width = half_width.value();
  result.samples = samples;
  return result;
}

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence, double epsilon) {
  StatusOr<double> half_width = HoeffdingHalfWidth(samples, confidence);
  if (!half_width.ok()) return half_width.status();
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("query must be a sentence");
  }
  int64_t hits = 0;
  for (int64_t i = 0; i < samples; ++i) {
    StatusOr<rel::Instance> world = ti.Sample(rng, epsilon);
    if (!world.ok()) return world.status();
    StatusOr<bool> holds =
        logic::Evaluate(world.value(), ti.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) ++hits;
  }
  MonteCarloEstimate result;
  result.estimate =
      static_cast<double>(hits) / static_cast<double>(samples);
  result.half_width = half_width.value();
  result.samples = samples;
  result.sampler_bias = epsilon;
  return result;
}

}  // namespace pqe
}  // namespace ipdb
