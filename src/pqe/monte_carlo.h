#ifndef IPDB_PQE_MONTE_CARLO_H_
#define IPDB_PQE_MONTE_CARLO_H_

#include <cstdint>

#include "logic/formula.h"
#include "pdb/sampling.h"
#include "pdb/ti_pdb.h"
#include "util/budget.h"
#include "util/random.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Sampling-based approximate PQE: estimate Pr(I ⊨ φ) by drawing worlds
/// and model-checking φ. Complements the exact WMC path (wmc.h) where
/// lineages blow up, and is the only general route for *countably
/// infinite* TI-PDBs, where the certified-tail sampler bounds the
/// per-sample truncation error.
struct MonteCarloEstimate {
  double estimate = 0.0;
  /// Hoeffding half-width: with probability >= confidence, the true
  /// query probability lies within estimate ± half_width (± the stated
  /// sampler bias for the countable overload).
  double half_width = 1.0;
  int64_t samples = 0;
  /// Additional one-sided bias bound from truncated sampling (countable
  /// overload only; 0 for finite TI-PDBs).
  double sampler_bias = 0.0;
  /// True when a budget (deadline, cancel token, or max_samples) stopped
  /// sampling before the requested count: `samples` is then what was
  /// actually drawn and `half_width` is the certified interval for that
  /// count. A truncated estimate is still valid — just wider — but its
  /// sample count may depend on timing, so bit-exact reproducibility is
  /// only guaranteed for un-truncated runs.
  bool truncated = false;
};

/// Finite TI-PDB: unbiased estimator, Hoeffding interval at the given
/// confidence level (in (0, 1)). `budget`, when set, is polled amortized
/// during the loop: a deadline/cancel stop after at least one sample
/// returns the partial estimate marked `truncated`; a stop before any
/// sample returns the budget error itself.
StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence = 0.99,
    const ExecutionBudget* budget = nullptr);

/// Countably infinite TI-PDB: each sampled world is exact except with
/// probability <= epsilon (the tail mass beyond the cutoff), adding at
/// most epsilon of bias, reported in `sampler_bias`. epsilon must lie in
/// (0, 1). Budget semantics as in the finite overload.
StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence = 0.99,
    double epsilon = 1e-9, const ExecutionBudget* budget = nullptr);

/// Parallel overloads: the sample stream is partitioned into
/// options.shards substreams (shard s drawing from base_rng.Split(s)) and
/// per-shard hit tallies are merged in shard order. Hits are integers, so
/// the merged estimate — and the unchanged Hoeffding interval over the
/// total sample count — is bit-identical for a fixed base_rng and shard
/// count regardless of options.threads.
///
/// With options.budget set, each shard checkpoints between chunks of
/// samples: a deadline/cancel stop freezes every shard at its last
/// completed chunk and the partial tallies merge into a `truncated`
/// estimate over the samples actually drawn (zero total samples becomes
/// the budget error instead). Evaluation errors still cancel the whole
/// batch and propagate.
StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence = 0.99);

StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, const Pcg32& base_rng,
    const pdb::SamplingOptions& options, double confidence = 0.99,
    double epsilon = 1e-9);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_MONTE_CARLO_H_
