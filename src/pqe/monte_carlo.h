#ifndef IPDB_PQE_MONTE_CARLO_H_
#define IPDB_PQE_MONTE_CARLO_H_

#include <cstdint>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "util/random.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Sampling-based approximate PQE: estimate Pr(I ⊨ φ) by drawing worlds
/// and model-checking φ. Complements the exact WMC path (wmc.h) where
/// lineages blow up, and is the only general route for *countably
/// infinite* TI-PDBs, where the certified-tail sampler bounds the
/// per-sample truncation error.
struct MonteCarloEstimate {
  double estimate = 0.0;
  /// Hoeffding half-width: with probability >= confidence, the true
  /// query probability lies within estimate ± half_width (± the stated
  /// sampler bias for the countable overload).
  double half_width = 1.0;
  int64_t samples = 0;
  /// Additional one-sided bias bound from truncated sampling (countable
  /// overload only; 0 for finite TI-PDBs).
  double sampler_bias = 0.0;
};

/// Finite TI-PDB: unbiased estimator, Hoeffding interval at the given
/// confidence level (in (0, 1)).
StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence = 0.99);

/// Countably infinite TI-PDB: each sampled world is exact except with
/// probability <= epsilon (the tail mass beyond the cutoff), adding at
/// most epsilon of bias, reported in `sampler_bias`.
StatusOr<MonteCarloEstimate> EstimateQueryProbability(
    const pdb::CountableTiPdb& ti, const logic::Formula& sentence,
    int64_t samples, Pcg32* rng, double confidence = 0.99,
    double epsilon = 1e-9);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_MONTE_CARLO_H_
