#include "pqe/open_world.h"

#include <set>

#include "logic/classify.h"
#include "pqe/wmc.h"

namespace ipdb {
namespace pqe {

StatusOr<Interval> OpenQueryProbabilityInterval(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    double lambda, const std::vector<rel::Fact>& candidate_unknowns) {
  if (!(lambda >= 0.0 && lambda <= 1.0)) {
    return InvalidArgumentError("lambda must lie in [0, 1]");
  }
  if (!logic::IsSyntacticallyMonotone(sentence)) {
    return FailedPreconditionError(
        "open-world interval bounds require a monotone (positive "
        "existential) query");
  }
  // Lower bound: the closed-world probability.
  StatusOr<double> lower = QueryProbability(ti, sentence);
  if (!lower.ok()) return lower.status();

  // Upper bound: add every unknown candidate at probability lambda.
  std::set<rel::Fact> known;
  for (const auto& [fact, marginal] : ti.facts()) known.insert(fact);
  pdb::TiPdb<double>::FactList completed = ti.facts();
  for (const rel::Fact& fact : candidate_unknowns) {
    if (!fact.MatchesSchema(ti.schema())) {
      return InvalidArgumentError("candidate fact does not match schema: " +
                                  fact.ToString(ti.schema()));
    }
    if (known.insert(fact).second) {
      completed.emplace_back(fact, lambda);
    }
  }
  StatusOr<pdb::TiPdb<double>> completed_ti =
      pdb::TiPdb<double>::Create(ti.schema(), std::move(completed));
  if (!completed_ti.ok()) return completed_ti.status();
  StatusOr<double> upper = QueryProbability(completed_ti.value(), sentence);
  if (!upper.ok()) return upper.status();

  // Monotone query + completion only adds facts: upper >= lower up to
  // floating point.
  double hi = std::max(lower.value(), upper.value());
  return Interval(std::min(lower.value(), hi), hi);
}

}  // namespace pqe
}  // namespace ipdb
