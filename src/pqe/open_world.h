#ifndef IPDB_PQE_OPEN_WORLD_H_
#define IPDB_PQE_OPEN_WORLD_H_

#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "util/interval.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Open-world probabilistic databases (Ceylan, Darwiche, Van den Broeck
/// [12]; one of the motivations the paper cites for unbounded-size
/// infinite PDBs): facts *not* listed in the TI-PDB are not impossible —
/// they may hold with any probability up to a completion threshold λ.
/// Queries then have probability *intervals* over all λ-completions.
///
/// For a monotone query q (checked syntactically: positive existential)
/// and a finite candidate set of unknown facts, the extrema are attained
/// at the edge completions:
///
///   P_lo = Pr(q) under the closed-world TI-PDB (unknowns at 0),
///   P_hi = Pr(q) with every candidate unknown fact added at λ.
///
/// The candidate set stands in for the (countably infinite) fact domain;
/// a completion over facts outside it cannot raise a monotone query
/// whose grounding never touches them.
StatusOr<Interval> OpenQueryProbabilityInterval(
    const pdb::TiPdb<double>& ti, const logic::Formula& sentence,
    double lambda, const std::vector<rel::Fact>& candidate_unknowns);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_OPEN_WORLD_H_
