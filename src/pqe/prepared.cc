#include "pqe/prepared.h"

#include <utility>

#include "kc/cache.h"
#include "kc/evaluate.h"
#include "obs/obs.h"

namespace ipdb {
namespace pqe {

StatusOr<PreparedQuery> PreparedQuery::Prepare(
    std::shared_ptr<const storage::TiStore> store, logic::Formula sentence,
    const Options& options) {
  if (store == nullptr) return InvalidArgumentError("null store");
  PreparedQuery prepared;
  prepared.store_ = std::move(store);
  prepared.sentence_ = std::move(sentence);
  prepared.options_ = options;

  if (options.allow_lifted) {
    StatusOr<LiftedPlan> plan = LiftedPlan::Compile(prepared.sentence_);
    if (plan.ok()) {
      prepared.plan_ =
          std::make_unique<LiftedPlan>(std::move(plan).value());
      // Evaluate once so schema mismatches surface at Prepare time.
      LiftedOptions lifted_options;
      lifted_options.budget = options.budget;
      StatusOr<double> probability =
          prepared.plan_->Evaluate(*prepared.store_, lifted_options);
      if (!probability.ok()) return probability.status();
      return prepared;
    }
    // Outside the safe-plan class: fall through to the circuit
    // pipeline. Anything but the class rejection is a real error.
    if (plan.status().code() != StatusCode::kFailedPrecondition) {
      return plan.status();
    }
  }

  // Structural mutations on this store must reach the global artifact
  // cache; installing the evictor is idempotent.
  prepared.store_->SetArtifactEvictor([](uint64_t hi, uint64_t lo) {
    kc::GlobalCompiledQueryCache().EraseFingerprint(hi, lo);
  });
  Status cold = prepared.Rebuild();
  if (!cold.ok()) return cold;
  return prepared;
}

Status PreparedQuery::Rebuild() {
  IPDB_OBS_SPAN("pqe.prepared.rebuild", "pqe");
  lineage_ = std::make_unique<Lineage>();
  StatusOr<NodeId> root = GroundSentence(*store_, sentence_, lineage_.get());
  if (!root.ok()) return root.status();

  kc::CompileOptions compile_options;
  compile_options.budget = options_.budget;
  StatusOr<std::shared_ptr<const kc::CompiledQuery>> compiled =
      kc::GlobalCompiledQueryCache().GetOrCompile(
          lineage_.get(), root.value(), nullptr, compile_options);
  if (!compiled.ok()) return compiled.status();
  artifact_ = std::move(compiled).value();
  fingerprint_ = kc::LineageFingerprint(*lineage_, root.value());
  store_->RegisterDependentArtifact(fingerprint_.first, fingerprint_.second);

  // Snapshot the generations *before* reading the columns: a mutation
  // racing this read makes the next Query() refresh again rather than
  // serve a stale answer.
  structure_generation_ = store_->structure_generation();
  probability_generation_ = store_->probability_generation();
  return Refresh();
}

Status PreparedQuery::Refresh() {
  const int64_t n = store_->num_facts();
  probs_.clear();
  probs_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) probs_.push_back(store_->ProbAt(i));
  BudgetMeter meter(options_.budget, 0, "pqe.prepared");
  StatusOr<double> probability = kc::EvaluateCircuit<double>(
      artifact_->circuit, artifact_->root, probs_,
      options_.budget != nullptr ? &meter : nullptr);
  if (!probability.ok()) return probability.status();
  answer_ = probability.value();
  return Status::Ok();
}

StatusOr<double> PreparedQuery::Query() {
  if (plan_ != nullptr) {
    // Safe-plan mode is lock-free: the plan is immutable after Prepare
    // and Evaluate keeps no state on the handle, so concurrent callers
    // scan the store's columns independently.
    LiftedOptions lifted_options;
    lifted_options.budget = options_.budget;
    return plan_->Evaluate(*store_, lifted_options);
  }
  // Circuit mode mutates the memoized answer/marginals on refresh, so
  // concurrent callers serialize; whoever wins the lock performs the
  // refresh and the rest see the already-current answer.
  std::lock_guard<std::mutex> lock(*mu_);
  const uint64_t structure = store_->structure_generation();
  if (structure != structure_generation_) {
    Status cold = Rebuild();
    if (!cold.ok()) return cold;
    ++recompiles_;
    IPDB_OBS_COUNT("pqe.prepared.recompiles", 1);
    return answer_;
  }
  const uint64_t probability = store_->probability_generation();
  if (probability != probability_generation_) {
    probability_generation_ = probability;
    Status refreshed = Refresh();
    if (!refreshed.ok()) return refreshed;
    ++incremental_refreshes_;
    IPDB_OBS_COUNT("pqe.prepared.incremental_refreshes", 1);
    return answer_;
  }
  IPDB_OBS_COUNT("pqe.prepared.memoized_answers", 1);
  return answer_;
}

}  // namespace pqe
}  // namespace ipdb
