#ifndef IPDB_PQE_PREPARED_H_
#define IPDB_PQE_PREPARED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "kc/compile.h"
#include "logic/formula.h"
#include "pqe/lineage.h"
#include "pqe/safe_plan.h"
#include "storage/ti_store.h"
#include "util/budget.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// A query prepared against a *live* columnar store: the
/// compile-once / re-query-many contract made incremental. Prepare()
/// runs the cold pipeline once (safe plan, or ground + compile through
/// the global artifact cache); Query() then reacts to the store's
/// generation counters instead of redoing work:
///
///  * untouched store            — the memoized answer is returned;
///  * UpdateProbability happened — marginals are re-read from the
///    columns and the *cached circuit* is re-evaluated (the lineage
///    fingerprint is unchanged, so no re-ground and no recompile: this
///    is the ≥10×-cheaper incremental path the storage bench gates);
///  * Insert/Erase happened      — the fact set changed, so the old
///    fingerprint was evicted from the artifact cache (the store's
///    dependent-artifact registry fires) and Query() re-grounds and
///    recompiles cold.
///
/// Preparing a query also wires the store's artifact evictor to
/// kc::GlobalCompiledQueryCache() and registers the compiled
/// fingerprint as a structural dependent — the storage layer stays
/// free of a kc dependency, the pqe layer closes the loop.
///
/// Thread model: Query() and the counter accessors are safe for any
/// number of concurrent callers on one handle — the query service
/// shares prepared handles per tenant, so refreshes and recompiles are
/// serialized by an internal mutex (safe-plan answers take no lock:
/// the plan is immutable after Prepare). Store *mutations* remain
/// single-writer per the TiStore contract; concurrency here means many
/// readers racing each other and the refresh machinery, not racing the
/// mutators.
struct PreparedOptions {
  /// Answer hierarchical self-join-free CQs by the safe plan (no
  /// circuit, no cache). Off forces the ground-compile-evaluate
  /// pipeline — what the incremental re-query bench measures.
  bool allow_lifted = true;
  /// Null = unlimited; governs grounding, compilation and evaluation.
  const ExecutionBudget* budget = nullptr;
};

class PreparedQuery {
 public:
  using Options = PreparedOptions;

  /// Runs the cold pipeline and memoizes the first answer.
  static StatusOr<PreparedQuery> Prepare(
      std::shared_ptr<const storage::TiStore> store, logic::Formula sentence,
      const Options& options = {});

  /// The query probability, current with respect to the store.
  StatusOr<double> Query();

  /// True when the safe-plan engine answers this query.
  bool lifted() const { return plan_ != nullptr; }
  /// Cold re-ground + recompile passes triggered by structural
  /// mutations (the Prepare-time pass is not counted).
  int64_t recompiles() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return recompiles_;
  }
  /// Probability-only refreshes that reused the compiled circuit.
  int64_t incremental_refreshes() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return incremental_refreshes_;
  }
  /// The compiled artifact's lineage fingerprint (circuit mode only).
  std::pair<uint64_t, uint64_t> fingerprint() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return fingerprint_;
  }

 private:
  PreparedQuery() = default;

  /// Ground + compile + register + evaluate (the cold path). Caller
  /// holds mu_ (except during Prepare, before the handle is shared).
  Status Rebuild();
  /// Re-read marginals and re-evaluate the cached circuit (mu_ held).
  Status Refresh();

  std::shared_ptr<const storage::TiStore> store_;
  logic::Formula sentence_;
  Options options_;

  /// Serializes the circuit-mode state below across concurrent Query()
  /// callers. Heap-held so the handle stays movable (Prepare returns by
  /// value); never null after construction.
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();

  // Safe-plan mode.
  std::unique_ptr<LiftedPlan> plan_;

  // Circuit mode.
  std::unique_ptr<Lineage> lineage_;
  std::shared_ptr<const kc::CompiledQuery> artifact_;
  std::pair<uint64_t, uint64_t> fingerprint_{0, 0};
  std::vector<double> probs_;
  uint64_t structure_generation_ = 0;
  uint64_t probability_generation_ = 0;
  double answer_ = 0.0;
  int64_t recompiles_ = 0;
  int64_t incremental_refreshes_ = 0;
};

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_PREPARED_H_
