#include "pqe/safe_plan.h"

#include <algorithm>
#include <map>
#include <set>

#include "relational/fact.h"
#include "util/check.h"

namespace ipdb {
namespace pqe {

namespace {

using logic::Formula;
using logic::FormulaKind;
using logic::Term;

/// Variables occurring in an atom.
std::set<std::string> AtomVariables(const Formula& atom) {
  std::set<std::string> vars;
  for (const Term& t : atom.terms()) {
    if (t.is_var()) vars.insert(t.var());
  }
  return vars;
}

/// Collects atoms from a ∃-prefixed conjunction tree.
Status CollectAtoms(const Formula& formula, ParsedCq* out) {
  switch (formula.kind()) {
    case FormulaKind::kAtom:
      out->atoms.push_back(formula);
      return Status::Ok();
    case FormulaKind::kTrue:
      return Status::Ok();
    case FormulaKind::kAnd:
      for (const Formula& child : formula.children()) {
        Status status = CollectAtoms(child, out);
        if (!status.ok()) return status;
      }
      return Status::Ok();
    case FormulaKind::kExists:
      out->variables.push_back(formula.quantified_var());
      return CollectAtoms(formula.children()[0], out);
    default:
      return FailedPreconditionError(
          "not a pure conjunctive query (only ∃, ∧ and relational atoms "
          "are supported by the safe plan)");
  }
}

}  // namespace

StatusOr<ParsedCq> ParseSelfJoinFreeCq(const logic::Formula& sentence) {
  if (!sentence.FreeVariables().empty()) {
    return FailedPreconditionError("safe plans evaluate boolean queries");
  }
  ParsedCq parsed;
  Status status = CollectAtoms(sentence, &parsed);
  if (!status.ok()) return status;
  std::set<rel::RelationId> relations;
  for (const Formula& atom : parsed.atoms) {
    if (!relations.insert(atom.relation()).second) {
      return FailedPreconditionError(
          "self-join detected (relation repeated); the dichotomy's safe "
          "plans require self-join-free queries");
    }
  }
  return parsed;
}

bool IsHierarchical(const ParsedCq& query) {
  // at(x) for every variable, as sets of atom indices.
  std::map<std::string, std::set<size_t>> at;
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    for (const std::string& v : AtomVariables(query.atoms[i])) {
      at[v].insert(i);
    }
  }
  for (const auto& [x, ax] : at) {
    for (const auto& [y, ay] : at) {
      std::set<size_t> common;
      std::set_intersection(ax.begin(), ax.end(), ay.begin(), ay.end(),
                            std::inserter(common, common.begin()));
      if (common.empty()) continue;
      bool x_in_y = std::includes(ay.begin(), ay.end(), ax.begin(),
                                  ax.end());
      bool y_in_x = std::includes(ax.begin(), ax.end(), ay.begin(),
                                  ay.end());
      if (!x_in_y && !y_in_x) return false;
    }
  }
  return true;
}

namespace {

/// The recursive safe-plan evaluator over a list of (partially ground)
/// atoms.
class SafePlan {
 public:
  SafePlan(const pdb::TiPdb<double>& ti, SafePlanStats* stats)
      : ti_(ti), stats_(stats) {
    for (const auto& [fact, marginal] : ti.facts()) {
      marginals_[fact] = marginal;
    }
  }

  StatusOr<double> Evaluate(std::vector<Formula> atoms) {
    // Partition into connected components via shared variables.
    const size_t n = atoms.size();
    if (n == 0) return 1.0;
    std::vector<int> component(n, -1);
    int components = 0;
    for (size_t i = 0; i < n; ++i) {
      if (component[i] != -1) continue;
      // BFS from atom i.
      std::vector<size_t> queue = {i};
      component[i] = components;
      while (!queue.empty()) {
        size_t a = queue.back();
        queue.pop_back();
        std::set<std::string> va = AtomVariables(atoms[a]);
        for (size_t b = 0; b < n; ++b) {
          if (component[b] != -1) continue;
          std::set<std::string> vb = AtomVariables(atoms[b]);
          bool shares = false;
          for (const std::string& v : va) {
            if (vb.count(v) != 0) shares = true;
          }
          if (shares) {
            component[b] = components;
            queue.push_back(b);
          }
        }
      }
      ++components;
    }
    if (components > 1) {
      if (stats_ != nullptr) stats_->independent_joins += components - 1;
      double product = 1.0;
      for (int comp = 0; comp < components; ++comp) {
        std::vector<Formula> group;
        for (size_t i = 0; i < n; ++i) {
          if (component[i] == comp) group.push_back(atoms[i]);
        }
        StatusOr<double> p = Evaluate(std::move(group));
        if (!p.ok()) return p.status();
        product *= p.value();
      }
      return product;
    }

    // Single connected component. Fully ground? Multiply fact marginals.
    bool ground = true;
    for (const Formula& atom : atoms) {
      if (!AtomVariables(atom).empty()) ground = false;
    }
    if (ground) {
      double product = 1.0;
      for (const Formula& atom : atoms) {
        if (stats_ != nullptr) ++stats_->ground_lookups;
        std::vector<rel::Value> args;
        for (const Term& t : atom.terms()) args.push_back(t.value());
        auto it = marginals_.find(rel::Fact(atom.relation(), args));
        product *= it == marginals_.end() ? 0.0 : it->second;
        if (product == 0.0) return 0.0;
      }
      return product;
    }

    // Independent project: find a root variable occurring in EVERY atom.
    std::string root;
    for (const std::string& v : AtomVariables(atoms[0])) {
      bool in_all = true;
      for (const Formula& atom : atoms) {
        if (AtomVariables(atom).count(v) == 0) in_all = false;
      }
      if (in_all) {
        root = v;
        break;
      }
    }
    if (root.empty()) {
      return FailedPreconditionError(
          "no root variable in a connected subquery — the query is not "
          "hierarchical (#P-hard; use wmc.h)");
    }
    if (stats_ != nullptr) ++stats_->independent_projects;

    // Candidate values: the TI facts' values at the root's positions in
    // the first atom (any atom works; values missing there make the
    // subquery probability 0).
    std::set<rel::Value> candidates;
    const Formula& guard = atoms[0];
    for (const auto& [fact, marginal] : ti_.facts()) {
      if (fact.relation() != guard.relation()) continue;
      for (size_t i = 0; i < guard.terms().size(); ++i) {
        if (guard.terms()[i].is_var() && guard.terms()[i].var() == root) {
          candidates.insert(fact.args()[i]);
        }
      }
    }
    double none = 1.0;
    for (const rel::Value& value : candidates) {
      std::vector<Formula> substituted;
      substituted.reserve(atoms.size());
      for (const Formula& atom : atoms) {
        substituted.push_back(atom.Substitute(root, Term::Const(value)));
      }
      StatusOr<double> p = Evaluate(std::move(substituted));
      if (!p.ok()) return p.status();
      none *= 1.0 - p.value();
    }
    return 1.0 - none;
  }

 private:
  const pdb::TiPdb<double>& ti_;
  SafePlanStats* stats_;
  std::map<rel::Fact, double> marginals_;
};

}  // namespace

StatusOr<double> SafeQueryProbability(const pdb::TiPdb<double>& ti,
                                      const logic::Formula& sentence,
                                      SafePlanStats* stats) {
  StatusOr<ParsedCq> parsed = ParseSelfJoinFreeCq(sentence);
  if (!parsed.ok()) return parsed.status();
  if (!sentence.MatchesSchema(ti.schema())) {
    return InvalidArgumentError("query does not match the TI schema");
  }
  if (!IsHierarchical(parsed.value())) {
    return FailedPreconditionError(
        "query is not hierarchical — #P-hard in general; use wmc.h");
  }
  SafePlan plan(ti, stats);
  return plan.Evaluate(parsed.value().atoms);
}

}  // namespace pqe
}  // namespace ipdb
