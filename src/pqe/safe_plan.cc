#include "pqe/safe_plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <utility>

#include "math/rational.h"
#include "obs/obs.h"
#include "relational/fact.h"
#include "util/check.h"
#include "util/fault.h"

namespace ipdb {
namespace pqe {

namespace {

using logic::Formula;
using logic::FormulaKind;
using logic::Term;

/// Variables occurring in an atom.
std::set<std::string> AtomVariables(const Formula& atom) {
  std::set<std::string> vars;
  for (const Term& t : atom.terms()) {
    if (t.is_var()) vars.insert(t.var());
  }
  return vars;
}

/// Every variable name mentioned anywhere in the formula (terms and
/// quantifiers), so alpha-renaming can pick names fresh with respect to
/// scopes not yet visited.
void AllVariableNames(const Formula& formula, std::set<std::string>* names) {
  for (const Term& t : formula.terms()) {
    if (t.is_var()) names->insert(t.var());
  }
  if (formula.kind() == FormulaKind::kExists ||
      formula.kind() == FormulaKind::kForall) {
    names->insert(formula.quantified_var());
  }
  for (const Formula& child : formula.children()) {
    AllVariableNames(child, names);
  }
}

/// Collects atoms from a ∃-prefixed conjunction tree, alpha-renaming
/// quantifiers apart: ∃x R(x) ∧ ∃x S(x) must not alias the two scopes
/// (conflating them by name would wrongly compute P(∃x (R(x) ∧ S(x)))),
/// so a re-used name gets a fresh variant before its body is visited.
/// `quantified` is the set of quantifier names already claimed, `names`
/// every name the fresh variants must avoid.
Status CollectAtoms(const Formula& formula, std::set<std::string>* quantified,
                    std::set<std::string>* names, ParsedCq* out) {
  switch (formula.kind()) {
    case FormulaKind::kAtom:
      out->atoms.push_back(formula);
      return Status::Ok();
    case FormulaKind::kTrue:
      return Status::Ok();
    case FormulaKind::kAnd:
      for (const Formula& child : formula.children()) {
        Status status = CollectAtoms(child, quantified, names, out);
        if (!status.ok()) return status;
      }
      return Status::Ok();
    case FormulaKind::kExists: {
      const std::string& name = formula.quantified_var();
      if (quantified->insert(name).second) {
        names->insert(name);
        out->variables.push_back(name);
        return CollectAtoms(formula.children()[0], quantified, names, out);
      }
      std::string fresh;
      for (int k = 1;; ++k) {
        fresh = name + "#" + std::to_string(k);
        if (names->insert(fresh).second) break;
      }
      quantified->insert(fresh);
      out->variables.push_back(fresh);
      // Substitute is capture-avoiding: a nested re-shadowing ∃name stops
      // the substitution, and that deeper scope is renamed on its own
      // visit below.
      Formula body =
          formula.children()[0].Substitute(name, Term::Var(fresh));
      return CollectAtoms(body, quantified, names, out);
    }
    default:
      return FailedPreconditionError(
          "not a pure conjunctive query (only ∃, ∧ and relational atoms "
          "are supported by the safe plan)");
  }
}

}  // namespace

StatusOr<ParsedCq> ParseSelfJoinFreeCq(const logic::Formula& sentence) {
  if (!sentence.FreeVariables().empty()) {
    return FailedPreconditionError("safe plans evaluate boolean queries");
  }
  ParsedCq parsed;
  std::set<std::string> quantified;
  std::set<std::string> names;
  AllVariableNames(sentence, &names);
  Status status = CollectAtoms(sentence, &quantified, &names, &parsed);
  if (!status.ok()) return status;
  std::set<rel::RelationId> relations;
  for (const Formula& atom : parsed.atoms) {
    if (!relations.insert(atom.relation()).second) {
      return FailedPreconditionError(
          "self-join detected (relation repeated); the dichotomy's safe "
          "plans require self-join-free queries");
    }
  }
  return parsed;
}

bool IsHierarchical(const ParsedCq& query) {
  // at(x) for every variable, as sets of atom indices.
  std::map<std::string, std::set<size_t>> at;
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    for (const std::string& v : AtomVariables(query.atoms[i])) {
      at[v].insert(i);
    }
  }
  for (const auto& [x, ax] : at) {
    for (const auto& [y, ay] : at) {
      std::set<size_t> common;
      std::set_intersection(ax.begin(), ax.end(), ay.begin(), ay.end(),
                            std::inserter(common, common.begin()));
      if (common.empty()) continue;
      bool x_in_y = std::includes(ay.begin(), ay.end(), ax.begin(),
                                  ax.end());
      bool y_in_x = std::includes(ax.begin(), ax.end(), ay.begin(),
                                  ay.end());
      if (!x_in_y && !y_in_x) return false;
    }
  }
  return true;
}

namespace {

/// Per-semiring arithmetic of the plan evaluator. Joins need the plain
/// product; projects need Π(1 − pᵢ), which each semiring accumulates its
/// own way — the double specialization avoids the catastrophic
/// cancellation of the naive running complement product.
template <typename T>
struct LiftedSemiring;

template <>
struct LiftedSemiring<double> {
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
  /// Accumulates Π(1 − pᵢ) as exp(Σ log1p(−pᵢ)) and returns
  /// 1 − Π via expm1, so many small marginals keep their full relative
  /// precision instead of vanishing against a running product ≈ 1.
  class ComplementProduct {
   public:
    void MulComplement(double p) {
      if (p >= 1.0) {
        certain_ = true;
        return;
      }
      log_none_ += std::log1p(-p);
    }
    double Result() const { return certain_ ? 1.0 : -std::expm1(log_none_); }

   private:
    double log_none_ = 0.0;
    bool certain_ = false;
  };
};

template <>
struct LiftedSemiring<math::Rational> {
  static math::Rational Zero() { return math::Rational(); }
  static math::Rational One() { return math::Rational(1); }
  class ComplementProduct {
   public:
    void MulComplement(const math::Rational& p) {
      none_ *= math::Rational(1) - p;
    }
    math::Rational Result() const { return math::Rational(1) - none_; }

   private:
    math::Rational none_ = math::Rational(1);
  };
};

/// Orders borrowed bucket keys by the pointed-to value, so project
/// buckets keyed by `const rel::Value*` iterate in exactly the Value
/// order the old by-value map used — without copying a rel::Value
/// (potentially a heap string) per key.
struct ValueDerefLess {
  bool operator()(const rel::Value* a, const rel::Value* b) const {
    return *a < *b;
  }
};

template <>
struct LiftedSemiring<Interval> {
  static Interval Zero() { return Interval::Point(0.0); }
  static Interval One() { return Interval::Point(1.0); }
  class ComplementProduct {
   public:
    void MulComplement(const Interval& p) {
      none_ = none_ * (Interval::Point(1.0) - p);
    }
    Interval Result() const { return Interval::Point(1.0) - none_; }

   private:
    Interval none_ = Interval::Point(1.0);
  };
};

}  // namespace

StatusOr<LiftedPlan> LiftedPlan::Compile(const logic::Formula& sentence) {
  StatusOr<ParsedCq> parsed = ParseSelfJoinFreeCq(sentence);
  if (!parsed.ok()) return parsed.status();
  LiftedPlan plan;
  plan.atoms_ = std::move(parsed.value().atoms);

  // Variable ids in quantifier order (alpha-renaming made them unique).
  std::map<std::string, int> var_id;
  for (const std::string& v : parsed.value().variables) {
    if (var_id.emplace(v, static_cast<int>(plan.variables_.size())).second) {
      plan.variables_.push_back(v);
    }
  }

  const size_t m = plan.atoms_.size();
  plan.term_vars_.resize(m);
  plan.term_consts_.resize(m);
  plan.atom_vars_.resize(m);
  for (size_t a = 0; a < m; ++a) {
    const Formula& atom = plan.atoms_[a];
    for (const Term& t : atom.terms()) {
      if (t.is_var()) {
        auto it = var_id.find(t.var());
        // The sentence is closed, so every term variable is quantified.
        IPDB_CHECK(it != var_id.end()) << "unquantified variable " << t.var();
        plan.term_vars_[a].push_back(it->second);
        plan.term_consts_[a].push_back(rel::Value::Null());
      } else {
        plan.term_vars_[a].push_back(-1);
        plan.term_consts_[a].push_back(t.value());
      }
    }
    std::vector<int>& vars = plan.atom_vars_[a];
    for (int v : plan.term_vars_[a]) {
      if (v >= 0) vars.push_back(v);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    plan.relation_atom_[atom.relation()] = static_cast<int>(a);
  }

  if (m > 0) {
    std::vector<int> all(m);
    std::iota(all.begin(), all.end(), 0);
    std::vector<bool> bound(plan.variables_.size(), false);
    StatusOr<int> root = plan.Build(all, &bound, 0);
    if (!root.ok()) return root.status();
    plan.root_ = root.value();
  }
  return plan;
}

StatusOr<int> LiftedPlan::Build(const std::vector<int>& atom_set,
                                std::vector<bool>* bound, int depth) {
  // Connected components over shared *unbound* variables.
  const int n = static_cast<int>(atom_set.size());
  std::vector<int> comp(n, -1);
  int num_comp = 0;
  for (int i = 0; i < n; ++i) {
    if (comp[i] != -1) continue;
    comp[i] = num_comp;
    std::vector<int> queue = {i};
    while (!queue.empty()) {
      const int a = queue.back();
      queue.pop_back();
      const std::vector<int>& va = atom_vars_[atom_set[a]];
      for (int j = 0; j < n; ++j) {
        if (comp[j] != -1) continue;
        const std::vector<int>& vj = atom_vars_[atom_set[j]];
        bool shares = false;
        for (int v : va) {
          if ((*bound)[v]) continue;
          if (std::binary_search(vj.begin(), vj.end(), v)) {
            shares = true;
            break;
          }
        }
        if (shares) {
          comp[j] = num_comp;
          queue.push_back(j);
        }
      }
    }
    ++num_comp;
  }

  if (num_comp > 1) {
    PlanNode node;
    node.op = PlanOp::kIndependentJoin;
    for (int c = 0; c < num_comp; ++c) {
      std::vector<int> group;
      for (int i = 0; i < n; ++i) {
        if (comp[i] == c) group.push_back(atom_set[i]);
      }
      StatusOr<int> child = Build(group, bound, depth);
      if (!child.ok()) return child.status();
      node.children.push_back(child.value());
    }
    nodes_.push_back(std::move(node));
    node_atoms_.push_back(atom_set);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Single connected component: ground atom, or independent project.
  bool has_unbound = false;
  for (int i = 0; i < n && !has_unbound; ++i) {
    for (int v : atom_vars_[atom_set[i]]) {
      if (!(*bound)[v]) {
        has_unbound = true;
        break;
      }
    }
  }
  if (!has_unbound) {
    // Atoms without shared unbound variables are singleton components.
    IPDB_CHECK_EQ(n, 1);
    PlanNode node;
    node.op = PlanOp::kGroundLookup;
    node.atom = atom_set[0];
    nodes_.push_back(std::move(node));
    node_atoms_.push_back(atom_set);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Root variable: an unbound variable occurring in EVERY atom of the
  // component. Its absence is the hierarchy witness's failure.
  int root_var = -1;
  for (int v : atom_vars_[atom_set[0]]) {
    if ((*bound)[v]) continue;
    bool in_all = true;
    for (int i = 1; i < n && in_all; ++i) {
      const std::vector<int>& vi = atom_vars_[atom_set[i]];
      in_all = std::binary_search(vi.begin(), vi.end(), v);
    }
    if (in_all) {
      root_var = v;
      break;
    }
  }
  if (root_var == -1) {
    return FailedPreconditionError(
        "no root variable in a connected subquery — the query is not "
        "hierarchical (#P-hard; use wmc.h)");
  }
  (*bound)[root_var] = true;
  StatusOr<int> child = Build(atom_set, bound, depth + 1);
  (*bound)[root_var] = false;
  if (!child.ok()) return child.status();
  depth_ = std::max(depth_, depth + 1);
  PlanNode node;
  node.op = PlanOp::kIndependentProject;
  node.project_var = root_var;
  node.children.push_back(child.value());
  nodes_.push_back(std::move(node));
  node_atoms_.push_back(atom_set);
  return static_cast<int>(nodes_.size()) - 1;
}

template <typename T, typename P, typename Convert>
StatusOr<T> LiftedPlan::EvaluateImpl(const pdb::TiPdb<P>& ti, Convert convert,
                                     const LiftedOptions& options) const {
  for (const Formula& atom : atoms_) {
    if (!ti.schema().has_relation(atom.relation()) ||
        ti.schema().arity(atom.relation()) !=
            static_cast<int>(atom.terms().size())) {
      return InvalidArgumentError("query does not match the TI schema");
    }
  }
  IPDB_FAULT_POINT("pqe.lifted.evaluate");
  IPDB_OBS_SPAN("pqe.lifted_eval", "pqe");
  IPDB_OBS_SCOPED_TIMER("pqe.lifted.eval_ns");
  const ExecutionBudget* budget =
      options.budget != nullptr && options.budget->unlimited()
          ? nullptr
          : options.budget;
  if (budget != nullptr) {
    Status now = budget->CheckTime("pqe.lifted");
    if (!now.ok()) return now;
    // The plan's project-nesting depth is static: check it once here
    // instead of per recursion step.
    if (budget->max_recursion_depth > 0 &&
        depth_ > budget->max_recursion_depth) {
      return ResourceExhaustedError(
          "pqe.lifted plan depth " + std::to_string(depth_) +
          " exceeds the recursion cap of " +
          std::to_string(budget->max_recursion_depth));
    }
  }

  // Plan-shape counters; ground lookups are counted dynamically below.
  SafePlanStats local;
  for (const PlanNode& node : nodes_) {
    if (node.op == PlanOp::kIndependentJoin) ++local.independent_joins;
    if (node.op == PlanOp::kIndependentProject) ++local.independent_projects;
  }

  struct Row {
    const rel::Fact* fact;
    T prob;
  };
  // Per-atom fact tables in ONE scan of the instance (the query is
  // self-join-free, so each fact feeds at most one atom). Facts that
  // disagree with an atom's constant positions are filtered here, once,
  // instead of at every recursion level.
  std::vector<std::vector<Row>> tables(atoms_.size());
  BudgetMeter meter(budget, 0, "pqe.lifted");
  if (root_ >= 0) {
    for (const auto& [fact, marginal] : ti.facts()) {
      Status charge = meter.Charge();
      if (!charge.ok()) return charge;
      auto it = relation_atom_.find(fact.relation());
      if (it == relation_atom_.end()) continue;
      const int a = it->second;
      const std::vector<int>& vars = term_vars_[a];
      const std::vector<rel::Value>& consts = term_consts_[a];
      bool matches = true;
      for (size_t pos = 0; pos < vars.size(); ++pos) {
        if (vars[pos] < 0 && !(fact.args()[pos] == consts[pos])) {
          matches = false;
          break;
        }
      }
      if (matches) tables[a].push_back(Row{&fact, convert(marginal)});
    }
  }

  // The recursive plan walk. A local struct so the recursion can carry
  // the sticky budget error without threading StatusOr through every
  // semiring operation (the WmcSolver pattern).
  struct Evaluator {
    const LiftedPlan& plan;
    std::vector<std::vector<Row>>& tables;
    BudgetMeter& meter;
    SafePlanStats& stats;
    Status error;

    T Eval(int id) {
      if (!error.ok()) return LiftedSemiring<T>::Zero();
      Status charge = meter.Charge();
      if (!charge.ok()) {
        error = std::move(charge);
        return LiftedSemiring<T>::Zero();
      }
      const PlanNode& node = plan.nodes_[id];
      switch (node.op) {
        case PlanOp::kGroundLookup: {
          ++stats.ground_lookups;
          // The table narrowed to the enclosing projects' candidate and
          // the atom's constants: at most one (distinct) fact remains.
          const std::vector<Row>& rows = tables[node.atom];
          return rows.empty() ? LiftedSemiring<T>::Zero()
                              : rows.front().prob;
        }
        case PlanOp::kIndependentJoin: {
          T product = LiftedSemiring<T>::One();
          for (int child : node.children) {
            product = product * Eval(child);
            if (!error.ok()) return LiftedSemiring<T>::Zero();
          }
          return product;
        }
        case PlanOp::kIndependentProject:
          return EvalProject(id, node);
      }
      return LiftedSemiring<T>::Zero();
    }

    T EvalProject(int id, const PlanNode& node) {
      const std::vector<int>& scope = plan.node_atoms_[id];
      const int var = node.project_var;
      // Bucket each in-scope atom's rows by the projected variable's
      // value; rows whose repeated positions disagree (e.g. S(x, x) on a
      // fact S(1, 2)) drop out here. Keys *borrow* the value from the
      // fact's argument vector (which outlives the buckets) — the old
      // by-value keys copied a rel::Value per row per project level,
      // which dominated allocation on string-heavy instances. The deref
      // comparator keeps candidates in Value order, so double
      // accumulation order is unchanged.
      std::vector<
          std::map<const rel::Value*, std::vector<Row>, ValueDerefLess>>
          buckets(scope.size());
      for (size_t k = 0; k < scope.size(); ++k) {
        std::vector<Row>& rows = tables[scope[k]];
        Status charge = meter.Charge(static_cast<int64_t>(rows.size()) + 1);
        if (!charge.ok()) {
          error = std::move(charge);
          return LiftedSemiring<T>::Zero();
        }
        const std::vector<int>& vars = plan.term_vars_[scope[k]];
        size_t first_pos = 0;
        while (vars[first_pos] != var) ++first_pos;  // root var: occurs
        for (Row& row : rows) {
          const std::vector<rel::Value>& args = row.fact->args();
          const rel::Value& value = args[first_pos];
          bool consistent = true;
          for (size_t pos = first_pos + 1; pos < vars.size(); ++pos) {
            if (vars[pos] == var && !(args[pos] == value)) {
              consistent = false;
              break;
            }
          }
          if (consistent) buckets[k][&value].push_back(std::move(row));
        }
      }
      // A candidate contributes 0 unless present in every atom's bucket
      // (the component is connected through the root variable), so
      // iterate the smallest map and intersect.
      size_t guard = 0;
      for (size_t k = 1; k < scope.size(); ++k) {
        if (buckets[k].size() < buckets[guard].size()) guard = k;
      }
      typename LiftedSemiring<T>::ComplementProduct complement;
      for (auto& [value, guard_rows] : buckets[guard]) {
        bool everywhere = true;
        for (size_t k = 0; k < scope.size() && everywhere; ++k) {
          if (k != guard) everywhere = buckets[k].count(value) > 0;
        }
        if (!everywhere) continue;
        // Install the candidate's rows; each child evaluation re-installs
        // before reading, so nothing needs restoring afterwards.
        for (size_t k = 0; k < scope.size(); ++k) {
          tables[scope[k]] = std::move(buckets[k][value]);
        }
        T p = Eval(node.children[0]);
        if (!error.ok()) return LiftedSemiring<T>::Zero();
        complement.MulComplement(p);
      }
      return complement.Result();
    }
  };

  T result = LiftedSemiring<T>::One();  // empty conjunction: ⊤
  if (root_ >= 0) {
    Evaluator evaluator{*this, tables, meter, local, Status::Ok()};
    result = evaluator.Eval(root_);
    if (!evaluator.error.ok()) {
      return IPDB_STATUS_FORWARD(evaluator.error)
             << "lifted evaluation aborted";
    }
  }

  IPDB_OBS_COUNT("pqe.lifted.evaluations", 1);
  IPDB_OBS_COUNT("pqe.lifted.independent_joins", local.independent_joins);
  IPDB_OBS_COUNT("pqe.lifted.independent_projects",
                 local.independent_projects);
  IPDB_OBS_COUNT("pqe.lifted.ground_lookups", local.ground_lookups);
  if (options.stats != nullptr) {
    options.stats->independent_joins += local.independent_joins;
    options.stats->independent_projects += local.independent_projects;
    options.stats->ground_lookups += local.ground_lookups;
  }
  return result;
}

template <typename P>
StatusOr<P> LiftedPlan::Evaluate(const pdb::TiPdb<P>& ti,
                                 const LiftedOptions& options) const {
  return EvaluateImpl<P>(
      ti, [](const P& p) { return p; }, options);
}

template StatusOr<double> LiftedPlan::Evaluate<double>(
    const pdb::TiPdb<double>&, const LiftedOptions&) const;
template StatusOr<math::Rational> LiftedPlan::Evaluate<math::Rational>(
    const pdb::TiPdb<math::Rational>&, const LiftedOptions&) const;

StatusOr<Interval> LiftedPlan::EvaluateInterval(
    const pdb::TiPdb<double>& ti, const LiftedOptions& options) const {
  return EvaluateImpl<Interval>(
      ti, [](double p) { return Interval::Point(p); }, options);
}

template <typename T, typename ProbAt>
StatusOr<T> LiftedPlan::EvaluateStoreImpl(const storage::TiStore& store,
                                          ProbAt prob_at,
                                          const LiftedOptions& options) const {
  const rel::Schema& schema = store.schema();
  for (const Formula& atom : atoms_) {
    if (!schema.has_relation(atom.relation()) ||
        schema.arity(atom.relation()) !=
            static_cast<int>(atom.terms().size())) {
      return InvalidArgumentError("query does not match the TI schema");
    }
  }
  IPDB_FAULT_POINT("pqe.lifted.evaluate");
  IPDB_OBS_SPAN("pqe.lifted_eval", "pqe");
  IPDB_OBS_SCOPED_TIMER("pqe.lifted.eval_ns");
  const ExecutionBudget* budget =
      options.budget != nullptr && options.budget->unlimited()
          ? nullptr
          : options.budget;
  if (budget != nullptr) {
    Status now = budget->CheckTime("pqe.lifted");
    if (!now.ok()) return now;
    if (budget->max_recursion_depth > 0 &&
        depth_ > budget->max_recursion_depth) {
      return ResourceExhaustedError(
          "pqe.lifted plan depth " + std::to_string(depth_) +
          " exceeds the recursion cap of " +
          std::to_string(budget->max_recursion_depth));
    }
  }

  SafePlanStats local;
  for (const PlanNode& node : nodes_) {
    if (node.op == PlanOp::kIndependentJoin) ++local.independent_joins;
    if (node.op == PlanOp::kIndependentProject) ++local.independent_projects;
  }

  struct Row {
    uint32_t row;
    T prob;
  };
  // Per-atom row tables straight off the columns: query constants
  // resolve to dictionary ids once per call (a miss means the value
  // occurs nowhere in the store, so the atom's table is empty), and the
  // per-row filter compares uint32 ids — no rel::Fact materialization,
  // no rel::Value comparisons.
  std::vector<std::vector<Row>> tables(atoms_.size());
  std::vector<const storage::ColumnTable*> atom_table(atoms_.size(), nullptr);
  BudgetMeter meter(budget, 0, "pqe.lifted");
  if (root_ >= 0) {
    for (const auto& [relation, a] : relation_atom_) {
      const storage::ColumnTable& table = store.table(relation);
      atom_table[a] = &table;
      const std::vector<int>& vars = term_vars_[a];
      const std::vector<rel::Value>& consts = term_consts_[a];
      std::vector<std::pair<int, uint32_t>> const_ids;
      bool possible = true;
      for (size_t pos = 0; pos < vars.size(); ++pos) {
        if (vars[pos] >= 0) continue;
        const uint32_t id = store.dictionary().Find(consts[pos]);
        if (id == storage::Dictionary::kNotFound) {
          possible = false;
          break;
        }
        const_ids.emplace_back(static_cast<int>(pos), id);
      }
      if (!possible) continue;
      const int64_t rows = table.num_rows();
      Status charge = meter.Charge(rows + 1);
      if (!charge.ok()) return charge;
      for (int64_t r = 0; r < rows; ++r) {
        bool matches = true;
        for (const auto& [pos, id] : const_ids) {
          if (table.id(pos, r) != id) {
            matches = false;
            break;
          }
        }
        if (matches) {
          tables[a].push_back(Row{static_cast<uint32_t>(r), prob_at(table, r)});
        }
      }
    }
  }

  struct Evaluator {
    const LiftedPlan& plan;
    std::vector<std::vector<Row>>& tables;
    const std::vector<const storage::ColumnTable*>& atom_table;
    BudgetMeter& meter;
    SafePlanStats& stats;
    Status error;

    T Eval(int id) {
      if (!error.ok()) return LiftedSemiring<T>::Zero();
      Status charge = meter.Charge();
      if (!charge.ok()) {
        error = std::move(charge);
        return LiftedSemiring<T>::Zero();
      }
      const PlanNode& node = plan.nodes_[id];
      switch (node.op) {
        case PlanOp::kGroundLookup: {
          ++stats.ground_lookups;
          const std::vector<Row>& rows = tables[node.atom];
          return rows.empty() ? LiftedSemiring<T>::Zero()
                              : rows.front().prob;
        }
        case PlanOp::kIndependentJoin: {
          T product = LiftedSemiring<T>::One();
          for (int child : node.children) {
            product = product * Eval(child);
            if (!error.ok()) return LiftedSemiring<T>::Zero();
          }
          return product;
        }
        case PlanOp::kIndependentProject:
          return EvalProject(id, node);
      }
      return LiftedSemiring<T>::Zero();
    }

    T EvalProject(int id, const PlanNode& node) {
      const std::vector<int>& scope = plan.node_atoms_[id];
      const int var = node.project_var;
      // Bucket by the projected variable's dictionary id. Interning is
      // injective, so id equality is value equality; candidates iterate
      // in id order (deterministic, though not Value order — exact
      // results are order-independent and double products commute up to
      // rounding).
      std::vector<std::map<uint32_t, std::vector<Row>>> buckets(scope.size());
      for (size_t k = 0; k < scope.size(); ++k) {
        std::vector<Row>& rows = tables[scope[k]];
        Status charge = meter.Charge(static_cast<int64_t>(rows.size()) + 1);
        if (!charge.ok()) {
          error = std::move(charge);
          return LiftedSemiring<T>::Zero();
        }
        const std::vector<int>& vars = plan.term_vars_[scope[k]];
        const storage::ColumnTable& table = *atom_table[scope[k]];
        size_t first_pos = 0;
        while (vars[first_pos] != var) ++first_pos;  // root var: occurs
        for (Row& row : rows) {
          const uint32_t value =
              table.id(static_cast<int>(first_pos), row.row);
          bool consistent = true;
          for (size_t pos = first_pos + 1; pos < vars.size(); ++pos) {
            if (vars[pos] == var &&
                table.id(static_cast<int>(pos), row.row) != value) {
              consistent = false;
              break;
            }
          }
          if (consistent) buckets[k][value].push_back(std::move(row));
        }
      }
      size_t guard = 0;
      for (size_t k = 1; k < scope.size(); ++k) {
        if (buckets[k].size() < buckets[guard].size()) guard = k;
      }
      typename LiftedSemiring<T>::ComplementProduct complement;
      for (auto& [value, guard_rows] : buckets[guard]) {
        bool everywhere = true;
        for (size_t k = 0; k < scope.size() && everywhere; ++k) {
          if (k != guard) everywhere = buckets[k].count(value) > 0;
        }
        if (!everywhere) continue;
        for (size_t k = 0; k < scope.size(); ++k) {
          tables[scope[k]] = std::move(buckets[k][value]);
        }
        T p = Eval(node.children[0]);
        if (!error.ok()) return LiftedSemiring<T>::Zero();
        complement.MulComplement(p);
      }
      return complement.Result();
    }
  };

  T result = LiftedSemiring<T>::One();
  if (root_ >= 0) {
    Evaluator evaluator{*this, tables, atom_table, meter, local,
                        Status::Ok()};
    result = evaluator.Eval(root_);
    if (!evaluator.error.ok()) {
      return IPDB_STATUS_FORWARD(evaluator.error)
             << "lifted evaluation aborted";
    }
  }

  IPDB_OBS_COUNT("pqe.lifted.evaluations", 1);
  IPDB_OBS_COUNT("pqe.lifted.independent_joins", local.independent_joins);
  IPDB_OBS_COUNT("pqe.lifted.independent_projects",
                 local.independent_projects);
  IPDB_OBS_COUNT("pqe.lifted.ground_lookups", local.ground_lookups);
  if (options.stats != nullptr) {
    options.stats->independent_joins += local.independent_joins;
    options.stats->independent_projects += local.independent_projects;
    options.stats->ground_lookups += local.ground_lookups;
  }
  return result;
}

StatusOr<double> LiftedPlan::Evaluate(const storage::TiStore& store,
                                      const LiftedOptions& options) const {
  return EvaluateStoreImpl<double>(
      store,
      [](const storage::ColumnTable& table, int64_t row) {
        return table.prob(row);
      },
      options);
}

StatusOr<math::Rational> LiftedPlan::EvaluateExact(
    const storage::TiStore& store, const LiftedOptions& options) const {
  for (const auto& [relation, a] : relation_atom_) {
    if (!store.schema().has_relation(relation)) continue;  // caught below
    const storage::ColumnTable& table = store.table(relation);
    if (table.num_exact() != table.num_rows()) {
      return FailedPreconditionError(
          "exact lifted evaluation requires an exact marginal for every "
          "fact of every queried relation");
    }
  }
  return EvaluateStoreImpl<math::Rational>(
      store,
      [](const storage::ColumnTable& table, int64_t row) {
        return *table.ExactAt(row);
      },
      options);
}

std::string LiftedPlan::NodeToString(int node,
                                     const rel::Schema& schema) const {
  const PlanNode& n = nodes_[node];
  switch (n.op) {
    case PlanOp::kGroundLookup:
      return "lookup(" + atoms_[n.atom].ToString(schema) + ")";
    case PlanOp::kIndependentProject:
      return "project[" + variables_[n.project_var] + "](" +
             NodeToString(n.children[0], schema) + ")";
    case PlanOp::kIndependentJoin: {
      std::string out = "join(";
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += NodeToString(n.children[i], schema);
      }
      return out + ")";
    }
  }
  return "?";
}

std::string LiftedPlan::ToString(const rel::Schema& schema) const {
  if (root_ < 0) return "true";
  return NodeToString(root_, schema);
}

StatusOr<double> SafeQueryProbability(const pdb::TiPdb<double>& ti,
                                      const logic::Formula& sentence,
                                      SafePlanStats* stats) {
  StatusOr<LiftedPlan> plan = LiftedPlan::Compile(sentence);
  if (!plan.ok()) return plan.status();
  LiftedOptions options;
  options.stats = stats;
  return plan.value().Evaluate(ti, options);
}

}  // namespace pqe
}  // namespace ipdb
