#ifndef IPDB_PQE_SAFE_PLAN_H_
#define IPDB_PQE_SAFE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Lifted inference for tuple-independent PDBs: the safe-plan evaluator
/// for *hierarchical, self-join-free* boolean conjunctive queries
/// (Dalvi & Suciu [17], the PTIME side of the PQE dichotomy — the
/// algorithmic payoff of the representations this library studies).
///
/// A boolean CQ q = ∃x̄ (a₁ ∧ … ∧ a_m) with pairwise distinct relation
/// symbols is *hierarchical* iff for any two variables x, y the atom
/// sets at(x), at(y) are nested or disjoint. Hierarchical self-join-free
/// CQs evaluate in polynomial time by alternating
///
///   independent join    P(q₁ ∧ q₂) = P(q₁) P(q₂)        (no shared vars)
///   independent project P(∃x q) = 1 − Π_a (1 − P(q[x:=a]))
///
/// where the projected variable is a *root* variable (occurring in every
/// atom of its connected component). Non-hierarchical queries are
/// rejected with kFailedPrecondition (they are #P-hard; use wmc.h).

/// A parsed self-join-free CQ: the existential variables and atoms of a
/// boolean CQ sentence.
struct ParsedCq {
  std::vector<logic::Formula> atoms;  // kAtom formulas
  std::vector<std::string> variables;
};

/// Extracts atoms from a boolean CQ sentence (∃-prefixed conjunction of
/// relational atoms). Fails if the sentence is not of that shape, uses
/// equality atoms, or repeats a relation symbol (self-join).
StatusOr<ParsedCq> ParseSelfJoinFreeCq(const logic::Formula& sentence);

/// Decides the hierarchy property for a parsed CQ.
bool IsHierarchical(const ParsedCq& query);

/// Execution counters for the safe plan.
struct SafePlanStats {
  int64_t independent_joins = 0;
  int64_t independent_projects = 0;
  int64_t ground_lookups = 0;
};

/// Evaluates Pr_{I~ti}(I ⊨ q) by a safe plan. Fails with
/// kFailedPrecondition when the query is not a hierarchical
/// self-join-free CQ.
StatusOr<double> SafeQueryProbability(const pdb::TiPdb<double>& ti,
                                      const logic::Formula& sentence,
                                      SafePlanStats* stats = nullptr);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_SAFE_PLAN_H_
