#ifndef IPDB_PQE_SAFE_PLAN_H_
#define IPDB_PQE_SAFE_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "relational/value.h"
#include "storage/ti_store.h"
#include "util/budget.h"
#include "util/interval.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Lifted inference for tuple-independent PDBs: the safe-plan engine
/// for *hierarchical, self-join-free* boolean conjunctive queries
/// (Dalvi & Suciu [17], the PTIME side of the PQE dichotomy — the
/// algorithmic payoff of the representations this library studies).
///
/// A boolean CQ q = ∃x̄ (a₁ ∧ … ∧ a_m) with pairwise distinct relation
/// symbols is *hierarchical* iff for any two variables x, y the atom
/// sets at(x), at(y) are nested or disjoint. Hierarchical self-join-free
/// CQs evaluate in polynomial time by alternating
///
///   independent join    P(q₁ ∧ q₂) = P(q₁) P(q₂)        (no shared vars)
///   independent project P(∃x q) = 1 − Π_a (1 − P(q[x:=a]))
///
/// where the projected variable is a *root* variable (occurring in every
/// atom of its connected component). Non-hierarchical queries are
/// rejected with kFailedPrecondition (they are #P-hard; use wmc.h).
///
/// The engine is compile-once / evaluate-many: `LiftedPlan::Compile`
/// derives an extensional plan IR (independent-project /
/// independent-join / ground-lookup nodes) from the hierarchy witness,
/// and `Evaluate` runs it over per-atom fact tables built in one scan of
/// the instance — no re-parse, no re-scan, no per-call fact copies. Like
/// kc::EvaluateCircuit, evaluation is generic over the value semiring:
/// `double` (numerically stable complement products via log1p/expm1),
/// exact `math::Rational`, and certified `Interval` enclosures.
/// `QueryProbability(QueryOptions)` in wmc.h uses the plan as the first
/// rung of its degradation ladder (lifted → compile → Monte Carlo).

/// A parsed self-join-free CQ: the existential variables and atoms of a
/// boolean CQ sentence. Quantified variables are alpha-renamed apart, so
/// ∃x R(x) ∧ ∃x S(x) yields two distinct variables (the two scopes are
/// independent; conflating them by name would wrongly compute
/// P(∃x (R(x) ∧ S(x)))). `variables` lists each quantifier exactly once
/// under its possibly-freshened name.
struct ParsedCq {
  std::vector<logic::Formula> atoms;  // kAtom formulas
  std::vector<std::string> variables;
};

/// Extracts atoms from a boolean CQ sentence (∃-prefixed conjunction of
/// relational atoms; quantifiers may nest inside the conjunction).
/// Shadowed quantified variables are alpha-renamed apart. Fails if the
/// sentence is not of that shape, uses equality atoms, or repeats a
/// relation symbol (self-join).
StatusOr<ParsedCq> ParseSelfJoinFreeCq(const logic::Formula& sentence);

/// Decides the hierarchy property for a parsed CQ.
bool IsHierarchical(const ParsedCq& query);

/// Execution counters for the safe plan. For a compiled LiftedPlan the
/// join/project counters describe the *plan shape* (nodes in the IR) and
/// ground_lookups the lookups actually performed during evaluation.
struct SafePlanStats {
  int64_t independent_joins = 0;
  int64_t independent_projects = 0;
  int64_t ground_lookups = 0;
};

/// The extensional plan operators of the safe plan IR.
enum class PlanOp {
  /// Children range over variable-disjoint subqueries: multiply.
  kIndependentJoin,
  /// 1 − Π over the candidate values of a root variable of the
  /// complement of the child's probability.
  kIndependentProject,
  /// The marginal of one fully-ground atom (0 for a missing fact).
  kGroundLookup,
};

/// One node of the compiled plan. Nodes live in LiftedPlan::nodes() and
/// reference each other by index; the IR is a tree rooted at root().
struct PlanNode {
  PlanOp op = PlanOp::kGroundLookup;
  /// kIndependentProject: the projected variable (index into
  /// LiftedPlan::variables()); -1 otherwise.
  int project_var = -1;
  /// kGroundLookup: the atom looked up (index into atoms()); -1 otherwise.
  int atom = -1;
  /// Child node indexes (kIndependentJoin: one per component;
  /// kIndependentProject: exactly one).
  std::vector<int> children;
};

/// Evaluation knobs for LiftedPlan::Evaluate.
struct LiftedOptions {
  /// Null = unlimited. The deadline/cancel token is polled amortized per
  /// plan step; max_recursion_depth bounds the plan's project-nesting
  /// depth (checked once up front — the plan depth is static).
  const ExecutionBudget* budget = nullptr;
  /// Optional execution counters (plan shape + ground lookups).
  SafePlanStats* stats = nullptr;
};

/// A compiled safe plan for one hierarchical self-join-free boolean CQ.
/// Compilation is data-independent; one plan serves any TI-PDB whose
/// schema covers the query's relations. Evaluation over n facts costs
/// O(n log n) per query (bucketing facts by the projected variable's
/// value at every project node), versus the worst-case exponential
/// ground-then-compile path.
class LiftedPlan {
 public:
  /// Derives the plan from the hierarchy witness of `sentence`. Fails
  /// with kFailedPrecondition when the sentence is not a hierarchical
  /// self-join-free boolean CQ (not a CQ shape, self-join, or no root
  /// variable in some connected subquery).
  static StatusOr<LiftedPlan> Compile(const logic::Formula& sentence);

  /// Pr_{I~ti}(I ⊨ q) in the P-semiring: double (stable complement
  /// accumulation), or exact math::Rational. Fails with
  /// kInvalidArgument when the TI's schema does not cover the query and
  /// with the budget's error when `options.budget` trips.
  template <typename P>
  StatusOr<P> Evaluate(const pdb::TiPdb<P>& ti,
                       const LiftedOptions& options = {}) const;

  /// Columnar evaluation: scans the store's per-relation column tables
  /// directly — row tables hold (row index, marginal) pairs, query
  /// constants resolve to dictionary ids once per call, and project
  /// buckets key on `uint32_t` ids instead of `rel::Value` copies. No
  /// rel::Fact or rel::Value is materialized on the hot path.
  StatusOr<double> Evaluate(const storage::TiStore& store,
                            const LiftedOptions& options = {}) const;

  /// Exact columnar evaluation from the store's exact side table. Fails
  /// with kFailedPrecondition unless every fact of every queried
  /// relation carries an exact marginal.
  StatusOr<math::Rational> EvaluateExact(
      const storage::TiStore& store, const LiftedOptions& options = {}) const;

  /// Certified enclosure of the query probability from point-interval
  /// marginals (the interval semiring tracks the rounding of the
  /// plan's products; see util/interval.h for the certification model).
  StatusOr<Interval> EvaluateInterval(const pdb::TiPdb<double>& ti,
                                      const LiftedOptions& options = {}) const;

  const std::vector<logic::Formula>& atoms() const { return atoms_; }
  const std::vector<std::string>& variables() const { return variables_; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }
  /// Root node index; -1 for the empty conjunction (probability 1).
  int root() const { return root_; }
  /// Maximum project-nesting depth of the plan.
  int depth() const { return depth_; }

  /// Human-readable plan, e.g.
  /// "project[x](join(lookup(R(x)), project[y](lookup(S(x, y)))))".
  std::string ToString(const rel::Schema& schema) const;

 private:
  LiftedPlan() = default;

  /// Recursive plan construction over a set of atoms (indexes into
  /// atoms_) with `bound` marking variables already projected by an
  /// enclosing node. Returns the node index, or kFailedPrecondition
  /// when a connected subquery has no root variable.
  StatusOr<int> Build(const std::vector<int>& atom_set,
                      std::vector<bool>* bound, int depth);

  /// Shared body of Evaluate / EvaluateInterval: T is the result
  /// semiring, P the marginal type stored in the TI, and `convert`
  /// lifts P into T.
  template <typename T, typename P, typename Convert>
  StatusOr<T> EvaluateImpl(const pdb::TiPdb<P>& ti, Convert convert,
                           const LiftedOptions& options) const;

  /// Columnar body of Evaluate(TiStore) / EvaluateExact: `prob_at`
  /// reads a row's marginal as T from its column table.
  template <typename T, typename ProbAt>
  StatusOr<T> EvaluateStoreImpl(const storage::TiStore& store, ProbAt prob_at,
                                const LiftedOptions& options) const;

  std::string NodeToString(int node, const rel::Schema& schema) const;

  std::vector<logic::Formula> atoms_;
  std::vector<std::string> variables_;
  /// Per atom: the variable id at each argument position (-1 = constant).
  std::vector<std::vector<int>> term_vars_;
  /// Per atom: the constant at each position (meaningful where
  /// term_vars_ is -1; Null elsewhere).
  std::vector<std::vector<rel::Value>> term_consts_;
  /// Per atom: sorted distinct variable ids.
  std::vector<std::vector<int>> atom_vars_;
  /// relation id -> atom index (injective: the query is self-join-free).
  std::map<rel::RelationId, int> relation_atom_;
  std::vector<PlanNode> nodes_;
  /// Per node: the atom indexes in the node's scope (used by project
  /// nodes to bucket their component's fact tables).
  std::vector<std::vector<int>> node_atoms_;
  int root_ = -1;
  int depth_ = 0;
};

/// Evaluates Pr_{I~ti}(I ⊨ q) by a safe plan (compile + evaluate in
/// one call). Fails with kFailedPrecondition when the query is not a
/// hierarchical self-join-free CQ.
StatusOr<double> SafeQueryProbability(const pdb::TiPdb<double>& ti,
                                      const logic::Formula& sentence,
                                      SafePlanStats* stats = nullptr);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_SAFE_PLAN_H_
