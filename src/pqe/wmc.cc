#include "pqe/wmc.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kc/cache.h"
#include "kc/evaluate.h"
#include "logic/evaluator.h"
#include "obs/obs.h"
#include "pqe/monte_carlo.h"
#include "pqe/safe_plan.h"
#include "util/check.h"
#include "util/fault.h"

namespace ipdb {
namespace pqe {

namespace {

/// Interned `quality` label values for the pqe.answers{quality=...}
/// counter family — one cell per answer grade, so dashboards see the
/// exact/interval/failed split without parsing counter names.
[[maybe_unused]] const obs::LabelId kQualityExact =
    obs::InternLabel("exact");
[[maybe_unused]] const obs::LabelId kQualityInterval =
    obs::InternLabel("interval");
[[maybe_unused]] const obs::LabelId kQualityFailed =
    obs::InternLabel("failed");

/// Mirrors a per-query WmcStats delta into the cumulative registry
/// counters, so every path through the solver feeds the same process-
/// wide tallies the public struct reports per call.
void MirrorWmcStats([[maybe_unused]] const WmcStats& delta) {
  IPDB_OBS_COUNT("pqe.wmc.shannon_expansions", delta.shannon_expansions);
  IPDB_OBS_COUNT("pqe.wmc.decompositions", delta.decompositions);
  IPDB_OBS_COUNT("pqe.wmc.cache_hits", delta.cache_hits);
}

class WmcSolver {
 public:
  WmcSolver(Lineage* lineage, const std::vector<double>& var_probs,
            WmcStats* stats, const WmcOptions& options)
      : lineage_(*lineage),
        var_probs_(var_probs),
        stats_(stats),
        options_(options),
        max_depth_(options.budget != nullptr
                       ? options.budget->max_recursion_depth
                       : 0),
        meter_(options.budget,
               options.budget != nullptr ? options.budget->max_circuit_nodes
                                         : 0,
               "pqe.wmc node") {}

  /// OK, or the budget error that aborted solving. Once set, every
  /// further Solve returns 0.0 and unwinds without doing real work.
  const Status& error() const { return error_; }

  double Solve(NodeId id) {
    if (!error_.ok()) return 0.0;
    // Dense cache indexed by NodeId (ids are small and contiguous);
    // kUnsolved is a sentinel outside [0, 1], the range of every result.
    if (static_cast<size_t>(id) < cache_.size() && cache_[id] != kUnsolved) {
      if (stats_ != nullptr) ++stats_->cache_hits;
      return cache_[id];
    }
    double result = SolveUncached(id);
    // Never cache a placeholder computed while unwinding an abort.
    if (!error_.ok()) return 0.0;
    if (static_cast<size_t>(id) >= cache_.size()) {
      // The lineage grows during solving (Restrict/MakeAnd create
      // nodes); size up to the current node count in one step.
      cache_.resize(static_cast<size_t>(lineage_.size()), kUnsolved);
    }
    cache_[id] = result;
    return result;
  }

 private:
  double SolveUncached(NodeId id) {
    Status charge = meter_.Charge();
    if (!charge.ok()) {
      error_ = std::move(charge);
      return 0.0;
    }
    switch (lineage_.kind(id)) {
      case NodeKind::kTrue:
        return 1.0;
      case NodeKind::kFalse:
        return 0.0;
      case NodeKind::kVar:
        return var_probs_[lineage_.variable(id)];
      case NodeKind::kNot:
        return 1.0 - Solve(lineage_.children(id)[0]);
      case NodeKind::kAnd:
      case NodeKind::kOr:
        return SolveGate(id);
    }
    return 0.0;
  }

  /// Groups the gate's children into connected components by shared
  /// variables; independent components multiply (for OR via the
  /// complement). Components with more than one child (or a single
  /// complex child shared across) are resolved by Shannon expansion.
  double SolveGate(NodeId id) {
    ++depth_;
    const double result = SolveGateImpl(id);
    --depth_;
    return result;
  }

  double SolveGateImpl(NodeId id) {
    if (max_depth_ > 0 && depth_ > max_depth_) {
      error_ = ResourceExhaustedError("pqe.wmc recursion depth cap of " +
                                      std::to_string(max_depth_) +
                                      " exceeded");
      return 0.0;
    }
    const bool is_and = lineage_.kind(id) == NodeKind::kAnd;
    const std::vector<NodeId>& children = lineage_.children(id);

    // Union-find over children via shared variables (skipped entirely
    // when decomposition is ablated: one big component).
    const int n = static_cast<int>(children.size());
    if (!options_.decompose) {
      return SolveConnected(children, is_and);
    }
    std::vector<int> parent(n);
    for (int i = 0; i < n; ++i) parent[i] = i;
    std::function<int(int)> find = [&](int x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::map<int, int> var_owner;
    for (int i = 0; i < n; ++i) {
      for (int v : lineage_.Support(children[i])) {
        auto [it, inserted] = var_owner.emplace(v, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::map<int, std::vector<NodeId>> components;
    for (int i = 0; i < n; ++i) {
      components[find(i)].push_back(children[i]);
    }
    if (stats_ != nullptr && components.size() > 1) {
      ++stats_->decompositions;
    }

    // P(AND) = Π P(component-AND); P(OR) = 1 − Π (1 − P(component-OR)).
    double product = 1.0;
    for (const auto& [root, members] : components) {
      double p;
      if (members.size() == 1) {
        p = Solve(members[0]);
      } else {
        p = SolveConnected(members, is_and);
      }
      product *= is_and ? p : (1.0 - p);
    }
    return is_and ? product : 1.0 - product;
  }

  /// A variable-connected set of children of one gate: Shannon expansion
  /// on the most frequently shared variable.
  double SolveConnected(const std::vector<NodeId>& members, bool is_and) {
    // Pick the variable occurring in the most members.
    std::map<int, int> frequency;
    for (NodeId m : members) {
      for (int v : lineage_.Support(m)) ++frequency[v];
    }
    int best_var = -1;
    int best_count = 0;
    for (const auto& [v, count] : frequency) {
      if (count > best_count) {
        best_var = v;
        best_count = count;
      }
    }
    IPDB_CHECK_GE(best_var, 0);
    if (stats_ != nullptr) ++stats_->shannon_expansions;

    double p = var_probs_[best_var];
    double total = 0.0;
    for (int value = 0; value <= 1; ++value) {
      double weight = value == 1 ? p : 1.0 - p;
      if (weight == 0.0) continue;
      std::vector<NodeId> restricted;
      restricted.reserve(members.size());
      for (NodeId m : members) {
        restricted.push_back(lineage_.Restrict(m, best_var, value == 1));
      }
      NodeId gate = is_and ? lineage_.MakeAnd(std::move(restricted))
                           : lineage_.MakeOr(std::move(restricted));
      total += weight * Solve(gate);
    }
    return total;
  }

  static constexpr double kUnsolved = -1.0;

  Lineage& lineage_;
  const std::vector<double>& var_probs_;
  WmcStats* stats_;
  WmcOptions options_;
  const int64_t max_depth_;
  BudgetMeter meter_;
  int64_t depth_ = 0;
  Status error_;
  std::vector<double> cache_;
};

}  // namespace

StatusOr<double> ComputeProbability(Lineage* lineage, NodeId root,
                                    const std::vector<double>& var_probs,
                                    WmcStats* stats,
                                    const WmcOptions& options) {
  if (lineage == nullptr) return InvalidArgumentError("null lineage");
  if (root < 0 || root >= lineage->size()) {
    return InvalidArgumentError("lineage root out of range");
  }
  const std::vector<int>& support = lineage->Support(root);
  if (!support.empty() &&
      static_cast<size_t>(support.back()) >= var_probs.size()) {
    return InvalidArgumentError(
        "variable probabilities missing: lineage mentions variable " +
        std::to_string(support.back()) + " but only " +
        std::to_string(var_probs.size()) + " probabilities were given");
  }
  Status valid = kc::ValidateProbabilities(var_probs);
  if (!valid.ok()) return valid;
  IPDB_FAULT_POINT("pqe.wmc.solve");
  IPDB_OBS_SPAN("pqe.wmc_solve", "pqe");
  IPDB_OBS_SCOPED_TIMER("pqe.wmc_solve_ns");
  // Always collect stats locally so the registry sees the trace even
  // when the caller passed no stats struct.
  WmcStats local;
  WmcSolver solver(lineage, var_probs, &local, options);
  const double result = solver.Solve(root);
  if (!solver.error().ok()) {
    return IPDB_STATUS_FORWARD(solver.error()) << "WMC solve aborted";
  }
  if (stats != nullptr) {
    stats->shannon_expansions += local.shannon_expansions;
    stats->decompositions += local.decompositions;
    stats->cache_hits += local.cache_hits;
  }
  IPDB_OBS_COUNT("pqe.wmc.solves", 1);
  MirrorWmcStats(local);
  return result;
}

StatusOr<double> QueryProbability(const pdb::TiPdb<double>& ti,
                                  const logic::Formula& sentence,
                                  WmcStats* stats) {
  // The ungoverned entry point is the governed one with an unlimited
  // budget: the ladder's exact rung is the whole pipeline, no budget
  // checks fire (null budget short-circuits them), and every error
  // propagates as before.
  StatusOr<QueryAnswer> answer =
      QueryProbability(ti, sentence, QueryOptions{}, stats);
  if (!answer.ok()) return answer.status();
  return answer.value().probability;
}

StatusOr<QueryAnswer> QueryProbability(const pdb::TiPdb<double>& ti,
                                       const logic::Formula& sentence,
                                       const QueryOptions& options,
                                       WmcStats* stats) {
  // The span tree below is the serving pipeline's cost breakdown:
  // pqe.query = pqe.ground + pqe.cache_probe (kc.compile nests inside on
  // a miss) + pqe.evaluate, with only branch checks in between — a
  // trace therefore attributes essentially all query wall-clock to a
  // named phase (ci.sh gates the coverage at 95%).
  IPDB_OBS_SPAN("pqe.query", "pqe");
  IPDB_OBS_SCOPED_TIMER("pqe.query_ns");
  IPDB_OBS_COUNT("pqe.queries", 1);
  const ExecutionBudget* budget =
      options.budget != nullptr && options.budget->unlimited()
          ? nullptr
          : options.budget;

  // Lifted rung: hierarchical self-join-free CQs are answered by the
  // safe-plan engine without grounding or compiling anything. Queries
  // outside the class (kFailedPrecondition from the plan compiler) fall
  // through to the circuit rung; a budget trip *during* evaluation skips
  // the circuit rung too (the same deadline governs it, and grounding
  // costs strictly more than the plan walk that just tripped) and goes
  // straight to the Monte Carlo fallback.
  Status exact_error;
  bool skip_exact = false;
  if (options.lifted) {
    IPDB_OBS_SPAN("pqe.lifted", "pqe");
    StatusOr<LiftedPlan> plan = LiftedPlan::Compile(sentence);
    if (plan.ok()) {
      IPDB_OBS_COUNT("pqe.lifted.queries", 1);
      SafePlanStats plan_stats;
      LiftedOptions lifted_options;
      lifted_options.budget = budget;
      lifted_options.stats = &plan_stats;
      StatusOr<double> probability =
          plan.value().Evaluate(ti, lifted_options);
      if (probability.ok()) {
        // The lifted independence steps are decompositions in the
        // WmcStats vocabulary; no Shannon expansion ever happens here.
        const int64_t decompositions =
            plan_stats.independent_joins + plan_stats.independent_projects;
        if (stats != nullptr) stats->decompositions += decompositions;
        MirrorWmcStats(WmcStats{0, decompositions, 0, 0});
        IPDB_OBS_COUNT("pqe.lifted.answers", 1);
        IPDB_OBS_COUNT_LABELED("pqe.answers", "quality", kQualityExact, 1);
        QueryAnswer answer;
        answer.probability = probability.value();
        answer.half_width = 0.0;
        answer.confidence = 1.0;
        answer.quality = AnswerQuality::kExact;
        answer.lifted = true;
        return answer;
      }
      if (!IsBudgetError(probability.status())) {
        return probability.status();
      }
      exact_error = probability.status();
      skip_exact = true;
    } else if (plan.status().code() == StatusCode::kFailedPrecondition) {
      IPDB_OBS_COUNT("pqe.lifted.rejected", 1);
    } else {
      return plan.status();
    }
  }

  Lineage lineage;
  NodeId root = -1;
  std::vector<double> probs;
  if (!skip_exact) {
    IPDB_OBS_SPAN("pqe.ground", "pqe");
    IPDB_FAULT_POINT("pqe.ground");
    StatusOr<NodeId> grounded = GroundSentence(ti, sentence, &lineage);
    if (!grounded.ok()) return grounded.status();
    root = grounded.value();
    probs.reserve(ti.facts().size());
    for (const auto& [fact, marginal] : ti.facts()) {
      probs.push_back(marginal);
    }
  }

  // Exact rung: compile (budget-governed) through the artifact cache,
  // then evaluate (deadline polled per circuit node). Budget errors fall
  // through to the degraded rung; everything else propagates.
  do {
    if (skip_exact) break;
    if (budget != nullptr) {
      exact_error = budget->CheckTime("pqe.query");
      if (!exact_error.ok()) break;
    }
    // Compile-once / evaluate-many: structurally identical lineages
    // (the same query re-asked, or isomorphic per-tuple lineages) share
    // one compiled artifact and pay only a circuit-linear evaluation.
    bool was_hit = false;
    std::shared_ptr<const kc::CompiledQuery> artifact;
    {
      IPDB_OBS_SPAN("pqe.cache_probe", "pqe");
      kc::CompileOptions compile_options;
      compile_options.budget = budget;
      StatusOr<std::shared_ptr<const kc::CompiledQuery>> compiled =
          kc::GlobalCompiledQueryCache().GetOrCompile(
              &lineage, root, &was_hit, compile_options);
      if (!compiled.ok()) {
        if (!IsBudgetError(compiled.status())) return compiled.status();
        exact_error = compiled.status();
        break;
      }
      artifact = std::move(compiled).value();
    }

    IPDB_OBS_SPAN("pqe.evaluate", "pqe");
    if (stats != nullptr) {
      // Replay the compilation trace (from the artifact on a hit) so the
      // counters describe the query's inference structure either way.
      stats->shannon_expansions += artifact->stats.decisions;
      stats->decompositions += artifact->stats.decompositions;
      stats->cache_hits += artifact->stats.cache_hits;
      if (was_hit) ++stats->artifact_cache_hits;
    }
    // The registry's cumulative view of the same replayed trace (the
    // artifact-cache hit itself is counted inside kc::CompiledQueryCache).
    MirrorWmcStats(WmcStats{artifact->stats.decisions,
                            artifact->stats.decompositions,
                            artifact->stats.cache_hits, 0});
    BudgetMeter meter(budget, 0, "pqe.evaluate");
    StatusOr<double> probability = kc::EvaluateCircuit<double>(
        artifact->circuit, artifact->root, probs,
        budget != nullptr ? &meter : nullptr);
    if (!probability.ok()) {
      if (!IsBudgetError(probability.status())) return probability.status();
      exact_error = probability.status();
      break;
    }
    QueryAnswer answer;
    answer.probability = probability.value();
    answer.half_width = 0.0;
    answer.confidence = 1.0;
    answer.quality = AnswerQuality::kExact;
    IPDB_OBS_COUNT_LABELED("pqe.answers", "quality", kQualityExact, 1);
    return answer;
  } while (false);

  // Degraded rung: a certified Monte Carlo interval over the same
  // TI-PDB. A bounded answer now beats an exact answer never — the
  // fallback runs under the same budget (remaining deadline, sample
  // cap), so it degrades further to kFailed rather than overrunning.
  IPDB_OBS_COUNT("pqe.fallback.queries", 1);
  if (!options.fallback) {
    return IPDB_STATUS_FORWARD(exact_error)
           << "exact inference exceeded its budget and fallback is "
              "disabled";
  }
  IPDB_FAULT_POINT("pqe.query.fallback");
  IPDB_OBS_SPAN("pqe.fallback", "pqe");
  QueryAnswer answer;
  answer.exact_error = exact_error;
  pdb::SamplingOptions sampling;
  sampling.threads = options.fallback_threads;
  sampling.budget = budget;
  Pcg32 base_rng(options.fallback_seed);
  StatusOr<MonteCarloEstimate> estimate =
      EstimateQueryProbability(ti, sentence, options.fallback_samples,
                               base_rng, sampling,
                               options.fallback_confidence);
  if (!estimate.ok()) {
    if (!IsBudgetError(estimate.status())) return estimate.status();
    // Both rungs exhausted: report the failure as a value, with the
    // exact-path error attached, so the caller still learns what was
    // attempted (and pqe.fallback.failed counts it).
    IPDB_OBS_COUNT("pqe.fallback.failed", 1);
    IPDB_OBS_COUNT_LABELED("pqe.answers", "quality", kQualityFailed, 1);
    answer.quality = AnswerQuality::kFailed;
    exact_error.Append("fallback: " + estimate.status().message());
    answer.exact_error = std::move(exact_error);
    return answer;
  }
  answer.probability = estimate.value().estimate;
  answer.half_width = estimate.value().half_width;
  answer.confidence = options.fallback_confidence;
  answer.quality = AnswerQuality::kInterval;
  answer.samples = estimate.value().samples;
  IPDB_OBS_COUNT("pqe.fallback.interval_answers", 1);
  IPDB_OBS_COUNT("pqe.fallback.samples", estimate.value().samples);
  IPDB_OBS_COUNT_LABELED("pqe.answers", "quality", kQualityInterval, 1);
  return answer;
}

StatusOr<double> QueryProbabilityBruteForce(const pdb::TiPdb<double>& ti,
                                            const logic::Formula& sentence) {
  if (ti.num_facts() > 20) {
    return FailedPreconditionError("brute force limited to 20 facts");
  }
  if (!sentence.FreeVariables().empty()) {
    return InvalidArgumentError("brute force requires a sentence");
  }
  double total = 0.0;
  const uint64_t count = 1ULL << ti.num_facts();
  for (uint64_t mask = 0; mask < count; ++mask) {
    std::vector<rel::Fact> chosen;
    double probability = 1.0;
    for (int64_t i = 0; i < ti.num_facts(); ++i) {
      if ((mask >> i) & 1) {
        chosen.push_back(ti.facts()[i].first);
        probability *= ti.facts()[i].second;
      } else {
        probability *= 1.0 - ti.facts()[i].second;
      }
    }
    if (probability == 0.0) continue;
    rel::Instance world(std::move(chosen));
    StatusOr<bool> holds = logic::Evaluate(world, ti.schema(), sentence);
    if (!holds.ok()) return holds.status();
    if (holds.value()) total += probability;
  }
  return total;
}

}  // namespace pqe
}  // namespace ipdb
