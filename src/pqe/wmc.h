#ifndef IPDB_PQE_WMC_H_
#define IPDB_PQE_WMC_H_

#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "pqe/lineage.h"
#include "util/budget.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Exact weighted model counting over a lineage DAG: the probability
/// that independent variables (variable i true with probability
/// `var_probs[i]`) satisfy the formula.
///
/// Algorithm: negation is probability-complementation; conjunctions and
/// disjunctions of *variable-disjoint* parts multiply (resp. combine via
/// inclusion–exclusion on the complement); everything else falls back to
/// Shannon expansion on the most-shared variable, with memoization on
/// hash-consed node ids. Exponential in the worst case (PQE is #P-hard
/// in general [17]) but fast on decomposable lineages.
///
/// `QueryProbability` no longer runs this solver: it compiles the
/// lineage into a d-DNNF circuit (kc/compile.h) through a process-wide
/// LRU artifact cache and evaluates the circuit, so repeated queries
/// with updated marginals skip everything but a circuit-linear pass.
/// For a compiled query the stats report the *compilation* trace
/// (replayed from the cached artifact on a hit) plus
/// `artifact_cache_hits`; `ComputeProbability` remains the direct
/// Shannon/decomposition solver (parity baseline and ablations).
struct WmcStats {
  int64_t shannon_expansions = 0;
  int64_t decompositions = 0;
  int64_t cache_hits = 0;
  /// Times QueryProbability answered from an already-compiled circuit.
  int64_t artifact_cache_hits = 0;
};

/// Solver knobs. `decompose` toggles independent-component detection —
/// on by default; off exists for the ablation benchmark (every gate then
/// goes through Shannon expansion). `budget`, when set, governs the
/// solver: Shannon recursion is worst-case exponential, so the deadline
/// and cancel token are polled amortized and `max_recursion_depth` /
/// `max_circuit_nodes` (charged per solved lineage node) bound the
/// blow-up; a tripped budget returns its error from ComputeProbability.
struct WmcOptions {
  bool decompose = true;
  const ExecutionBudget* budget = nullptr;
};

/// Rejects `var_probs` that do not cover the lineage's variables or
/// contain entries outside [0, 1] (NaN included).
StatusOr<double> ComputeProbability(Lineage* lineage, NodeId root,
                                    const std::vector<double>& var_probs,
                                    WmcStats* stats = nullptr,
                                    const WmcOptions& options = {});

/// End-to-end PQE: Pr_{I ~ ti}(I ⊨ φ). Hierarchical self-join-free CQs
/// are answered by the lifted safe-plan engine (safe_plan.h, linear-ish
/// in the data); everything else grounds and runs compiled d-DNNF
/// evaluation via the global artifact cache (see kc/cache.h).
StatusOr<double> QueryProbability(const pdb::TiPdb<double>& ti,
                                  const logic::Formula& sentence,
                                  WmcStats* stats = nullptr);

/// How a governed query's answer was obtained — the rungs of the
/// degradation ladder, best first.
enum class AnswerQuality {
  /// The exact compiled answer, finished within budget. half_width = 0.
  kExact,
  /// Exact inference exceeded the budget; the answer is a certified
  /// Monte Carlo confidence interval: with probability >= `confidence`,
  /// the true probability lies within probability ± half_width.
  kInterval,
  /// Neither rung finished within budget; `probability` is meaningless
  /// and `exact_error` holds the terminal budget error.
  kFailed,
};

/// The result of a budget-governed query (see the QueryOptions
/// overload of QueryProbability).
struct QueryAnswer {
  double probability = 0.0;
  /// Certified half-width of the answer: 0 when exact.
  double half_width = 0.0;
  /// Confidence of the interval: 1 when exact, the fallback confidence
  /// level for kInterval, 0 for kFailed.
  double confidence = 0.0;
  AnswerQuality quality = AnswerQuality::kFailed;
  /// True when the lifted safe-plan rung produced the (exact) answer —
  /// the query was a hierarchical self-join-free CQ and no grounding or
  /// circuit work happened at all.
  bool lifted = false;
  /// Monte Carlo samples drawn by the fallback (0 on the exact path).
  int64_t samples = 0;
  /// Why the exact path degraded (kResourceExhausted / kDeadlineExceeded
  /// / kCancelled); OK when quality == kExact.
  Status exact_error;
};

/// Governance knobs for the QueryOptions overload below.
struct QueryOptions {
  /// Resource limits for the whole query (grounding + compilation +
  /// evaluation + fallback). Null = unlimited, in which case the
  /// overload behaves exactly like plain QueryProbability.
  const ExecutionBudget* budget = nullptr;
  /// Try the lifted safe-plan engine first (safe_plan.h): hierarchical
  /// self-join-free CQs are answered exactly without grounding or
  /// compiling, orders of magnitude faster at scale. Queries outside
  /// that class fall through to the circuit rung transparently. Off
  /// forces the ground-then-compile path (ablations; tests of the
  /// circuit ladder machinery).
  bool lifted = true;
  /// Degrade to a certified Monte Carlo interval when exact inference
  /// exceeds the budget. Off = budget errors propagate as Statuses.
  bool fallback = true;
  /// Fallback sampling: requested sample count (still clamped by
  /// budget->max_samples and the remaining deadline), confidence level
  /// of the reported interval, worker threads, and the deterministic
  /// base seed of the sample stream.
  int64_t fallback_samples = 100000;
  double fallback_confidence = 0.99;
  int fallback_threads = 1;
  uint64_t fallback_seed = 0x51ed;
};

/// Budget-governed PQE with graceful degradation, a three-rung ladder:
///
///   1. lifted   — safe-plan evaluation for hierarchical self-join-free
///                 CQs (exact, no grounding; skipped for queries outside
///                 the class or when options.lifted is off);
///   2. compile  — ground, compile via the artifact cache, evaluate the
///                 d-DNNF (exact);
///   3. fallback — a certified Monte Carlo interval (quality kInterval).
///
/// Every rung runs under options.budget; a cap or deadline trip degrades
/// to the next rung instead of failing — a bounded answer now beats an
/// exact answer never. (A budget trip *inside* the lifted rung skips the
/// circuit rung too: the same deadline governs both, and grounding costs
/// strictly more than the plan walk that just tripped.) When the lifted
/// rung answers, stats->decompositions mirrors its independence steps
/// (joins + projects); shannon_expansions stays 0. Real errors
/// (malformed queries, evaluation failures) propagate as Statuses
/// regardless; with fallback disabled, budget errors do too. Lifted and
/// fallback traffic is visible in the pqe.lifted.* / pqe.fallback.*
/// registry counters.
StatusOr<QueryAnswer> QueryProbability(const pdb::TiPdb<double>& ti,
                                       const logic::Formula& sentence,
                                       const QueryOptions& options,
                                       WmcStats* stats = nullptr);

/// Reference implementation by brute-force enumeration of all 2^n worlds
/// (n <= 20): used to validate the WMC path in tests.
StatusOr<double> QueryProbabilityBruteForce(const pdb::TiPdb<double>& ti,
                                            const logic::Formula& sentence);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_WMC_H_
