#ifndef IPDB_PQE_WMC_H_
#define IPDB_PQE_WMC_H_

#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "pqe/lineage.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Exact weighted model counting over a lineage DAG: the probability
/// that independent variables (variable i true with probability
/// `var_probs[i]`) satisfy the formula.
///
/// Algorithm: negation is probability-complementation; conjunctions and
/// disjunctions of *variable-disjoint* parts multiply (resp. combine via
/// inclusion–exclusion on the complement); everything else falls back to
/// Shannon expansion on the most-shared variable, with memoization on
/// hash-consed node ids. Exponential in the worst case (PQE is #P-hard
/// in general [17]) but fast on decomposable lineages.
struct WmcStats {
  int64_t shannon_expansions = 0;
  int64_t decompositions = 0;
  int64_t cache_hits = 0;
};

/// Solver knobs. `decompose` toggles independent-component detection —
/// on by default; off exists for the ablation benchmark (every gate then
/// goes through Shannon expansion).
struct WmcOptions {
  bool decompose = true;
};

StatusOr<double> ComputeProbability(Lineage* lineage, NodeId root,
                                    const std::vector<double>& var_probs,
                                    WmcStats* stats = nullptr,
                                    const WmcOptions& options = {});

/// End-to-end PQE: Pr_{I ~ ti}(I ⊨ φ) by grounding + WMC.
StatusOr<double> QueryProbability(const pdb::TiPdb<double>& ti,
                                  const logic::Formula& sentence,
                                  WmcStats* stats = nullptr);

/// Reference implementation by brute-force enumeration of all 2^n worlds
/// (n <= 20): used to validate the WMC path in tests.
StatusOr<double> QueryProbabilityBruteForce(const pdb::TiPdb<double>& ti,
                                            const logic::Formula& sentence);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_WMC_H_
