#ifndef IPDB_PQE_WMC_H_
#define IPDB_PQE_WMC_H_

#include <vector>

#include "logic/formula.h"
#include "pdb/ti_pdb.h"
#include "pqe/lineage.h"
#include "util/status.h"

namespace ipdb {
namespace pqe {

/// Exact weighted model counting over a lineage DAG: the probability
/// that independent variables (variable i true with probability
/// `var_probs[i]`) satisfy the formula.
///
/// Algorithm: negation is probability-complementation; conjunctions and
/// disjunctions of *variable-disjoint* parts multiply (resp. combine via
/// inclusion–exclusion on the complement); everything else falls back to
/// Shannon expansion on the most-shared variable, with memoization on
/// hash-consed node ids. Exponential in the worst case (PQE is #P-hard
/// in general [17]) but fast on decomposable lineages.
///
/// `QueryProbability` no longer runs this solver: it compiles the
/// lineage into a d-DNNF circuit (kc/compile.h) through a process-wide
/// LRU artifact cache and evaluates the circuit, so repeated queries
/// with updated marginals skip everything but a circuit-linear pass.
/// For a compiled query the stats report the *compilation* trace
/// (replayed from the cached artifact on a hit) plus
/// `artifact_cache_hits`; `ComputeProbability` remains the direct
/// Shannon/decomposition solver (parity baseline and ablations).
struct WmcStats {
  int64_t shannon_expansions = 0;
  int64_t decompositions = 0;
  int64_t cache_hits = 0;
  /// Times QueryProbability answered from an already-compiled circuit.
  int64_t artifact_cache_hits = 0;
};

/// Solver knobs. `decompose` toggles independent-component detection —
/// on by default; off exists for the ablation benchmark (every gate then
/// goes through Shannon expansion).
struct WmcOptions {
  bool decompose = true;
};

/// Rejects `var_probs` that do not cover the lineage's variables or
/// contain entries outside [0, 1] (NaN included).
StatusOr<double> ComputeProbability(Lineage* lineage, NodeId root,
                                    const std::vector<double>& var_probs,
                                    WmcStats* stats = nullptr,
                                    const WmcOptions& options = {});

/// End-to-end PQE: Pr_{I ~ ti}(I ⊨ φ) by grounding, then compiled
/// d-DNNF evaluation via the global artifact cache (see kc/cache.h).
StatusOr<double> QueryProbability(const pdb::TiPdb<double>& ti,
                                  const logic::Formula& sentence,
                                  WmcStats* stats = nullptr);

/// Reference implementation by brute-force enumeration of all 2^n worlds
/// (n <= 20): used to validate the WMC path in tests.
StatusOr<double> QueryProbabilityBruteForce(const pdb::TiPdb<double>& ti,
                                            const logic::Formula& sentence);

}  // namespace pqe
}  // namespace ipdb

#endif  // IPDB_PQE_WMC_H_
