#include "prob/distribution.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ipdb {
namespace prob {

double RatioTailBound(double a_N, double ratio) {
  IPDB_CHECK_GE(a_N, 0.0);
  IPDB_CHECK_GE(ratio, 0.0);
  if (ratio >= 1.0) return Interval::kInfinity;
  return a_N / (1.0 - ratio);
}

IntDistribution Geometric(double q) {
  IPDB_CHECK_GE(q, 0.0);
  IPDB_CHECK_LT(q, 1.0);
  IntDistribution d;
  d.pmf = [q](int64_t i) {
    if (i < 0) return 0.0;
    return (1.0 - q) * std::pow(q, static_cast<double>(i));
  };
  d.tail_upper = [q](int64_t N) {
    if (N <= 0) return 1.0;
    return std::pow(q, static_cast<double>(N));
  };
  d.moment_tail_upper = [q, pmf = d.pmf](int k, int64_t N) {
    if (q == 0.0) return N <= 0 ? 0.0 : 0.0;
    // Term a_i = i^k (1-q) q^i. Ratio a_{i+1}/a_i = ((i+1)/i)^k q, which is
    // at most ((N+1)/N)^k q for i >= N >= 1.
    int64_t n = N < 1 ? 1 : N;
    double ratio =
        std::pow(static_cast<double>(n + 1) / static_cast<double>(n),
                 static_cast<double>(k)) *
        q;
    while (ratio >= 1.0) {
      // The bound only kicks in once terms decay; advance N and account
      // for skipped terms exactly.
      ++n;
      ratio = std::pow(static_cast<double>(n + 1) / static_cast<double>(n),
                       static_cast<double>(k)) *
              q;
    }
    double skipped = 0.0;
    for (int64_t i = (N < 1 ? 1 : N); i < n; ++i) {
      skipped += std::pow(static_cast<double>(i), static_cast<double>(k)) *
                 pmf(i);
    }
    double a_n = std::pow(static_cast<double>(n), static_cast<double>(k)) *
                 pmf(n);
    return skipped + RatioTailBound(a_n, ratio);
  };
  std::ostringstream os;
  os << "Geometric(q=" << q << ")";
  d.description = os.str();
  return d;
}

IntDistribution Poisson(double lambda) {
  IPDB_CHECK_GT(lambda, 0.0);
  IntDistribution d;
  d.pmf = [lambda](int64_t i) {
    if (i < 0) return 0.0;
    // exp(-lambda) lambda^i / i!, computed in log space for stability.
    double log_p = -lambda + static_cast<double>(i) * std::log(lambda) -
                   std::lgamma(static_cast<double>(i) + 1.0);
    return std::exp(log_p);
  };
  d.tail_upper = [lambda, pmf = d.pmf](int64_t N) {
    if (N <= 0) return 1.0;
    // For N > lambda the terms decay at ratio lambda/(N+1) < 1:
    // P(X >= N) <= pmf(N) / (1 - lambda/(N+1)).
    if (static_cast<double>(N) <= lambda) return 1.0;
    double ratio = lambda / (static_cast<double>(N) + 1.0);
    return RatioTailBound(pmf(N), ratio);
  };
  d.moment_tail_upper = [lambda, pmf = d.pmf](int k, int64_t N) {
    // Term a_i = i^k pmf(i); ratio = ((i+1)/i)^k * lambda/(i+1).
    int64_t n = N < 1 ? 1 : N;
    auto ratio_at = [lambda, k](int64_t i) {
      return std::pow(static_cast<double>(i + 1) / static_cast<double>(i),
                      static_cast<double>(k)) *
             lambda / (static_cast<double>(i) + 1.0);
    };
    double skipped = 0.0;
    while (ratio_at(n) >= 1.0) {
      skipped += std::pow(static_cast<double>(n), static_cast<double>(k)) *
                 pmf(n);
      ++n;
    }
    double a_n = std::pow(static_cast<double>(n), static_cast<double>(k)) *
                 pmf(n);
    return skipped + RatioTailBound(a_n, ratio_at(n));
  };
  std::ostringstream os;
  os << "Poisson(lambda=" << lambda << ")";
  d.description = os.str();
  return d;
}

IntDistribution PowerLaw(double s) {
  IPDB_CHECK_GT(s, 1.0);
  // Normalizing constant Z = sum_{i>=0} (i+1)^{-s}, enclosed to high
  // precision; we use the midpoint (the enclosure width is far below the
  // double tolerance used by consumers).
  Series zeta = PowerSeries(1.0, s);
  SumOptions options;
  options.target_width = 1e-14;
  options.max_terms = 1 << 22;
  SumAnalysis z = AnalyzeSum(zeta, options);
  IPDB_CHECK(z.kind == SumAnalysis::Kind::kConverged);
  double Z = z.enclosure.midpoint();

  IntDistribution d;
  d.pmf = [s, Z](int64_t i) {
    if (i < 0) return 0.0;
    return std::pow(static_cast<double>(i + 1), -s) / Z;
  };
  d.tail_upper = [s, Z](int64_t N) {
    if (N <= 0) return 1.0;
    return PowerTailUpper(1.0, s, N) / Z;
  };
  d.moment_tail_upper = [s, Z](int k, int64_t N) {
    // i^k (i+1)^{-s} <= i^{k-s}: converges iff s - k > 1.
    double p = s - static_cast<double>(k);
    if (p <= 1.0) return Interval::kInfinity;
    return PowerTailUpper(1.0, p, N < 1 ? 1 : N) / Z;
  };
  std::ostringstream os;
  os << "PowerLaw(s=" << s << ")";
  d.description = os.str();
  return d;
}

Interval MomentInterval(const IntDistribution& distribution, int k,
                        int64_t max_terms) {
  IPDB_CHECK_GE(k, 1);
  double partial = 0.0;
  for (int64_t i = 1; i < max_terms; ++i) {
    partial += std::pow(static_cast<double>(i), static_cast<double>(k)) *
               distribution.pmf(i);
  }
  if (!distribution.moment_tail_upper) {
    return Interval::AtLeast(partial);
  }
  double tail = distribution.moment_tail_upper(k, max_terms);
  if (!std::isfinite(tail)) return Interval::AtLeast(partial);
  // Pad by a relative epsilon against floating-point summation error.
  double pad = 1e-9 * std::abs(partial) + 1e-15;
  return Interval(partial - pad, partial + tail + pad);
}

int64_t Sample(const IntDistribution& distribution, Pcg32* rng,
               int64_t max_value) {
  double x = rng->NextDouble();
  double cumulative = 0.0;
  for (int64_t i = 0; i < max_value; ++i) {
    cumulative += distribution.pmf(i);
    if (x < cumulative) return i;
  }
  return max_value;
}

}  // namespace prob
}  // namespace ipdb
