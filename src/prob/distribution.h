#ifndef IPDB_PROB_DISTRIBUTION_H_
#define IPDB_PROB_DISTRIBUTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/interval.h"
#include "util/random.h"
#include "util/series.h"

namespace ipdb {
namespace prob {

/// A discrete probability distribution over the non-negative integers with
/// a certified tail: `tail_upper(N)` must bound P(X >= N) from above.
///
/// These model the attribute-level distributions that motivate infinite
/// PDBs in the paper's introduction (noisy counters, Poisson-distributed
/// measurement errors); they become BID blocks in the examples.
struct IntDistribution {
  /// pmf(i) = P(X = i); must be >= 0 and sum to 1.
  std::function<double(int64_t)> pmf;

  /// Certified upper bound on P(X >= N).
  std::function<double(int64_t)> tail_upper;

  /// Optional: certified upper bound on sum_{i >= N} i^k pmf(i), the tail
  /// of the k-th moment sum. Distributions whose k-th moment is infinite
  /// return +infinity. When absent, MomentInterval reports
  /// [partial, +inf).
  std::function<double(int k, int64_t N)> moment_tail_upper;

  std::string description;
};

/// Generic ratio-test tail bound: if the term ratio a_{i+1}/a_i is at most
/// `ratio` for all i >= N and ratio < 1, then sum_{i>=N} a_i <=
/// a_N / (1 - ratio). Returns +infinity when ratio >= 1.
double RatioTailBound(double a_N, double ratio);

/// Geometric distribution on {0, 1, …}: P(X = i) = (1-q) q^i, 0 <= q < 1.
IntDistribution Geometric(double q);

/// Poisson distribution with rate lambda > 0. The tail bound is the
/// Chernoff-style bound P(X >= N) <= e^{-lambda} (e*lambda / N)^N for
/// N > lambda (and 1 otherwise).
IntDistribution Poisson(double lambda);

/// The normalized power-law ("zeta-like") distribution
/// P(X = i) ∝ (i+1)^{-s} for s > 1, normalized by the truncated zeta sum
/// computed to certified precision.
IntDistribution PowerLaw(double s);

/// Certified enclosure of E[X^k] (k >= 1) computed from the pmf and tail
/// certificate: the tail of the k-th moment sum is bounded by
/// sum_{i>=N} i^k pmf(i), which callers can bound only when the moment is
/// known finite; here we use the generic bound via `moment_tail` when
/// provided, otherwise we report [partial, +inf).
Interval MomentInterval(const IntDistribution& distribution, int k,
                        int64_t max_terms = 1 << 16);

/// Samples from the distribution by inversion on the cumulative sum,
/// falling back to the largest enumerated value if the tail mass
/// (certified < 2^-40 at the cutoff) is hit.
int64_t Sample(const IntDistribution& distribution, Pcg32* rng,
               int64_t max_value = 1 << 20);

}  // namespace prob
}  // namespace ipdb

#endif  // IPDB_PROB_DISTRIBUTION_H_
