#include "prob/moments.h"

#include <cmath>

#include "util/check.h"

namespace ipdb {
namespace prob {

double SizeMomentFinite(const std::vector<std::pair<int64_t, double>>& dist,
                        int k) {
  IPDB_CHECK_GE(k, 0);
  double total = 0.0;
  for (const auto& [value, probability] : dist) {
    // value^k by repeated multiplication; k is a small moment order.
    double power = 1.0;
    for (int i = 0; i < k; ++i) power *= static_cast<double>(value);
    total += power * probability;
  }
  return total;
}

Series MakeMomentSeries(std::function<int64_t(int64_t)> size,
                        std::function<double(int64_t)> prob, int k,
                        const MomentTailCertificates& certificates) {
  IPDB_CHECK_GE(k, 0);
  Series series;
  series.term = [size = std::move(size), prob = std::move(prob),
                 k](int64_t i) {
    return std::pow(static_cast<double>(size(i)), static_cast<double>(k)) *
           prob(i);
  };
  if (certificates.upper) {
    series.tail_upper_bound = [upper = certificates.upper, k](int64_t N) {
      return upper(k, N);
    };
  }
  if (certificates.lower) {
    series.tail_lower_bound = [lower = certificates.lower, k](int64_t N) {
      return lower(k, N);
    };
  }
  series.description = "moment series (k=" + std::to_string(k) + ")";
  return series;
}

}  // namespace prob
}  // namespace ipdb
