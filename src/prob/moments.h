#ifndef IPDB_PROB_MOMENTS_H_
#define IPDB_PROB_MOMENTS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/series.h"

namespace ipdb {
namespace prob {

/// E[S^k] for a finite distribution given as (value, probability) pairs.
double SizeMomentFinite(const std::vector<std::pair<int64_t, double>>& dist,
                        int k);

/// Certificates for the moment sums of an enumerated world family: for
/// each moment order k, upper/lower bounds on
/// sum_{i >= N} size(i)^k prob(i). Either function may be null.
struct MomentTailCertificates {
  std::function<double(int k, int64_t N)> upper;
  std::function<double(int k, int64_t N)> lower;
};

/// Builds the k-th moment series sum_i size(i)^k prob(i) for a countable
/// family of worlds, attaching the given certificates.
Series MakeMomentSeries(std::function<int64_t(int64_t)> size,
                        std::function<double(int64_t)> prob, int k,
                        const MomentTailCertificates& certificates);

}  // namespace prob
}  // namespace ipdb

#endif  // IPDB_PROB_MOMENTS_H_
